"""Validation of values against schemas (incl. Listing 5 data)."""

import pytest

from repro.datamodel.convert import from_python
from repro.datamodel.values import Bag, Struct, MISSING
from repro.errors import SchemaError
from repro.schema import conforms, parse_schema, validate


def check(value, schema_text):
    validate(from_python(value), parse_schema(schema_text))


class TestScalars:
    def test_int(self):
        check(1, "INT")
        with pytest.raises(SchemaError):
            check(1.5, "INT")

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaError):
            check(True, "INT")

    def test_double_accepts_int(self):
        check(1, "DOUBLE")
        check(1.5, "DOUBLE")

    def test_string(self):
        check("x", "STRING")
        with pytest.raises(SchemaError):
            check(1, "STRING")

    def test_null_needs_null_type(self):
        check(None, "NULL")
        with pytest.raises(SchemaError):
            check(None, "INT")

    def test_any_matches_everything(self):
        for value in (None, 1, "s", [1], {"a": 1}):
            check(value, "ANY")

    def test_missing_never_matches_a_concrete_type(self):
        with pytest.raises(SchemaError):
            validate(MISSING, parse_schema("INT"))

    def test_any_matches_missing_field_values(self):
        # ANY is the schemaless default; it places no constraint at all.
        validate(MISSING, parse_schema("ANY"))


class TestCollections:
    def test_array_elements_checked(self):
        check([1, 2], "ARRAY<INT>")
        with pytest.raises(SchemaError) as info:
            check([1, "x"], "ARRAY<INT>")
        assert "[1]" in str(info.value)

    def test_bag_accepts_bag_and_array(self):
        validate(Bag([1]), parse_schema("BAG<INT>"))
        check([1], "BAG<INT>")

    def test_array_rejects_bag(self):
        with pytest.raises(SchemaError):
            validate(Bag([1]), parse_schema("ARRAY<INT>"))


class TestStructs:
    SCHEMA = "STRUCT<id INT, title? STRING NULL>"

    def test_conforming(self):
        check({"id": 1, "title": "x"}, self.SCHEMA)
        check({"id": 1, "title": None}, self.SCHEMA)
        check({"id": 1}, self.SCHEMA)

    def test_required_field(self):
        with pytest.raises(SchemaError):
            check({"title": "x"}, self.SCHEMA)

    def test_null_in_non_nullable(self):
        with pytest.raises(SchemaError):
            check({"id": None, "title": "x"}, self.SCHEMA)

    def test_closed_struct_rejects_extras(self):
        with pytest.raises(SchemaError):
            check({"id": 1, "extra": 2}, self.SCHEMA)

    def test_open_struct_allows_extras(self):
        check({"id": 1, "extra": 2}, "STRUCT<id INT, ...>")

    def test_duplicate_attributes_all_checked(self):
        struct = Struct([("id", 1), ("id", "oops")])
        with pytest.raises(SchemaError):
            validate(struct, parse_schema("STRUCT<id INT>"))


class TestUnionsListing5:
    SCHEMA = """
        CREATE TABLE emp_mixed (
          id INT,
          name STRING,
          projects UNIONTYPE<STRING, ARRAY<STRING>>
        )
    """

    def test_both_alternatives_accepted(self):
        check(
            [
                {"id": 1, "name": "u", "projects": "OLTP Security"},
                {"id": 2, "name": "v", "projects": ["a", "b"]},
            ],
            self.SCHEMA,
        )

    def test_neither_alternative(self):
        with pytest.raises(SchemaError) as info:
            check([{"id": 1, "name": "u", "projects": 42}], self.SCHEMA)
        assert "no alternative" in str(info.value)

    def test_conforms_boolean_form(self):
        schema = parse_schema("UNIONTYPE<INT, STRING>")
        assert conforms(from_python(1), schema)
        assert conforms(from_python("x"), schema)
        assert not conforms(from_python([1]), schema)


class TestErrorPaths:
    def test_path_in_message(self):
        with pytest.raises(SchemaError) as info:
            check(
                [{"xs": [{"y": "bad"}]}],
                "BAG<STRUCT<xs ARRAY<STRUCT<y INT>>>>",
            )
        assert "[0].xs[0].y" in str(info.value)
