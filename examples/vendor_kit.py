"""Running the compatibility kit the way a vendor would (paper §VIII).

The paper closes by inviting "other systems' developers and tool
providers" to join a shared compatibility kit.  This example plays the
vendor: it runs the kit against the bundled engine, slices the results
by paper section and language mode, drills into one case to show what
the kit actually checks, and demonstrates how an adapter for a foreign
engine plugs in.

Run:  python examples/vendor_kit.py
"""

from collections import defaultdict

from repro.compat import all_cases, run_case, run_cases
from repro.compat.report import report_json
from repro.compat.runner import build_database
from repro.datamodel import to_python
from repro.formats import sqlpp_dumps, sqlpp_loads


def main():
    cases = all_cases()
    results = run_cases(cases)

    # 1. The vendor scoreboard: conformance by paper section and mode.
    by_section = defaultdict(lambda: [0, 0])
    by_mode = defaultdict(lambda: [0, 0])
    for result in results:
        section = by_section[result.case.section]
        section[0] += result.passed
        section[1] += 1
        mode = "compat" if result.case.sql_compat else "core"
        if result.case.typing_mode == "strict":
            mode += "+strict"
        tally = by_mode[mode]
        tally[0] += result.passed
        tally[1] += 1

    print("Conformance by paper section:")
    for section in sorted(by_section):
        ok, total = by_section[section]
        print(f"  §{section:<6} {ok}/{total}")
    print("\nConformance by language mode:")
    for mode in sorted(by_mode):
        ok, total = by_mode[mode]
        print(f"  {mode:<14} {ok}/{total}")

    # 2. Anatomy of one case: Listing 12's GROUP AS inversion.
    case = next(c for c in cases if c.case_id == "L12")
    print(f"\n-- Case {case.case_id}: {case.title}")
    print("query:")
    for line in case.query.strip().splitlines():
        print("   ", line.strip())
    outcome = run_case(case)
    print("expected == actual:", outcome.passed)
    print("actual result:")
    print("   ", sqlpp_dumps(outcome.actual).replace("\n", " "))

    # 3. Plugging in a foreign engine: anything that can load the
    #    literal-notation data and answer queries can be scored.  Here
    #    the "foreign engine" is just this library behind a tiny
    #    adapter, to show the seam a vendor implements.
    class ForeignEngineAdapter:
        """What a vendor writes: load data, execute, return comparable
        values (plain Python is fine — we convert for comparison)."""

        def run(self, case):
            db = build_database(case)  # or: your engine's loader
            return to_python(db.execute(case.query))

    adapter = ForeignEngineAdapter()
    sample = [c for c in cases if c.expect_error is None][:10]
    agreements = 0
    for c in sample:
        from repro.datamodel import from_python

        foreign = from_python(adapter.run(c))
        expected = sqlpp_loads(c.expected)
        from repro.compat.runner import _results_equal

        agreements += _results_equal(foreign, expected, ordered=c.ordered)
    print(f"\nForeign-engine adapter scored {agreements}/{len(sample)} "
          "on the first ten cases")

    # 4. Machine-readable output for CI dashboards.
    summary = report_json(results)
    slowest = max(summary["cases"], key=lambda c: c["elapsed_s"])
    print(f"\nJSON report: {summary['passed']}/{summary['total']} passed; "
          f"slowest case {slowest['id']} at {slowest['elapsed_s'] * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
