"""Lightweight collection statistics for cost-based planning.

The planner's join-order selection (docs/PLANNER.md) needs three cheap
facts about each base collection: how many rows it has, roughly how many
distinct values each top-level attribute takes (so an equi-join's output
can be estimated as ``|L|*|R| / ndv(key)``), and how often a joined path
is MISSING (rows whose key is absent never match an equi-join, so they
shrink the effective input).  Exact statistics would cost a full pass
with hashing per attribute; instead :func:`collect_stats` samples a
bounded prefix — good enough to *rank* join orders, which only needs
relative cardinalities, not exact ones.

Statistics are collected lazily and cached per
``(name, catalog.data_version)`` by :class:`StatsProvider`, so they
refresh automatically when a named value is replaced and cost nothing
for catalogs that never run a planned join.

Sampling can be arbitrarily wrong — a prefix sample sees neither skew
in the tail nor correlations between filters — so the provider also
carries :class:`FeedbackHints`: *observed* cardinalities fed back from
executed plans by the query store (docs/OBSERVABILITY.md).  The planner
prefers a feedback hint over the sampled estimate for the same scan or
join shape, which is how a misestimated join order corrects itself on
the next execution of the same query fingerprint.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.datamodel.equality import group_key
from repro.datamodel.values import Bag, LazyBag, Struct

#: How many elements of a collection are examined for distinct-key and
#: MISSING-rate estimates.  The row count itself is always exact.
SAMPLE_LIMIT = 1024


@dataclass
class CollectionStats:
    """Sampled statistics for one named collection."""

    name: str
    #: Exact element count of the collection.
    row_count: int
    #: How many elements contributed to the sampled estimates.
    sample_size: int
    #: Estimated distinct values per top-level attribute, scaled from
    #: the sample to the full collection (capped at ``row_count``).
    ndv: Dict[str, int] = field(default_factory=dict)
    #: Fraction of sampled elements where the attribute was MISSING
    #: (absent from the element, or the element is not a tuple).
    missing_rate: Dict[str, float] = field(default_factory=dict)

    def ndv_for(self, attr: str) -> Optional[int]:
        return self.ndv.get(attr)

    def missing_for(self, attr: str) -> float:
        return self.missing_rate.get(attr, 0.0)

    def summary(self) -> str:
        """One EXPLAIN line worth of statistics."""
        parts = [f"rows={self.row_count}"]
        for attr in sorted(self.ndv)[:4]:
            parts.append(f"ndv({attr})≈{self.ndv[attr]}")
            rate = self.missing_rate.get(attr, 0.0)
            if rate > 0.0:
                parts.append(f"missing({attr})={rate:.0%}")
        return " ".join(parts)


def collect_stats(
    name: str, value: Any, sample_limit: int = SAMPLE_LIMIT
) -> Optional[CollectionStats]:
    """Sampled statistics for a materialized collection, or None.

    Lazy bags are skipped (counting them would traverse the generator,
    defeating their purpose); non-collections carry no useful planning
    signal.
    """
    if isinstance(value, LazyBag):
        return None
    if isinstance(value, Bag):
        elements = value.to_list()
    elif isinstance(value, list):
        elements = value
    else:
        return None
    row_count = len(elements)
    sample = elements[:sample_limit]
    sample_size = len(sample)
    distinct: Dict[str, set] = {}
    present: Dict[str, int] = {}
    tuples = 0
    for element in sample:
        if not isinstance(element, Struct):
            continue
        tuples += 1
        for attr, attr_value in element.items():
            present[attr] = present.get(attr, 0) + 1
            try:
                identity = group_key(attr_value)
            except Exception:
                continue
            distinct.setdefault(attr, set()).add(identity)
    ndv: Dict[str, int] = {}
    missing_rate: Dict[str, float] = {}
    if sample_size:
        scale = row_count / sample_size
        for attr, identities in distinct.items():
            seen = len(identities)
            # A key that looks unique in the sample likely stays unique;
            # a key with few values has been seen in full.  Linear
            # scaling between the two is the standard cheap estimator.
            if seen >= present.get(attr, 0):
                estimate = int(seen * scale)
            else:
                estimate = seen
            ndv[attr] = max(1, min(row_count, estimate))
        for attr, count in present.items():
            missing_rate[attr] = 1.0 - (count / sample_size)
    return CollectionStats(
        name=name,
        row_count=row_count,
        sample_size=sample_size,
        ndv=ndv,
        missing_rate=missing_rate,
    )


class FeedbackHints:
    """Observed cardinalities keyed by plan-shape identity.

    Keys are the stable shape texts built by
    :func:`repro.core.planner.scan_feedback_key` /
    :func:`~repro.core.planner.join_feedback_key` (base collection plus
    sorted filter/key prints), so a hint only ever applies to the exact
    scan or join it was measured on.  Hints are pinned to the catalog
    ``data_version`` they were observed under: any data mutation clears
    them, since yesterday's actuals say nothing about today's rows.

    ``version`` bumps whenever the hint set changes in a plan-relevant
    way; plan caches key on it (alongside ``data_version``) so a new
    observation triggers exactly one replan instead of replanning
    forever or never.
    """

    #: Relative change below which an updated observation is treated as
    #: noise rather than a plan-relevant shift (no version bump).
    TOLERANCE = 0.1

    #: Bound on retained hints; least-recently-touched evicted first.
    MAX_HINTS = 512

    def __init__(self) -> None:
        self._rows: "OrderedDict[str, float]" = OrderedDict()
        self.version = 0
        self._data_version: Optional[int] = None

    def __len__(self) -> int:
        return len(self._rows)

    def record(self, key: str, rows: float, data_version: int) -> bool:
        """Fold one observation in; True when plans may change."""
        if self._data_version != data_version:
            if self._rows:
                self.version += 1
            self._rows.clear()
            self._data_version = data_version
        previous = self._rows.get(key)
        rows = float(rows)
        self._rows[key] = rows
        self._rows.move_to_end(key)
        while len(self._rows) > self.MAX_HINTS:
            self._rows.popitem(last=False)
        if previous is None or abs(previous - rows) > self.TOLERANCE * max(
            previous, rows, 1.0
        ):
            self.version += 1
            return True
        return False

    def rows_for(self, key: str, data_version: int) -> Optional[float]:
        if self._data_version != data_version:
            return None
        return self._rows.get(key)


class StatsProvider:
    """Caches :class:`CollectionStats` per catalog data version.

    ``stats_for(name)`` returns None for unknown names, lazy values and
    non-collections; a replaced named value (which bumps
    ``catalog.data_version``) is re-sampled on next use.

    The provider also owns the :class:`FeedbackHints` the query store
    records observed cardinalities into; the planner reaches them via
    :meth:`feedback_rows` and plan caches invalidate on
    :attr:`feedback_version`.
    """

    def __init__(self, catalog) -> None:
        self._catalog = catalog
        self._cache: Dict[str, Tuple[int, Optional[CollectionStats]]] = {}
        self.feedback = FeedbackHints()

    def stats_for(self, name: str) -> Optional[CollectionStats]:
        version = self._catalog.data_version
        entry = self._cache.get(name)
        if entry is not None and entry[0] == version:
            return entry[1]
        if name not in self._catalog:
            stats = None
        else:
            stats = collect_stats(name, self._catalog[name])
        self._cache[name] = (version, stats)
        return stats

    # -- cardinality feedback ------------------------------------------

    @property
    def feedback_version(self) -> int:
        return self.feedback.version

    def feedback_rows(self, key: Optional[str]) -> Optional[float]:
        """The observed output rows for a plan shape, or None."""
        if key is None:
            return None
        return self.feedback.rows_for(
            key, getattr(self._catalog, "data_version", 0)
        )

    def record_feedback(self, key: Optional[str], rows: float) -> bool:
        """Record one observed cardinality; True when plans may change."""
        if key is None:
            return False
        return self.feedback.record(
            key, rows, getattr(self._catalog, "data_version", 0)
        )


def source_name(expr) -> Optional[str]:
    """The catalog name a FROM source expression scans, or None.

    Recognizes ``VarRef`` (``FROM users``) and dotted ``Path`` chains
    over a VarRef (``FROM hr.emp``) — the shapes the evaluator resolves
    against the catalog.
    """
    from repro.syntax import ast

    parts = []
    node = expr
    while isinstance(node, ast.Path):
        parts.append(node.attr)
        node = node.base
    if not isinstance(node, ast.VarRef):
        return None
    parts.append(node.name)
    return ".".join(reversed(parts))
