"""E6 — GROUP AS vs nested-subquery nesting (Section V-B).

"This pattern is more efficient and more intuitive than nested SELECT
VALUE queries when the required nesting is not based on the nesting of
the input."

Both formulations invert employees→projects into projects→employees:

* **group-as** — one grouping pass, groups exposed as data;
* **nested-subquery** — for each distinct project, a correlated
  subquery rescans the whole input (quadratic in the group count).

The bench asserts both give identical output and sweeps the number of
distinct groups; the expected shape is GROUP AS flat-ish, the rescan
formulation degrading as groups grow.
"""

import random

import pytest

from conftest import assert_same_bag, make_db

SIZE = 1_500
GROUP_COUNTS = [4, 40, 400]

GROUP_AS_QUERY = """
    FROM emps AS e, e.projects AS p
    GROUP BY p AS project GROUP AS g
    SELECT project AS project,
           (FROM g AS v SELECT VALUE v.e.name) AS members
"""

NESTED_SUBQUERY_QUERY = """
    SELECT VALUE {'project': project,
                  'members': (SELECT VALUE e.name
                              FROM emps AS e, e.projects AS q
                              WHERE q = project)}
    FROM (SELECT DISTINCT VALUE p FROM emps AS e, e.projects AS p) AS project
"""


def workload(group_count):
    rng = random.Random(17)
    projects = [f"proj-{i:04d}" for i in range(group_count)]
    return [
        {
            "id": i,
            "name": f"emp-{i}",
            "projects": rng.sample(projects, k=min(3, group_count)),
        }
        for i in range(SIZE)
    ]


@pytest.fixture(scope="module")
def equivalence_verified():
    db = make_db(emps=workload(40))
    assert_same_bag(
        db.execute(GROUP_AS_QUERY), db.execute(NESTED_SUBQUERY_QUERY)
    )
    return True


@pytest.mark.benchmark(group="E6-group-as")
@pytest.mark.parametrize("groups", GROUP_COUNTS)
def test_group_as(benchmark, groups, equivalence_verified):
    db = make_db(emps=workload(groups))
    benchmark(lambda: db.execute(GROUP_AS_QUERY))


@pytest.mark.benchmark(group="E6-group-as")
@pytest.mark.parametrize("groups", GROUP_COUNTS)
def test_nested_subquery(benchmark, groups, equivalence_verified):
    db = make_db(emps=workload(groups))
    benchmark(lambda: db.execute(NESTED_SUBQUERY_QUERY))
