"""An Amazon Ion *text subset* codec.

Ion is the third self-describing format the paper names (Section II).
This codec covers the part of Ion text that maps onto the SQL++ model:

* ``null`` (and typed nulls like ``null.int``) → NULL;
* booleans, integers, floats (incl. ``1e0`` notation);
* strings (double-quoted) and symbols (bare words → strings);
* lists ``[ ... ]`` → arrays;
* structs ``{ name: value, ... }`` → tuples (field names may be symbols
  or strings; duplicates preserved, as Ion allows);
* bags are written the AsterixDB way, as Ion lists annotated
  ``bag::[ ... ]`` (annotations other than ``bag`` are rejected).

S-expressions, blobs, clobs, timestamps and decimals are out of scope —
they have no counterpart in the paper's data model.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.datamodel.values import MISSING, Bag, Struct, type_name
from repro.errors import FormatError

_WORD_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$."
)


class _Reader:
    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    def error(self, message: str) -> FormatError:
        return FormatError(f"{message} (at offset {self._pos})")

    def skip_ws(self) -> None:
        while self._pos < len(self._text):
            char = self._text[self._pos]
            if char in " \t\r\n,":
                self._pos += 1
            elif self._text.startswith("//", self._pos):
                end = self._text.find("\n", self._pos)
                self._pos = len(self._text) if end < 0 else end
            elif self._text.startswith("/*", self._pos):
                end = self._text.find("*/", self._pos + 2)
                if end < 0:
                    raise self.error("unterminated comment")
                self._pos = end + 2
            else:
                return

    def peek(self) -> str:
        return self._text[self._pos] if self._pos < len(self._text) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self._pos += 1

    def at_end(self) -> bool:
        self.skip_ws()
        return self._pos >= len(self._text)

    # -- values -------------------------------------------------------------

    def read_value(self) -> Any:
        self.skip_ws()
        char = self.peek()
        if char == "[":
            return self._read_list()
        if char == "{":
            return self._read_struct()
        if char == '"':
            return self._read_string()
        if char == "'" and self._text.startswith("'''", self._pos):
            return self._read_long_string()
        if char and (char in "-+0123456789"):
            return self._read_number()
        word = self._read_word()
        if word is None:
            raise self.error("expected an Ion value")
        return self._word_value(word)

    def _word_value(self, word: str) -> Any:
        self.skip_ws()
        if self.peek() == ":" and self._text.startswith("::", self._pos):
            # annotation, e.g. bag::[...]
            self._pos += 2
            if word != "bag":
                raise self.error(f"unsupported Ion annotation {word!r}")
            value = self.read_value()
            if not isinstance(value, list):
                raise self.error("bag annotation must wrap a list")
            return Bag(value)
        if word == "null" or word.startswith("null."):
            return None
        if word == "true":
            return True
        if word == "false":
            return False
        return word  # a symbol reads as a string

    def _read_word(self) -> Optional[str]:
        start = self._pos
        while self._pos < len(self._text) and self._text[self._pos] in _WORD_CHARS:
            self._pos += 1
        if self._pos == start:
            return None
        return self._text[start : self._pos]

    def _read_number(self) -> Any:
        # NB: peek() returns "" at end of input, and ``"" in "0123"`` is
        # True in Python — every membership test must exclude "".
        digits = frozenset("0123456789")
        start = self._pos
        if self.peek() in ("+", "-"):
            self._pos += 1
        while self.peek() in digits:
            self._pos += 1
        is_float = False
        if self.peek() == ".":
            is_float = True
            self._pos += 1
            while self.peek() in digits:
                self._pos += 1
        if self.peek() in ("e", "E"):
            is_float = True
            self._pos += 1
            if self.peek() in ("+", "-"):
                self._pos += 1
            while self.peek() in digits:
                self._pos += 1
        text = self._text[start : self._pos]
        try:
            return float(text) if is_float else int(text)
        except ValueError:
            raise self.error(f"invalid number {text!r}") from None

    def _read_string(self) -> str:
        self.expect('"')
        parts: List[str] = []
        while True:
            if self._pos >= len(self._text):
                raise self.error("unterminated string")
            char = self._text[self._pos]
            if char == '"':
                self._pos += 1
                return "".join(parts)
            if char == "\\":
                self._pos += 1
                parts.append(self._read_escape())
            else:
                parts.append(char)
                self._pos += 1

    def _read_long_string(self) -> str:
        self._pos += 3
        end = self._text.find("'''", self._pos)
        if end < 0:
            raise self.error("unterminated long string")
        text = self._text[self._pos : end]
        self._pos = end + 3
        return text

    def _read_escape(self) -> str:
        escapes = {
            "n": "\n",
            "t": "\t",
            "r": "\r",
            '"': '"',
            "'": "'",
            "\\": "\\",
            "0": "\0",
            "/": "/",
        }
        char = self.peek()
        if char in escapes:
            self._pos += 1
            return escapes[char]
        if char == "u":
            self._pos += 1
            code = self._text[self._pos : self._pos + 4]
            if len(code) < 4:
                raise self.error("truncated unicode escape")
            self._pos += 4
            return chr(int(code, 16))
        raise self.error(f"unsupported escape \\{char}")

    def _read_list(self) -> list:
        self.expect("[")
        items: List[Any] = []
        while True:
            self.skip_ws()
            if self.peek() == "]":
                self._pos += 1
                return items
            items.append(self.read_value())

    def _read_struct(self) -> Struct:
        self.expect("{")
        pairs: List[Tuple[str, Any]] = []
        while True:
            self.skip_ws()
            if self.peek() == "}":
                self._pos += 1
                return Struct(pairs)
            if self.peek() == '"':
                name = self._read_string()
            elif self.peek() == "'":
                name = self._read_quoted_symbol()
            else:
                word = self._read_word()
                if word is None:
                    raise self.error("expected a field name")
                name = word
            self.skip_ws()
            self.expect(":")
            pairs.append((name, self.read_value()))

    def _read_quoted_symbol(self) -> str:
        self.expect("'")
        end = self._text.find("'", self._pos)
        if end < 0:
            raise self.error("unterminated quoted symbol")
        name = self._text[self._pos : end]
        self._pos = end + 1
        return name


def loads(text: str) -> Any:
    """Parse Ion text.  Multiple top-level values read as a bag."""
    reader = _Reader(text)
    values: List[Any] = []
    while not reader.at_end():
        values.append(reader.read_value())
    if not values:
        raise FormatError("empty Ion document")
    if len(values) == 1:
        return values[0]
    return Bag(values)


def dumps(value: Any) -> str:
    """Serialise a model value as Ion text."""
    parts: List[str] = []
    _write(value, parts)
    return "".join(parts)


def _write(value: Any, parts: List[str]) -> None:
    if value is MISSING:
        raise FormatError("MISSING cannot be serialised as Ion")
    if value is None:
        parts.append("null")
    elif value is True:
        parts.append("true")
    elif value is False:
        parts.append("false")
    elif isinstance(value, int):
        parts.append(str(value))
    elif isinstance(value, float):
        text = repr(value)
        if "e" not in text and "E" not in text and "." not in text:
            text += "e0"
        parts.append(text)
    elif isinstance(value, str):
        parts.append('"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"')
    elif isinstance(value, list):
        parts.append("[")
        for index, item in enumerate(value):
            if index:
                parts.append(", ")
            _write(item, parts)
        parts.append("]")
    elif isinstance(value, Bag):
        parts.append("bag::[")
        for index, item in enumerate(value):
            if index:
                parts.append(", ")
            _write(item, parts)
        parts.append("]")
    elif isinstance(value, Struct):
        parts.append("{")
        for index, (name, item) in enumerate(value.items()):
            if index:
                parts.append(", ")
            parts.append("'" + name + "': ")
            _write(item, parts)
        parts.append("}")
    else:
        raise FormatError(f"cannot serialise {type_name(value)} as Ion")
