"""The query store (docs/OBSERVABILITY.md "Query store & cardinality
feedback"): workload fingerprints, plan-change and latency-regression
detection, JSON-lines persistence with bounded retention and
corruption-tolerant reload, metrics tagging, and the Prometheus gauges.
"""

from __future__ import annotations

import json
import re

import pytest

from repro import Database
from repro.observability import (
    QueryStore,
    normalized_core_text,
    plan_hash,
    query_fingerprint,
)
from repro.observability.query_store import STORE_TEXT_LIMIT, StoreEntry


def build_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.set("r", [{"k": i % 10, "v": i} for i in range(100)])
    db.set("s", [{"k": i, "name": f"n{i}"} for i in range(10)])
    return db


# =========================================================================
# Fingerprints
# =========================================================================


class TestFingerprints:
    def test_literals_are_stripped(self):
        db = build_db()
        a = db.compile("SELECT r.v AS v FROM r AS r WHERE r.v > 10")
        b = db.compile("SELECT r.v AS v FROM r AS r WHERE r.v > 99")
        assert normalized_core_text(a) == normalized_core_text(b)
        assert query_fingerprint(a, "permissive", True, 1) == query_fingerprint(
            b, "permissive", True, 1
        )

    def test_struct_field_keys_survive_stripping(self):
        # Output column names are Literal nodes syntactically; renaming
        # one is a different query, not the same workload entry.
        db = build_db()
        a = db.compile("SELECT r.v AS total FROM r AS r")
        b = db.compile("SELECT r.v AS amount FROM r AS r")
        assert normalized_core_text(a) != normalized_core_text(b)

    def test_mode_dials_are_identity(self):
        db = build_db()
        core = db.compile("SELECT r.v AS v FROM r AS r")
        base = query_fingerprint(core, "permissive", True, 1)
        assert query_fingerprint(core, "strict", True, 1) != base
        assert query_fingerprint(core, "permissive", False, 1) != base
        assert query_fingerprint(core, "permissive", True, 2) != base

    def test_fingerprint_shape(self):
        db = build_db()
        core = db.compile("SELECT r.v AS v FROM r AS r")
        assert re.fullmatch(
            r"[0-9a-f]{16}", query_fingerprint(core, "permissive", True, 0)
        )

    def test_plan_hash_reference_sentinel(self):
        assert plan_hash(None) == "reference"


# =========================================================================
# Detection: plan changes and latency regressions
# =========================================================================


class TestDetection:
    def test_plan_change_detected(self):
        store = QueryStore()
        assert store.observe("fp1", "q", "aaa", "ok", 0.01, 5) == []
        assert store.observe("fp1", "q", "aaa", "ok", 0.01, 5) == []
        events = store.observe("fp1", "q", "bbb", "ok", 0.01, 5)
        assert events == ["plan-change"]
        assert store.plan_change_count == 1
        entry = store.entry("fp1")
        assert entry.plan_changes == 1
        assert entry.plan_hashes == {"aaa": 2, "bbb": 1}
        assert any(e["event"] == "plan-change" for e in store.events())

    def test_plan_change_is_per_fingerprint(self):
        store = QueryStore()
        store.observe("fp1", "q1", "aaa", "ok", 0.01, 1)
        assert store.observe("fp2", "q2", "bbb", "ok", 0.01, 1) == []
        assert store.plan_change_count == 0

    def test_latency_regression_needs_history(self):
        store = QueryStore(min_history=5, regression_factor=4.0)
        # Four fast runs: not enough history to trust the median.
        for _ in range(4):
            store.observe("fp1", "q", "aaa", "ok", 0.01, 1)
        assert store.observe("fp1", "q", "aaa", "ok", 10.0, 1) == []
        store2 = QueryStore(min_history=5, regression_factor=4.0)
        for _ in range(5):
            store2.observe("fp1", "q", "aaa", "ok", 0.01, 1)
        events = store2.observe("fp1", "q", "aaa", "ok", 10.0, 1)
        assert events == ["latency-regression"]
        assert store2.regression_count == 1
        assert store2.entry("fp1").regressions == 1

    def test_errors_do_not_pollute_latency(self):
        store = QueryStore(min_history=5)
        for _ in range(5):
            store.observe("fp1", "q", "aaa", "ok", 0.01, 1)
        store.observe("fp1", "q", "aaa", "error", 50.0, None)
        entry = store.entry("fp1")
        assert entry.errors == 1
        assert entry.latency.count == 5
        assert entry.rows_total == 5

    def test_qerror_history(self):
        store = QueryStore()
        store.observe("fp1", "q", "aaa", "ok", 0.01, 1, qerror=2.0)
        store.observe("fp1", "q", "aaa", "ok", 0.01, 1, qerror=8.0)
        store.observe("fp1", "q", "aaa", "ok", 0.01, 1, qerror=3.0)
        entry = store.entry("fp1")
        assert entry.max_qerror == 8.0
        assert entry.median_qerror() == 3.0

    def test_fingerprint_lru_eviction(self):
        store = QueryStore(max_fingerprints=3)
        for i in range(5):
            store.observe(f"fp{i}", "q", None, "ok", 0.01, 1)
        assert len(store) == 3
        assert store.entry("fp0") is None
        assert store.entry("fp4") is not None

    def test_query_text_bounded(self):
        store = QueryStore()
        store.observe("fp1", "x" * 1000, None, "ok", 0.01, 1)
        assert len(store.entry("fp1").query_text) == STORE_TEXT_LIMIT


# =========================================================================
# Feedback sampling policy
# =========================================================================


class TestFeedbackSampling:
    def test_wants_feedback_first_sight_then_data_change(self):
        store = QueryStore()
        assert store.wants_feedback("fp1", 7)
        store.mark_feedback("fp1", 7)
        assert not store.wants_feedback("fp1", 7)
        # Data changed under the same fingerprint: re-trace.
        assert store.wants_feedback("fp1", 8)


# =========================================================================
# Persistence
# =========================================================================


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = QueryStore(path=path)
        store.observe("fp1", "SELECT 1", "aaa", "ok", 0.25, 3, qerror=2.5)
        store.observe("fp1", "SELECT 1", "bbb", "ok", 0.5, 3)
        store.observe("fp2", "SELECT 2", "ccc", "error", 0.1, None)
        store.close()

        reloaded = QueryStore(path=path)
        try:
            entry = reloaded.entry("fp1")
            assert entry.executions == 2
            assert entry.plan_hashes == {"aaa": 1, "bbb": 1}
            assert entry.plan_changes == 1
            assert entry.max_qerror == 2.5
            assert entry.rows_total == 6
            assert reloaded.entry("fp2").errors == 1
            assert reloaded.plan_change_count == 1
        finally:
            reloaded.close()

    def test_bounded_retention_compacts_file(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = QueryStore(path=path, max_records=8)
        for i in range(40):
            store.observe(f"fp{i}", f"q{i}", None, "ok", 0.01, 1)
        store.close()
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        # Compaction keeps the file within 2x the retention bound.
        assert len(lines) <= 16
        reloaded = QueryStore(path=path, max_records=8)
        try:
            # Only the newest records survive; the oldest are gone.
            assert reloaded.entry("fp0") is None
            assert reloaded.entry("fp39") is not None
        finally:
            reloaded.close()

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        good1 = json.dumps(
            {"fp": "fp1", "q": "q1", "plan": "aaa", "status": "ok",
             "total_s": 0.1, "rows": 2, "qerr": None, "at": 1.0}
        )
        good2 = json.dumps(
            {"fp": "fp2", "q": "q2", "plan": None, "status": "ok",
             "total_s": 0.2, "rows": 1, "qerr": 1.5, "at": 2.0}
        )
        torn = good2[: len(good2) // 2]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(good1 + "\n")
            handle.write("not json at all\n")
            handle.write(json.dumps({"fp": 42}) + "\n")
            handle.write(good2 + "\n")
            handle.write(torn + "\n")
        store = QueryStore(path=path)
        try:
            assert len(store) == 2
            assert store.entry("fp1").rows_total == 2
            assert store.entry("fp2").max_qerror == 1.5
        finally:
            store.close()

    def test_missing_file_is_fine(self, tmp_path):
        store = QueryStore(path=str(tmp_path / "absent.jsonl"))
        try:
            assert len(store) == 0
            store.observe("fp1", "q", None, "ok", 0.01, 1)
        finally:
            store.close()


# =========================================================================
# Database integration
# =========================================================================


class TestDatabaseIntegration:
    def test_metrics_tagged_with_fingerprint_and_plan_hash(self):
        db = build_db()
        db.execute("SELECT r.v AS v FROM r AS r WHERE r.v > 10")
        metrics = db.metrics.last
        assert re.fullmatch(r"[0-9a-f]{16}", metrics.fingerprint)
        assert metrics.plan_hash is not None
        record = metrics.to_dict()
        assert record["fingerprint"] == metrics.fingerprint
        assert record["plan_hash"] == metrics.plan_hash

    def test_same_workload_same_fingerprint(self):
        db = build_db()
        db.execute("SELECT r.v AS v FROM r AS r WHERE r.v > 10")
        first = db.metrics.last.fingerprint
        db.execute("SELECT r.v AS v FROM r AS r WHERE r.v > 77")
        assert db.metrics.last.fingerprint == first
        entry = db.query_store().entry(first)
        assert entry.executions == 2

    def test_store_disabled(self):
        db = build_db(query_store=False)
        assert db.query_store() is None
        db.execute("SELECT r.v AS v FROM r AS r")
        assert db.metrics.last.fingerprint is None
        assert db.metrics.last.plan_hash is None

    def test_store_path_persists_across_databases(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        db = build_db(query_store=path)
        db.execute("SELECT r.v AS v FROM r AS r")
        fingerprint = db.metrics.last.fingerprint
        db.close()
        db2 = build_db(query_store=path)
        try:
            assert db2.query_store().entry(fingerprint).executions == 1
        finally:
            db2.close()

    def test_errors_are_recorded(self):
        db = build_db()
        with pytest.raises(Exception):
            db.execute("SELECT r.v AS v FROM r AS r WHERE r.v +", ())
        store = db.query_store()
        # Parse errors never reach fingerprinting (no Core AST), so the
        # store only sees compiled executions.
        db.execute("SELECT r.v AS v FROM r AS r")
        assert len(store) >= 1

    def test_report_text(self):
        db = build_db()
        query = "SELECT r.v AS v FROM r AS r WHERE r.v > 10"
        db.execute(query)
        db.execute(query)
        report = db.query_store().report()
        assert report.startswith("query store: 1 fingerprint(s)")
        assert "calls=2" in report
        assert query in report

    def test_store_gauges_exported(self):
        db = build_db()
        db.execute("SELECT r.v AS v FROM r AS r WHERE r.v > 10")
        text = db.metrics.expose_text()
        assert "repro_query_store_fingerprints 1" in text
        assert "repro_query_store_plan_changes_total" in text
        assert "repro_query_store_latency_regressions_total" in text
        assert "repro_query_store_max_qerror" in text

    def test_explain_analyze_does_not_hijack_feedback_tracer(self):
        # A user-supplied tracer must never be replaced by the store's
        # feedback tracer; EXPLAIN ANALYZE keeps full timing.
        db = build_db()
        out = db.explain_analyze("SELECT r.v AS v FROM r AS r WHERE r.v > 10")
        assert "time=" in out


class TestStoreEntrySummary:
    def test_summary_fields(self):
        entry = StoreEntry("fp1", "SELECT 1")
        entry.executions = 2
        summary = entry.summary()
        assert summary["fingerprint"] == "fp1"
        assert summary["executions"] == 2
        assert "p50_s" in summary and "median_qerror" in summary
