"""Metamorphic properties of the Core evaluator.

Each property relates two formulations that must agree for *any* input
data, catching whole classes of pipeline bugs without hand-written
expectations.
"""

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag

rows = st.lists(
    st.builds(
        lambda i, k, v, tags: {"id": i, "k": k, "v": v, "tags": tags},
        st.integers(0, 99),
        st.sampled_from(["a", "b", "c"]),
        st.one_of(st.none(), st.integers(-50, 50)),
        st.lists(st.sampled_from(["x", "y", "z"]), max_size=3),
    ),
    max_size=14,
)


def make_db(data):
    db = Database()
    db.set("t", data)
    return db


def as_bag(result):
    return Bag(list(result))


@given(rows)
@settings(max_examples=50, deadline=None)
def test_conjunctive_where_splits(data):
    """WHERE p AND q ≡ filtering by p then by q (pure predicates)."""
    db = make_db(data)
    combined = db.execute("SELECT VALUE r FROM t AS r WHERE r.v > 0 AND r.k = 'a'")
    staged = db.execute(
        "SELECT VALUE s FROM (SELECT VALUE r FROM t AS r WHERE r.v > 0) AS s "
        "WHERE s.k = 'a'"
    )
    assert deep_equals(as_bag(combined), as_bag(staged))


@given(rows)
@settings(max_examples=50, deadline=None)
def test_select_distributes_over_union_all(data):
    """Projecting a UNION ALL ≡ UNION ALL of the projections."""
    db = make_db(data)
    outside = db.execute(
        "SELECT VALUE s.k FROM "
        "((SELECT VALUE r FROM t AS r WHERE r.v > 0) UNION ALL "
        " (SELECT VALUE r FROM t AS r WHERE r.v <= 0)) AS s"
    )
    inside = db.execute(
        "(SELECT VALUE r.k FROM t AS r WHERE r.v > 0) UNION ALL "
        "(SELECT VALUE r.k FROM t AS r WHERE r.v <= 0)"
    )
    assert deep_equals(as_bag(outside), as_bag(inside))


@given(rows)
@settings(max_examples=50, deadline=None)
def test_where_partition_is_lossless(data):
    """p-rows plus not-p-rows plus unknown-p-rows = all rows."""
    db = make_db(data)
    true_side = list(db.execute("SELECT VALUE r FROM t AS r WHERE r.v > 0"))
    false_side = list(db.execute("SELECT VALUE r FROM t AS r WHERE NOT (r.v > 0)"))
    unknown = list(
        db.execute("SELECT VALUE r FROM t AS r WHERE (r.v > 0) IS NULL")
    )
    everything = list(db.execute("SELECT VALUE r FROM t AS r"))
    assert deep_equals(
        Bag(true_side + false_side + unknown), Bag(everything)
    )


@given(rows)
@settings(max_examples=50, deadline=None)
def test_group_counts_partition_input(data):
    """Σ per-group COUNT(*) = total binding count."""
    db = make_db(data)
    per_group = db.execute(
        "SELECT VALUE COUNT(*) FROM t AS r GROUP BY r.k"
    )
    total = db.execute("COLL_SUM(SELECT VALUE n FROM (SELECT VALUE COUNT(*) "
                       "FROM t AS r GROUP BY r.k) AS n)")
    if data:
        assert total == len(data)
        assert sum(per_group) == len(data)
    else:
        assert list(per_group) == []


@given(rows, st.integers(0, 20))
@settings(max_examples=50, deadline=None)
def test_limit_after_order_is_prefix(data, limit):
    """LIMIT n of an ordered query = first n of the full ordering."""
    db = make_db(data)
    full = db.execute("SELECT VALUE r.id FROM t AS r ORDER BY r.id, r.v")
    limited = db.execute(
        f"SELECT VALUE r.id FROM t AS r ORDER BY r.id, r.v LIMIT {limit}"
    )
    assert limited == full[:limit]


@given(rows)
@settings(max_examples=50, deadline=None)
def test_unnest_count_equals_sum_of_lengths(data):
    """Unnesting produces exactly Σ len(tags) bindings."""
    db = make_db(data)
    unnested = db.execute("SELECT VALUE g FROM t AS r, r.tags AS g")
    assert len(list(unnested)) == sum(len(row["tags"]) for row in data)


@given(rows)
@settings(max_examples=50, deadline=None)
def test_distinct_idempotent(data):
    db = make_db(data)
    once = db.execute("SELECT DISTINCT VALUE r.k FROM t AS r")
    twice = db.execute(
        "SELECT DISTINCT VALUE s FROM "
        "(SELECT DISTINCT VALUE r.k FROM t AS r) AS s"
    )
    assert deep_equals(as_bag(once), as_bag(twice))


@given(rows)
@settings(max_examples=50, deadline=None)
def test_except_then_union_restores_subset(data):
    """(t EXCEPT ALL s) UNION ALL s ≡ t when s ⊆ t (as multisets)."""
    db = make_db(data)
    result = db.execute(
        "((SELECT VALUE r FROM t AS r) EXCEPT ALL "
        " (SELECT VALUE r FROM t AS r WHERE r.k = 'a')) "
        "UNION ALL (SELECT VALUE r FROM t AS r WHERE r.k = 'a')"
    )
    everything = db.execute("SELECT VALUE r FROM t AS r")
    assert deep_equals(as_bag(result), as_bag(everything))


@given(rows)
@settings(max_examples=40, deadline=None)
def test_core_and_compat_agree_on_explicit_queries(data):
    """A fully-explicit Core query is mode-independent."""
    db = make_db(data)
    query = (
        "FROM t AS r WHERE r.v > 0 "
        "GROUP BY r.k AS k GROUP AS g "
        "SELECT VALUE {'k': k, "
        "'n': COLL_COUNT(SELECT VALUE 1 FROM g AS x)}"
    )
    assert deep_equals(
        as_bag(db.execute(query, sql_compat=True)),
        as_bag(db.execute(query, sql_compat=False)),
    )
