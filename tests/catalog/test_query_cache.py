"""The Database LRU parse+rewrite cache.

Repeated query texts must reuse the compiled Core AST; any change the
rewriter can observe — either language dial, the set of catalog names,
or a schema — must miss; the cache stays bounded.
"""

from __future__ import annotations

from repro import Database
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag


QUERY = "SELECT r.v AS v FROM t AS r WHERE r.v > 1"


def make_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.set("t", [{"v": 1}, {"v": 2}, {"v": 3}])
    return db


class TestCompileCache:
    def test_repeat_compile_returns_same_ast_object(self):
        db = make_db()
        assert db.compile(QUERY) is db.compile(QUERY)

    def test_cached_execution_still_correct(self):
        db = make_db()
        first = db.execute(QUERY)
        second = db.execute(QUERY)
        assert deep_equals(Bag(list(first)), Bag(list(second)))
        assert len(second) == 2

    def test_language_dials_cached_separately(self):
        db = make_db()
        compat = db.compile("SELECT r.v FROM t AS r")
        core = db.compile("SELECT r.v FROM t AS r", sql_compat=False)
        assert compat is not core
        strict = db.compile(QUERY, typing_mode="strict")
        assert strict is not db.compile(QUERY)

    def test_catalog_name_set_change_invalidates(self):
        db = make_db()
        before = db.compile(QUERY)
        # Replacing an existing name keeps the name set: still a hit.
        db.set("t", [{"v": 9}])
        assert db.compile(QUERY) is before
        # A new name changes what dotted-name resolution can see: miss.
        db.set("u", [])
        after = db.compile(QUERY)
        assert after is not before
        # Rewriting is deterministic, so recompiling is harmless.
        assert len(db.execute(QUERY)) == 1

    def test_drop_invalidates(self):
        db = make_db()
        db.set("u", [])
        before = db.compile(QUERY)
        db.drop("u")
        assert db.compile(QUERY) is not before

    def test_schema_change_invalidates(self):
        db = make_db()
        before = db.compile(QUERY)
        db.set_schema("t", "BAG<STRUCT<v INT>>")
        assert db.compile(QUERY) is not before

    def test_cache_is_bounded(self):
        db = make_db()
        for index in range(db.COMPILE_CACHE_SIZE + 10):
            db.compile(f"SELECT VALUE {index}")
        assert len(db._compile_cache) <= db.COMPILE_CACHE_SIZE

    def test_lru_evicts_oldest_not_hottest(self):
        db = make_db()
        hot = db.compile(QUERY)
        for index in range(db.COMPILE_CACHE_SIZE - 1):
            db.compile(f"SELECT VALUE {index}")
            db.compile(QUERY)  # keep the hot entry recent
        assert db.compile(QUERY) is hot


REWRITABLE = (
    "SELECT r.v AS v FROM t AS r WHERE r.v = 1 OR r.v = 2 OR r.v = 3"
)


class TestRewriteCacheKey:
    """The semantic rewrite registry participates in the cache key:
    bumping ``REGISTRY_VERSION`` invalidates cached rewritten queries
    exactly once, and per-query ``rewrite=False`` compiles into its own
    entry rather than poisoning (or being poisoned by) the default."""

    def test_registry_version_bump_invalidates_exactly_once(
        self, monkeypatch
    ):
        from repro.core import rewrite_rules

        db = make_db()
        db.execute(REWRITABLE)
        before = db.compile(REWRITABLE)
        monkeypatch.setattr(rewrite_rules, "REGISTRY_VERSION", 2)
        misses = db.metrics.counters["compile_cache_misses"]
        after = db.compile(REWRITABLE)
        assert after is not before
        # Exactly one miss for the bump; the recompiled entry is a hit
        # thereafter.
        assert (
            db.metrics.counters["compile_cache_misses"] == misses + 1
        )
        assert db.compile(REWRITABLE) is after
        assert (
            db.metrics.counters["compile_cache_misses"] == misses + 1
        )

    def test_per_query_rewrite_disable_is_a_distinct_entry(self):
        db = make_db()
        on = db.execute(REWRITABLE, rewrite=True)
        misses = db.metrics.counters["compile_cache_misses"]
        off = db.execute(REWRITABLE, rewrite=False)
        assert db.metrics.counters["compile_cache_misses"] == misses + 1
        # Both dials now hit their own entries.
        db.execute(REWRITABLE, rewrite=True)
        db.execute(REWRITABLE, rewrite=False)
        assert db.metrics.counters["compile_cache_misses"] == misses + 1
        from repro.datamodel.equality import deep_equals as eq

        assert eq(Bag(list(on)), Bag(list(off)))

    def test_registry_version_ignored_when_rewrites_off(self, monkeypatch):
        from repro.core import rewrite_rules

        db = make_db(rewrite=False)
        before = db.compile(REWRITABLE)
        monkeypatch.setattr(rewrite_rules, "REGISTRY_VERSION", 99)
        # With the registry off the version cannot affect the compiled
        # Core, so the cached entry must survive the bump.
        assert db.compile(REWRITABLE) is before
