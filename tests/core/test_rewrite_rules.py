"""The semantic rewrite registry (docs/REWRITER.md).

Per rule: a fire case, no-fire cases sitting exactly at the safety
boundary, and the NULL/MISSING hazards each rule guards against.  Plus
the registry's surfaces: EXPLAIN's ``rewrites:`` line,
``explain_rewrites``, QueryMetrics / Prometheus exposition, and the
lint catalog's ``fixable`` cross-references.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.config import EvalConfig
from repro.core import rewrite_rules
from repro.core.rewrite_rules import apply_rules
from repro.core.rewriter import rewrite_query
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import MISSING, Bag
from repro.syntax.parser import parse
from repro.syntax.printer import print_ast

CUSTOMERS = [
    {"id": 1, "name": "ann"},
    {"id": 2, "name": "bob"},
    {"id": 3, "name": "cat"},
    {"id": None, "name": "nul"},
    {"name": "mis"},  # id MISSING
]
ORDERS = [
    {"cust": 1, "amt": 10},
    {"cust": 1, "amt": 5},
    {"cust": 3, "amt": 7},
    {"cust": None, "amt": 99},
    {"amt": 42},  # cust MISSING
]


def make_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.set("customers", CUSTOMERS)
    db.set("orders", ORDERS)
    return db


def fired_codes(
    query: str, config: EvalConfig = None, catalog_names=("customers", "orders")
):
    """The rewrite codes the registry fires on a query's Core form."""
    config = config if config is not None else EvalConfig()
    core = rewrite_query(parse(query), config, catalog_names=catalog_names)
    rewritten, fired = apply_rules(core, config)
    return rewritten, [result.code for result in fired]


def assert_same_result(db: Database, query: str, **dials) -> None:
    """Results with the registry on and off must be indistinguishable."""
    on = db.execute(query, rewrite=True, **dials)
    off = db.execute(query, rewrite=False, **dials)
    if isinstance(on, (list, Bag)):
        assert deep_equals(Bag(list(on)), Bag(list(off)))
    else:
        assert deep_equals(on, off)


EXISTS_QUERY = (
    "SELECT VALUE c.name FROM customers AS c "
    "WHERE EXISTS (SELECT VALUE o FROM orders AS o WHERE o.cust = c.id)"
)


class TestR01ExistsToSemijoin:
    def test_fires_and_preserves_result(self):
        rewritten, codes = fired_codes(EXISTS_QUERY)
        assert codes == ["SQLPPR01"]
        assert "DISTINCT" in print_ast(rewritten)
        db = make_db()
        result = db.execute(EXISTS_QUERY)
        assert deep_equals(Bag(list(result)), Bag(["ann", "cat"]))
        assert_same_result(db, EXISTS_QUERY)

    def test_missing_guard_emitted_without_schema(self):
        rewritten, codes = fired_codes(EXISTS_QUERY)
        assert codes == ["SQLPPR01"]
        assert "IS NOT MISSING" in print_ast(rewritten)

    def test_typeflow_proof_drops_guard(self):
        db = Database()
        db.set("customers", [{"id": 1, "name": "ann"}])
        db.set("orders", [{"cust": 1, "amt": 10}, {"cust": 2, "amt": 5}])
        db.set_schema("orders", "BAG<STRUCT<cust INT, amt INT>>")
        text = db.explain_rewrites(EXISTS_QUERY)
        assert "proved non-MISSING" in text
        assert "IS NOT MISSING" not in text

    def test_multiplicity_preserved_with_duplicate_inner_keys(self):
        # Customer 1 has two orders; the semi-join's DISTINCT must not
        # double the outer row.
        db = make_db()
        rows = db.execute(
            "SELECT VALUE c.id FROM customers AS c WHERE EXISTS "
            "(SELECT VALUE o FROM orders AS o WHERE o.cust = c.id)"
        )
        assert sorted(rows) == [1, 3]

    def test_no_fire_in_strict_mode(self):
        config = EvalConfig(typing_mode="strict", sql_compat=False)
        __, codes = fired_codes(EXISTS_QUERY, config)
        assert codes == []

    def test_no_fire_on_correlated_source(self):
        # The subquery *ranges over* an outer expression: no clean split.
        __, codes = fired_codes(
            "SELECT VALUE c.name FROM customers AS c "
            "WHERE EXISTS (SELECT VALUE o FROM c.orders AS o "
            "WHERE o.cust = c.id)"
        )
        assert codes == []

    def test_no_fire_on_two_correlated_conjuncts(self):
        __, codes = fired_codes(
            "SELECT VALUE c.name FROM customers AS c "
            "WHERE EXISTS (SELECT VALUE o FROM orders AS o "
            "WHERE o.cust = c.id AND o.amt = c.id)"
        )
        assert codes == []

    def test_no_fire_with_inner_limit(self):
        __, codes = fired_codes(
            "SELECT VALUE c.name FROM customers AS c "
            "WHERE EXISTS (SELECT VALUE o FROM orders AS o "
            "WHERE o.cust = c.id LIMIT 1)"
        )
        assert codes == []

    def test_no_fire_under_select_star(self):
        # SELECT * would splice the synthesized join binding into the
        # output.
        __, codes = fired_codes(
            "SELECT * FROM customers AS c "
            "WHERE EXISTS (SELECT VALUE o FROM orders AS o "
            "WHERE o.cust = c.id)"
        )
        assert codes == []

    def test_in_subquery_probe_fires(self):
        query = (
            "SELECT VALUE c.name FROM customers AS c "
            "WHERE c.id IN (SELECT VALUE o.cust FROM orders AS o)"
        )
        __, codes = fired_codes(query)
        assert codes == ["SQLPPR01"]
        db = make_db()
        assert deep_equals(
            Bag(list(db.execute(query))), Bag(["ann", "cat"])
        )
        assert_same_result(db, query)

    def test_not_in_never_fires(self):
        # NOT IN's unknown bookkeeping is not semi-joinable.
        query = (
            "SELECT VALUE c.name FROM customers AS c "
            "WHERE c.id NOT IN (SELECT VALUE o.cust FROM orders AS o)"
        )
        __, codes = fired_codes(query)
        assert codes == []


SCALAR_QUERY = (
    "SELECT c.name AS n, (SELECT SUM(o.amt) FROM orders AS o "
    "WHERE o.cust = c.id) AS total FROM customers AS c"
)


class TestR02DecorrelateScalar:
    def test_fires_and_preserves_result(self):
        __, codes = fired_codes(SCALAR_QUERY)
        assert codes == ["SQLPPR02"]
        db = make_db()
        rows = db.execute(SCALAR_QUERY)
        by_name = {row["n"]: row["total"] for row in rows}
        assert by_name["ann"] == 15
        assert by_name["cat"] == 7
        # Empty group: SUM coerces to NULL — the LEFT join's padding
        # must reproduce it, not MISSING.
        assert by_name["bob"] is None
        assert by_name["nul"] is None
        assert by_name["mis"] is None
        assert_same_result(db, SCALAR_QUERY)

    def test_count_empty_group_is_zero(self):
        query = (
            "SELECT c.name AS n, (SELECT COUNT(o.amt) FROM orders AS o "
            "WHERE o.cust = c.id) AS cnt FROM customers AS c"
        )
        __, codes = fired_codes(query)
        assert codes == ["SQLPPR02"]
        db = make_db()
        by_name = {row["n"]: row["cnt"] for row in db.execute(query)}
        assert by_name == {"ann": 2, "bob": 0, "cat": 1, "nul": 0, "mis": 0}
        assert_same_result(db, query)

    def test_no_fire_in_strict_mode(self):
        config = EvalConfig(typing_mode="strict")
        __, codes = fired_codes(SCALAR_QUERY, config)
        assert codes == []

    def test_no_fire_on_grouped_outer_block(self):
        __, codes = fired_codes(
            "SELECT c.name AS n, (SELECT SUM(o.amt) FROM orders AS o "
            "WHERE o.cust = c.id) AS total FROM customers AS c "
            "GROUP BY c.name"
        )
        assert "SQLPPR02" not in codes

    def test_no_fire_on_uncorrelated_scalar(self):
        __, codes = fired_codes(
            "SELECT c.name AS n, (SELECT SUM(o.amt) FROM orders AS o) "
            "AS total FROM customers AS c"
        )
        assert "SQLPPR02" not in codes


OR_QUERY = (
    "SELECT VALUE c.name FROM customers AS c "
    "WHERE c.id = 1 OR c.id = 2 OR c.id = 3"
)


class TestR03OrToIn:
    def test_fires_and_preserves_result(self):
        rewritten, codes = fired_codes(OR_QUERY)
        assert codes == ["SQLPPR03"]
        assert "IN [1, 2, 3]" in print_ast(rewritten)
        db = make_db()
        assert deep_equals(
            Bag(list(db.execute(OR_QUERY))), Bag(["ann", "bob", "cat"])
        )
        assert_same_result(db, OR_QUERY)

    def test_fires_in_strict_mode_same_category(self):
        config = EvalConfig(typing_mode="strict")
        __, codes = fired_codes(OR_QUERY, config)
        assert codes == ["SQLPPR03"]

    def test_strict_mode_rejects_mixed_categories(self):
        # 3VL OR evaluates every disjunct; a later mismatched = raises
        # in strict mode where IN's early return would not.
        query = (
            "SELECT VALUE c.name FROM customers AS c "
            "WHERE c.id = 1 OR c.id = 'two' OR c.id = 3"
        )
        __, strict_codes = fired_codes(query, EvalConfig(typing_mode="strict"))
        assert strict_codes == []
        __, permissive_codes = fired_codes(query)
        assert permissive_codes == ["SQLPPR03"]

    def test_no_fire_below_minimum_chain(self):
        __, codes = fired_codes(
            "SELECT VALUE c.name FROM customers AS c "
            "WHERE c.id = 1 OR c.id = 2"
        )
        assert codes == []

    def test_no_fire_on_null_literal(self):
        __, codes = fired_codes(
            "SELECT VALUE c.name FROM customers AS c "
            "WHERE c.id = 1 OR c.id = 2 OR c.id = NULL"
        )
        assert codes == []

    def test_no_fire_on_differing_operands(self):
        __, codes = fired_codes(
            "SELECT VALUE c.name FROM customers AS c "
            "WHERE c.id = 1 OR c.id = 2 OR c.name = 'x'"
        )
        assert codes == []

    def test_absent_operand_rows_dropped_either_way(self):
        # NULL id: OR folds to NULL; MISSING id: IN yields MISSING.
        # Both are not-TRUE, so the rows drop on both paths.
        db = make_db()
        on = db.execute(OR_QUERY, rewrite=True)
        off = db.execute(OR_QUERY, rewrite=False)
        assert deep_equals(Bag(list(on)), Bag(list(off)))
        assert "nul" not in list(on) and "mis" not in list(on)


CSE_QUERY = (
    "SELECT VALUE [(SELECT VALUE o.amt FROM orders AS o "
    "WHERE o.cust = c.id), (SELECT VALUE o.amt FROM orders AS o "
    "WHERE o.cust = c.id)] FROM customers AS c"
)


class TestR04CseToLet:
    def test_fires_and_preserves_result(self):
        rewritten, codes = fired_codes(CSE_QUERY)
        assert "SQLPPR04" in codes
        assert "LET" in print_ast(rewritten)
        db = make_db()
        assert_same_result(db, CSE_QUERY)

    def test_no_fire_in_strict_mode(self):
        config = EvalConfig(typing_mode="strict")
        __, codes = fired_codes(CSE_QUERY, config)
        assert "SQLPPR04" not in codes

    def test_no_fire_when_single_occurrence(self):
        __, codes = fired_codes(
            "SELECT VALUE (SELECT VALUE o.amt FROM orders AS o "
            "WHERE o.cust = c.id) FROM customers AS c"
        )
        assert "SQLPPR04" not in codes

    def test_no_fire_select_only_past_selective_where(self):
        # Both occurrences sit in the SELECT and a WHERE exists: the
        # LET would evaluate the subquery for rows the WHERE discards.
        __, codes = fired_codes(
            "SELECT VALUE [(SELECT VALUE o.amt FROM orders AS o "
            "WHERE o.cust = c.id), (SELECT VALUE o.amt FROM orders AS o "
            "WHERE o.cust = c.id)] FROM customers AS c WHERE c.id = 1"
        )
        assert "SQLPPR04" not in codes

    def test_no_fire_when_occurrences_conditional(self):
        # Occurrences under CASE branches may never evaluate; hoisting
        # would force them.
        __, codes = fired_codes(
            "SELECT VALUE (CASE WHEN c.id = 1 THEN (SELECT VALUE o.amt "
            "FROM orders AS o) ELSE (SELECT VALUE o.amt FROM orders AS o) "
            "END) FROM customers AS c"
        )
        assert "SQLPPR04" not in codes


class TestRegistrySurfaces:
    def test_disabled_registry_fires_nothing(self):
        config = EvalConfig(rewrite=False)
        core = rewrite_query(
            parse(OR_QUERY), config, catalog_names=("customers",)
        )
        rewritten, fired = apply_rules(core, config)
        assert rewritten is core
        assert fired == ()

    def test_optimize_off_implies_no_rewrites(self):
        config = EvalConfig(optimize=False)
        core = rewrite_query(
            parse(OR_QUERY), config, catalog_names=("customers",)
        )
        __, fired = apply_rules(core, config)
        assert fired == ()

    def test_explain_plan_reports_firings(self):
        db = make_db()
        text = db.explain_plan(EXISTS_QUERY)
        assert "rewrites: SQLPPR01 exists-to-semijoin x1" in text

    def test_explain_plan_reports_none(self):
        db = make_db()
        text = db.explain_plan("SELECT VALUE c.id FROM customers AS c")
        assert "rewrites: none" in text

    def test_explain_analyze_reports_firings(self):
        db = make_db()
        text = db.explain_analyze(EXISTS_QUERY)
        assert "rewrites: SQLPPR01 exists-to-semijoin x1" in text

    def test_explain_rewrites_shows_pre_post_and_safety(self):
        db = make_db()
        text = db.explain_rewrites(EXISTS_QUERY)
        assert text.startswith("pre:  ")
        assert "post: " in text
        assert "SQLPPR01 exists-to-semijoin:" in text
        assert "  - " in text  # at least one safety condition

    def test_explain_rewrites_none_applicable(self):
        db = make_db()
        text = db.explain_rewrites("SELECT VALUE c.id FROM customers AS c")
        assert "rewrites: none applicable" in text

    def test_explain_rewrites_disabled(self):
        db = make_db(rewrite=False)
        text = db.explain_rewrites(OR_QUERY)
        assert "rewrites: disabled" in text

    def test_metrics_record_rewrites(self):
        db = make_db()
        db.execute(OR_QUERY)
        assert db.metrics.last.rewrites == ["SQLPPR03"]
        assert db.metrics.last.to_dict()["rewrites"] == ["SQLPPR03"]

    def test_metrics_filled_on_cache_hit(self):
        db = make_db()
        db.execute(OR_QUERY)
        db.execute(OR_QUERY)
        assert db.metrics.last.cache_hit
        assert db.metrics.last.rewrites == ["SQLPPR03"]

    def test_prometheus_family(self):
        db = make_db()
        db.execute(OR_QUERY)
        db.execute(OR_QUERY)
        text = db.metrics.expose_text()
        assert 'repro_rewrites_fired_total{rule="SQLPPR03"} 2' in text
        # Not duplicated by the ad-hoc counter fallback.
        assert "repro_rewrites_fired:" not in text

    def test_describe_rules_lists_every_rule(self):
        text = rewrite_rules.describe_rules()
        for rule in rewrite_rules.RULES:
            assert rule.code in text
            assert rule.lint_code in text

    def test_fingerprint_taken_pre_rewrite(self):
        # The query-store fingerprint must survive registry upgrades:
        # the same text fingerprints identically with rewrites on/off.
        db = make_db()
        db.execute(OR_QUERY, rewrite=True)
        on = db.metrics.last.fingerprint
        db.execute(OR_QUERY, rewrite=False)
        off = db.metrics.last.fingerprint
        assert on is not None and on == off


class TestLintIntegration:
    def test_lint_codes_cross_reference_registry(self):
        from repro.analysis.rules import RULES as LINT_RULES

        for rule in rewrite_rules.RULES:
            lint_rule = LINT_RULES[rule.lint_code]
            assert lint_rule.fixable == rule.code
            assert lint_rule.severity == "info"

    def test_check_reports_fixable_rewrite(self):
        db = make_db()
        findings = db.check(OR_QUERY)
        by_code = {d.code: d for d in findings}
        assert "SQLPP110" in by_code
        assert by_code["SQLPP110"].fixable == "SQLPPR03"
        assert by_code["SQLPP110"].to_dict()["fixable"] == "SQLPPR03"

    def test_check_reports_exists_rewrite(self):
        db = make_db()
        findings = db.check(EXISTS_QUERY)
        assert any(
            d.code == "SQLPP111" and d.fixable == "SQLPPR01"
            for d in findings
        )


class TestSynthesizedSpans:
    """Every node a rule synthesizes must carry a source span pointing
    at the user's sugar, so SQLPP11x findings, verifier reports, and
    runtime errors over rewritten trees stay attributable.  Pinned both
    directly (walking the rewritten tree) and through the structural
    verifier's span check (docs/ANALYZER.md)."""

    FIRING_QUERIES = {
        "SQLPPR01": EXISTS_QUERY,
        "SQLPPR02": SCALAR_QUERY,
        "SQLPPR03": OR_QUERY,
        "SQLPPR04": CSE_QUERY,
    }

    @pytest.mark.parametrize("code", sorted(FIRING_QUERIES))
    def test_every_synthesized_node_is_stamped(self, code):
        config = EvalConfig()
        core = rewrite_query(
            parse(self.FIRING_QUERIES[code]),
            config,
            catalog_names=("customers", "orders"),
        )
        rewritten, fired = apply_rules(core, config)
        assert code in [result.code for result in fired]
        original = {id(node) for node in core.walk()}
        unstamped = [
            node
            for node in rewritten.walk()
            if id(node) not in original and node.line is None
        ]
        assert unstamped == []

    @pytest.mark.parametrize("code", sorted(FIRING_QUERIES))
    def test_verifier_accepts_rewrite_output(self, code):
        from repro.analysis.verify_plan import verify_rewrite

        config = EvalConfig()
        core = rewrite_query(
            parse(self.FIRING_QUERIES[code]),
            config,
            catalog_names=("customers", "orders"),
        )
        rewritten, fired = apply_rules(core, config)
        assert verify_rewrite(
            core, rewritten, fired, ["customers", "orders"]
        ) == []

    def test_spans_point_at_the_sugar(self):
        # The EXISTS conjunct starts after "WHERE " on the query's one
        # line; the synthesized semi-join subtree must carry its span.
        config = EvalConfig()
        core = rewrite_query(
            parse(EXISTS_QUERY),
            config,
            catalog_names=("customers", "orders"),
        )
        where = core.body.where
        rewritten, fired = apply_rules(core, config)
        assert fired and fired[0].line == where.line
        original = {id(node) for node in core.walk()}
        synthesized = [
            node
            for node in rewritten.walk()
            if id(node) not in original and node.line is not None
        ]
        assert synthesized
        assert {node.line for node in synthesized} <= {
            node.line for node in core.walk() if node.line is not None
        }
