"""CSV codec.

CSV is the degenerate flat case of the SQL++ model: a bag of tuples of
scalars.  Reading infers scalar types by default (integers, floats,
booleans, ``null`` → NULL) and maps *empty* fields to missing attributes
— CSV's natural way of omitting a value — which exercises exactly the
NULL-vs-MISSING distinction of paper Section IV-A.

Writing accepts any bag/array of tuples; the header is the union of
attribute names in first-appearance order, and attributes absent from a
tuple serialise as empty fields.
"""

from __future__ import annotations

import csv
import io
from typing import Any, List

from repro.datamodel.values import Bag, Struct, type_name, MISSING
from repro.errors import FormatError


def loads(text: str, infer_types: bool = True, empty_as_missing: bool = True) -> Bag:
    """Parse header-row CSV text into a bag of tuples."""
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        return Bag()
    header = rows[0]
    tuples = []
    for row in rows[1:]:
        if len(row) > len(header):
            raise FormatError(
                f"CSV row has {len(row)} fields but header has {len(header)}"
            )
        pairs = []
        for name, field in zip(header, row):
            if field == "" and empty_as_missing:
                continue  # absent attribute, not a null one
            pairs.append((name, _parse_field(field) if infer_types else field))
        tuples.append(Struct(pairs))
    return Bag(tuples)


def dumps(value: Any) -> str:
    """Serialise a collection of tuples as header-row CSV."""
    if isinstance(value, Bag):
        rows = value.to_list()
    elif isinstance(value, list):
        rows = value
    else:
        raise FormatError(f"CSV expects a collection, got {type_name(value)}")
    header: List[str] = []
    seen = set()
    for row in rows:
        if not isinstance(row, Struct):
            raise FormatError(f"CSV rows must be tuples, got {type_name(row)}")
        for name in row.keys():
            if name not in seen:
                seen.add(name)
                header.append(name)
    output = io.StringIO()
    writer = csv.writer(output, lineterminator="\n")
    writer.writerow(header)
    for row in rows:
        writer.writerow([_render_field(row.get(name)) for name in header])
    return output.getvalue()


def _parse_field(field: str) -> Any:
    lowered = field.lower()
    if lowered == "null":
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(field)
    except ValueError:
        pass
    try:
        return float(field)
    except ValueError:
        pass
    return field


def _render_field(value: Any) -> str:
    if value is MISSING or value is None:
        return "" if value is MISSING else "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float, str)):
        return str(value)
    raise FormatError(f"CSV cannot hold nested value of type {type_name(value)}")
