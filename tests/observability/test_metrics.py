"""QueryMetrics, MetricsRegistry and the metric sinks."""

import json

import pytest

from repro import Database
from repro.errors import ResourceExhausted, SQLPPError
from repro.observability import InMemorySink, JsonLinesSink, QueryMetrics


@pytest.fixture
def db():
    database = Database()
    database.set("r", [{"v": i} for i in range(10)])
    return database


class TestPerQueryRecords:
    def test_successful_query_is_recorded(self, db):
        db.execute("SELECT VALUE a.v FROM r AS a")
        record = db.metrics.last
        assert record.status == "ok"
        assert record.rows_returned == 10
        assert record.total_s > 0
        assert record.execute_s > 0
        assert record.cache_hit is False

    def test_repeat_query_hits_the_compile_cache(self, db):
        db.execute("SELECT VALUE a.v FROM r AS a")
        db.execute("SELECT VALUE a.v FROM r AS a")
        assert db.metrics.last.cache_hit is True
        assert db.metrics.counters["compile_cache_hits"] == 1
        assert db.metrics.counters["compile_cache_misses"] == 1
        # A cache hit pays no parse/rewrite time.
        assert db.metrics.last.parse_s == 0.0

    def test_failed_query_is_recorded(self, db):
        with pytest.raises(SQLPPError):
            db.execute("SELECT FROM")
        assert db.metrics.last.status == "error"
        assert db.metrics.last.error
        assert db.metrics.counters["queries_failed"] == 1

    def test_exhausted_query_is_recorded_distinctly(self, db):
        with pytest.raises(ResourceExhausted):
            db.execute(
                "SELECT a.v FROM r AS a, r AS b, r AS c", max_rows=50
            )
        assert db.metrics.last.status == "resource_exhausted"
        assert db.metrics.counters["queries_resource_exhausted"] == 1
        assert db.metrics.counters["queries_failed"] == 0


class TestCounters:
    def test_rows_returned_accumulate(self, db):
        db.execute("SELECT VALUE a.v FROM r AS a")
        db.execute("SELECT VALUE a.v FROM r AS a WHERE a.v < 5")
        assert db.metrics.counters["rows_returned_total"] == 15
        assert db.metrics.counters["queries_total"] == 2

    def test_snapshot_shape(self, db):
        db.execute("SELECT VALUE 1")
        snapshot = db.metrics.snapshot()
        assert snapshot["counters"]["queries_total"] == 1
        assert snapshot["last_query"]["status"] == "ok"
        text = db.metrics.format_snapshot()
        assert "queries_total: 1" in text


class TestInMemorySink:
    def test_ring_buffer_keeps_recent(self):
        sink = InMemorySink(capacity=2)
        for number in range(3):
            sink.emit(QueryMetrics(query=f"q{number}"))
        assert [m.query for m in sink.tail()] == ["q1", "q2"]

    def test_registry_always_has_memory_sink(self, db):
        db.execute("SELECT VALUE 1")
        assert [m.query for m in db.metrics.memory.tail()] == ["SELECT VALUE 1"]


class TestJsonLinesSink:
    def test_records_append_as_json(self, tmp_path, db):
        path = tmp_path / "log.jsonl"
        db.metrics.sinks.append(JsonLinesSink(str(path)))
        db.execute("SELECT VALUE a.v FROM r AS a")
        db.execute("SELECT VALUE 2")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["status"] == "ok"
        assert record["rows_returned"] == 10

    def test_threshold_filters_fast_queries(self, tmp_path, db):
        path = tmp_path / "slow.jsonl"
        db.metrics.sinks.append(JsonLinesSink(str(path), threshold_s=60.0))
        db.execute("SELECT VALUE 1")
        assert not path.exists() or path.read_text() == ""

    def test_errors_always_logged(self, tmp_path, db):
        path = tmp_path / "slow.jsonl"
        db.metrics.sinks.append(JsonLinesSink(str(path), threshold_s=60.0))
        with pytest.raises(SQLPPError):
            db.execute("SELECT FROM")
        record = json.loads(path.read_text().splitlines()[0])
        assert record["status"] == "error"


class TestDatabaseSinkWiring:
    def test_constructor_accepts_sinks(self, tmp_path):
        path = tmp_path / "log.jsonl"
        database = Database(metrics_sinks=[JsonLinesSink(str(path))])
        database.execute("SELECT VALUE 1")
        assert json.loads(path.read_text().splitlines()[0])["status"] == "ok"

    def test_database_close_closes_sinks(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonLinesSink(str(path))
        database = Database(metrics_sinks=[sink])
        database.execute("SELECT VALUE 1")
        assert sink._handle is not None
        database.close()
        assert sink._handle is None
        # Closing is not a teardown of the engine: queries still run
        # and the sink transparently reopens.
        database.execute("SELECT VALUE 2")
        assert len(path.read_text().splitlines()) == 2
        database.close()
        database.close()  # idempotent


class TestPlanTimingSentinel:
    def test_planned_query_always_shows_plan_line(self):
        db = Database(optimize=True)
        db.set("r", [{"v": 1}])
        db.execute("SELECT VALUE a.v FROM r AS a")
        last = db.metrics.last
        assert last.plan_s is not None
        # A fast plan (0.0 after rounding) must still render its line.
        last.plan_s = 0.0
        assert any(
            line.startswith("plan:") for line in last.format_phases()
        )

    def test_reference_pipeline_reports_no_plan_phase(self):
        db = Database(optimize=False)
        db.set("r", [{"v": 1}])
        db.execute("SELECT VALUE a.v FROM r AS a")
        last = db.metrics.last
        assert last.plan_s is None
        assert not any(
            line.startswith("plan:") for line in last.format_phases()
        )
        assert last.to_dict()["plan_s"] is None


class TestQueryTextTruncation:
    def test_long_query_is_truncated_with_flag(self):
        from repro.observability.metrics import QUERY_TEXT_LIMIT

        record = QueryMetrics(query="x" * (QUERY_TEXT_LIMIT + 100))
        data = record.to_dict()
        assert len(data["query"]) == QUERY_TEXT_LIMIT
        assert data["query_truncated"] is True

    def test_short_query_is_untouched(self):
        data = QueryMetrics(query="SELECT VALUE 1").to_dict()
        assert data["query"] == "SELECT VALUE 1"
        assert data["query_truncated"] is False


class TestJsonLinesSinkLifecycle:
    def test_handle_opens_lazily(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonLinesSink(str(path))
        assert sink._handle is None
        assert not path.exists()
        sink.emit(QueryMetrics(query="q"))
        assert sink._handle is not None
        assert len(path.read_text().splitlines()) == 1

    def test_threshold_skip_keeps_handle_closed(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonLinesSink(str(path), threshold_s=60.0)
        sink.emit(QueryMetrics(query="fast", total_s=0.001))
        assert sink._handle is None and not path.exists()

    def test_close_then_emit_reopens(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonLinesSink(str(path))
        sink.emit(QueryMetrics(query="one"))
        sink.close()
        assert sink._handle is None
        sink.emit(QueryMetrics(query="two"))
        queries = [
            json.loads(line)["query"] for line in path.read_text().splitlines()
        ]
        assert queries == ["one", "two"]

    def test_records_flush_immediately(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonLinesSink(str(path))
        sink.emit(QueryMetrics(query="q"))
        # No close() — the record must already be on disk.
        assert json.loads(path.read_text().splitlines()[0])["query"] == "q"


class TestSnapshotArithmetic:
    def test_counters_fold_across_outcomes(self, db):
        import pytest as pytest_module

        db.execute("SELECT VALUE a.v FROM r AS a")
        db.execute("SELECT VALUE a.v FROM r AS a WHERE a.v < 3")
        with pytest_module.raises(SQLPPError):
            db.execute("SELECT FROM")
        snapshot = db.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["queries_total"] == 3
        assert counters["queries_failed"] == 1
        assert counters["rows_returned_total"] == 13
        assert (
            counters["compile_cache_hits"] + counters["compile_cache_misses"]
            == 3  # every query does a cache lookup, even one that fails to parse
        )
        assert snapshot["last_query"]["status"] == "error"


class TestConcurrency:
    def test_record_is_thread_safe(self):
        import threading

        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        threads_n, per_thread = 8, 250

        def hammer():
            for number in range(per_thread):
                registry.record(
                    QueryMetrics(
                        query=f"q{number}",
                        rows_returned=1,
                        total_s=0.001,
                    )
                )

        threads = [threading.Thread(target=hammer) for __ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = threads_n * per_thread
        assert registry.counters["queries_total"] == expected
        assert registry.counters["rows_returned_total"] == expected
        assert registry.histograms["total"].count == expected
