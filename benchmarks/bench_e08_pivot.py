"""E8 — PIVOT / UNPIVOT scaling (Section VI).

Sweeps the symbol count (attributes per tuple) and day count (rows) for
the paper's stock-price reshape queries (Listings 20, 22, 24, 26),
asserting the round trip (unpivot∘pivot = identity on the data) holds
at every size.
"""

import pytest

from repro.datamodel.equality import deep_equals
from repro.workloads import stock_prices_tall, stock_prices_wide

from conftest import make_db

SYMBOLS = [3, 30, 300]
DAYS = 50

UNPIVOT_QUERY = """
    SELECT c."date" AS "date", sym AS symbol, price AS price
    FROM wide AS c, UNPIVOT c AS price AT sym
    WHERE NOT sym = 'date'
"""
AVG_QUERY = """
    SELECT sym AS symbol, AVG(price) AS avg_price
    FROM wide AS c, UNPIVOT c AS price AT sym
    WHERE NOT sym = 'date'
    GROUP BY sym
"""
REPIVOT_QUERY = """
    SELECT sp."date" AS "date",
           (PIVOT dp.sp.price AT dp.sp.symbol FROM dates_prices AS dp) AS prices
    FROM tall AS sp
    GROUP BY sp."date" GROUP AS dates_prices
"""


@pytest.fixture(scope="module")
def round_trip_verified():
    db = make_db(
        wide=stock_prices_wide(DAYS, 30, seed=1),
        tall=stock_prices_tall(DAYS, 30, seed=1),
    )
    unpivoted = db.execute(UNPIVOT_QUERY)
    from repro.datamodel.values import Bag
    from repro.datamodel.convert import from_python

    expected = Bag(from_python(stock_prices_tall(DAYS, 30, seed=1)))
    assert deep_equals(Bag(list(unpivoted)), expected)
    return True


@pytest.mark.benchmark(group="E8-unpivot")
@pytest.mark.parametrize("symbols", SYMBOLS)
def test_unpivot(benchmark, symbols, round_trip_verified):
    db = make_db(wide=stock_prices_wide(DAYS, symbols, seed=1))
    benchmark(lambda: db.execute(UNPIVOT_QUERY))


@pytest.mark.benchmark(group="E8-unpivot-aggregate")
@pytest.mark.parametrize("symbols", SYMBOLS)
def test_unpivot_then_aggregate(benchmark, symbols, round_trip_verified):
    db = make_db(wide=stock_prices_wide(DAYS, symbols, seed=1))
    result = db.execute(AVG_QUERY)
    assert len(list(result)) == symbols
    benchmark(lambda: db.execute(AVG_QUERY))


@pytest.mark.benchmark(group="E8-pivot")
@pytest.mark.parametrize("symbols", SYMBOLS)
def test_group_and_pivot(benchmark, symbols, round_trip_verified):
    db = make_db(tall=stock_prices_tall(DAYS, symbols, seed=1))
    result = db.execute(REPIVOT_QUERY)
    assert len(list(result)) == DAYS
    benchmark(lambda: db.execute(REPIVOT_QUERY))
