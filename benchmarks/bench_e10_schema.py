"""E10 — optional schema and query stability (tenet 3).

Shape claims:

* imposing a schema on conforming data changes **no** query result
  (asserted over a query battery);
* execution cost is unchanged by the schema (it informs validation and
  static checks only);
* validation and inference costs scale linearly and are one-time.
"""

import pytest

from repro.datamodel.equality import deep_equals
from repro.schema import infer_schema, validate
from repro.workloads import emp_nested

from conftest import make_db

SIZE = 3_000

QUERIES = [
    "SELECT e.name AS n, p.name AS p FROM emp AS e, e.projects AS p",
    "SELECT e.deptno, AVG(e.salary) AS a FROM emp AS e GROUP BY e.deptno",
    "SELECT VALUE e.salary FROM emp AS e ORDER BY e.salary DESC LIMIT 10",
]


def schemaful_db():
    db = make_db(emp=emp_nested(SIZE, fanout=3, seed=55))
    db.set_schema("emp", infer_schema(db.get("emp")))
    return db


@pytest.fixture(scope="module")
def stability_verified():
    bare = make_db(emp=emp_nested(SIZE, fanout=3, seed=55))
    with_schema = schemaful_db()
    for query in QUERIES:
        assert deep_equals(bare.execute(query), with_schema.execute(query))
    return True


@pytest.mark.benchmark(group="E10-execution")
@pytest.mark.parametrize("index", range(len(QUERIES)))
def test_without_schema(benchmark, index, stability_verified):
    db = make_db(emp=emp_nested(SIZE, fanout=3, seed=55))
    benchmark(lambda: db.execute(QUERIES[index]))


@pytest.mark.benchmark(group="E10-execution")
@pytest.mark.parametrize("index", range(len(QUERIES)))
def test_with_schema(benchmark, index, stability_verified):
    db = schemaful_db()
    benchmark(lambda: db.execute(QUERIES[index]))


@pytest.mark.benchmark(group="E10-schema-ops")
def test_inference_cost(benchmark):
    db = make_db(emp=emp_nested(SIZE, fanout=3, seed=55))
    data = db.get("emp")
    benchmark(lambda: infer_schema(data))


@pytest.mark.benchmark(group="E10-schema-ops")
def test_validation_cost(benchmark):
    db = make_db(emp=emp_nested(SIZE, fanout=3, seed=55))
    data = db.get("emp")
    schema = infer_schema(data)
    benchmark(lambda: validate(data, schema))
