"""The schema type language.

A :class:`SchemaType` describes sets of SQL++ values:

* scalars — :class:`BooleanType`, :class:`IntegerType`, :class:`FloatType`,
  :class:`StringType`;
* :class:`NullType` — only NULL (usually used inside unions);
* collections — :class:`ArrayType`, :class:`BagType` with an element type;
* :class:`StructType` — named fields, each possibly *optional* (may be
  missing — the schema-level counterpart of the MISSING value) and/or
  *nullable*; structs may be *open* (extra attributes allowed) or closed;
* :class:`UnionType` — any of several alternatives, the Hive
  ``UNIONTYPE`` of paper Listing 5;
* :class:`AnyType` — no constraint (the schemaless default).

Types are immutable dataclasses and print in the DDL syntax accepted by
:func:`repro.schema.ddl.parse_schema`, so ``parse_schema(str(t)) == t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set, Tuple


@dataclass(frozen=True)
class SchemaType:
    """Base class of all schema types."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


@dataclass(frozen=True)
class AnyType(SchemaType):
    """Matches every value, including MISSING field values."""

    def __str__(self) -> str:
        return "ANY"


@dataclass(frozen=True)
class BooleanType(SchemaType):
    def __str__(self) -> str:
        return "BOOLEAN"


@dataclass(frozen=True)
class IntegerType(SchemaType):
    def __str__(self) -> str:
        return "INT"


@dataclass(frozen=True)
class FloatType(SchemaType):
    """Matches floats and (being a numeric supertype) integers too."""

    def __str__(self) -> str:
        return "DOUBLE"


@dataclass(frozen=True)
class StringType(SchemaType):
    def __str__(self) -> str:
        return "STRING"


@dataclass(frozen=True)
class NullType(SchemaType):
    """Matches only NULL; useful as a union alternative."""

    def __str__(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class ArrayType(SchemaType):
    element: SchemaType = field(default_factory=AnyType)

    def __str__(self) -> str:
        return f"ARRAY<{self.element}>"


@dataclass(frozen=True)
class BagType(SchemaType):
    element: SchemaType = field(default_factory=AnyType)

    def __str__(self) -> str:
        return f"BAG<{self.element}>"


@dataclass(frozen=True)
class StructField:
    """One field of a struct type.

    ``optional`` — the attribute may be absent entirely (MISSING-style);
    ``nullable`` — the attribute may be present with a NULL value.  The
    two are independent, mirroring the paper's NULL/MISSING distinction
    at the schema level (Section IV-A).
    """

    name: str
    type: SchemaType
    optional: bool = False
    nullable: bool = False

    def __str__(self) -> str:
        suffix = ""
        if self.optional:
            suffix += "?"
        rendered = f"{self.name}{suffix} {self.type}"
        if self.nullable:
            rendered += " NULL"
        return rendered


@dataclass(frozen=True)
class StructType(SchemaType):
    """A tuple type.  ``open`` structs allow undeclared attributes."""

    fields: Tuple[StructField, ...] = ()
    open: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in self.fields)
        if self.open:
            inner = inner + ", ..." if inner else "..."
        return f"STRUCT<{inner}>"

    def field_named(self, name: str) -> Optional[StructField]:
        for fld in self.fields:
            if fld.name == name:
                return fld
        return None

    def attribute_names(self) -> Set[str]:
        return {fld.name for fld in self.fields}


@dataclass(frozen=True)
class UnionType(SchemaType):
    """Any one of several alternatives (Hive UNIONTYPE, paper Listing 5)."""

    alternatives: Tuple[SchemaType, ...] = ()

    def __str__(self) -> str:
        inner = ", ".join(str(alt) for alt in self.alternatives)
        return f"UNIONTYPE<{inner}>"


def element_attribute_names(schema: SchemaType) -> Optional[Set[str]]:
    """The attribute names of a collection-of-structs schema, if that is
    what the schema describes (used for bare-column disambiguation)."""
    if isinstance(schema, (ArrayType, BagType)):
        element = schema.element
        if isinstance(element, StructType):
            return element.attribute_names()
    return None
