"""E13 — physical join planning: hash equi-join vs the reference
nested loop vs the SQL-92 baseline engine.

The planner (docs/PLANNER.md) turns an uncorrelated equi-``ON`` join
into a build/probe hash join, so an N×M join costs O(N+M) instead of
the reference semantics' O(N·M) nested loop.  This experiment measures
that gap on a normalized users⋈orders workload at n ∈ {100, 1k, 10k}
orders (users scale as n/10), against three engines:

* ``nested_loop`` — our evaluator with ``optimize=False`` (the
  executable reference semantics);
* ``hash_join`` — our evaluator with the planner on (the default);
* ``sql92_baseline`` — the classic-SQL baseline engine.

All three must agree on the result bag; the claim asserted below is a
≥10× hash-vs-nested-loop speedup at n = 10k.
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.baselines.sql92 import SQL92Database
from repro.datamodel.convert import from_python
from repro.datamodel.values import Bag

from conftest import assert_same_bag

SIZES = [100, 1_000, 10_000]
#: The acceptance bar: hash join at the largest size must beat the
#: reference nested loop by at least this factor.
MIN_SPEEDUP_AT_10K = 10.0

QUERY = (
    "SELECT u.uid AS uid, o.oid AS oid, o.total AS total "
    "FROM users AS u JOIN orders AS o ON o.user_id = u.uid "
    "WHERE o.total >= 10"
)


def tables(n: int):
    n_users = max(n // 10, 10)
    users = [{"uid": i, "name": f"user-{i}"} for i in range(n_users)]
    orders = [
        {"oid": i, "user_id": (i * 7) % n_users, "total": (i * 13) % 500}
        for i in range(n)
    ]
    return users, orders


def sqlpp_db(n: int, optimize: bool) -> Database:
    users, orders = tables(n)
    db = Database(optimize=optimize)
    db.set("users", users)
    db.set("orders", orders)
    return db


def sql92_db(n: int) -> SQL92Database:
    users, orders = tables(n)
    db = SQL92Database()
    db.create_table("users", ["uid", "name"])
    db.create_table("orders", ["oid", "user_id", "total"])
    db.insert("users", users)
    db.insert("orders", orders)
    return db


@pytest.fixture(scope="module")
def agreement_verified():
    """All three engines produce the same bag (checked once, at 1k)."""
    reference = sqlpp_db(1_000, optimize=False).execute(QUERY)
    optimized = sqlpp_db(1_000, optimize=True).execute(QUERY)
    baseline = Bag(from_python(sql92_db(1_000).execute(QUERY)))
    assert_same_bag(optimized, reference)
    assert_same_bag(optimized, baseline)
    return True


@pytest.mark.benchmark(group="E13-joins-n100")
class TestJoin100:
    def test_nested_loop(self, benchmark, agreement_verified):
        db = sqlpp_db(100, optimize=False)
        benchmark(lambda: db.execute(QUERY))

    def test_hash_join(self, benchmark, agreement_verified):
        db = sqlpp_db(100, optimize=True)
        benchmark(lambda: db.execute(QUERY))

    def test_sql92_baseline(self, benchmark, agreement_verified):
        db = sql92_db(100)
        benchmark(lambda: db.execute(QUERY))


@pytest.mark.benchmark(group="E13-joins-n1000")
class TestJoin1000:
    def test_nested_loop(self, benchmark, agreement_verified):
        db = sqlpp_db(1_000, optimize=False)
        benchmark.pedantic(lambda: db.execute(QUERY), rounds=2, iterations=1)

    def test_hash_join(self, benchmark, agreement_verified):
        db = sqlpp_db(1_000, optimize=True)
        benchmark(lambda: db.execute(QUERY))

    def test_sql92_baseline(self, benchmark, agreement_verified):
        db = sql92_db(1_000)
        benchmark(lambda: db.execute(QUERY))


@pytest.mark.benchmark(group="E13-joins-n10000")
class TestJoin10000:
    def test_nested_loop(self, benchmark, agreement_verified):
        # O(N·M) = 10⁷ ON evaluations: one round is plenty.
        db = sqlpp_db(10_000, optimize=False)
        benchmark.pedantic(lambda: db.execute(QUERY), rounds=1, iterations=1)

    def test_hash_join(self, benchmark, agreement_verified):
        db = sqlpp_db(10_000, optimize=True)
        benchmark(lambda: db.execute(QUERY))

    def test_sql92_baseline(self, benchmark, agreement_verified):
        db = sql92_db(10_000)
        benchmark(lambda: db.execute(QUERY))


def test_speedup_claim_at_10k(agreement_verified):
    """The tentpole claim: ≥10× hash-join speedup at n = 10k."""
    nested = sqlpp_db(10_000, optimize=False)
    hashed = sqlpp_db(10_000, optimize=True)
    hashed.execute(QUERY)  # warm the compile and plan caches

    started = time.perf_counter()
    reference = nested.execute(QUERY)
    nested_s = time.perf_counter() - started

    started = time.perf_counter()
    optimized = hashed.execute(QUERY)
    hash_s = time.perf_counter() - started

    assert_same_bag(optimized, reference)
    speedup = nested_s / hash_s
    print(
        f"\nE13 n=10k: nested loop {nested_s:.2f}s, hash join {hash_s*1e3:.1f}ms "
        f"→ {speedup:.0f}× speedup"
    )
    assert speedup >= MIN_SPEEDUP_AT_10K, (
        f"hash join only {speedup:.1f}× faster than the nested loop "
        f"(claim: ≥{MIN_SPEEDUP_AT_10K}×)"
    )
