"""Reshaping market data with PIVOT and UNPIVOT (paper Section VI).

The closing-prices feed arrives *wide* (one column per ticker, as in
Listing 19).  The session unpivots it to a tall fact table, computes
per-symbol statistics, then pivots back to a wide daily report — and
round-trips through CBOR and Ion on the way, demonstrating format
independence.

Run:  python examples/stock_pivot.py
"""

from repro import Database, sqlpp_dumps
from repro.formats import cbor_io, ion_io
from repro.workloads import stock_prices_wide


def show(title, result, limit=6):
    print(f"\n-- {title}")
    items = list(result) if hasattr(result, "__iter__") else [result]
    for item in items[:limit]:
        print("  ", sqlpp_dumps(item).replace("\n", " ").replace("  ", ""))
    if len(items) > limit:
        print(f"   ... ({len(items) - limit} more)")


def main():
    db = Database()
    db.set("closing_prices", stock_prices_wide(days=30, symbols=5, seed=7))

    # Wide → tall: attribute names become data (Listing 20).
    tall = db.execute(
        """
        SELECT c."date" AS "date", sym AS symbol, price AS price
        FROM closing_prices AS c, UNPIVOT c AS price AT sym
        WHERE NOT sym = 'date'
        """
    )
    show("Unpivoted fact table", tall)
    db.set("ticks", list(tall))

    # Per-symbol statistics on the tall shape (Listing 22's pattern).
    show(
        "Per-symbol statistics",
        db.execute(
            """
            SELECT t.symbol AS symbol,
                   AVG(t.price) AS avg, MIN(t.price) AS lo, MAX(t.price) AS hi,
                   COLL_STDDEV(SELECT VALUE g2.t.price FROM g AS g2) AS sd
            FROM ticks AS t
            GROUP BY t.symbol GROUP AS g
            ORDER BY symbol
            """
        ),
    )

    # Daily movers using window offsets over the tall shape.
    show(
        "Day-over-day change per symbol",
        db.execute(
            """
            SELECT VALUE r
            FROM (SELECT t.symbol AS symbol, t."date" AS "date",
                         t.price - LAG(t.price) OVER (PARTITION BY t.symbol
                                                      ORDER BY t."date") AS change
                  FROM ticks AS t) AS r
            WHERE r.change IS NOT NULL AND ABS(r.change) > 2000
            ORDER BY r."date"
            """
        ),
    )

    # Tall → wide again: one tuple of prices per date (Listing 26).
    wide_again = db.execute(
        """
        SELECT t."date" AS "date",
               (PIVOT dp.t.price AT dp.t.symbol FROM day_prices AS dp) AS prices
        FROM ticks AS t
        GROUP BY t."date" GROUP AS day_prices
        ORDER BY "date"
        """
    )
    show("Re-pivoted daily report", wide_again, limit=3)

    # Format independence: the tall table survives CBOR and Ion intact,
    # and the same query over the decoded data gives the same answer.
    encoded = cbor_io.dumps(db.get("ticks"))
    db.set("ticks_from_cbor", cbor_io.loads(encoded))
    ion_text = ion_io.dumps(db.get("ticks"))
    db.set("ticks_from_ion", ion_io.loads(ion_text))
    for name in ("ticks", "ticks_from_cbor", "ticks_from_ion"):
        total = db.execute(f"COLL_SUM(SELECT VALUE t.price FROM {name} AS t)")
        print(f"\n-- checksum over {name} ({len(encoded)}B cbor): {total}")


if __name__ == "__main__":
    main()
