"""Render a conformance report for the compatibility kit."""

from __future__ import annotations

from typing import List, Sequence

from repro.compat.runner import CaseResult
from repro.formats.sqlpp_text import dumps


def format_report(results: Sequence[CaseResult], verbose: bool = False) -> str:
    """A text report: one line per case plus a summary (and diffs when
    ``verbose``)."""
    lines: List[str] = []
    lines.append("SQL++ compatibility kit")
    lines.append("=" * 70)
    passed = 0
    by_section: dict = {}
    for result in results:
        case = result.case
        status = "PASS" if result.passed else "FAIL"
        if result.passed:
            passed += 1
        mode = "compat" if case.sql_compat else "core"
        mode += "/strict" if case.typing_mode == "strict" else ""
        lines.append(
            f"[{status}] {case.case_id:<28} §{case.section:<6} "
            f"({mode:<13}) {case.title}"
        )
        section = by_section.setdefault(case.section, [0, 0])
        section[0] += int(result.passed)
        section[1] += 1
        if not result.passed:
            if result.error:
                lines.append(f"       error: {result.error}")
            else:
                lines.append("       expected:")
                lines.append(_indent(dumps(result.expected), 9))
                lines.append("       actual:")
                lines.append(_indent(dumps(result.actual), 9))
        elif verbose and result.expected is not None:
            lines.append(_indent(dumps(result.expected), 9))
    lines.append("-" * 70)
    lines.append(f"{passed}/{len(results)} cases passed")
    for section in sorted(by_section):
        ok, total = by_section[section]
        lines.append(f"  §{section:<6} {ok}/{total}")
    return "\n".join(lines)


def _indent(text: str, width: int) -> str:
    pad = " " * width
    return "\n".join(pad + line for line in text.splitlines())


def report_json(results: Sequence[CaseResult]) -> dict:
    """A machine-readable summary (for CI and cross-engine comparison)."""
    return {
        "total": len(results),
        "passed": sum(result.passed for result in results),
        "cases": [
            {
                "id": result.case.case_id,
                "section": result.case.section,
                "title": result.case.title,
                "mode": "compat" if result.case.sql_compat else "core",
                "typing": result.case.typing_mode,
                "passed": result.passed,
                "elapsed_s": round(result.elapsed_s, 6),
                "error": result.error,
            }
            for result in results
        ],
    }
