"""Unit tests for every format codec."""

import math

import pytest

from repro.datamodel.values import MISSING, Bag, Struct
from repro.errors import FormatError
from repro.formats import cbor_io, csv_io, ion_io, json_io, sqlpp_text


class TestSqlppLiteral:
    def test_paper_notation(self):
        value = sqlpp_text.loads(
            "{{ {'id': 3, 'name': 'Bob', 'title': null, 'xs': [1, 2]} }}"
        )
        assert isinstance(value, Bag)
        element = value.to_list()[0]
        assert element["title"] is None
        assert element["xs"] == [1, 2]

    def test_missing_keyword(self):
        assert sqlpp_text.loads("missing") is MISSING

    def test_quote_escape(self):
        assert sqlpp_text.loads("'it''s'") == "it's"

    def test_comments_allowed(self):
        assert sqlpp_text.loads("{'a': 1} -- trailing")["a"] == 1

    def test_round_trip(self):
        value = sqlpp_text.loads("{{ {'a': [1, {'b': <<2, 'x'>>}], 'n': null} }}")
        assert sqlpp_text.loads(sqlpp_text.dumps(value)) == value

    def test_invalid_raises_format_error(self):
        with pytest.raises(FormatError):
            sqlpp_text.loads("{'unclosed': ")

    def test_dumps_empty_collections(self):
        assert sqlpp_text.dumps(Bag()) == "{{}}"
        assert sqlpp_text.dumps([]) == "[]"
        assert sqlpp_text.dumps(Struct()) == "{}"


class TestJson:
    def test_objects_to_structs(self):
        value = json_io.loads('{"a": {"b": 1}}')
        assert isinstance(value, Struct)
        assert isinstance(value["a"], Struct)

    def test_top_level_array_reads_as_bag(self):
        assert isinstance(json_io.loads("[1, 2]"), Bag)
        assert json_io.loads("[1, 2]", top_level_bag=False) == [1, 2]

    def test_duplicate_keys_preserved(self):
        value = json_io.loads('{"a": 1, "a": 2}')
        assert value.get_all("a") == [1, 2]

    def test_dumps_bag_as_array(self):
        assert json_io.loads(json_io.dumps(Bag([1]))) == Bag([1])

    def test_dumps_rejects_missing(self):
        with pytest.raises(FormatError):
            json_io.dumps(MISSING)

    def test_dumps_rejects_duplicate_keys(self):
        with pytest.raises(FormatError):
            json_io.dumps(Struct([("a", 1), ("a", 2)]))

    def test_invalid_json(self):
        with pytest.raises(FormatError):
            json_io.loads("{nope}")

    def test_round_trip(self):
        text = '[{"a": [1, 2.5, null, true], "b": {"c": "x"}}]'
        value = json_io.loads(text)
        assert json_io.loads(json_io.dumps(value)) == value


class TestCsv:
    def test_header_and_type_inference(self):
        bag = csv_io.loads("id,name,score,ok\n1,ann,2.5,true\n2,bo,3,false\n")
        rows = bag.to_list()
        assert rows[0]["id"] == 1
        assert rows[0]["score"] == 2.5
        assert rows[0]["ok"] is True
        assert rows[1]["ok"] is False

    def test_empty_field_is_missing_attribute(self):
        bag = csv_io.loads("id,title\n1,\n2,boss\n")
        first = bag.to_list()[0]
        assert "title" not in first

    def test_null_keyword(self):
        bag = csv_io.loads("t\nnull\n")
        assert bag.to_list()[0]["t"] is None

    def test_no_inference_mode(self):
        bag = csv_io.loads("n\n42\n", infer_types=False)
        assert bag.to_list()[0]["n"] == "42"

    def test_dumps_union_header(self):
        text = csv_io.dumps(Bag([Struct({"a": 1}), Struct({"b": 2})]))
        assert text.splitlines()[0] == "a,b"

    def test_dumps_rejects_nested(self):
        with pytest.raises(FormatError):
            csv_io.dumps(Bag([Struct({"a": [1]})]))

    def test_round_trip(self):
        bag = Bag([Struct({"id": 1, "name": "x", "v": None})])
        assert csv_io.loads(csv_io.dumps(bag)) == bag

    def test_empty_input(self):
        assert csv_io.loads("") == Bag()


class TestCbor:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            23,
            24,
            255,
            256,
            65536,
            2**32,
            -1,
            -25,
            -(2**33),
            1.5,
            "",
            "héllo",
            [1, [2, "x"]],
            Struct([("a", 1), ("a", 2)]),
            Bag([1, Struct({"k": [None]})]),
        ],
    )
    def test_round_trip(self, value):
        from repro.datamodel.equality import deep_equals

        assert deep_equals(cbor_io.loads(cbor_io.dumps(value)), value)

    def test_canonical_int_lengths(self):
        assert len(cbor_io.dumps(23)) == 1
        assert len(cbor_io.dumps(24)) == 2
        assert len(cbor_io.dumps(256)) == 3
        assert len(cbor_io.dumps(65536)) == 5

    def test_bag_uses_tag(self):
        data = cbor_io.dumps(Bag([1]))
        # 6.1008 head: major 6, argument 1008 needs 2 bytes.
        assert data[0] == (6 << 5) | 25

    def test_float_decoding_widths(self):
        # half (0xf9), single (0xfa), double (0xfb)
        assert cbor_io.loads(bytes([0xF9, 0x3C, 0x00])) == 1.0
        assert cbor_io.loads(bytes([0xFA, 0x3F, 0x80, 0x00, 0x00])) == 1.0
        assert cbor_io.loads(cbor_io.dumps(2.5)) == 2.5

    def test_half_precision_specials(self):
        assert math.isinf(cbor_io.loads(bytes([0xF9, 0x7C, 0x00])))
        assert math.isnan(cbor_io.loads(bytes([0xF9, 0x7E, 0x00])))
        assert cbor_io.loads(bytes([0xF9, 0xBC, 0x00])) == -1.0

    def test_truncated_input(self):
        with pytest.raises(FormatError):
            cbor_io.loads(cbor_io.dumps("hello")[:-1])

    def test_trailing_bytes(self):
        with pytest.raises(FormatError):
            cbor_io.loads(cbor_io.dumps(1) + b"\x00")

    def test_missing_rejected(self):
        with pytest.raises(FormatError):
            cbor_io.dumps(MISSING)

    def test_byte_strings_rejected(self):
        with pytest.raises(FormatError):
            cbor_io.loads(bytes([(2 << 5) | 1, 0x41]))

    def test_unknown_tag_rejected(self):
        with pytest.raises(FormatError):
            cbor_io.loads(bytes([(6 << 5) | 0]) + cbor_io.dumps([]))


class TestIon:
    def test_scalars(self):
        assert ion_io.loads("null") is None
        assert ion_io.loads("null.int") is None
        assert ion_io.loads("true") is True
        assert ion_io.loads("42") == 42
        assert ion_io.loads("2.5") == 2.5
        assert ion_io.loads("1e3") == 1000.0
        assert ion_io.loads('"hi"') == "hi"

    def test_symbols_read_as_strings(self):
        assert ion_io.loads("engineer") == "engineer"

    def test_struct_with_symbol_and_string_names(self):
        value = ion_io.loads('{name: "Bob", "the title": manager}')
        assert value["name"] == "Bob"
        assert value["the title"] == "manager"

    def test_list_and_bag_annotation(self):
        assert ion_io.loads("[1, 2]") == [1, 2]
        assert ion_io.loads("bag::[1, 2]") == Bag([1, 2])

    def test_multiple_top_level_values_are_a_bag(self):
        assert ion_io.loads("{a: 1}\n{a: 2}") == Bag(
            [Struct({"a": 1}), Struct({"a": 2})]
        )

    def test_comments(self):
        assert ion_io.loads("// c\n1 /* x */") == 1

    def test_string_escapes(self):
        assert ion_io.loads(r'"a\nbA"') == "a\nbA"

    def test_long_string(self):
        assert ion_io.loads("'''multi\nline'''") == "multi\nline"

    def test_round_trip(self):
        value = Bag([Struct({"a": [1, 2.5, None], "b": "x y"})])
        assert ion_io.loads(ion_io.dumps(value)) == value

    def test_unsupported_annotation(self):
        with pytest.raises(FormatError):
            ion_io.loads("sexp::[1]")

    def test_missing_rejected(self):
        with pytest.raises(FormatError):
            ion_io.dumps(MISSING)
