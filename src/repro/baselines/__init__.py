"""Baseline engines for the benchmark harness.

The paper positions SQL++ against two worlds:

* classic strict SQL — schemas mandatory, tables flat, unknown columns
  are compile-time errors (:mod:`repro.baselines.sql92`).  Used by the
  harness both as the *compatibility oracle* (a SQL query must return
  the same result on SQL++ — tenet 1) and as the performance baseline
  for normalised-versus-nested data layouts (experiment E3);

* the "bolt-on" approach the paper argues against (Section VIII and its
  reference [33]): semistructured data stored in a JSON *column* of a
  relational table and accessed through path-extraction functions
  (:mod:`repro.baselines.jsoncolumn`), paying a parse on every access.
"""

from repro.baselines.sql92 import SQL92Database, SQL92Error
from repro.baselines.jsoncolumn import JsonColumnDatabase

__all__ = ["SQL92Database", "SQL92Error", "JsonColumnDatabase"]
