"""CLI entry points (one-shot, scripts, kit, loading)."""

import json

import pytest

from repro.cli import main


class TestOneShot:
    def test_command(self, capsys):
        assert main(["-c", "SELECT VALUE v + 1 FROM [1, 2] AS v"]) == 0
        out = capsys.readouterr().out
        assert "2" in out and "3" in out

    def test_error_returns_nonzero(self, capsys):
        assert main(["-c", "SELECT FROM"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unbound_name_error(self, capsys):
        assert main(["-c", "nope"]) == 1

    def test_core_flag(self, capsys):
        assert (
            main(["--core", "-c", "COALESCE(MISSING, 2) IS MISSING"]) == 0
        )
        assert "true" in capsys.readouterr().out

    def test_strict_flag(self, capsys):
        assert main(["--strict", "-c", "1 + 'a'"]) == 1


class TestScriptsAndLoading:
    def test_script_file(self, tmp_path, capsys):
        script = tmp_path / "q.sqlpp"
        script.write_text("SELECT VALUE 1; SELECT VALUE 'two';")
        assert main([str(script)]) == 0
        out = capsys.readouterr().out
        assert "1" in out and "'two'" in out

    def test_load_json(self, tmp_path, capsys):
        data = tmp_path / "emp.json"
        data.write_text(json.dumps([{"name": "bob"}]))
        code = main(
            [
                "--load",
                f"emp={data}",
                "-c",
                "SELECT VALUE e.name FROM emp AS e",
            ]
        )
        assert code == 0
        assert "bob" in capsys.readouterr().out

    def test_bad_load_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["--load", "nopath", "-c", "1"])


class TestKit:
    def test_compat_kit_passes(self, capsys):
        assert main(["--compat-kit"]) == 0
        out = capsys.readouterr().out
        assert "cases passed" in out
        assert "FAIL" not in out


class TestKitJson:
    def test_json_report(self, capsys):
        import json

        assert main(["--compat-kit", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] == report["total"] > 50
        assert {"compat", "core"} >= {case["mode"] for case in report["cases"]}


class TestObservabilityFlags:
    def test_explain_analyze_statement(self, capsys):
        assert (
            main(["-c", "EXPLAIN ANALYZE SELECT VALUE v FROM [1, 2, 3] AS v WHERE v > 1"])
            == 0
        )
        out = capsys.readouterr().out
        assert "calls=" in out and "rows_out=" in out
        assert "phases:" in out
        assert "rows returned: 2" in out

    def test_plain_explain_does_not_execute(self, capsys):
        assert main(["-c", "EXPLAIN SELECT VALUE v FROM [1, 2] AS v"]) == 0
        out = capsys.readouterr().out
        assert "calls=" not in out

    def test_stats_flag_prints_phases(self, capsys):
        assert main(["--stats", "-c", "SELECT VALUE 1"]) == 0
        captured = capsys.readouterr()
        assert "-- parse:" in captured.err
        assert "-- total:" in captured.err

    def test_max_rows_reports_partial_progress(self, capsys):
        code = main(
            [
                "--max-rows",
                "10",
                "-c",
                "SELECT a, b FROM [1,2,3,4,5] AS a, [1,2,3,4,5] AS b",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "resource limit" in err
        assert "stopped after" in err and "max_rows" in err

    def test_timeout_flag(self, capsys):
        code = main(
            [
                "--timeout",
                "0.05",
                "-c",
                "SELECT a, b FROM RANGE(0, 3000) AS a, RANGE(0, 3000) AS b",
            ]
        )
        assert code == 1
        assert "timeout" in capsys.readouterr().err

    def test_slow_log_flag(self, tmp_path, capsys):
        import json as json_module

        path = tmp_path / "slow.jsonl"
        assert main(["--slow-log", str(path), "-c", "SELECT VALUE 1"]) == 0
        record = json_module.loads(path.read_text().splitlines()[0])
        assert record["status"] == "ok"


class TestObservabilityFlags:
    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main(
            [
                "--trace-out",
                str(path),
                "-c",
                "SELECT VALUE v + 1 FROM [1, 2] AS v",
            ]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events, "trace file has no events"
        names = {event["name"] for event in events}
        assert {"query", "parse", "execute"} <= names
        for event in events:
            assert event["ph"] == "X"
            assert "ts" in event and "dur" in event

    def test_trace_out_spans_whole_script(self, tmp_path, capsys):
        script = tmp_path / "q.sqlpp"
        script.write_text("SELECT VALUE 1; SELECT VALUE 2;")
        path = tmp_path / "trace.json"
        assert main(["--trace-out", str(path), str(script)]) == 0
        events = json.loads(path.read_text())["traceEvents"]
        assert sum(event["name"] == "query" for event in events) == 2

    def test_metrics_out_writes_prometheus_text(self, tmp_path, capsys):
        path = tmp_path / "metrics.txt"
        code = main(
            ["--metrics-out", str(path), "-c", "SELECT VALUE 1"]
        )
        assert code == 0
        text = path.read_text()
        assert "repro_queries_total 1" in text
        assert "# TYPE repro_query_seconds histogram" in text
        assert text.endswith("\n")

    def test_outputs_written_even_when_query_fails(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.txt"
        code = main(
            [
                "--trace-out",
                str(trace),
                "--metrics-out",
                str(metrics),
                "-c",
                "SELECT VALUE x.v FROM unbound_name AS x",
            ]
        )
        assert code == 1
        assert trace.exists()
        assert "repro_queries_failed_total 1" in metrics.read_text()


class TestQueryStoreCLI:
    def test_store_flag_then_report_verb(self, tmp_path, capsys):
        path = str(tmp_path / "store.jsonl")
        assert main(["--store", path, "-c", "SELECT VALUE v FROM [1, 2] AS v"]) == 0
        capsys.readouterr()
        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert out.startswith("query store: 1 fingerprint(s)")
        assert "calls=1" in out

    def test_report_json(self, tmp_path, capsys):
        path = str(tmp_path / "store.jsonl")
        assert main(["--store", path, "-c", "SELECT VALUE 1"]) == 0
        capsys.readouterr()
        assert main(["report", path, "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["fingerprints"] == 1
        assert snapshot["entries"][0]["executions"] == 1

    def test_report_tolerates_corrupt_lines(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        path.write_text('{"fp": "abc", "q": "SELECT 1", "plan": null, '
                        '"status": "ok", "total_s": 0.1, "rows": 1}\n'
                        "garbage\n")
        assert main(["report", str(path)]) == 0
        assert "1 fingerprint(s)" in capsys.readouterr().out

    def test_topqueries_dot_command(self, capsys):
        from repro import Database
        from repro.cli import _dot_command

        db = Database()
        db.execute("SELECT VALUE 1")
        assert _dot_command(db, ".topqueries 5")
        out = capsys.readouterr().out
        assert "query store:" in out

    def test_topqueries_disabled_store(self, capsys):
        from repro import Database
        from repro.cli import _dot_command

        db = Database(query_store=False)
        assert _dot_command(db, ".topqueries")
        assert "disabled" in capsys.readouterr().out

    def test_topqueries_bad_argument(self, capsys):
        from repro import Database
        from repro.cli import _dot_command

        db = Database()
        assert _dot_command(db, ".topqueries nope")
        assert "usage: .topqueries" in capsys.readouterr().out
