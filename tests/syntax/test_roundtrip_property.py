"""Property: printing any generated AST and reparsing reproduces it.

The comparison is on the *reprinted* text (a canonical form), which is a
fixpoint: print ∘ parse ∘ print = print.
"""

from hypothesis import given, settings, strategies as st

from repro.datamodel.values import MISSING
from repro.syntax import ast
from repro.syntax.parser import parse, parse_expression
from repro.syntax.printer import print_ast

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    # Avoid generating reserved words as identifiers.
    lambda name: name.upper()
    not in __import__("repro.syntax.tokens", fromlist=["KEYWORDS"]).KEYWORDS
)

literals = st.builds(
    ast.Literal,
    st.one_of(
        st.none(),
        st.just(MISSING),
        st.booleans(),
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.text(max_size=8),
    ),
)


def expressions(depth=3):
    base = st.one_of(literals, st.builds(ast.VarRef, identifiers))
    if depth == 0:
        return base
    inner = expressions(depth - 1)
    return st.one_of(
        base,
        st.builds(ast.Path, inner, identifiers),
        st.builds(ast.Index, inner, inner),
        st.builds(
            ast.Binary,
            st.sampled_from(["+", "-", "*", "/", "=", "<", "AND", "OR", "||"]),
            inner,
            inner,
        ),
        st.builds(ast.Unary, st.sampled_from(["-", "NOT"]), inner),
        st.builds(ast.ArrayLit, st.lists(inner, max_size=3)),
        st.builds(ast.BagLit, st.lists(inner, max_size=3)),
        st.builds(
            ast.StructLit,
            st.lists(
                st.builds(ast.StructField, st.builds(ast.Literal, st.text(max_size=5)), inner),
                max_size=3,
            ),
        ),
        st.builds(
            ast.Like,
            inner,
            st.builds(ast.Literal, st.text(max_size=5)),
            st.none(),
            st.booleans(),
        ),
        st.builds(ast.IsPredicate, inner, st.sampled_from(["NULL", "MISSING"]), st.booleans()),
        st.builds(
            ast.FunctionCall,
            st.sampled_from(["LOWER", "COALESCE", "ABS", "COLL_SUM"]),
            st.lists(inner, min_size=1, max_size=2),
        ),
    )


EXPRS = expressions()


@given(EXPRS)
@settings(max_examples=200)
def test_expression_print_parse_fixpoint(expr):
    text = print_ast(expr)
    reparsed = parse_expression(text)
    assert print_ast(reparsed) == text


select_values = st.builds(ast.SelectValue, EXPRS, st.booleans())
from_items = st.lists(
    st.builds(ast.FromCollection, EXPRS, identifiers, st.none()),
    min_size=1,
    max_size=2,
)
blocks = st.builds(
    ast.QueryBlock,
    select=select_values,
    from_=st.one_of(st.none(), from_items),
    where=st.one_of(st.none(), EXPRS),
)
queries = st.builds(
    ast.Query,
    body=blocks,
    order_by=st.lists(st.builds(ast.OrderItem, EXPRS, st.booleans()), max_size=2),
    limit=st.one_of(st.none(), st.builds(ast.Literal, st.integers(0, 100))),
)


@given(queries)
@settings(max_examples=150)
def test_query_print_parse_fixpoint(query):
    text = print_ast(query)
    reparsed = parse(text)
    assert print_ast(reparsed) == text
