"""Exception hierarchy for the SQL++ reproduction.

Every error raised by the library derives from :class:`SQLPPError`, so
applications can catch a single base class.  The hierarchy mirrors the
phases of query processing:

* :class:`LexError` / :class:`ParseError` — syntactic analysis.
* :class:`RewriteError` — while rewriting SQL sugar onto the SQL++ Core.
* :class:`BindingError` — name-resolution failures (unknown variables,
  ambiguous bare columns, unknown named values).
* :class:`TypeCheckError` — dynamic type errors in *strict* ("stop on
  error") typing mode, and static type errors when a schema is present.
  In *permissive* mode the evaluator converts these situations into the
  ``MISSING`` value instead of raising (paper, Section IV).
* :class:`EvaluationError` — other runtime failures (division by zero in
  strict mode, LIMIT with a negative argument, ...).
* :class:`SchemaError` — schema definition or validation problems.
* :class:`FormatError` — de/serialisation problems in the format codecs.
* :class:`CatalogError` — unknown or duplicate named values.
"""

from __future__ import annotations

from typing import Optional


class SQLPPError(Exception):
    """Base class for all errors raised by this library."""


class LexError(SQLPPError):
    """Raised when the lexer encounters an invalid character or token.

    Carries the 1-based ``line`` and ``column`` of the offending input,
    plus an optional caret-context ``snippet`` (the offending source line
    with a ``^`` marker) appended to the rendered message.
    """

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        snippet: Optional[str] = None,
    ):
        self.line = line
        self.column = column
        self.snippet = snippet
        if line:
            message = f"{message} (at line {line}, column {column})"
        if snippet:
            message = f"{message}\n{snippet}"
        super().__init__(message)


class ParseError(SQLPPError):
    """Raised when the parser cannot derive a valid SQL++ statement.

    Like :class:`LexError`, carries ``line``/``column`` and an optional
    caret-context ``snippet`` pointing at the offending token.
    """

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        snippet: Optional[str] = None,
    ):
        self.line = line
        self.column = column
        self.snippet = snippet
        if line:
            message = f"{message} (at line {line}, column {column})"
        if snippet:
            message = f"{message}\n{snippet}"
        super().__init__(message)


class RewriteError(SQLPPError):
    """Raised when a SQL-sugar construct cannot be rewritten to Core.

    For example, a SQL aggregate call appearing outside a query block, or
    ``GROUP AS`` redeclaring an existing variable name.
    """


class BindingError(SQLPPError):
    """Raised when a name cannot be resolved to a variable or named value."""


class TypeCheckError(SQLPPError):
    """A type error.

    Dynamically raised only in *strict* typing mode; in permissive mode the
    same situation produces ``MISSING`` (paper, Section IV).  Also raised by
    the static type checker when an optional schema is present.
    """


class EvaluationError(SQLPPError):
    """A runtime evaluation failure that is not a type error."""


class ResourceExhausted(SQLPPError):
    """A query exceeded one of its configured resource limits.

    Raised cooperatively by the evaluator when ``EvalConfig.timeout_s``,
    ``max_rows`` or ``max_recursion`` is exceeded, so a runaway query
    fails promptly instead of hanging.  Carries what was achieved before
    the limit hit, for partial-progress reporting:

    * ``kind`` — ``"timeout"``, ``"max_rows"`` or ``"max_recursion"``;
    * ``rows_produced`` — binding rows materialized before the stop;
    * ``elapsed_s`` — wall time spent before the stop.
    """

    def __init__(
        self,
        message: str,
        kind: str,
        rows_produced: int = 0,
        elapsed_s: float = 0.0,
    ):
        self.kind = kind
        self.rows_produced = rows_produced
        self.elapsed_s = elapsed_s
        super().__init__(message)


class SchemaError(SQLPPError):
    """Raised for invalid schema definitions or failed validations."""


class FormatError(SQLPPError):
    """Raised by the data-format codecs for malformed input/output."""


class CatalogError(SQLPPError):
    """Raised for unknown or conflicting named values in a database."""


def pos_suffix(line: Optional[int], column: Optional[int]) -> str:
    """Format an ``(at line L, column C)`` suffix for error messages."""
    if line is None:
        return ""
    return f" (at line {line}, column {column})"


def caret_snippet(
    source: Optional[str],
    line: Optional[int],
    column: Optional[int],
    indent: str = "  ",
) -> Optional[str]:
    """The source line at ``line`` with a ``^`` under ``column``.

    Shared by parse errors and analyzer diagnostics.  Returns ``None``
    when the position is unknown or outside the source (e.g. a
    diagnostic on a fully synthesized node).
    """
    if not source or not line or not column:
        return None
    lines = source.splitlines()
    if not 1 <= line <= len(lines):
        return None
    text = lines[line - 1]
    if column > len(text) + 1:
        return None
    caret = " " * (column - 1) + "^"
    return f"{indent}{text}\n{indent}{caret}"
