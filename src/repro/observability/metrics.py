"""Per-query metrics and the per-database metrics registry.

Every ``Database.execute``/``explain_analyze`` call produces one
:class:`QueryMetrics` record — per-phase wall times for the query
pipeline (parse, rewrite, plan, execute), compile-cache hit/miss, result
cardinality and outcome — and feeds it to a :class:`MetricsRegistry`,
which maintains monotonic counters and fans the record out to its sinks
(:mod:`repro.observability.sinks`).

This is the instrumentation spine later scaling work (sharding, async
execution, multi-backend dispatch) hangs its counters off: a new
subsystem adds counter names, not a new mechanism.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.observability.sinks import InMemorySink
from repro.observability.tracer import format_seconds


@dataclass
class QueryMetrics:
    """The observable outcome of one query execution."""

    query: str
    #: "ok", "error" or "resource_exhausted".
    status: str = "ok"
    error: Optional[str] = None
    #: Whether parse+rewrite was served from the compile cache.
    cache_hit: bool = False
    parse_s: float = 0.0
    rewrite_s: float = 0.0
    plan_s: float = 0.0
    execute_s: float = 0.0
    total_s: float = 0.0
    #: Top-level result cardinality (None for scalar/error results).
    rows_returned: Optional[int] = None
    #: Unix timestamp of query start (wall clock, for log correlation).
    started_at: float = field(default_factory=time.time)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready representation (used by the JSON-lines sink)."""
        return {
            "query": self.query,
            "status": self.status,
            "error": self.error,
            "cache_hit": self.cache_hit,
            "parse_s": round(self.parse_s, 6),
            "rewrite_s": round(self.rewrite_s, 6),
            "plan_s": round(self.plan_s, 6),
            "execute_s": round(self.execute_s, 6),
            "total_s": round(self.total_s, 6),
            "rows_returned": self.rows_returned,
            "started_at": self.started_at,
        }

    def format_phases(self) -> List[str]:
        """Phase-timing lines shared by ``--stats`` and EXPLAIN ANALYZE."""
        cache = "hit" if self.cache_hit else "miss"
        lines = [
            f"parse:    {format_seconds(self.parse_s)}",
            f"rewrite:  {format_seconds(self.rewrite_s)}  "
            f"(compile cache: {cache})",
        ]
        if self.plan_s:
            lines.append(f"plan:     {format_seconds(self.plan_s)}")
        lines.append(f"execute:  {format_seconds(self.execute_s)}")
        lines.append(f"total:    {format_seconds(self.total_s)}")
        return lines


class MetricsRegistry:
    """Monotonic counters plus a fan-out of per-query records to sinks."""

    def __init__(self, sinks: Optional[List[Any]] = None):
        self.counters: Dict[str, int] = {
            "queries_total": 0,
            "queries_failed": 0,
            "queries_resource_exhausted": 0,
            "rows_returned_total": 0,
            "compile_cache_hits": 0,
            "compile_cache_misses": 0,
        }
        self.memory = InMemorySink()
        self.sinks: List[Any] = [self.memory] + list(sinks or [])
        self.last: Optional[QueryMetrics] = None

    def increment(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def record(self, metrics: QueryMetrics) -> None:
        """Fold one finished query into counters and sinks."""
        self.increment("queries_total")
        if metrics.status == "error":
            self.increment("queries_failed")
        elif metrics.status == "resource_exhausted":
            self.increment("queries_resource_exhausted")
        if metrics.rows_returned is not None:
            self.increment("rows_returned_total", metrics.rows_returned)
        self.last = metrics
        for sink in self.sinks:
            sink.emit(metrics)

    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time view: counters plus the last query's record."""
        return {
            "counters": dict(self.counters),
            "last_query": self.last.to_dict() if self.last else None,
        }

    def format_snapshot(self) -> str:
        """Human-readable form of :meth:`snapshot` (REPL ``.stats``)."""
        lines = ["counters:"]
        for name in sorted(self.counters):
            lines.append(f"  {name}: {self.counters[name]}")
        if self.last is not None:
            lines.append("last query:")
            lines.append(f"  status: {self.last.status}")
            if self.last.error:
                lines.append(f"  error: {self.last.error}")
            if self.last.rows_returned is not None:
                lines.append(f"  rows: {self.last.rows_returned}")
            lines.extend("  " + line for line in self.last.format_phases())
        return "\n".join(lines)
