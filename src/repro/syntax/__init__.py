"""Syntactic analysis for SQL++: lexer, AST, parser and printer.

The grammar covers the full language described in the paper:

* ``SELECT`` / ``SELECT VALUE`` (with the ``SELECT ELEMENT`` synonym),
  writable at the start *or* the end of a query block (Section V-B);
* ``FROM`` with left-correlation, ``AS``/``AT`` binding variables,
  ``UNNEST`` sugar, ``INNER``/``LEFT``/``CROSS JOIN ... ON`` and
  ``UNPIVOT`` items (Sections III and VI-A);
* ``LET``, ``WHERE``, ``GROUP BY ... GROUP AS``, ``HAVING``,
  ``ORDER BY`` / ``LIMIT`` / ``OFFSET`` (Section V-B);
* ``PIVOT ... AT ... FROM ...`` queries (Section VI-B);
* set operations ``UNION``/``INTERSECT``/``EXCEPT`` with ``ALL``;
* subqueries anywhere an expression may appear (Section V-A), struct,
  array and bag constructors (both ``<< >>`` and the paper's ``{{ }}``),
  ``CASE``, ``LIKE``/``IN``/``BETWEEN``/``IS``, window functions
  (``OVER``) and ``CUBE``/``ROLLUP``/``GROUPING SETS``.
"""

from repro.syntax.lexer import Lexer, tokenize
from repro.syntax.parser import Parser, parse, parse_expression
from repro.syntax.printer import print_ast

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "parse_expression",
    "print_ast",
]
