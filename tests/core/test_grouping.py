"""GROUP BY ... GROUP AS, HAVING, aggregate sugar, analytic grouping."""

import pytest

from repro.errors import BindingError

from tests.conftest import bag_of


@pytest.fixture
def sales_db(db):
    db.set(
        "sales",
        [
            {"region": "eu", "product": "a", "amount": 10},
            {"region": "eu", "product": "b", "amount": 20},
            {"region": "us", "product": "a", "amount": 30},
            {"region": "us", "product": "a", "amount": 40},
        ],
    )
    return db


def rows(result):
    return sorted(
        (element.to_dict() for element in bag_of(result)),
        key=lambda row: str(sorted(row.items(), key=str)),
    )


class TestGroupAs:
    def test_group_contents_are_binding_tuples(self, sales_db):
        result = bag_of(
            sales_db.execute(
                "FROM sales AS s GROUP BY s.region AS r GROUP AS g "
                "SELECT VALUE {'r': r, 'n': COLL_COUNT(SELECT VALUE v FROM g AS v)}"
            )
        )
        counts = {row["r"]: row["n"] for row in result}
        assert counts == {"eu": 2, "us": 2}

    def test_group_elements_have_variable_attributes(self, sales_db):
        result = bag_of(
            sales_db.execute(
                "FROM sales AS s GROUP BY s.region AS r GROUP AS g "
                "SELECT VALUE (SELECT VALUE v.s.amount FROM g AS v)"
            )
        )
        amounts = sorted(sorted(bag.to_list()) for bag in result)
        assert amounts == [[10, 20], [30, 40]]

    def test_group_as_includes_let_variables(self, db):
        db.set("t", [{"k": 1, "x": 2}])
        result = bag_of(
            db.execute(
                "FROM t AS r LET double = r.x * 2 "
                "GROUP BY r.k AS k GROUP AS g "
                "SELECT VALUE (SELECT VALUE v.double FROM g AS v)"
            )
        )
        assert result[0].to_list() == [4]

    def test_key_alias_shadows_from_variable(self, paper_db):
        # Listing 12: GROUP BY LOWER(p) AS p rebinds p to the lowered key.
        result = bag_of(
            paper_db.execute(
                "FROM hr.emp_nest_scalars AS e, e.projects AS p "
                "WHERE p LIKE '%Security%' "
                "GROUP BY LOWER(p) AS p GROUP AS g "
                "SELECT VALUE p"
            )
        )
        assert sorted(result) == ["olap security", "oltp security"]

    def test_from_variable_not_visible_after_grouping(self, sales_db):
        with pytest.raises(BindingError):
            sales_db.execute(
                "FROM sales AS s GROUP BY s.region AS r GROUP AS g "
                "SELECT VALUE s.amount",
                sql_compat=False,
            )

    def test_group_by_null_and_missing_keys(self, db):
        db.set("t", [{"k": None}, {"k": None}, {}, {"k": 1}])
        result = bag_of(
            db.execute(
                "FROM t AS r GROUP BY r.k AS k GROUP AS g "
                "SELECT VALUE COLL_COUNT(SELECT VALUE 1 FROM g AS v)"
            )
        )
        assert sorted(result) == [1, 1, 2]

    def test_group_by_composite_key_deep_equality(self, db):
        db.set("t", [{"k": [1, 2]}, {"k": [1, 2]}, {"k": [2, 1]}])
        result = bag_of(
            db.execute(
                "FROM t AS r GROUP BY r.k AS k GROUP AS g SELECT VALUE k"
            )
        )
        assert len(result) == 2

    def test_multiple_group_keys(self, sales_db):
        result = rows(
            sales_db.execute(
                "SELECT s.region, s.product, SUM(s.amount) AS total "
                "FROM sales AS s GROUP BY s.region, s.product"
            )
        )
        assert {"region": "us", "product": "a", "total": 70} in result
        assert len(result) == 3


class TestAggregateSugar:
    def test_explain_shows_coll_rewrite(self, sales_db):
        plan = sales_db.explain(
            "SELECT AVG(s.amount) AS a FROM sales AS s GROUP BY s.region"
        )
        assert "COLL_AVG" in plan
        assert "GROUP AS" in plan

    def test_all_aggregates(self, sales_db):
        result = rows(
            sales_db.execute(
                "SELECT COUNT(*) AS n, SUM(s.amount) AS s, AVG(s.amount) AS a, "
                "MIN(s.amount) AS lo, MAX(s.amount) AS hi "
                "FROM sales AS s"
            )
        )
        assert result == [{"n": 4, "s": 100, "a": 25.0, "lo": 10, "hi": 40}]

    def test_count_distinct(self, sales_db):
        result = bag_of(
            sales_db.execute("SELECT VALUE COUNT(DISTINCT s.product) FROM sales AS s")
        )
        assert result == [2]

    def test_array_agg(self, sales_db):
        result = bag_of(
            sales_db.execute(
                "SELECT VALUE ARRAY_AGG(s.amount) FROM sales AS s WHERE s.region = 'eu'"
            )
        )
        assert sorted(result[0]) == [10, 20]

    def test_aggregate_in_having(self, sales_db):
        result = rows(
            sales_db.execute(
                "SELECT s.region FROM sales AS s GROUP BY s.region "
                "HAVING SUM(s.amount) > 50"
            )
        )
        assert result == [{"region": "us"}]

    def test_aggregate_in_order_by(self, sales_db):
        result = sales_db.execute(
            "SELECT s.region AS region FROM sales AS s GROUP BY s.region "
            "ORDER BY SUM(s.amount) DESC"
        )
        assert [row["region"] for row in result] == ["us", "eu"]

    def test_group_key_expression_in_select(self, sales_db):
        result = rows(
            sales_db.execute(
                "SELECT UPPER(s.region) AS r FROM sales AS s GROUP BY UPPER(s.region)"
            )
        )
        assert result == [{"r": "EU"}, {"r": "US"}]

    def test_arithmetic_over_aggregates(self, sales_db):
        result = bag_of(
            sales_db.execute(
                "SELECT VALUE MAX(s.amount) - MIN(s.amount) FROM sales AS s"
            )
        )
        assert result == [30]

    def test_nested_subquery_keeps_own_aggregates(self, sales_db):
        result = bag_of(
            sales_db.execute(
                "SELECT VALUE (SELECT AVG(x.amount) AS a FROM sales AS x) "
                "FROM [1] AS one"
            )
        )
        inner = bag_of(result[0])
        assert inner[0]["a"] == 25.0

    def test_aggregates_ignore_absent(self, db):
        db.set("t", [{"x": 1}, {"x": None}, {}])
        result = rows(db.execute("SELECT COUNT(r.x) AS c, SUM(r.x) AS s FROM t AS r"))
        assert result == [{"c": 1, "s": 1}]

    def test_avg_collection_direct_core(self, db):
        # In Core mode the SQL names are composable collection functions.
        assert db.execute("AVG([1, 2, 3])", sql_compat=False) == 2

    def test_sum_empty_is_null(self, db):
        assert db.execute("COLL_SUM([]) IS NULL") is True

    def test_count_empty_is_zero(self, db):
        assert db.execute("COLL_COUNT([])") == 0


class TestAnalyticGrouping:
    def test_rollup(self, sales_db):
        result = rows(
            sales_db.execute(
                "SELECT s.region AS r, s.product AS p, SUM(s.amount) AS t "
                "FROM sales AS s GROUP BY ROLLUP (s.region, s.product)"
            )
        )
        # 3 (region, product) groups + 2 region subtotals + 1 grand total.
        assert len(result) == 6
        grand = [row for row in result if row["r"] is None and row["p"] is None]
        assert grand[0]["t"] == 100

    def test_cube(self, sales_db):
        result = rows(
            sales_db.execute(
                "SELECT s.region AS r, s.product AS p, SUM(s.amount) AS t "
                "FROM sales AS s GROUP BY CUBE (s.region, s.product)"
            )
        )
        # 3 + 2 regions + 2 products + 1 total.
        assert len(result) == 8
        product_totals = {
            row["p"]: row["t"] for row in result if row["r"] is None and row["p"]
        }
        assert product_totals == {"a": 80, "b": 20}

    def test_grouping_sets(self, sales_db):
        result = rows(
            sales_db.execute(
                "SELECT s.region AS r, SUM(s.amount) AS t FROM sales AS s "
                "GROUP BY GROUPING SETS ((s.region), ())"
            )
        )
        assert len(result) == 3

    def test_rollup_over_nested_data(self, paper_db):
        # The paper's point: analytic grouping composes with nesting.
        result = rows(
            paper_db.execute(
                "SELECT e.title AS t, p AS p, COUNT(*) AS n "
                "FROM hr.emp_nest_scalars AS e, e.projects AS p "
                "GROUP BY ROLLUP (e.title, p)"
            )
        )
        # Bob's title is literally null, so two (None, None) rows exist:
        # the title=null subtotal (3 projects) and the grand total (4).
        none_rows = sorted(
            row["n"] for row in result if row["t"] is None and row["p"] is None
        )
        assert none_rows == [3, 4]
