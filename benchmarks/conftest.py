"""Shared fixtures and helpers for the benchmark harness.

Every experiment Exx in DESIGN.md has one ``bench_eXX_*.py`` file here.
The paper (a language-design paper) reports no absolute performance
numbers, so each experiment

* regenerates the *rows/series the paper's claim is about* (who wins,
  what fails where, what stays equal), asserting the claim's shape, and
* times the operations with pytest-benchmark so relative costs are
  visible in the report.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag


def assert_same_bag(left, right) -> None:
    """Assert two query results are equal as bags."""
    left_bag = Bag(list(left)) if not isinstance(left, Bag) else left
    right_bag = Bag(list(right)) if not isinstance(right, Bag) else right
    assert deep_equals(left_bag, right_bag), "results differ"


@pytest.fixture
def fresh_db() -> Database:
    return Database()


def make_db(**collections) -> Database:
    """A database preloaded with the given named collections."""
    db = Database()
    for name, value in collections.items():
        db.set(name.replace("__", "."), value)
    return db
