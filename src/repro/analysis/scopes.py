"""The scope resolver: name binding over the Core AST.

Walks the binding structure the evaluator implements — left-correlated
FROM items, sequential LETs, the post-``GROUP BY`` scope replacement
(only the key aliases and the ``GROUP AS`` variable survive a
grouping), correlated subqueries — and reports:

* ``SQLPP001`` unbound-variable: a name that is neither a variable in
  scope nor a named value in the database (including the evaluator's
  dotted-catalog-name rescue, ``hr.emp``);
* ``SQLPP002`` shadowed-variable: a binding hiding an earlier one;
* ``SQLPP003`` unused-let: a LET binding never referenced while
  visible;
* ``SQLPP004`` unknown-function / wrong arity: a call the runtime is
  guaranteed to reject.

ORDER BY keys get *lenient* resolution when the block's output tuple
shape is not statically known: the evaluator lets sort keys reference
output attributes (SQL-style column references), so unbound reports
there are only sound when every output attribute name is known.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import make
from repro.syntax import ast


@dataclass
class _Binding:
    """One name in scope, with use tracking for unused-LET."""

    name: str
    kind: str  # 'from' | 'at' | 'let' | 'group' | 'key' | 'output'
    line: Optional[int]
    column: Optional[int]
    used: bool = False
    report_unused: bool = False


_Env = Dict[str, _Binding]


class ScopeResolver:
    """Resolve every name in a Core query against its binding site."""

    def __init__(self, catalog_names: Tuple[str, ...] = ()) -> None:
        self._catalog: Set[str] = set(catalog_names)
        self.diagnostics: List[Diagnostic] = []
        # Depth of lenient contexts (ORDER BY over unknown output
        # shapes): unbound reports are suppressed, traversal continues.
        self._lenient = 0

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def check_query(self, query: ast.Query, env: Optional[_Env] = None) -> None:
        env = dict(env) if env else {}
        body_env, output_attrs = self._check_body(query.body, env)
        if query.order_by:
            order_env = dict(env)
            order_env.update(body_env)
            lenient = output_attrs is None
            for attr in output_attrs or ():
                order_env.setdefault(
                    attr, _Binding(attr, "output", None, None, used=True)
                )
            if lenient:
                self._lenient += 1
            try:
                for item in query.order_by:
                    self.check_expr(item.expr, order_env)
            finally:
                if lenient:
                    self._lenient -= 1
        if query.limit is not None:
            self.check_expr(query.limit, env)
        if query.offset is not None:
            self.check_expr(query.offset, env)

    def _check_body(
        self, body: ast.Node, env: _Env
    ) -> Tuple[_Env, Optional[Set[str]]]:
        """Check a query body; returns the environment sort keys may
        additionally see, plus the output attribute names when the
        output tuple shape is statically known (None = unknown)."""
        if isinstance(body, ast.QueryBlock):
            return self._check_block(body, env)
        if isinstance(body, ast.SetOp):
            left_env, left_attrs = self._check_body(body.left, env)
            __, right_attrs = self._check_body(body.right, env)
            if left_attrs is None or right_attrs is None:
                return {}, None
            return {}, left_attrs | right_attrs
        if isinstance(body, ast.Query):
            self.check_query(body, env)
            return {}, None
        # Bare expression query.
        self.check_expr(body, env)
        return {}, None

    # ------------------------------------------------------------------
    # Query blocks
    # ------------------------------------------------------------------

    def _check_block(
        self, block: ast.QueryBlock, outer_env: _Env
    ) -> Tuple[_Env, Optional[Set[str]]]:
        env = dict(outer_env)
        local: List[_Binding] = []

        if block.from_ is not None:
            for item in block.from_:
                self._check_from(item, env, local)
        for let in block.lets:
            self.check_expr(let.expr, env)
            binding = self._bind(env, let.name, "let", let, shadow_check=True)
            binding.report_unused = not let.name.startswith(("_", "$"))
            local.append(binding)
        if block.where is not None:
            self.check_expr(block.where, env)

        if block.group_by is not None:
            for key in block.group_by.keys:
                self.check_expr(key.expr, env)
            if block.group_by.group_as is not None:
                # GROUP AS captures every block-local binding into the
                # group's tuples, so they all count as used.
                for binding in local:
                    binding.used = True
            # Grouping replaces the block scope: only the key aliases
            # and the GROUP AS variable survive (paper, Section V-B).
            env = dict(outer_env)
            for key in block.group_by.keys:
                self._bind(env, key.alias, "key", key, shadow_check=False)
            if block.group_by.group_as is not None:
                self._bind(
                    env,
                    block.group_by.group_as,
                    "group",
                    block.group_by,
                    shadow_check=True,
                )

        if block.having is not None:
            self.check_expr(block.having, env)
        output_attrs = self._check_select(block.select, env)

        for binding in local:
            if binding.report_unused and not binding.used:
                self.diagnostics.append(
                    make(
                        "SQLPP003",
                        f"LET binding {binding.name!r} is never used",
                        line=binding.line,
                        column=binding.column,
                        hint="remove it, or rename it with a leading "
                        "underscore to keep it intentionally",
                    )
                )
        return env, output_attrs

    def _check_from(
        self, item: ast.FromItem, env: _Env, local: List[_Binding]
    ) -> None:
        if isinstance(item, ast.FromCollection):
            self.check_expr(item.expr, env)
            local.append(self._bind(env, item.alias, "from", item, shadow_check=True))
            if item.at_alias is not None:
                local.append(
                    self._bind(env, item.at_alias, "at", item, shadow_check=True)
                )
        elif isinstance(item, ast.FromUnpivot):
            self.check_expr(item.expr, env)
            local.append(
                self._bind(env, item.value_alias, "from", item, shadow_check=True)
            )
            local.append(
                self._bind(env, item.at_alias, "at", item, shadow_check=True)
            )
        elif isinstance(item, ast.FromJoin):
            self._check_from(item.left, env, local)
            self._check_from(item.right, env, local)
            if item.on is not None:
                self.check_expr(item.on, env)

    def _check_select(
        self, select: ast.SelectClause, env: _Env
    ) -> Optional[Set[str]]:
        """Check the SELECT clause; returns the statically-known output
        attribute names (None when the shape is open)."""
        if isinstance(select, ast.SelectValue):
            self.check_expr(select.expr, env)
            return _struct_literal_keys(select.expr)
        if isinstance(select, ast.SelectList):
            attrs: Set[str] = set()
            known = True
            for item in select.items:
                self.check_expr(item.expr, env)
                if item.star or item.alias is None:
                    known = False
                else:
                    attrs.add(item.alias)
            return attrs if known else None
        if isinstance(select, ast.SelectStar):
            for binding in env.values():
                binding.used = True
            return None
        if isinstance(select, ast.PivotClause):
            self.check_expr(select.value, env)
            self.check_expr(select.at, env)
            return None
        return None

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def check_expr(self, node: ast.Node, env: _Env) -> None:
        if isinstance(node, ast.VarRef):
            self._resolve(node.name, env, node)
        elif isinstance(node, ast.Path):
            self._check_path(node, env)
        elif isinstance(node, (ast.SubqueryExpr, ast.CoerceSubquery)):
            self.check_query(node.query, env)
        elif isinstance(node, ast.FunctionCall):
            self._check_call(node, env)
        elif isinstance(node, ast.WindowCall):
            # The window-function name is dispatched by the window
            # engine, not the scalar registry — skip the name check.
            for arg in node.call.args:
                self.check_expr(arg, env)
            for expr in node.spec.partition_by:
                self.check_expr(expr, env)
            for item in node.spec.order_by:
                self.check_expr(item.expr, env)
        elif isinstance(node, ast.Query):
            self.check_query(node, env)
        else:
            for child in _children(node):
                self.check_expr(child, env)

    def _check_path(self, node: ast.Path, env: _Env) -> None:
        chain = _var_chain(node)
        if chain is None:
            self.check_expr(node.base, env)
            return
        names, base_ref = chain
        if self._resolvable(names[0], env):
            return
        # The evaluator's rescue: successively longer dotted prefixes
        # as catalog names ('hr.emp' stored under one dotted name).
        for length in range(2, len(names) + 1):
            if ".".join(names[:length]) in self._catalog:
                return
        self._report_unbound(names[0], env, base_ref)

    def _check_call(self, node: ast.FunctionCall, env: _Env) -> None:
        from repro.functions.registry import REGISTRY

        name = node.name.upper()
        definition = REGISTRY.lookup(name)
        if not name.startswith("$") and definition is None:
            hint = None
            from repro.functions.aggregates import SQL_AGGREGATES

            if name in SQL_AGGREGATES:
                hint = (
                    f"SQL aggregates are compat-mode sugar; in core "
                    f"mode call {SQL_AGGREGATES[name]} over a collection"
                )
            else:
                close = difflib.get_close_matches(name, REGISTRY.names(), n=1)
                if close:
                    hint = f"did you mean {close[0]}?"
            self.diagnostics.append(
                make(
                    "SQLPP004",
                    f"unknown function {node.name!r}",
                    line=node.line,
                    column=node.column,
                    hint=hint,
                )
            )
        elif definition is not None and not node.star:
            count = len(node.args)
            if count < definition.min_args or (
                definition.max_args is not None
                and count > definition.max_args
            ):
                expected = (
                    str(definition.min_args)
                    if definition.max_args == definition.min_args
                    else f"{definition.min_args}..{definition.max_args or 'N'}"
                )
                self.diagnostics.append(
                    make(
                        "SQLPP004",
                        f"{definition.name} expects {expected} "
                        f"argument(s), got {count}",
                        line=node.line,
                        column=node.column,
                    )
                )
        for arg in node.args:
            self.check_expr(arg, env)

    # ------------------------------------------------------------------
    # Binding and resolution
    # ------------------------------------------------------------------

    def _bind(
        self,
        env: _Env,
        name: str,
        kind: str,
        node: ast.Node,
        shadow_check: bool,
    ) -> _Binding:
        if shadow_check and name in env and not name.startswith("$"):
            previous = env[name]
            self.diagnostics.append(
                make(
                    "SQLPP002",
                    f"{kind.upper()} binding {name!r} shadows the "
                    f"{previous.kind.upper()} binding of the same name",
                    line=node.line,
                    column=node.column,
                )
            )
        binding = _Binding(name, kind, node.line, node.column)
        env[name] = binding
        return binding

    def _resolvable(self, name: str, env: _Env) -> bool:
        if name in env:
            env[name].used = True
            return True
        if name in self._catalog:
            return True
        # Rewriter-synthesized names ($g, $row...) are correct by
        # construction; parameters arrive as Parameter nodes.
        return name.startswith("$")

    def _resolve(self, name: str, env: _Env, node: ast.Node) -> None:
        if not self._resolvable(name, env):
            self._report_unbound(name, env, node)

    def _report_unbound(
        self, name: str, env: _Env, node: ast.Node
    ) -> None:
        if self._lenient:
            return
        candidates = sorted(set(env) | self._catalog)
        close = difflib.get_close_matches(name, candidates, n=1)
        self.diagnostics.append(
            make(
                "SQLPP001",
                f"unbound name {name!r}: not a variable in scope and "
                f"not a named value in the database",
                line=node.line,
                column=node.column,
                hint=f"did you mean {close[0]!r}?" if close else None,
            )
        )


# ----------------------------------------------------------------------
# Tree helpers
# ----------------------------------------------------------------------


def _children(node: ast.Node) -> List[ast.Node]:
    """Every direct child node, generically over the dataclass fields.

    Used for expression nodes with no binding behaviour, so the walker
    stays correct as new node kinds appear.
    """
    import dataclasses

    result: List[ast.Node] = []
    for field in dataclasses.fields(node):
        if field.name in ("line", "column"):
            continue
        value = getattr(node, field.name)
        if isinstance(value, ast.Node):
            result.append(value)
        elif isinstance(value, (list, tuple)):
            result.extend(v for v in value if isinstance(v, ast.Node))
    return result


def _var_chain(
    node: ast.Path,
) -> Optional[Tuple[List[str], ast.VarRef]]:
    """The dotted name chain under a Path, when the base bottoms out in
    a VarRef: ``hr.emp.name`` -> (['hr', 'emp', 'name'], VarRef('hr'))."""
    attrs: List[str] = []
    current: ast.Expr = node
    while isinstance(current, ast.Path):
        attrs.append(current.attr)
        current = current.base
    if not isinstance(current, ast.VarRef):
        return None
    attrs.append(current.name)
    attrs.reverse()
    return attrs, current


def _struct_literal_keys(expr: ast.Expr) -> Optional[Set[str]]:
    """The attribute names of a struct literal with all-literal string
    keys (None otherwise) — the statically-known output shape."""
    if not isinstance(expr, ast.StructLit):
        return None
    keys: Set[str] = set()
    for field in expr.fields:
        if not (
            isinstance(field.key, ast.Literal)
            and isinstance(field.key.value, str)
        ):
            return None
        keys.add(field.key.value)
    return keys
