"""The physical query planner.

Sits between the sugar→Core rewriter and the evaluator: given a Core
:class:`~repro.syntax.ast.QueryBlock`, it analyzes the FROM clause and
the WHERE conjunction and produces a :class:`BlockPlan` of physical
operators (:mod:`repro.core.plan_ops`) plus a residual WHERE.  The
rewrites it can fire:

* **hash-equi-join** — an uncorrelated join whose ``ON`` is a
  conjunction containing at least one equality that splits cleanly
  into a left-side and a right-side key expression becomes a
  :class:`~repro.core.plan_ops.HashJoinOp`;
* **materialize-right** — an uncorrelated join right side that does not
  qualify for hashing (non-equi ``ON``, CROSS) is materialized once
  instead of re-enumerated per left binding;
* **materialize-once** — an uncorrelated later FROM item in a comma
  cross product is enumerated once instead of once per upstream
  binding;
* **predicate-pushdown** — WHERE conjuncts over a single FROM item's
  variables are evaluated during that item's enumeration, before the
  cross product is materialized; conjuncts over a prefix of items are
  applied as soon as the prefix is complete.

Fallback rules (the planner *refuses* and the reference semantics run
unchanged) — see docs/PLANNER.md:

* strict typing mode: the reference pipeline's evaluation order is
  observable through raised errors, so no rewriting happens at all;
* correlated (lateral) right sides: the reference nested loop runs,
  via :class:`~repro.core.plan_ops.CorrelatedJoinOp`;
* pushdown is skipped when the block has LET clauses (LET evaluates
  between FROM and WHERE in the reference pipeline);
* a conjunct is only relocated when it is *relocatable*: built from
  node kinds that cannot raise before the WHERE clause would have
  (no window calls, subqueries, parameters, unknown functions);
* duplicate variable names across join sides disable hashing.

Every plan is checked against the reference (``optimize=False``) output
by the property tests and the compat-kit parity test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.config import EvalConfig
from repro.core.plan_ops import (
    CorrelatedJoinOp,
    HashJoinOp,
    MaterializeJoinOp,
    PlanOp,
    ScanOp,
)
from repro.functions.registry import REGISTRY
from repro.syntax import ast


# =========================================================================
# Analyses
# =========================================================================


def free_names(node: ast.Node) -> Set[str]:
    """Every variable name referenced anywhere under ``node``.

    A conservative over-approximation of the free variables: names bound
    inside nested subqueries are included too, which can only make the
    planner *more* cautious (a rewrite is applied only when the name set
    proves independence).
    """
    return {n.name for n in node.walk() if isinstance(n, ast.VarRef)}


def item_vars(item: ast.FromItem) -> List[str]:
    """The variables a FROM item binds, in binding order (matches
    ``Evaluator._collect_item_vars``)."""
    result: List[str] = []
    _collect_vars(item, result)
    return result


def _collect_vars(item: ast.FromItem, out: List[str]) -> None:
    if isinstance(item, ast.FromCollection):
        out.append(item.alias)
        if item.at_alias:
            out.append(item.at_alias)
    elif isinstance(item, ast.FromUnpivot):
        out.append(item.value_alias)
        out.append(item.at_alias)
    elif isinstance(item, ast.FromJoin):
        _collect_vars(item.left, out)
        _collect_vars(item.right, out)


_UNSAFE_NODES = (ast.WindowCall, ast.SubqueryExpr, ast.CoerceSubquery, ast.Parameter)


def is_relocatable(expr: ast.Expr) -> bool:
    """Whether evaluating ``expr`` earlier/fewer times than the
    reference WHERE/ON position is unobservable in permissive mode.

    Permissive typing turns dynamic type errors into MISSING, so most
    expressions are total; the exceptions that can still raise or carry
    evaluation state — window calls, subqueries, positional parameters,
    unknown or ``*`` function calls — keep a conjunct pinned in place.
    """
    for node in expr.walk():
        if isinstance(node, _UNSAFE_NODES):
            return False
        if isinstance(node, ast.FunctionCall):
            if node.star or REGISTRY.lookup(node.name) is None:
                return False
    return True


def split_conjuncts(expr: ast.Expr) -> List[ast.Expr]:
    """Flatten a conjunction tree into its conjuncts.

    Keeping a binding requires the whole AND tree to be exactly TRUE,
    which (by 3-valued AND) holds iff every conjunct is exactly TRUE —
    so conjunct-wise filtering is equivalent to filtering on the tree.
    """
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def _and_fold(conjuncts: List[ast.Expr]) -> Optional[ast.Expr]:
    if not conjuncts:
        return None
    folded = conjuncts[0]
    for conjunct in conjuncts[1:]:
        folded = ast.Binary(op="AND", left=folded, right=conjunct)
    return folded


# =========================================================================
# The plan
# =========================================================================


@dataclass
class ItemPlan:
    """One top-level FROM item: its operator plus cross-product hints."""

    op: PlanOp
    #: Independent of every earlier item's variables → enumerate once.
    uncorrelated: bool = False
    #: Pushed conjuncts over a *prefix* of items, applied right after
    #: this item extends the binding stream.
    prefix_filters: List[ast.Expr] = field(default_factory=list)


@dataclass
class BlockPlan:
    """The physical plan for one query block's FROM + WHERE stages."""

    items: List[ItemPlan]
    residual_where: Optional[ast.Expr]
    rewrites: List[str]

    def execute(self, evaluator, env) -> list:
        """Produce the block's binding environments eagerly (the
        materialized form of :meth:`iter_envs`)."""
        return list(self.iter_envs(evaluator, env))

    def iter_envs(self, evaluator, env):
        """Stream the block's binding environments (replaces the
        reference FROM loop and part of the WHERE in ``eval_block``).

        Pipelined: each upstream environment flows through the item
        chain as soon as it exists, so a downstream consumer that stops
        pulling (LIMIT, top-K, EXISTS) stops every operator.  The
        materialize-once rewrite survives streaming — an uncorrelated
        item is enumerated a single time, caching its rows while the
        first upstream environment streams through and replaying the
        cache for later ones.  An item is never enumerated before the
        upstream stream produces an environment, matching the reference
        pipeline's behavior on empty streams (error parity).
        """
        stream = iter((env,))
        for item_plan in self.items:
            stream = self._extend_stream(evaluator, env, stream, item_plan)
        return stream

    def _extend_stream(self, evaluator, root_env, upstream, item_plan):
        governor = evaluator.governor
        fns = [evaluator.compiled(p) for p in item_plan.prefix_filters]
        if item_plan.uncorrelated:
            # Uncorrelated: the operator's rows do not depend on the
            # upstream environment, so enumerate against the root
            # environment once and replay for later upstream rows.  The
            # replayed cross product can explode on its own; account
            # for replayed extensions in the governor per row.
            cache = None
            for current in upstream:
                if cache is None:
                    cache = []
                    for row in item_plan.op.iter_bindings(evaluator, root_env):
                        cache.append(row)
                        extended = current.extend(row)
                        if not fns or all(fn(extended) is True for fn in fns):
                            yield extended
                else:
                    for row in cache:
                        if governor is not None:
                            governor.add(1)
                        extended = current.extend(row)
                        if not fns or all(fn(extended) is True for fn in fns):
                            yield extended
        else:
            for current in upstream:
                for row in item_plan.op.iter_bindings(evaluator, current):
                    extended = current.extend(row)
                    if not fns or all(fn(extended) is True for fn in fns):
                        yield extended

    def explain(self, tracer=None) -> str:
        """The plan as text; with a tracer, annotated with runtime stats
        (EXPLAIN ANALYZE)."""
        from repro.syntax.printer import print_ast

        lines = ["FROM"]
        for item_plan in self.items:
            op_lines = item_plan.op.explain_lines(1, tracer)
            if item_plan.uncorrelated and len(self.items) > 1:
                op_lines[0] += "  [materialized once]"
            lines.extend(op_lines)
            for predicate in item_plan.prefix_filters:
                lines.append(f"  filter (prefix): {print_ast(predicate)}")
        if self.residual_where is not None:
            lines.append(f"WHERE (residual): {print_ast(self.residual_where)}")
        else:
            lines.append("WHERE: (none — fully pushed down or absent)")
        lines.append("rewrites fired:")
        if self.rewrites:
            lines.extend(f"  - {rewrite}" for rewrite in self.rewrites)
        else:
            lines.append("  - (none)")
        return "\n".join(lines)


# =========================================================================
# Planning
# =========================================================================


def plan_block(block: ast.QueryBlock, config: EvalConfig) -> Optional[BlockPlan]:
    """Plan a Core query block; None means "run the reference pipeline".

    Returns a plan only when at least one rewrite fires, so the
    reference path stays the common case for trivial queries.
    """
    if block.from_ is None:
        return None
    if not config.optimize or not config.is_permissive:
        return None

    rewrites: List[str] = []
    item_plans: List[ItemPlan] = []
    item_var_sets: List[Set[str]] = []
    prev_vars: Set[str] = set()
    for index, item in enumerate(block.from_):
        op = _plan_item(item, rewrites)
        names = free_names(item)
        uncorrelated = not (names & prev_vars)
        if uncorrelated and index > 0:
            rewrites.append(f"materialize-once: FROM item #{index + 1}")
        item_plans.append(ItemPlan(op=op, uncorrelated=uncorrelated))
        variables = set(item_vars(item))
        item_var_sets.append(variables)
        prev_vars |= variables

    residual_where = block.where
    # Pushdown is only safe when nothing evaluates between FROM and
    # WHERE in the reference pipeline (LET does).
    if block.where is not None and not block.lets:
        residual: List[ast.Expr] = []
        for conjunct in split_conjuncts(block.where):
            if not _push_conjunct(conjunct, item_plans, item_var_sets, rewrites):
                residual.append(conjunct)
        if len(residual) < len(split_conjuncts(block.where)):
            residual_where = _and_fold(residual)

    if not rewrites:
        return None
    return BlockPlan(
        items=item_plans, residual_where=residual_where, rewrites=rewrites
    )


def _push_conjunct(
    conjunct: ast.Expr,
    item_plans: List[ItemPlan],
    item_var_sets: List[Set[str]],
    rewrites: List[str],
) -> bool:
    """Push one WHERE conjunct as deep as it can safely go; False keeps
    it in the residual WHERE."""
    from repro.syntax.printer import print_ast

    names = free_names(conjunct)
    if not names or not is_relocatable(conjunct):
        return False
    # Single-item conjunct: filter during that item's enumeration.
    for index, variables in enumerate(item_var_sets):
        if names <= variables:
            _attach_filter(item_plans[index].op, conjunct, names)
            rewrites.append(
                f"predicate-pushdown: {print_ast(conjunct)} "
                f"→ FROM item #{index + 1}"
            )
            return True
    # Prefix conjunct: apply right after the earliest prefix that binds
    # every referenced variable (worthless on the last item — that is
    # just WHERE).
    prefix: Set[str] = set()
    for index, variables in enumerate(item_var_sets):
        prefix |= variables
        if names <= prefix:
            if index >= len(item_var_sets) - 1:
                return False
            item_plans[index].prefix_filters.append(conjunct)
            rewrites.append(
                f"predicate-pushdown: {print_ast(conjunct)} "
                f"→ after FROM item #{index + 1}"
            )
            return True
    return False


def _attach_filter(op: PlanOp, conjunct: ast.Expr, names: Set[str]) -> None:
    """Attach a pushed conjunct to the deepest operator that binds all
    its variables.  Never descends into the padded (right) side of a
    LEFT join: filtering there before padding would change which rows
    get padded."""
    if isinstance(op, (HashJoinOp, MaterializeJoinOp, CorrelatedJoinOp)):
        if names <= set(op.left.vars):
            _attach_filter(op.left, conjunct, names)
            return
    if isinstance(op, (HashJoinOp, MaterializeJoinOp)) and op.kind != "LEFT":
        if names <= set(op.right.vars):
            _attach_filter(op.right, conjunct, names)
            return
    op.filters.append(conjunct)


def _plan_item(item: ast.FromItem, rewrites: List[str]) -> PlanOp:
    """Plan one FROM item subtree (joins recurse; leaves scan)."""
    if isinstance(item, ast.FromJoin):
        return _plan_join(item, rewrites)
    op = ScanOp(item)
    op.vars = item_vars(item)
    return op


def _plan_join(item: ast.FromJoin, rewrites: List[str]) -> PlanOp:
    left_op = _plan_item(item.left, rewrites)
    left_vars = set(item_vars(item.left))
    right_vars = item_vars(item.right)
    right_names = free_names(item.right)

    op: PlanOp
    if right_names & left_vars:
        # Lateral right side: the paper's left-correlation semantics.
        op = CorrelatedJoinOp(left_op, item)
        op.right_vars = right_vars
    else:
        right_op = _plan_item(item.right, rewrites)
        split = None
        if (
            item.on is not None
            and item.kind in ("INNER", "LEFT")
            and not (left_vars & set(right_vars))
        ):
            split = _split_equi_on(item.on, left_vars, set(right_vars))
        if split is not None:
            left_keys, right_keys, residual = split
            op = HashJoinOp(
                left_op,
                right_op,
                item.kind,
                left_keys,
                right_keys,
                residual,
                right_vars,
            )
            rewrites.append(
                f"hash-equi-join[{item.kind}]: {op.describe()}"
            )
        else:
            op = MaterializeJoinOp(
                left_op, right_op, item.kind, item.on, right_vars
            )
            rewrites.append(
                f"materialize-right[{item.kind}]: right side enumerated once"
            )
    op.vars = item_vars(item)
    return op


def _split_equi_on(
    on: ast.Expr, left_vars: Set[str], right_vars: Set[str]
) -> Optional[Tuple[List[ast.Expr], List[ast.Expr], List[ast.Expr]]]:
    """Split a conjunctive ON into hashable key pairs plus residual.

    Returns ``(left_keys, right_keys, residual)`` or None when the join
    cannot hash: no clean equality conjunct, or a conjunct that is not
    relocatable (its evaluation pattern would change observably).
    """
    left_keys: List[ast.Expr] = []
    right_keys: List[ast.Expr] = []
    residual: List[ast.Expr] = []
    for conjunct in split_conjuncts(on):
        if not is_relocatable(conjunct):
            return None
        if isinstance(conjunct, ast.Binary) and conjunct.op == "=":
            a_names = free_names(conjunct.left)
            b_names = free_names(conjunct.right)
            if a_names <= left_vars and b_names <= right_vars:
                left_keys.append(conjunct.left)
                right_keys.append(conjunct.right)
                continue
            if a_names <= right_vars and b_names <= left_vars:
                left_keys.append(conjunct.right)
                right_keys.append(conjunct.left)
                continue
        residual.append(conjunct)
    if not left_keys:
        return None
    return left_keys, right_keys, residual
