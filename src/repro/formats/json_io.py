"""JSON codec.

JSON objects map to SQL++ tuples and JSON arrays to SQL++ arrays.  JSON
has no bag, so writing a bag serialises its elements as an array; by
default a *top-level* array is read back as a bag (``top_level_bag``),
matching how document stores treat a collection of documents, so that a
load/dump round trip of a named collection is stable.

JSON objects may in principle carry duplicate keys; Python's ``json``
collapses them, so this codec uses ``object_pairs_hook`` to preserve
every pair in the :class:`~repro.datamodel.values.Struct`.
"""

from __future__ import annotations

import json
from typing import Any

from repro.datamodel.values import MISSING, Bag, Struct, type_name
from repro.errors import FormatError


def loads(text: str, top_level_bag: bool = True) -> Any:
    """Parse JSON text into model values."""
    try:
        data = json.loads(text, object_pairs_hook=_pairs_to_struct)
    except json.JSONDecodeError as exc:
        raise FormatError(f"invalid JSON: {exc}") from exc
    value = _convert(data)
    if top_level_bag and isinstance(value, list):
        return Bag(value)
    return value


def dumps(value: Any, indent: int = 2) -> str:
    """Serialise a model value as JSON (bags become arrays)."""
    return json.dumps(_to_jsonable(value), indent=indent)


def _pairs_to_struct(pairs) -> Struct:
    return Struct(pairs)


def _convert(value: Any) -> Any:
    if isinstance(value, Struct):
        return Struct([(name, _convert(item)) for name, item in value.items()])
    if isinstance(value, list):
        return [_convert(item) for item in value]
    return value


def _to_jsonable(value: Any) -> Any:
    if value is MISSING:
        raise FormatError("MISSING cannot be serialised as JSON")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Struct):
        # json.dumps cannot emit duplicate keys from a dict; build the
        # text through an ordered pair list via a dict only when safe.
        keys = value.keys()
        if len(set(keys)) != len(keys):
            raise FormatError(
                "tuple with duplicate attribute names cannot round-trip "
                "through JSON; use the cbor or sqlpp format"
            )
        return {name: _to_jsonable(item) for name, item in value.items()}
    if isinstance(value, Bag):
        return [_to_jsonable(item) for item in value if item is not MISSING]
    if isinstance(value, list):
        return [_to_jsonable(item) for item in value if item is not MISSING]
    raise FormatError(f"cannot serialise {type_name(value)} as JSON")
