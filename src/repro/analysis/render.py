"""Renderers for analyzer findings: human caret-context and JSON.

The text renderer mirrors the compiler convention —
``file:line:col: severity[CODE] message`` with the offending source
line and a ``^`` marker underneath (reusing the same
:func:`repro.errors.caret_snippet` parse errors use), followed by an
optional hint and a one-line summary.  The JSON renderer emits a
stable machine-readable document for editor and CI integration.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.errors import caret_snippet


def render_text(
    diagnostics: Iterable[Diagnostic],
    source: Optional[str] = None,
    filename: Optional[str] = None,
) -> str:
    """Human-readable report, one caret-context block per finding."""
    items = list(diagnostics)
    label = filename if filename is not None else "<query>"
    lines: List[str] = []
    for diagnostic in items:
        location = label
        if diagnostic.line is not None:
            location = f"{label}:{diagnostic.line}:{diagnostic.column}"
        lines.append(
            f"{location}: {diagnostic.severity}[{diagnostic.code}] "
            f"{diagnostic.message}"
        )
        snippet = caret_snippet(
            source, diagnostic.line, diagnostic.column, indent="    "
        )
        if snippet is not None:
            lines.append(snippet)
        if diagnostic.hint is not None:
            lines.append(f"    hint: {diagnostic.hint}")
    errors = sum(1 for d in items if d.severity == ERROR)
    warnings = sum(1 for d in items if d.severity == WARNING)
    if not items:
        lines.append(f"{label}: clean")
    else:
        lines.append(
            f"{label}: {errors} error(s), {warnings} warning(s), "
            f"{len(items) - errors - warnings} note(s)"
        )
    return "\n".join(lines)


def render_json(
    diagnostics: Iterable[Diagnostic], filename: Optional[str] = None
) -> str:
    """Machine-readable report: a JSON document per input."""
    items = list(diagnostics)
    payload = {
        "file": filename,
        "errors": sum(1 for d in items if d.severity == ERROR),
        "warnings": sum(1 for d in items if d.severity == WARNING),
        "diagnostics": [d.to_dict() for d in items],
    }
    return json.dumps(payload, indent=2)
