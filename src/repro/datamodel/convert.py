"""Conversion between plain Python data and the SQL++ data model.

Users hand the engine ordinary Python objects (``dict``/``list``/scalars,
e.g. straight out of ``json.load``); internally the engine works on model
values (:class:`~repro.datamodel.values.Struct`,
:class:`~repro.datamodel.values.Bag`, lists, scalars, ``None``,
``MISSING``).  These two functions are the bridge:

* :func:`from_python` — dicts become structs, lists/tuples become arrays,
  sets and frozensets become bags.  Model values pass through untouched,
  so mixed inputs are fine.
* :func:`to_python` — structs become dicts, bags become lists (a bag's
  unorderedness cannot be expressed in JSON-style data; insertion order is
  kept).  ``MISSING`` elements of collections are dropped and ``MISSING``
  itself converts to ``None`` unless ``missing_as_none=False``, mirroring
  the paper's note that JDBC/ODBC surface MISSING as NULL.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.datamodel.values import MISSING, Bag, Struct, SCALAR_TYPES


def from_python(value: Any) -> Any:
    """Convert plain Python data to a SQL++ model value (recursively)."""
    if value is None or value is MISSING or isinstance(value, SCALAR_TYPES):
        return value
    if isinstance(value, Struct):
        return Struct([(name, from_python(item)) for name, item in value.items()])
    if isinstance(value, Bag):
        return Bag(from_python(item) for item in value)
    if isinstance(value, Mapping):
        return Struct([(str(name), from_python(item)) for name, item in value.items()])
    if isinstance(value, (list, tuple)):
        return [from_python(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return Bag(from_python(item) for item in value)
    raise TypeError(
        f"cannot represent {type(value).__name__} value {value!r} in the "
        "SQL++ data model"
    )


def to_python(value: Any, missing_as_none: bool = True) -> Any:
    """Convert a SQL++ model value back to plain Python data.

    Structs become dicts (duplicate attribute names collapse to the last
    occurrence, as they would when writing JSON), bags become lists, and
    ``MISSING`` becomes ``None`` (or raises ``ValueError`` when
    ``missing_as_none`` is false).  MISSING *elements* of collections are
    always dropped and MISSING attribute values never occur (structs reject
    them at construction).
    """
    if value is MISSING:
        if missing_as_none:
            return None
        raise ValueError("MISSING cannot be converted to Python data")
    if value is None or isinstance(value, SCALAR_TYPES):
        return value
    if isinstance(value, Struct):
        return {
            name: to_python(item, missing_as_none) for name, item in value.items()
        }
    if isinstance(value, (list, Bag)):
        return [
            to_python(item, missing_as_none)
            for item in value
            if item is not MISSING
        ]
    raise TypeError(f"not a SQL++ value: {value!r}")
