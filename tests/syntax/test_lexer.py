"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.syntax.lexer import tokenize
from repro.syntax.tokens import EOF, IDENT, KEYWORD, NUMBER, PUNCT, QUOTED_IDENT


def types_of(source):
    return [token.type for token in tokenize(source)[:-1]]


def values_of(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type == EOF

    def test_keywords_case_insensitive(self):
        assert values_of("select Select SELECT") == ["SELECT"] * 3

    def test_identifiers_keep_case(self):
        assert values_of("Foo bar_Baz $v") == ["Foo", "bar_Baz", "$v"]

    def test_keyword_vs_identifier(self):
        tokens = tokenize("value values")
        assert tokens[0].type == KEYWORD
        assert tokens[1].type == IDENT

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestNumbers:
    @pytest.mark.parametrize(
        "source, value",
        [("0", 0), ("42", 42), ("3.14", 3.14), ("1e3", 1000.0), ("2.5E-1", 0.25)],
    )
    def test_values(self, source, value):
        token = tokenize(source)[0]
        assert token.type == NUMBER
        assert token.value == value
        assert type(token.value) is type(value)

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == 0.5

    def test_path_after_number_is_not_float(self):
        # "1.x" must lex as NUMBER DOT IDENT, not a malformed float.
        assert types_of("1.x") == [NUMBER, PUNCT, IDENT]


class TestStrings:
    def test_single_quotes(self):
        assert tokenize("'hello'")[0].value == "hello"

    def test_embedded_quote_escape(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_delimited_identifier(self):
        token = tokenize('"date"')[0]
        assert token.type == QUOTED_IDENT
        assert token.value == "date"

    def test_backquoted_identifier(self):
        assert tokenize("`odd name`")[0].value == "odd name"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")


class TestPunctuation:
    def test_digraphs(self):
        assert values_of("<< >> <= >= != <> ||") == [
            "<<",
            ">>",
            "<=",
            ">=",
            "!=",
            "<>",
            "||",
        ]

    def test_braces_lex_individually(self):
        # Essential for {{ {...} }} (the parser pairs them).
        assert values_of("{{}}}") == ["{", "{", "}", "}", "}"]

    def test_invalid_character(self):
        with pytest.raises(LexError) as info:
            tokenize("a # b")
        assert info.value.line == 1


class TestComments:
    def test_line_comment(self):
        assert values_of("1 -- comment\n2") == [1, 2]

    def test_block_comment(self):
        assert values_of("1 /* x\ny */ 2") == [1, 2]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_double_dash_requires_both(self):
        assert values_of("1 - -2") == [1, "-", "-", 2]
