"""The "bolt-on" baseline: semistructured data in a JSON column.

The paper's closing argument (Section VIII, reference [33]) contrasts
SQL++'s first-class nested data with the SQL:2016 approach of "a new SQL
column type": documents stored as JSON *text* in a column and accessed
through path-extraction functions.  This module implements that
approach so the benchmark harness can measure its cost:

* a table is a list of rows whose ``doc`` column holds a JSON string;
* ``json_value(doc, '$.a.b[0]')`` extracts a scalar — parsing the whole
  document on every call, exactly the repeated-parse tax the bolt-on
  design pays;
* ``json_query`` extracts a nested fragment (re-serialised to text,
  since the column type is text);
* :meth:`JsonColumnDatabase.explode` plays the role of SQL:2016's
  ``JSON_TABLE``: unnesting an array path into one output row per
  element.

The path language is the usual ``$.attr``, ``$.attr[0]``, ``$.a.b``
subset.  Extraction returns ``None`` both for JSON ``null`` and for an
absent path — the NULL/MISSING conflation the paper criticises
(Section IV-A) falls out of the design and is asserted in the tests.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.errors import SQLPPError

_STEP_RE = re.compile(r"\.([A-Za-z_$][A-Za-z0-9_$]*)|\[(\d+)\]|\.\"([^\"]*)\"")


class JsonPathError(SQLPPError):
    """An invalid JSON path expression."""


def parse_path(path: str) -> List[Union[str, int]]:
    """Parse ``$.a.b[0]`` into navigation steps."""
    if not path.startswith("$"):
        raise JsonPathError(f"JSON paths start with '$': {path!r}")
    steps: List[Union[str, int]] = []
    position = 1
    while position < len(path):
        match = _STEP_RE.match(path, position)
        if match is None:
            raise JsonPathError(f"invalid JSON path step at {path[position:]!r}")
        attr, index, quoted = match.groups()
        if attr is not None:
            steps.append(attr)
        elif quoted is not None:
            steps.append(quoted)
        else:
            steps.append(int(index))
        position = match.end()
    return steps


def _navigate(document: Any, steps: Iterable[Union[str, int]]) -> Any:
    current = document
    for step in steps:
        if isinstance(step, int):
            if not isinstance(current, list) or step >= len(current):
                return None
            current = current[step]
        else:
            if not isinstance(current, dict) or step not in current:
                return None  # absent and null are indistinguishable here
            current = current[step]
    return current


def json_value(doc_text: str, path: str) -> Any:
    """Extract a scalar; non-scalar results are NULL (SQL:2016 default)."""
    value = _navigate(json.loads(doc_text), parse_path(path))
    if isinstance(value, (dict, list)):
        return None
    return value


def json_query(doc_text: str, path: str) -> Optional[str]:
    """Extract a fragment, re-serialised as JSON text."""
    value = _navigate(json.loads(doc_text), parse_path(path))
    if value is None:
        return None
    return json.dumps(value)


def json_exists(doc_text: str, path: str) -> bool:
    """True when the path reaches any value (including JSON null? no —
    the SQL:2016 default conflates them; see module docstring)."""
    return _navigate(json.loads(doc_text), parse_path(path)) is not None


class JsonColumnDatabase:
    """Tables with scalar columns plus one JSON ``doc`` column."""

    def __init__(self) -> None:
        self._tables: Dict[str, List[Dict[str, Any]]] = {}

    def create_table(self, name: str) -> None:
        if name in self._tables:
            raise SQLPPError(f"table {name} already exists")
        self._tables[name] = []

    def insert_documents(self, name: str, documents: Iterable[Any]) -> None:
        """Insert Python documents; each is serialised into the doc column."""
        table = self._tables[name]
        for document in documents:
            table.append({"doc": json.dumps(document)})

    def rows(self, name: str) -> List[Dict[str, Any]]:
        try:
            return self._tables[name]
        except KeyError:
            raise SQLPPError(f"unknown table {name}") from None

    # -- query operators (the JSON_* function style) ----------------------------

    def select(
        self,
        name: str,
        projections: Dict[str, str],
        where: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> List[Dict[str, Any]]:
        """Project JSON paths out of every document.

        ``projections`` maps output names to ``$.`` paths; every path
        extraction re-parses the document text, as the bolt-on model
        requires.
        """
        output = []
        for row in self.rows(name):
            projected = {
                out_name: json_value(row["doc"], path)
                for out_name, path in projections.items()
            }
            if where is None or where(projected):
                output.append(projected)
        return output

    def explode(
        self,
        name: str,
        array_path: str,
        projections: Dict[str, str],
        element_projections: Dict[str, str],
        where: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> List[Dict[str, Any]]:
        """JSON_TABLE-style unnesting: one output row per array element.

        ``projections`` extract from the document, ``element_projections``
        from each element of the array at ``array_path`` (``'$'`` selects
        the element itself, for arrays of scalars).
        """
        output = []
        for row in self.rows(name):
            fragment = json_query(row["doc"], array_path)
            if fragment is None:
                continue
            elements = json.loads(fragment)
            if not isinstance(elements, list):
                continue
            base = {
                out_name: json_value(row["doc"], path)
                for out_name, path in projections.items()
            }
            for element in elements:
                element_text = json.dumps(element)
                projected = dict(base)
                for out_name, path in element_projections.items():
                    if path == "$":
                        projected[out_name] = (
                            None if isinstance(element, (dict, list)) else element
                        )
                    else:
                        projected[out_name] = json_value(element_text, path)
                if where is None or where(projected):
                    output.append(projected)
        return output
