"""E3 — first-class nesting vs the relational alternatives (Section III).

Three ways to ask "which employees work on which projects":

* **sqlpp-unnest** — the paper's left-correlated FROM over nested data;
* **sql92-join** — the same data normalised into two flat tables, joined
  by the strict SQL-92 baseline (the classic pre-SQL++ answer);
* **jsoncolumn-explode** — the bolt-on answer: documents as JSON text,
  a JSON_TABLE-style explode that re-parses per row.

All three must agree on the rows.  Expected shape: the unnest stays
ahead of the bolt-on (which pays a JSON parse per document per query)
across every fanout; the normalised join pays the join and loses the
data locality the document layout gives.
"""

import pytest

from repro.baselines.jsoncolumn import JsonColumnDatabase
from repro.baselines.sql92 import SQL92Database
from repro.datamodel.convert import from_python
from repro.datamodel.values import Bag
from repro.workloads import emp_nested, emp_normalized

from conftest import assert_same_bag, make_db

SIZE = 2_000
FANOUTS = [1, 4, 16]

UNNEST_QUERY = (
    "SELECT e.id AS id, p.name AS proj "
    "FROM emp AS e, e.projects AS p "
    "WHERE p.name LIKE '%Security%'"
)
JOIN_QUERY = (
    "SELECT e.id, p.name FROM emp AS e JOIN proj AS p ON p.emp_id = e.id "
    "WHERE p.name LIKE '%Security%'"
)


def setups(fanout):
    nested = emp_nested(SIZE, fanout=fanout, seed=5)
    employees, projects = emp_normalized(SIZE, fanout=fanout, seed=5)

    sqlpp = make_db(emp=nested)

    sql92 = SQL92Database()
    sql92.create_table("emp", ["id", "name", "title", "deptno", "salary"])
    sql92.insert("emp", employees)
    sql92.create_table("proj", ["emp_id", "seq", "name"])
    sql92.insert("proj", projects)

    bolt_on = JsonColumnDatabase()
    bolt_on.create_table("emp")
    bolt_on.insert_documents("emp", nested)
    return sqlpp, sql92, bolt_on


def bolt_on_rows(bolt_on):
    return bolt_on.explode(
        "emp",
        "$.projects",
        {"id": "$.id"},
        {"proj": "$.name"},
        where=lambda row: "Security" in row["proj"],
    )


@pytest.fixture(scope="module")
def verified():
    """Cross-check all three implementations once, on the middle fanout."""
    sqlpp, sql92, bolt_on = setups(4)
    ours = sqlpp.execute(UNNEST_QUERY)
    joined = Bag(
        from_python(
            [{"id": r["id"], "proj": r["name"]} for r in sql92.execute(JOIN_QUERY)]
        )
    )
    exploded = Bag(from_python(bolt_on_rows(bolt_on)))
    assert_same_bag(ours, joined)
    assert_same_bag(ours, exploded)
    return True


@pytest.mark.benchmark(group="E3-unnest")
@pytest.mark.parametrize("fanout", FANOUTS)
def test_sqlpp_unnest(benchmark, fanout, verified):
    sqlpp, __, __ = setups(fanout)
    benchmark(lambda: sqlpp.execute(UNNEST_QUERY))


@pytest.mark.benchmark(group="E3-unnest")
@pytest.mark.parametrize("fanout", FANOUTS)
def test_sql92_normalized_join(benchmark, fanout, verified):
    __, sql92, __ = setups(fanout)
    benchmark(lambda: sql92.execute(JOIN_QUERY))


@pytest.mark.benchmark(group="E3-unnest")
@pytest.mark.parametrize("fanout", FANOUTS)
def test_jsoncolumn_explode(benchmark, fanout, verified):
    __, __, bolt_on = setups(fanout)
    benchmark(lambda: bolt_on_rows(bolt_on))
