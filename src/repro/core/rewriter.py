"""Lowering SQL sugar onto the SQL++ Core.

The paper defines SQL as "syntactic sugar" rewritings over a fully
composable Core (Section I), and demonstrates the two central rewrites:

* ``SELECT e1 AS a1, ..., en AS an`` ≡ ``SELECT VALUE {a1: e1, ..., an: en}``
  (Section V-A);
* SQL aggregates: ``SELECT AVG(e.salary) FROM ... [GROUP BY k]`` becomes a
  ``GROUP AS`` query whose SELECT applies the composable ``COLL_AVG`` to
  a ``SELECT VALUE`` subquery ranging over the group (Section V-C,
  Listings 15–18).

This module implements those rewrites plus the SQL-compatibility
conveniences that depend on them:

* bare-column disambiguation (``SELECT name FROM emp AS e`` →
  ``e.name``), using the single FROM variable or, when provided, the
  optional schema's attribute sets (Section III: "if schema is available,
  then SQL++ also allows expressions that are disambiguated using the
  schema. Formally, disambiguation results in the rewriting of the
  user-provided SQL++ query into a SQL++ Core query");
* implicit single-group aggregation (``SELECT AVG(x) FROM t`` with no
  GROUP BY);
* group-key aliasing (``SELECT e.deptno ... GROUP BY e.deptno``);
* subquery coercion marking for SQL-compat mode (Section V-A): plain
  ``SELECT`` subqueries coerce to a scalar in scalar positions and to a
  collection of values on the right of ``IN`` / inside aggregate
  arguments.  ``SELECT VALUE`` subqueries are never coerced.

The rewrites that *define* SQL behaviour (aggregates, coercion, bare
columns, key aliasing) run only when ``config.sql_compat`` is on; the
``SELECT`` → ``SELECT VALUE`` lowering runs in both modes, because in
Core mode SELECT is *always* shorthand for SELECT VALUE (Section V-A).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.config import EvalConfig
from repro.errors import RewriteError
from repro.functions.aggregates import SQL_AGGREGATES
from repro.syntax import ast
from repro.syntax.ast import copy_span
from repro.syntax.printer import print_ast

#: Internal variable names use '$' so they can never collide with user
#: identifiers from the default lexer alphabet in a parsed query... they
#: can (``$`` is a legal identifier character), but the fresh-name counter
#: also guarantees uniqueness within one rewrite.
_GROUP_VAR = "$group"
_GROUP_ELEM = "$g_elem"

_SCALAR_BINOPS = frozenset({"=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "||"})


def rewrite_query(
    query: ast.Query,
    config: EvalConfig,
    catalog_names: Iterable[str] = (),
    schema_attrs: Optional[Dict[str, Set[str]]] = None,
) -> ast.Query:
    """Rewrite a parsed query into an executable Core query.

    ``catalog_names`` is the set of database named values (used so that
    bare-column disambiguation never captures a collection name);
    ``schema_attrs`` optionally maps a catalog name to the attribute
    names of its elements, enabling multi-variable disambiguation.
    """
    rewriter = _Rewriter(config, catalog_names, schema_attrs or {})
    return rewriter.rewrite_query(query, scope=frozenset())


class _Rewriter:
    def __init__(
        self,
        config: EvalConfig,
        catalog_names: Iterable[str],
        schema_attrs: Dict[str, Set[str]],
    ):
        self._config = config
        self._schema_attrs = schema_attrs
        self._catalog_prefixes: Set[str] = set()
        for name in catalog_names:
            parts = name.split(".")
            for end in range(1, len(parts) + 1):
                self._catalog_prefixes.add(".".join(parts[:end]))
        self._fresh_counter = 0

    def _fresh(self, base: str) -> str:
        self._fresh_counter += 1
        return f"{base}{self._fresh_counter}"

    # ------------------------------------------------------------------
    # Query / body traversal
    # ------------------------------------------------------------------

    def rewrite_query(self, query: ast.Query, scope: FrozenSet[str]) -> ast.Query:
        body = query.body
        if isinstance(body, ast.QueryBlock):
            block, order_by = self._rewrite_block(body, query.order_by, scope)
            return dataclasses.replace(
                query,
                body=block,
                order_by=order_by,
                limit=self._rewrite_expr(query.limit, scope, "scalar"),
                offset=self._rewrite_expr(query.offset, scope, "scalar"),
            )
        if isinstance(body, ast.SetOp):
            return dataclasses.replace(
                query,
                body=self._rewrite_setop(body, scope),
                order_by=[
                    dataclasses.replace(
                        item, expr=self._rewrite_expr(item.expr, scope, "scalar")
                    )
                    for item in query.order_by
                ],
                limit=self._rewrite_expr(query.limit, scope, "scalar"),
                offset=self._rewrite_expr(query.offset, scope, "scalar"),
            )
        # Bare-expression query.
        return dataclasses.replace(
            query,
            body=self._rewrite_expr(body, scope, None),
            order_by=[
                dataclasses.replace(
                    item, expr=self._rewrite_expr(item.expr, scope, "scalar")
                )
                for item in query.order_by
            ],
            limit=self._rewrite_expr(query.limit, scope, "scalar"),
            offset=self._rewrite_expr(query.offset, scope, "scalar"),
        )

    def _rewrite_setop(self, setop: ast.SetOp, scope: FrozenSet[str]) -> ast.SetOp:
        return dataclasses.replace(
            setop,
            left=self._rewrite_term(setop.left, scope),
            right=self._rewrite_term(setop.right, scope),
        )

    def _rewrite_term(self, term: ast.Node, scope: FrozenSet[str]) -> ast.Node:
        if isinstance(term, ast.QueryBlock):
            block, __ = self._rewrite_block(term, [], scope)
            return block
        if isinstance(term, ast.SetOp):
            return self._rewrite_setop(term, scope)
        if isinstance(term, ast.Query):
            return self.rewrite_query(term, scope)
        return self._rewrite_expr(term, scope, None)

    # ------------------------------------------------------------------
    # Query blocks
    # ------------------------------------------------------------------

    def _rewrite_block(
        self,
        block: ast.QueryBlock,
        order_by: Sequence[ast.OrderItem],
        scope: FrozenSet[str],
    ) -> Tuple[ast.QueryBlock, List[ast.OrderItem]]:
        block_vars = _block_variables(block)
        from_scope = scope | block_vars

        # 1. Bare-column disambiguation (SQL-compat only, needs a FROM).
        if self._config.sql_compat and block.from_ is not None:
            block = self._disambiguate_block(block, scope, block_vars)

        # 2. FROM / LET / WHERE expressions rewrite in the binding scope.
        new_from = (
            [self._rewrite_from_item(item, from_scope) for item in block.from_]
            if block.from_ is not None
            else None
        )
        new_lets = [
            dataclasses.replace(
                let, expr=self._rewrite_expr(let.expr, from_scope, None)
            )
            for let in block.lets
        ]
        new_where = self._rewrite_expr(block.where, from_scope, None)

        # 3. Aggregate sugar (SQL-compat only).
        group_by = block.group_by
        select = block.select
        having = block.having
        order_items = list(order_by)
        if self._config.sql_compat and block.from_ is not None:
            select, having, order_items, group_by = self._rewrite_aggregation(
                block, select, having, order_items, group_by, block_vars
            )

        # 4. Scope for the output clauses.
        if group_by is not None:
            output_scope = scope | {key.alias for key in group_by.keys}
            if group_by.group_as:
                output_scope = output_scope | {group_by.group_as}
        else:
            output_scope = from_scope

        if group_by is not None:
            group_by = dataclasses.replace(
                group_by,
                keys=[
                    dataclasses.replace(
                        key, expr=self._rewrite_expr(key.expr, from_scope, None)
                    )
                    for key in group_by.keys
                ],
            )
        having = self._rewrite_expr(having, output_scope, None)
        order_items = [
            dataclasses.replace(
                item, expr=self._rewrite_expr(item.expr, output_scope, "scalar")
            )
            for item in order_items
        ]

        # 5. SELECT sugar → SELECT VALUE (both modes).
        select = self._rewrite_select(select, output_scope)

        return (
            dataclasses.replace(
                block,
                select=select,
                from_=new_from,
                lets=new_lets,
                where=new_where,
                group_by=group_by,
                having=having,
            ),
            order_items,
        )

    def _rewrite_from_item(
        self, item: ast.FromItem, scope: FrozenSet[str]
    ) -> ast.FromItem:
        if isinstance(item, ast.FromCollection):
            return dataclasses.replace(
                item, expr=self._rewrite_expr(item.expr, scope, None)
            )
        if isinstance(item, ast.FromUnpivot):
            return dataclasses.replace(
                item, expr=self._rewrite_expr(item.expr, scope, None)
            )
        if isinstance(item, ast.FromJoin):
            return dataclasses.replace(
                item,
                left=self._rewrite_from_item(item.left, scope),
                right=self._rewrite_from_item(item.right, scope),
                on=self._rewrite_expr(item.on, scope, None),
            )
        raise RewriteError(f"unknown FROM item {type(item).__name__}")

    # ------------------------------------------------------------------
    # SELECT sugar
    # ------------------------------------------------------------------

    def _rewrite_select(
        self, select: ast.SelectClause, scope: FrozenSet[str]
    ) -> ast.SelectClause:
        if isinstance(select, ast.SelectValue):
            return dataclasses.replace(
                select, expr=self._rewrite_expr(select.expr, scope, None)
            )
        if isinstance(select, ast.SelectList):
            return self._lower_select_list(select, scope)
        if isinstance(select, ast.SelectStar):
            return select
        if isinstance(select, ast.PivotClause):
            return dataclasses.replace(
                select,
                value=self._rewrite_expr(select.value, scope, None),
                at=self._rewrite_expr(select.at, scope, None),
            )
        raise RewriteError(f"unknown SELECT clause {type(select).__name__}")

    def _lower_select_list(
        self, select: ast.SelectList, scope: FrozenSet[str]
    ) -> ast.SelectValue:
        """``SELECT e1 AS a1, ...`` → ``SELECT VALUE {a1: e1, ...}``.

        ``item.*`` entries splice tuples; when any are present the struct
        is built with the internal ``$TUPLE_MERGE`` function instead of a
        plain constructor.
        """
        parts: List[ast.Expr] = []
        pending_fields: List[ast.StructField] = []
        has_star = any(item.star for item in select.items)
        for position, item in enumerate(select.items):
            expr = self._rewrite_expr(item.expr, scope, "scalar")
            if item.star:
                if pending_fields:
                    parts.append(
                        copy_span(ast.StructLit(fields=pending_fields), select)
                    )
                    pending_fields = []
                parts.append(expr)
                continue
            alias = item.alias or _implied_output_name(item.expr, position)
            pending_fields.append(
                copy_span(
                    ast.StructField(
                        key=copy_span(ast.Literal(value=alias), item),
                        value=expr,
                    ),
                    item,
                )
            )
        if pending_fields or not parts:
            parts.append(
                copy_span(ast.StructLit(fields=pending_fields), select)
            )
        if has_star:
            body: ast.Expr = copy_span(
                ast.FunctionCall(name="$TUPLE_MERGE", args=parts), select
            )
        else:
            body = parts[0]
        return copy_span(
            ast.SelectValue(expr=body, distinct=select.distinct), select
        )

    # ------------------------------------------------------------------
    # Aggregation sugar (Listings 15-18)
    # ------------------------------------------------------------------

    def _rewrite_aggregation(
        self,
        block: ast.QueryBlock,
        select: ast.SelectClause,
        having: Optional[ast.Expr],
        order_items: List[ast.OrderItem],
        group_by: Optional[ast.GroupByClause],
        block_vars: FrozenSet[str],
    ):
        """Rewrite SQL aggregate calls over the ``GROUP AS`` group.

        Returns the possibly-updated (select, having, order_items,
        group_by).  When aggregates occur without a GROUP BY, an implicit
        single-group clause is synthesised (SQL's one-row-even-when-empty
        semantics are preserved by the evaluator for keyless grouping).
        """
        output_exprs = _select_expressions(select) + (
            [having] if having is not None else []
        ) + [item.expr for item in order_items]
        has_aggregates = any(
            _contains_sql_aggregate(expr) for expr in output_exprs
        )
        if group_by is None and not has_aggregates:
            return select, having, order_items, group_by
        if group_by is None:
            group_by = ast.GroupByClause(keys=[], group_as=None)

        group_var = group_by.group_as or self._fresh(_GROUP_VAR)
        if group_by.group_as is None:
            group_by = dataclasses.replace(group_by, group_as=group_var)

        key_by_text = {print_ast(key.expr): key.alias for key in group_by.keys}
        elem_var = self._fresh(_GROUP_ELEM)

        def lower(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
            if expr is None:
                return None
            return self._lower_grouped_expr(
                expr, key_by_text, group_var, elem_var, block_vars
            )

        if isinstance(select, ast.SelectValue):
            select = dataclasses.replace(select, expr=lower(select.expr))
        elif isinstance(select, ast.SelectList):
            select = dataclasses.replace(
                select,
                items=[
                    dataclasses.replace(item, expr=lower(item.expr))
                    for item in select.items
                ],
            )
        having = lower(having)
        order_items = [
            dataclasses.replace(item, expr=lower(item.expr))
            for item in order_items
        ]
        return select, having, order_items, group_by

    def _lower_grouped_expr(
        self,
        expr: ast.Expr,
        key_by_text: Dict[str, str],
        group_var: str,
        elem_var: str,
        block_vars: FrozenSet[str],
    ) -> ast.Expr:
        """Rewrite one output expression of a grouped block.

        Occurrences of a group-key expression become references to the
        key's alias; SQL aggregate calls become ``COLL_*`` over a
        ``SELECT VALUE`` subquery ranging over the group.
        """

        def walk(node: ast.Node) -> ast.Node:
            if isinstance(node, ast.Expr):
                text = print_ast(node)
                if text in key_by_text:
                    return copy_span(
                        ast.VarRef(name=key_by_text[text]), node
                    )
            if isinstance(node, ast.FunctionCall) and node.name.upper() in SQL_AGGREGATES:
                return self._lower_aggregate_call(
                    node, group_var, elem_var, block_vars
                )
            if isinstance(node, ast.SubqueryExpr):
                # Nested query blocks manage their own grouping.
                return node
            if isinstance(node, ast.WindowCall):
                # The window function itself is a *window* aggregate,
                # evaluated over the partition — but aggregates inside
                # its arguments or its PARTITION BY / ORDER BY keys are
                # grouping aggregates (``RANK() OVER (ORDER BY SUM(v))``
                # runs after GROUP BY), so those do get lowered.
                return dataclasses.replace(
                    node,
                    call=dataclasses.replace(
                        node.call, args=[walk(arg) for arg in node.call.args]
                    ),
                    spec=dataclasses.replace(
                        node.spec,
                        partition_by=[walk(key) for key in node.spec.partition_by],
                        order_by=[
                            dataclasses.replace(item, expr=walk(item.expr))
                            for item in node.spec.order_by
                        ],
                    ),
                )
            # Rebuild children through this same walk.
            changes = {}
            for fld in dataclasses.fields(node):
                old = getattr(node, fld.name)
                new = _walk_value(old, walk)
                if new is not old:
                    changes[fld.name] = new
            return dataclasses.replace(node, **changes) if changes else node

        return walk(expr)

    def _lower_aggregate_call(
        self,
        call: ast.FunctionCall,
        group_var: str,
        elem_var: str,
        block_vars: FrozenSet[str],
    ) -> ast.Expr:
        """``AVG(e.salary)`` → ``COLL_AVG((SELECT VALUE g.e.salary FROM grp AS g))``."""
        coll_name = SQL_AGGREGATES[call.name.upper()]
        if call.star:
            value_expr: ast.Expr = copy_span(ast.Literal(value=1), call)
        else:
            if len(call.args) != 1:
                raise RewriteError(
                    f"aggregate {call.name} expects exactly one argument"
                )
            value_expr = _substitute_block_vars(
                call.args[0], block_vars, elem_var
            )
        subquery = copy_span(
            ast.Query(
                body=copy_span(
                    ast.QueryBlock(
                        select=copy_span(
                            ast.SelectValue(
                                expr=value_expr, distinct=call.distinct
                            ),
                            call,
                        ),
                        from_=[
                            copy_span(
                                ast.FromCollection(
                                    expr=copy_span(
                                        ast.VarRef(name=group_var), call
                                    ),
                                    alias=elem_var,
                                ),
                                call,
                            )
                        ],
                    ),
                    call,
                )
            ),
            call,
        )
        return copy_span(
            ast.FunctionCall(
                name=coll_name,
                args=[copy_span(ast.SubqueryExpr(query=subquery), call)],
            ),
            call,
        )

    # ------------------------------------------------------------------
    # Bare-column disambiguation
    # ------------------------------------------------------------------

    def _disambiguate_block(
        self,
        block: ast.QueryBlock,
        outer_scope: FrozenSet[str],
        block_vars: FrozenSet[str],
    ) -> ast.QueryBlock:
        from_vars = _from_aliases(block.from_ or [])
        if not from_vars:
            return block
        schema_map = self._from_var_schemas(block.from_ or [])
        scope = outer_scope | block_vars
        group_aliases = (
            {key.alias for key in block.group_by.keys} if block.group_by else set()
        )
        if block.group_by and block.group_by.group_as:
            group_aliases.add(block.group_by.group_as)

        def resolve(node: ast.Node, extra: FrozenSet[str]) -> ast.Node:
            def walk(inner: ast.Node) -> ast.Node:
                if isinstance(inner, ast.SubqueryExpr):
                    # Nested blocks see the same rule via their own pass;
                    # their additional variables are handled when the
                    # rewriter recurses into the subquery later.
                    return inner
                if isinstance(inner, ast.VarRef):
                    name = inner.name
                    if name in scope or name in extra:
                        return inner
                    if name in self._catalog_prefixes:
                        return inner
                    target = self._pick_disambiguation_target(
                        name, from_vars, schema_map
                    )
                    if target is not None:
                        return copy_span(
                            ast.Path(
                                base=copy_span(
                                    ast.VarRef(name=target), inner
                                ),
                                attr=name,
                            ),
                            inner,
                        )
                    return inner
                changes = {}
                for fld in dataclasses.fields(inner):
                    old = getattr(inner, fld.name)
                    new = _walk_value(old, walk)
                    if new is not old:
                        changes[fld.name] = new
                return dataclasses.replace(inner, **changes) if changes else inner

            return walk(node)

        none_extra: FrozenSet[str] = frozenset()
        output_extra = frozenset(group_aliases)
        changes: dict = {}
        if block.where is not None:
            changes["where"] = resolve(block.where, none_extra)
        if block.lets:
            changes["lets"] = [
                dataclasses.replace(let, expr=resolve(let.expr, none_extra))
                for let in block.lets
            ]
        if block.group_by is not None:
            changes["group_by"] = dataclasses.replace(
                block.group_by,
                keys=[
                    dataclasses.replace(key, expr=resolve(key.expr, none_extra))
                    for key in block.group_by.keys
                ],
            )
        if block.having is not None:
            changes["having"] = resolve(block.having, output_extra)
        changes["select"] = resolve(block.select, output_extra)
        return dataclasses.replace(block, **changes)

    def _pick_disambiguation_target(
        self,
        attr: str,
        from_vars: List[str],
        schema_map: Dict[str, Set[str]],
    ) -> Optional[str]:
        """Choose the FROM variable a bare column belongs to, or None."""
        candidates = [var for var in from_vars if attr in schema_map.get(var, ())]
        if len(candidates) == 1:
            return candidates[0]
        if candidates:
            return None  # genuinely ambiguous; leave for a runtime error
        if len(from_vars) == 1:
            return from_vars[0]
        return None

    def _from_var_schemas(
        self, items: Sequence[ast.FromItem]
    ) -> Dict[str, Set[str]]:
        """Map FROM variables to attribute sets from the optional schema."""
        result: Dict[str, Set[str]] = {}

        def visit(item: ast.FromItem) -> None:
            if isinstance(item, ast.FromCollection):
                name = _catalog_name_of(item.expr)
                if name is not None and name in self._schema_attrs:
                    result[item.alias] = self._schema_attrs[name]
            elif isinstance(item, ast.FromJoin):
                visit(item.left)
                visit(item.right)

        for item in items:
            visit(item)
        return result

    # ------------------------------------------------------------------
    # Expressions: recursion + coercion marking
    # ------------------------------------------------------------------

    def _rewrite_expr(
        self,
        expr: Optional[ast.Expr],
        scope: FrozenSet[str],
        context: Optional[str],
    ) -> Optional[ast.Expr]:
        """Recurse into an expression, rewriting nested query blocks and
        (in SQL-compat mode) marking subquery coercions by context."""
        if expr is None:
            return None
        if isinstance(expr, ast.SubqueryExpr):
            rewritten = self.rewrite_query(expr.query, scope)
            if (
                self._config.sql_compat
                and context in ("scalar", "collection")
                and _is_plain_select_query(expr.query)
            ):
                return copy_span(
                    ast.CoerceSubquery(query=rewritten, mode=context), expr
                )
            return dataclasses.replace(expr, query=rewritten)
        if isinstance(expr, ast.Binary):
            child_context = "scalar" if expr.op in _SCALAR_BINOPS else None
            return dataclasses.replace(
                expr,
                left=self._rewrite_expr(expr.left, scope, child_context),
                right=self._rewrite_expr(expr.right, scope, child_context),
            )
        if isinstance(expr, ast.Unary):
            child_context = "scalar" if expr.op in ("-", "+") else None
            return dataclasses.replace(
                expr, operand=self._rewrite_expr(expr.operand, scope, child_context)
            )
        if isinstance(expr, ast.Like):
            return dataclasses.replace(
                expr,
                operand=self._rewrite_expr(expr.operand, scope, "scalar"),
                pattern=self._rewrite_expr(expr.pattern, scope, "scalar"),
                escape=self._rewrite_expr(expr.escape, scope, "scalar"),
            )
        if isinstance(expr, ast.Between):
            return dataclasses.replace(
                expr,
                operand=self._rewrite_expr(expr.operand, scope, "scalar"),
                low=self._rewrite_expr(expr.low, scope, "scalar"),
                high=self._rewrite_expr(expr.high, scope, "scalar"),
            )
        if isinstance(expr, ast.InPredicate):
            return dataclasses.replace(
                expr,
                operand=self._rewrite_expr(expr.operand, scope, "scalar"),
                collection=self._rewrite_expr(expr.collection, scope, "collection"),
            )
        if isinstance(expr, ast.IsPredicate):
            return dataclasses.replace(
                expr, operand=self._rewrite_expr(expr.operand, scope, "scalar")
            )
        if isinstance(expr, ast.Exists):
            return dataclasses.replace(
                expr, operand=self._rewrite_expr(expr.operand, scope, None)
            )
        if isinstance(expr, ast.CaseExpr):
            return dataclasses.replace(
                expr,
                operand=self._rewrite_expr(expr.operand, scope, "scalar"),
                whens=[
                    (
                        self._rewrite_expr(cond, scope, "scalar"),
                        self._rewrite_expr(result, scope, "scalar"),
                    )
                    for cond, result in expr.whens
                ],
                else_=self._rewrite_expr(expr.else_, scope, "scalar"),
            )
        if isinstance(expr, ast.FunctionCall):
            from repro.functions.registry import REGISTRY

            definition = REGISTRY.lookup(expr.name)
            if (
                definition is not None and definition.is_aggregate
            ) or expr.name.upper() in SQL_AGGREGATES:
                arg_context: Optional[str] = "collection"
            else:
                arg_context = "scalar"
            return dataclasses.replace(
                expr,
                args=[
                    self._rewrite_expr(arg, scope, arg_context) for arg in expr.args
                ],
            )
        if isinstance(expr, ast.WindowCall):
            return dataclasses.replace(
                expr,
                call=dataclasses.replace(
                    expr.call,
                    args=[
                        self._rewrite_expr(arg, scope, "scalar")
                        for arg in expr.call.args
                    ],
                ),
                spec=dataclasses.replace(
                    expr.spec,
                    partition_by=[
                        self._rewrite_expr(key, scope, "scalar")
                        for key in expr.spec.partition_by
                    ],
                    order_by=[
                        dataclasses.replace(
                            item,
                            expr=self._rewrite_expr(item.expr, scope, "scalar"),
                        )
                        for item in expr.spec.order_by
                    ],
                ),
            )
        if isinstance(expr, ast.Path):
            return dataclasses.replace(
                expr, base=self._rewrite_expr(expr.base, scope, None)
            )
        if isinstance(expr, ast.Index):
            return dataclasses.replace(
                expr,
                base=self._rewrite_expr(expr.base, scope, None),
                index=self._rewrite_expr(expr.index, scope, "scalar"),
            )
        if isinstance(expr, ast.PathWildcard):
            return dataclasses.replace(
                expr,
                base=self._rewrite_expr(expr.base, scope, None),
                steps=[
                    dataclasses.replace(
                        step, index=self._rewrite_expr(step.index, scope, "scalar")
                    )
                    if step.index is not None
                    else step
                    for step in expr.steps
                ],
            )
        if isinstance(expr, ast.StructLit):
            return dataclasses.replace(
                expr,
                fields=[
                    dataclasses.replace(
                        field,
                        key=self._rewrite_expr(field.key, scope, "scalar"),
                        value=self._rewrite_expr(field.value, scope, None),
                    )
                    for field in expr.fields
                ],
            )
        if isinstance(expr, ast.ArrayLit):
            return dataclasses.replace(
                expr,
                items=[self._rewrite_expr(item, scope, None) for item in expr.items],
            )
        if isinstance(expr, ast.BagLit):
            return dataclasses.replace(
                expr,
                items=[self._rewrite_expr(item, scope, None) for item in expr.items],
            )
        if isinstance(expr, ast.CastExpr):
            return dataclasses.replace(
                expr, operand=self._rewrite_expr(expr.operand, scope, "scalar")
            )
        # Literal, VarRef, Parameter, CoerceSubquery: nothing to do.
        return expr


# =========================================================================
# Helpers
# =========================================================================


def _walk_value(value, walk):
    if isinstance(value, ast.Node):
        return walk(value)
    if isinstance(value, list):
        items = [_walk_value(item, walk) for item in value]
        if all(new is old for new, old in zip(items, value)):
            return value
        return items
    if isinstance(value, tuple):
        items = tuple(_walk_value(item, walk) for item in value)
        if all(new is old for new, old in zip(items, value)):
            return value
        return items
    return value


def _block_variables(block: ast.QueryBlock) -> FrozenSet[str]:
    """The variables a block introduces: FROM aliases, AT vars, LETs."""
    names: Set[str] = set()

    def visit(item: ast.FromItem) -> None:
        if isinstance(item, ast.FromCollection):
            names.add(item.alias)
            if item.at_alias:
                names.add(item.at_alias)
        elif isinstance(item, ast.FromUnpivot):
            names.add(item.value_alias)
            names.add(item.at_alias)
        elif isinstance(item, ast.FromJoin):
            visit(item.left)
            visit(item.right)

    for item in block.from_ or []:
        visit(item)
    for let in block.lets:
        names.add(let.name)
    return frozenset(names)


def _from_aliases(items: Sequence[ast.FromItem]) -> List[str]:
    """FROM collection aliases, in clause order (no AT/LET names)."""
    aliases: List[str] = []

    def visit(item: ast.FromItem) -> None:
        if isinstance(item, ast.FromCollection):
            aliases.append(item.alias)
        elif isinstance(item, ast.FromUnpivot):
            aliases.append(item.value_alias)
        elif isinstance(item, ast.FromJoin):
            visit(item.left)
            visit(item.right)

    for item in items:
        visit(item)
    return aliases


def _catalog_name_of(expr: ast.Expr) -> Optional[str]:
    """The dotted catalog name an expression denotes, if it is one."""
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Path):
        base = _catalog_name_of(expr.base)
        if base is not None:
            return f"{base}.{expr.attr}"
    return None


def _select_expressions(select: ast.SelectClause) -> List[ast.Expr]:
    if isinstance(select, ast.SelectValue):
        return [select.expr]
    if isinstance(select, ast.SelectList):
        return [item.expr for item in select.items]
    if isinstance(select, ast.PivotClause):
        return [select.value, select.at]
    return []


def _contains_sql_aggregate(expr: ast.Expr) -> bool:
    """True when a SQL aggregate call occurs outside nested subqueries."""

    def scan(node: ast.Node) -> bool:
        if isinstance(node, ast.SubqueryExpr):
            # Nested blocks own their aggregates.
            return False
        if isinstance(node, ast.WindowCall):
            # The window function itself is not a grouping aggregate,
            # but aggregates inside its arguments or spec are (they
            # imply SQL's implicit grouping: RANK() OVER (ORDER BY
            # SUM(v)) groups first, ranks after).
            children = list(node.call.args) + list(node.spec.partition_by) + [
                item.expr for item in node.spec.order_by
            ]
            return any(scan(child) for child in children)
        if (
            isinstance(node, ast.FunctionCall)
            and node.name.upper() in SQL_AGGREGATES
        ):
            return True
        return any(scan(child) for child in node.children())

    return scan(expr)


def _substitute_block_vars(
    expr: ast.Expr, block_vars: FrozenSet[str], elem_var: str
) -> ast.Expr:
    """Replace references to block variables v with ``elem_var.v``.

    Used when moving an aggregate argument into the per-group subquery:
    the group's elements are tuples with one attribute per block variable
    (paper, Listing 14).  Nested blocks that rebind a variable shadow it,
    so the substitution stops for that name inside them.
    """

    def walk(node: ast.Node, active: FrozenSet[str]) -> ast.Node:
        if isinstance(node, ast.VarRef) and node.name in active:
            return copy_span(
                ast.Path(
                    base=copy_span(ast.VarRef(name=elem_var), node),
                    attr=node.name,
                ),
                node,
            )
        if isinstance(node, ast.SubqueryExpr):
            body = node.query.body
            if isinstance(body, ast.QueryBlock):
                inner_active = active - _block_variables(body)
            else:
                inner_active = active
            if not inner_active:
                return node
            return dataclasses.replace(
                node, query=walk(node.query, inner_active)
            )
        changes = {}
        for fld in dataclasses.fields(node):
            old = getattr(node, fld.name)
            new = _walk_value(old, lambda child: walk(child, active))
            if new is not old:
                changes[fld.name] = new
        return dataclasses.replace(node, **changes) if changes else node

    return walk(expr, block_vars)


def _is_plain_select_query(query: ast.Query) -> bool:
    """True for sugar-SELECT queries — the only ones coercion touches."""
    body = query.body
    if isinstance(body, ast.QueryBlock):
        return isinstance(body.select, (ast.SelectList, ast.SelectStar))
    return False


def _implied_output_name(expr: ast.Expr, position: int) -> str:
    from repro.syntax.parser import implied_alias

    return implied_alias(expr) or f"_{position + 1}"
