"""The SQL++ function library.

Three families of callables live here:

* **Operators** (:mod:`repro.functions.operators`) — the implementations
  behind ``+ - * / % || = < AND OR NOT LIKE IN BETWEEN IS`` and path /
  index navigation, each encoding the paper's NULL/MISSING propagation
  rules (Section IV-B) and the permissive-vs-strict type-error behaviour.

* **Scalar builtins** (:mod:`repro.functions.scalar`,
  :mod:`repro.functions.strings`, :mod:`repro.functions.numeric`,
  :mod:`repro.functions.collections`) — registered in the global
  :data:`~repro.functions.registry.REGISTRY`.

* **Aggregates** (:mod:`repro.functions.aggregates`) — the composable
  ``COLL_*`` functions of the SQL++ Core (Section V-C), which take a
  collection argument, and the table mapping SQL aggregate names
  (``AVG`` ...) onto them, used by the sugar rewriter.
"""

from repro.functions.registry import REGISTRY, FunctionDef, FunctionRegistry
from repro.functions.aggregates import SQL_AGGREGATES, is_sql_aggregate

# Importing the modules registers their builtins.
from repro.functions import scalar as _scalar  # noqa: F401
from repro.functions import strings as _strings  # noqa: F401
from repro.functions import numeric as _numeric  # noqa: F401
from repro.functions import collections as _collections  # noqa: F401
from repro.functions import aggregates as _aggregates  # noqa: F401

__all__ = [
    "REGISTRY",
    "FunctionDef",
    "FunctionRegistry",
    "SQL_AGGREGATES",
    "is_sql_aggregate",
]
