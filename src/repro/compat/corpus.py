"""Conformance-case machinery for the compatibility kit."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ConformanceCase:
    """One executable specification point.

    ``data`` maps named values to literal text in the paper's notation;
    ``query`` is the SQL++ under test; ``expected`` is the expected
    result, again as a literal.  ``sql_compat`` and ``typing_mode``
    select the language mode the case pins down (the kit checks both
    modes, per Section VIII).  ``expect_error`` names an exception class
    (from :mod:`repro.errors`) for negative cases.  ``ordered`` compares
    the result as an array; otherwise comparison is bag equality.
    """

    case_id: str
    section: str
    title: str
    query: str
    data: Dict[str, str] = field(default_factory=dict)
    expected: Optional[str] = None
    sql_compat: bool = True
    typing_mode: str = "permissive"
    expect_error: Optional[str] = None
    ordered: bool = False
    notes: str = ""


_REGISTRY: List[ConformanceCase] = []


def register(case: ConformanceCase) -> ConformanceCase:
    """Add a case to the kit (duplicate ids rejected)."""
    if any(existing.case_id == case.case_id for existing in _REGISTRY):
        raise ValueError(f"duplicate conformance case id {case.case_id!r}")
    _REGISTRY.append(case)
    return case


def all_cases() -> List[ConformanceCase]:
    """Every registered case, importing the corpus modules on demand."""
    # Importing registers the cases exactly once.
    from repro.compat import listings  # noqa: F401
    from repro.compat import extended  # noqa: F401
    from repro.compat import analytics_cases  # noqa: F401

    return list(_REGISTRY)
