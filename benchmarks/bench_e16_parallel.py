"""E16 — batch-vectorized execution and morsel-driven parallelism.

The PR-6 executor (docs/PLANNER.md "Batch execution") moves the
streaming pipeline's row-at-a-time clause loop to ~1024-row chunks with
compiled batch closures, and fans partitionable base scans across
forked worker processes in morsel-sized spans.  This experiment
measures both layers at n=100k:

* serial batch vs. row-at-a-time streaming — the vectorization win,
  asserted as a real speedup on the decomposed GROUP BY fold path;
* morsel parallelism at 1/2/4 workers — every worker count must
  return the *identical* result, and the reported ``parallel_workers``
  metric must show the fan-out actually engaged.

Honesty note: this container exposes **one** CPU core
(``os.cpu_count() == 1``), so forked workers time-slice a single core
and parallel wall-clock can never beat serial here — the fork +
result-pickling overhead is pure cost.  The numbers below therefore
report parallel *overhead* on one core, and the assertions pin
correctness and engagement, not a multi-core speedup.  On a real
multi-core host the fold path's per-worker state is compact (per-group
accumulators, not rows), so the fan-out scales with cores; the
``workers`` column is the machinery under test.

Both engines must agree exactly on every result (bag comparison).
"""

from __future__ import annotations

import os
import time

import pytest

from repro import Database

from conftest import assert_same_bag

N = 100_000
N_DIM = 1_000
#: The serial-batch acceptance bar for the decomposed GROUP BY fold at
#: n=100k: chunked, compiled-closure folding must beat the
#: row-at-a-time streaming pipeline by at least this factor.
MIN_BATCH_SPEEDUP = 1.5

JOIN_QUERY = (
    "SELECT VALUE {'v': f.v, 'name': d.name} "
    "FROM fact AS f JOIN dim AS d ON f.k = d.k "
    "WHERE f.v < 500"
)
GROUP_QUERY = (
    "SELECT VALUE {'k': f.k, 'n': COUNT(*), 'mean': AVG(f.v)} "
    "FROM fact AS f GROUP BY f.k"
)


def fact_rows(n: int):
    return [
        {"k": (i * 7) % N_DIM, "v": (i * 2654435761) % 1_000}
        for i in range(n)
    ]


def dim_rows(n: int):
    return [{"k": i, "name": f"dim-{i}"} for i in range(n)]


def build_db(*, batch: bool = True, parallel: int = 0) -> Database:
    db = Database(batch=batch, parallel=parallel)
    db.set("fact", fact_rows(N))
    db.set("dim", dim_rows(N_DIM))
    return db


@pytest.fixture(scope="module")
def engines():
    """{label: database} with warm compile caches, one per mode."""
    built = {
        "streaming": build_db(batch=False),
        "batch": build_db(),
        "parallel1": build_db(parallel=1),
        "parallel2": build_db(parallel=2),
        "parallel4": build_db(parallel=4),
    }
    for db in built.values():
        db.execute(JOIN_QUERY)
        db.execute(GROUP_QUERY)
    return built


@pytest.fixture(scope="module")
def agreement_verified(engines):
    """Every mode returns the same bag for both queries (checked once)."""
    for query in (JOIN_QUERY, GROUP_QUERY):
        reference = engines["streaming"].execute(query)
        for label, db in engines.items():
            if label == "streaming":
                continue
            assert_same_bag(db.execute(query), reference)
    return True


@pytest.mark.benchmark(group="E16-join-n100000")
class TestJoinModes:
    def test_streaming(self, benchmark, engines, agreement_verified):
        benchmark.pedantic(
            lambda: engines["streaming"].execute(JOIN_QUERY),
            rounds=3,
            iterations=1,
        )

    def test_batch_serial(self, benchmark, engines, agreement_verified):
        benchmark.pedantic(
            lambda: engines["batch"].execute(JOIN_QUERY),
            rounds=3,
            iterations=1,
        )

    def test_parallel_2(self, benchmark, engines, agreement_verified):
        benchmark.pedantic(
            lambda: engines["parallel2"].execute(JOIN_QUERY),
            rounds=3,
            iterations=1,
        )

    def test_parallel_4(self, benchmark, engines, agreement_verified):
        benchmark.pedantic(
            lambda: engines["parallel4"].execute(JOIN_QUERY),
            rounds=3,
            iterations=1,
        )


@pytest.mark.benchmark(group="E16-group-n100000")
class TestGroupModes:
    def test_streaming(self, benchmark, engines, agreement_verified):
        benchmark.pedantic(
            lambda: engines["streaming"].execute(GROUP_QUERY),
            rounds=3,
            iterations=1,
        )

    def test_batch_serial(self, benchmark, engines, agreement_verified):
        benchmark.pedantic(
            lambda: engines["batch"].execute(GROUP_QUERY),
            rounds=3,
            iterations=1,
        )

    def test_parallel_2(self, benchmark, engines, agreement_verified):
        benchmark.pedantic(
            lambda: engines["parallel2"].execute(GROUP_QUERY),
            rounds=3,
            iterations=1,
        )

    def test_parallel_4(self, benchmark, engines, agreement_verified):
        benchmark.pedantic(
            lambda: engines["parallel4"].execute(GROUP_QUERY),
            rounds=3,
            iterations=1,
        )


def _timed(db: Database, query: str) -> float:
    started = time.perf_counter()
    db.execute(query)
    return time.perf_counter() - started


def test_serial_batch_speedup_claim(engines, agreement_verified):
    """Serial batch GROUP BY beats streaming by ≥1.5× at n=100k."""
    streaming_s = min(_timed(engines["streaming"], GROUP_QUERY) for _ in range(3))
    batch_s = min(_timed(engines["batch"], GROUP_QUERY) for _ in range(3))
    speedup = streaming_s / batch_s
    print(
        f"\nE16 n=100k GROUP BY: streaming {streaming_s * 1e3:.0f}ms, "
        f"serial batch {batch_s * 1e3:.0f}ms → {speedup:.1f}× speedup"
    )
    assert engines["batch"].metrics.last.batched is True
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"serial batch only {speedup:.2f}× faster than streaming "
        f"(claim: ≥{MIN_BATCH_SPEEDUP}×)"
    )


def test_parallel_engagement_and_identity(engines, agreement_verified):
    """The fan-out actually runs (workers reported) and is result-exact.

    ``parallel=1`` must *not* fork (one worker cannot beat zero); 2 and
    4 must, with the worker count surfaced in the query metrics.
    """
    for label, expected in (("parallel1", 0), ("parallel2", 2), ("parallel4", 4)):
        db = engines[label]
        result = db.execute(GROUP_QUERY)
        assert db.metrics.last.parallel_workers == expected, label
        assert db.metrics.last.batched is True, label
        assert_same_bag(result, engines["streaming"].execute(GROUP_QUERY))


def test_parallel_scaling_report(engines, agreement_verified):
    """Print the workers table; assert a speedup only on multi-core hosts.

    With one visible core the honest expectation is *no* speedup (fork
    and result pickling are pure overhead), so the wall-clock assertion
    is gated on ``os.cpu_count()``.
    """
    timings = {}
    for label in ("streaming", "batch", "parallel2", "parallel4"):
        timings[label] = min(_timed(engines[label], GROUP_QUERY) for _ in range(3))
    print(f"\nE16 n=100k GROUP BY by mode (cores={os.cpu_count()}):")
    for label, seconds in timings.items():
        print(f"  {label:>10}: {seconds * 1e3:7.1f}ms")
    if (os.cpu_count() or 1) >= 4:
        assert timings["parallel4"] < timings["batch"], (
            "4 workers on a multi-core host should beat serial batch"
        )
