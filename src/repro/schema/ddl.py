"""A small DDL parser for schema types.

Two input shapes are accepted by :func:`parse_schema`:

* a *type expression* in the syntax the types print themselves in::

      BAG<STRUCT<id INT, name STRING, title? STRING NULL,
                 projects UNIONTYPE<STRING, ARRAY<STRING>>>>

* a Hive-style ``CREATE TABLE`` (paper, Listing 5), which denotes a bag
  of closed structs::

      CREATE TABLE emp_mixed (
        id INT,
        name STRING,
        title STRING,
        projects UNIONTYPE<STRING, ARRAY<STRING>>
      );

Field modifiers: ``name?`` marks the attribute optional (may be absent —
the MISSING case), a trailing ``NULL`` marks it nullable; ``...`` as the
last struct member marks the struct open.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import SchemaError
from repro.schema.types import (
    AnyType,
    ArrayType,
    BagType,
    BooleanType,
    FloatType,
    IntegerType,
    NullType,
    SchemaType,
    StringType,
    StructField,
    StructType,
    UnionType,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<word>[A-Za-z_$][A-Za-z0-9_$]*)"
    r"|(?P<punct><|>|\(|\)|,|;|\?|\.\.\.))"
)

_SCALARS = {
    "BOOLEAN": BooleanType,
    "BOOL": BooleanType,
    "INT": IntegerType,
    "INTEGER": IntegerType,
    "BIGINT": IntegerType,
    "SMALLINT": IntegerType,
    "DOUBLE": FloatType,
    "FLOAT": FloatType,
    "REAL": FloatType,
    "STRING": StringType,
    "VARCHAR": StringType,
    "CHAR": StringType,
    "TEXT": StringType,
    "NULL": NullType,
    "ANY": AnyType,
}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SchemaError(f"invalid schema syntax near {remainder[:20]!r}")
        token = match.group("word") or match.group("punct")
        tokens.append(token)
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> str:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else ""

    def advance(self) -> str:
        token = self.peek()
        if token:
            self._pos += 1
        return token

    def expect(self, token: str) -> None:
        found = self.advance()
        if found != token:
            raise SchemaError(f"expected {token!r} in schema, found {found!r}")

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    # -- grammar --------------------------------------------------------------

    def parse_type(self) -> SchemaType:
        word = self.advance().upper()
        if word in _SCALARS:
            return _SCALARS[word]()
        if word in ("ARRAY", "LIST"):
            return ArrayType(element=self._angle_single())
        if word in ("BAG", "MULTISET"):
            return BagType(element=self._angle_single())
        if word == "UNIONTYPE":
            return UnionType(alternatives=tuple(self._angle_many()))
        if word in ("STRUCT", "TUPLE", "OBJECT"):
            return self._parse_struct()
        raise SchemaError(f"unknown type name {word!r}")

    def _angle_single(self) -> SchemaType:
        self.expect("<")
        element = self.parse_type()
        self.expect(">")
        return element

    def _angle_many(self) -> List[SchemaType]:
        self.expect("<")
        alternatives = [self.parse_type()]
        while self.peek() == ",":
            self.advance()
            alternatives.append(self.parse_type())
        self.expect(">")
        return alternatives

    def _parse_struct(self) -> StructType:
        self.expect("<")
        fields, is_open = self._parse_field_list(">")
        return StructType(fields=tuple(fields), open=is_open)

    def _parse_field_list(self, closer: str) -> Tuple[List[StructField], bool]:
        fields: List[StructField] = []
        is_open = False
        if self.peek() == closer:
            self.advance()
            return fields, is_open
        while True:
            if self.peek() == "...":
                self.advance()
                is_open = True
                break
            fields.append(self._parse_field())
            if self.peek() == ",":
                self.advance()
                continue
            break
        self.expect(closer)
        return fields, is_open

    def _parse_field(self) -> StructField:
        name = self.advance()
        if not name or name in ("<", ">", "(", ")", ",", "?"):
            raise SchemaError(f"expected an attribute name, found {name!r}")
        optional = False
        if self.peek() == "?":
            self.advance()
            optional = True
        fld_type = self.parse_type()
        nullable = False
        if self.peek().upper() == "NULL":
            self.advance()
            nullable = True
        elif self.peek().upper() == "NOT":
            self.advance()
            self.expect_null()
        return StructField(name=name, type=fld_type, optional=optional, nullable=nullable)

    def expect_null(self) -> None:
        if self.advance().upper() != "NULL":
            raise SchemaError("expected NULL after NOT")


def parse_schema(text: str) -> SchemaType:
    """Parse a type expression or a ``CREATE TABLE`` statement."""
    tokens = _tokenize(text)
    if not tokens:
        raise SchemaError("empty schema")
    if tokens[0].upper() == "CREATE":
        return _parse_create_table(tokens)
    parser = _Parser(tokens)
    schema = parser.parse_type()
    if not parser.at_end():
        raise SchemaError(f"unexpected trailing schema tokens: {parser.peek()!r}")
    return schema


def _parse_create_table(tokens: List[str]) -> BagType:
    parser = _Parser(tokens)
    parser.expect("CREATE")
    if parser.advance().upper() != "TABLE":
        raise SchemaError("expected TABLE after CREATE")
    parser.advance()  # table name (callers pass the name to Database.set_schema)
    parser.expect("(")
    fields, is_open = parser._parse_field_list(")")
    if parser.peek() == ";":
        parser.advance()
    if not parser.at_end():
        raise SchemaError(f"unexpected trailing tokens: {parser.peek()!r}")
    return BagType(element=StructType(fields=tuple(fields), open=is_open))
