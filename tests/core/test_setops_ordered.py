"""Set operations combined with the post-SELECT clauses, and more
window/typecheck coverage."""

from repro import Database

from tests.conftest import bag_of


class TestSetOpsWithPostClauses:
    def test_order_by_over_union(self, db):
        # ORDER BY over a set operation sees the output's attributes
        # (the binding environments of the operands are gone).
        result = db.execute(
            "SELECT v AS v FROM [3, 1] AS v UNION ALL SELECT 2 AS v ORDER BY v"
        )
        assert [row["v"] for row in result] == [1, 2, 3]

    def test_limit_over_union(self, db):
        result = db.execute(
            "SELECT VALUE v FROM [1, 2] AS v UNION ALL SELECT VALUE 3 LIMIT 2"
        )
        assert len(bag_of(result)) == 2

    def test_union_of_parenthesised_ordered_queries(self, db):
        result = db.execute(
            "(SELECT VALUE v FROM [2, 1] AS v ORDER BY v) UNION ALL "
            "(SELECT VALUE v FROM [4, 3] AS v ORDER BY v)"
        )
        assert sorted(bag_of(result)) == [1, 2, 3, 4]

    def test_intersect_empty(self, db):
        result = db.execute("(SELECT VALUE 1) INTERSECT (SELECT VALUE 2)")
        assert bag_of(result) == []

    def test_three_way_chain(self, db):
        result = db.execute(
            "SELECT VALUE v FROM [1, 2, 3] AS v "
            "EXCEPT ALL SELECT VALUE 2 "
            "UNION ALL SELECT VALUE 9"
        )
        assert sorted(bag_of(result)) == [1, 3, 9]

    def test_nested_subquery_setop(self, db):
        result = bag_of(
            db.execute(
                "SELECT VALUE x FROM "
                "((SELECT VALUE 1) UNION ALL (SELECT VALUE 2)) AS x"
            )
        )
        assert sorted(result) == [1, 2]


class TestWindowOverGroups:
    def test_window_ranks_group_output(self, db):
        db.set("t", [{"k": "a", "v": 1}, {"k": "a", "v": 3}, {"k": "b", "v": 2}])
        result = bag_of(
            db.execute(
                "SELECT k, SUM(r.v) AS total, "
                "RANK() OVER (ORDER BY SUM(r.v) DESC) AS rk "
                "FROM t AS r GROUP BY r.k AS k"
            )
        )
        ranks = {row["k"]: row["rk"] for row in result}
        assert ranks == {"a": 1, "b": 2}

    def test_window_sees_let_variables(self, db):
        result = bag_of(
            db.execute(
                "SELECT ROW_NUMBER() OVER (ORDER BY y) AS rn, y AS y "
                "FROM [3, 1, 2] AS x LET y = x * 10"
            )
        )
        ordered = sorted(result, key=lambda row: row["rn"])
        assert [row["y"] for row in ordered] == [10, 20, 30]


class TestStaticCheckerMore:
    def test_union_type_attribute_is_unknown(self):
        from repro.schema import check_query

        db = Database()
        db.set("t", [{"p": "x"}])
        db.set_schema(
            "t", "BAG<STRUCT<p UNIONTYPE<STRING, ARRAY<STRING>>>>"
        )
        # Navigation into a union-typed value cannot be proven wrong.
        findings = check_query(db.compile("SELECT VALUE r.p FROM t AS r"), db._schemas)
        assert findings == []

    def test_concat_on_number_flagged(self):
        from repro.schema import check_query

        db = Database()
        db.set("t", [{"n": 1}])
        db.set_schema("t", "BAG<STRUCT<n INT>>")
        findings = check_query(
            db.compile("SELECT VALUE r.n || 'x' FROM t AS r"), db._schemas
        )
        assert any("||" in finding for finding in findings)

    def test_open_struct_attribute_allowed(self):
        from repro.schema import check_query

        db = Database()
        db.set("t", [{"a": 1, "b": 2}])
        db.set_schema("t", "BAG<STRUCT<a INT, ...>>")
        findings = check_query(
            db.compile("SELECT VALUE r.b FROM t AS r"), db._schemas
        )
        assert findings == []
