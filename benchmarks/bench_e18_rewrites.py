"""E18 — the semantic rewrite registry (docs/REWRITER.md).

A/B of ``rewrite=True`` vs ``rewrite=False`` (physical planning on in
both arms) on the shapes the registry targets:

* correlated ``EXISTS`` at n=10k and n=100k — SQLPPR01 turns the
  per-outer-row subquery re-evaluation (O(outer × inner)) into a
  DISTINCT semi-side plus one hash join (O(outer + inner)).  The
  headline claim asserted below: **≥10× at n=10k**.  The un-rewritten
  arm at n=100k would run for minutes, so only the rewritten arm is
  timed there (it documents that the rewritten plan stays linear).
* an OR-chain probe — SQLPPR03 unlocks the compiled IN set probe.
* a CSE-heavy query — SQLPPR04 evaluates the repeated subquery once
  per binding instead of once per occurrence.

Both arms must agree exactly on every result (bag comparison) — the
same contract the compat-kit sweep (tests/compat/test_rewrite_parity.py)
pins corpus-wide.
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag

N_SMALL = 10_000
N_BIG = 100_000
#: The acceptance bar: semi-join rewrite at n=10k must beat the naive
#: correlated re-evaluation by at least this factor.
MIN_SPEEDUP = 10.0

EXISTS_QUERY = (
    "SELECT VALUE c.name FROM customers AS c WHERE EXISTS "
    "(SELECT VALUE o FROM orders AS o "
    "WHERE o.cust = c.id AND o.amt > 50)"
)
OR_QUERY = (
    "SELECT VALUE o.amt FROM orders AS o "
    "WHERE o.cust = 3 OR o.cust = 17 OR o.cust = 41 OR o.cust = 99"
)
# No outer WHERE: SQLPPR04's no-work-regression condition refuses to
# hoist SELECT-only occurrences past a selective WHERE.
CSE_QUERY = (
    "SELECT c.id AS id, "
    "(SELECT VALUE o.amt FROM orders AS o WHERE o.cust = c.id) AS a, "
    "(SELECT VALUE o.amt FROM orders AS o WHERE o.cust = c.id) AS b "
    "FROM customers AS c"
)


def tables(n: int):
    n_customers = max(n // 10, 10)
    customers = [{"id": i, "name": f"c{i}"} for i in range(n_customers)]
    # cust strides past the customer range so some orders match nobody.
    orders = [
        {"cust": (i * 7) % (n_customers + 5), "amt": i % 100}
        for i in range(n)
    ]
    return customers, orders


def build_db(n: int) -> Database:
    db = Database()
    customers, orders = tables(n)
    db.set("customers", customers)
    db.set("orders", orders)
    return db


@pytest.fixture(scope="module")
def small_db():
    db = build_db(N_SMALL)
    db.execute(EXISTS_QUERY)  # warm both arms' compile caches
    db.execute(EXISTS_QUERY, rewrite=False)
    return db


@pytest.fixture(scope="module")
def big_db():
    db = build_db(N_BIG)
    db.execute(EXISTS_QUERY)
    return db


@pytest.fixture(scope="module")
def agreement_verified(small_db):
    """Both arms agree on every benchmarked query (checked once)."""
    for query in (EXISTS_QUERY, OR_QUERY, CSE_QUERY):
        on = small_db.execute(query, rewrite=True)
        off = small_db.execute(query, rewrite=False)
        assert deep_equals(Bag(list(on)), Bag(list(off))), query
    return True


@pytest.mark.benchmark(group="E18-exists-n10000")
class TestCorrelatedExists:
    def test_naive_correlated(self, benchmark, small_db, agreement_verified):
        benchmark.pedantic(
            lambda: small_db.execute(EXISTS_QUERY, rewrite=False),
            rounds=2,
            iterations=1,
        )

    def test_semijoin_rewrite(self, benchmark, small_db, agreement_verified):
        benchmark(lambda: small_db.execute(EXISTS_QUERY))


@pytest.mark.benchmark(group="E18-exists-n100000")
class TestCorrelatedExistsAtScale:
    def test_semijoin_rewrite_n100k(self, benchmark, big_db):
        benchmark(lambda: big_db.execute(EXISTS_QUERY))


@pytest.mark.benchmark(group="E18-or-chain-n10000")
class TestOrChain:
    def test_linear_or_probe(self, benchmark, small_db, agreement_verified):
        benchmark(lambda: small_db.execute(OR_QUERY, rewrite=False))

    def test_in_set_probe(self, benchmark, small_db, agreement_verified):
        benchmark(lambda: small_db.execute(OR_QUERY))


@pytest.mark.benchmark(group="E18-cse-n10000")
class TestCse:
    def test_per_occurrence(self, benchmark, small_db, agreement_verified):
        benchmark.pedantic(
            lambda: small_db.execute(CSE_QUERY, rewrite=False),
            rounds=2,
            iterations=1,
        )

    def test_hoisted_let(self, benchmark, small_db, agreement_verified):
        benchmark(lambda: small_db.execute(CSE_QUERY))


def test_exists_speedup_claim(small_db, agreement_verified):
    """The tentpole claim: ≥10× for correlated EXISTS at n=10k."""
    small_db.execute(EXISTS_QUERY)  # warm

    started = time.perf_counter()
    reference = small_db.execute(EXISTS_QUERY, rewrite=False)
    naive_s = time.perf_counter() - started

    started = time.perf_counter()
    rewritten = small_db.execute(EXISTS_QUERY)
    rewritten_s = time.perf_counter() - started

    assert deep_equals(Bag(list(rewritten)), Bag(list(reference)))
    speedup = naive_s / rewritten_s
    print(
        f"\nE18 n=10k correlated EXISTS: naive {naive_s:.2f}s, "
        f"semi-join {rewritten_s * 1e3:.0f}ms → {speedup:.1f}× speedup"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"semi-join rewrite only {speedup:.1f}× faster than the naive "
        f"correlated re-evaluation (claim: ≥{MIN_SPEEDUP}×)"
    )


def test_rewrites_fired_as_expected(small_db):
    """Each arm of the A/B exercises what its name claims."""
    small_db.execute(EXISTS_QUERY)
    assert small_db.metrics.last.rewrites == ["SQLPPR01"]
    small_db.execute(OR_QUERY)
    assert small_db.metrics.last.rewrites == ["SQLPPR03"]
    small_db.execute(CSE_QUERY)
    assert small_db.metrics.last.rewrites == ["SQLPPR04"]
    small_db.execute(EXISTS_QUERY, rewrite=False)
    assert small_db.metrics.last.rewrites == []
