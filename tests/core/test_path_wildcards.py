"""Deep-path wildcards ``[*]`` (PartiQL-style dialect extension)."""

import pytest

from repro import TypeCheckError

from tests.conftest import bag_of


@pytest.fixture
def wdb(db):
    db.set(
        "t",
        [
            {
                "id": 1,
                "projects": [{"name": "a"}, {"name": "b"}],
                "matrix": [[1, 2], [3]],
            },
            {"id": 2, "projects": []},
            {"id": 3},
        ],
    )
    return db


class TestWildcards:
    def test_attr_after_wildcard_maps_per_element(self, wdb):
        result = bag_of(
            wdb.execute("SELECT VALUE r.projects[*].name FROM t AS r WHERE r.id = 1")
        )
        assert result == [["a", "b"]]

    def test_empty_collection(self, wdb):
        result = bag_of(
            wdb.execute("SELECT VALUE r.projects[*].name FROM t AS r WHERE r.id = 2")
        )
        assert result == [[]]

    def test_missing_base_is_empty(self, wdb):
        result = bag_of(
            wdb.execute("SELECT VALUE r.projects[*].name FROM t AS r WHERE r.id = 3")
        )
        assert result == [[]]

    def test_double_wildcard_flattens(self, wdb):
        result = bag_of(
            wdb.execute("SELECT VALUE r.matrix[*][*] FROM t AS r WHERE r.id = 1")
        )
        assert result == [[1, 2, 3]]

    def test_index_after_wildcard(self, wdb):
        result = bag_of(
            wdb.execute("SELECT VALUE r.matrix[*][0] FROM t AS r WHERE r.id = 1")
        )
        assert result == [[1, 3]]

    def test_missing_step_results_dropped(self, db):
        db.set("t", [{"xs": [{"a": 1}, {"b": 2}, {"a": 3}]}])
        result = bag_of(db.execute("SELECT VALUE r.xs[*].a FROM t AS r"))
        assert result == [[1, 3]]

    def test_wildcard_over_scalar_permissive(self, db):
        assert db.execute("5[*]") == []

    def test_wildcard_over_scalar_strict(self, db):
        with pytest.raises(TypeCheckError):
            db.execute("5[*]", typing_mode="strict")

    def test_usable_inside_aggregates(self, wdb):
        result = wdb.execute(
            "COLL_SUM(SELECT VALUE COLL_COUNT(r.projects[*].name) FROM t AS r)"
        )
        assert result == 2

    def test_printer_round_trip(self):
        from repro.syntax.parser import parse
        from repro.syntax.printer import print_ast

        text = "SELECT VALUE r.a[*].b[0][*] FROM t AS r"
        assert print_ast(parse(print_ast(parse(text)))) == print_ast(parse(text))
