"""Property-based tests for the data model (hypothesis).

Strategies build arbitrary SQL++ values; the properties are the laws the
engine relies on everywhere: equality is an equivalence compatible with
``group_key``; bags are permutation-invariant; the total order is, in
fact, total; Python round-trips are stable.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.datamodel.convert import from_python, to_python
from repro.datamodel.equality import deep_equals, group_key
from repro.datamodel.ordering import sort_key
from repro.datamodel.values import Bag, Struct

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)


def values(depth=3):
    if depth == 0:
        return scalars
    inner = values(depth - 1)
    return st.one_of(
        scalars,
        st.lists(inner, max_size=4),
        st.builds(Bag, st.lists(inner, max_size=4)),
        st.builds(
            Struct,
            st.lists(
                st.tuples(st.text(max_size=6), inner), max_size=4
            ),
        ),
    )


VALUES = values()


@given(VALUES)
def test_equality_reflexive(value):
    assert deep_equals(value, value)


@given(VALUES, VALUES)
def test_equality_symmetric(left, right):
    assert deep_equals(left, right) == deep_equals(right, left)


@given(VALUES, VALUES)
def test_group_key_characterises_equality(left, right):
    assert (group_key(left) == group_key(right)) == deep_equals(left, right)


@given(st.lists(VALUES, max_size=6), st.randoms(use_true_random=False))
def test_bag_equality_permutation_invariant(items, rng):
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert deep_equals(Bag(items), Bag(shuffled))


@given(VALUES, VALUES, VALUES)
@settings(max_examples=60)
def test_sort_key_total_and_transitive(a, b, c):
    keys = sorted([sort_key(a), sort_key(b), sort_key(c)])
    assert keys[0] <= keys[1] <= keys[2]


@given(VALUES)
def test_sort_key_consistent_with_equality(value):
    # Equal values must sort identically (same key).
    assert sort_key(value) == sort_key(value)


@given(VALUES)
def test_from_python_idempotent(value):
    once = from_python(value)
    twice = from_python(once)
    assert deep_equals(once, twice)


json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**31), max_value=2**31),
        st.text(max_size=10),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=20,
)


@given(json_like)
def test_python_round_trip(data):
    assert to_python(from_python(data)) == data


@given(st.lists(VALUES, max_size=8))
def test_multiset_difference_of_self_is_empty(items):
    """The counting logic behind EXCEPT ALL must cancel exactly."""
    counts = {}
    for item in items:
        key = group_key(item)
        counts[key] = counts.get(key, 0) + 1
    for item in random.Random(0).sample(items, len(items)):
        counts[group_key(item)] -= 1
    assert all(count == 0 for count in counts.values())
