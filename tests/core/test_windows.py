"""Window functions over the binding stream (Section V-B compatibility)."""

import pytest

from repro.errors import EvaluationError

from tests.conftest import bag_of


@pytest.fixture
def wdb(db):
    db.set(
        "emps",
        [
            {"name": "a", "dept": 1, "salary": 100},
            {"name": "b", "dept": 1, "salary": 200},
            {"name": "c", "dept": 1, "salary": 200},
            {"name": "d", "dept": 2, "salary": 50},
            {"name": "e", "dept": 2, "salary": 150},
        ],
    )
    return db


def by_name(result):
    return {row["name"]: row["w"] for row in (s.to_dict() for s in bag_of(result))}


class TestRanking:
    def test_row_number(self, wdb):
        result = by_name(
            wdb.execute(
                "SELECT e.name, ROW_NUMBER() OVER (PARTITION BY e.dept "
                "ORDER BY e.salary) AS w FROM emps AS e"
            )
        )
        assert result["a"] == 1
        assert result["d"] == 1
        assert result["e"] == 2

    def test_rank_with_ties(self, wdb):
        result = by_name(
            wdb.execute(
                "SELECT e.name, RANK() OVER (PARTITION BY e.dept "
                "ORDER BY e.salary) AS w FROM emps AS e"
            )
        )
        assert result["b"] == 2 and result["c"] == 2

    def test_dense_rank(self, wdb):
        result = by_name(
            wdb.execute(
                "SELECT e.name, DENSE_RANK() OVER (ORDER BY e.salary) AS w "
                "FROM emps AS e"
            )
        )
        assert result["b"] == result["c"] == 4 or result["b"] == result["c"] == 3

    def test_percent_rank(self, wdb):
        result = by_name(
            wdb.execute(
                "SELECT e.name, PERCENT_RANK() OVER (PARTITION BY e.dept "
                "ORDER BY e.salary) AS w FROM emps AS e"
            )
        )
        assert result["d"] == 0.0 and result["e"] == 1.0

    def test_ntile(self, wdb):
        result = by_name(
            wdb.execute(
                "SELECT e.name, NTILE(2) OVER (ORDER BY e.salary) AS w "
                "FROM emps AS e"
            )
        )
        assert sorted(result.values()) == [1, 1, 1, 2, 2]


class TestOffsetsAndValues:
    def test_lag_default_null(self, wdb):
        result = by_name(
            wdb.execute(
                "SELECT e.name, LAG(e.salary) OVER (PARTITION BY e.dept "
                "ORDER BY e.salary) AS w FROM emps AS e"
            )
        )
        assert result["d"] is None
        assert result["e"] == 50

    def test_lead_with_default(self, wdb):
        result = by_name(
            wdb.execute(
                "SELECT e.name, LEAD(e.salary, 1, -1) OVER (PARTITION BY e.dept "
                "ORDER BY e.salary) AS w FROM emps AS e"
            )
        )
        assert result["e"] == -1

    def test_first_value(self, wdb):
        result = by_name(
            wdb.execute(
                "SELECT e.name, FIRST_VALUE(e.salary) OVER (PARTITION BY e.dept "
                "ORDER BY e.salary) AS w FROM emps AS e"
            )
        )
        assert result["b"] == 100 and result["e"] == 50


class TestWindowedAggregates:
    def test_whole_partition_without_order(self, wdb):
        result = by_name(
            wdb.execute(
                "SELECT e.name, SUM(e.salary) OVER (PARTITION BY e.dept) AS w "
                "FROM emps AS e"
            )
        )
        assert result["a"] == 500 and result["d"] == 200

    def test_running_sum_with_order(self, wdb):
        result = by_name(
            wdb.execute(
                "SELECT e.name, SUM(e.salary) OVER (PARTITION BY e.dept "
                "ORDER BY e.salary) AS w FROM emps AS e"
            )
        )
        assert result["a"] == 100
        # b and c are salary peers: RANGE semantics include both.
        assert result["b"] == result["c"] == 500

    def test_count_star_window(self, wdb):
        result = by_name(
            wdb.execute(
                "SELECT e.name, COUNT(*) OVER (PARTITION BY e.dept) AS w "
                "FROM emps AS e"
            )
        )
        assert result["a"] == 3 and result["d"] == 2

    def test_window_over_nested_data(self, paper_db):
        # Windows compose with unnesting: rank projects per employee.
        result = bag_of(
            paper_db.execute(
                "SELECT e.name, p AS p, ROW_NUMBER() OVER (PARTITION BY e.id "
                "ORDER BY p) AS w FROM hr.emp_nest_scalars AS e, e.projects AS p"
            )
        )
        bob_rows = [s.to_dict() for s in result if s["name"] == "Bob Smith"]
        assert sorted(row["w"] for row in bob_rows) == [1, 2, 3]


class TestWindowErrors:
    def test_window_outside_select_rejected(self, wdb):
        with pytest.raises(EvaluationError):
            wdb.execute(
                "SELECT VALUE e FROM emps AS e "
                "WHERE ROW_NUMBER() OVER (ORDER BY e.salary) = 1"
            )

    def test_non_window_function_with_over(self, wdb):
        with pytest.raises(EvaluationError):
            wdb.execute("SELECT LOWER(e.name) OVER () AS w FROM emps AS e")
