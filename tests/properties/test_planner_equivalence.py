"""Property test: the physical planner preserves Core semantics.

For randomly generated join workloads — random tables with optional
(sometimes-MISSING) attributes and NULL-able keys, random join kinds,
equi / composite / non-equi ON predicates, and conjunctive WHERE
clauses — evaluation with ``optimize=True`` (hash joins, predicate
pushdown, right-side materialization) must produce exactly the same
bag as ``optimize=False`` (the executable reference semantics).
"""

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag

# Rows with optional attributes: a dropped key means the attribute is
# MISSING, exercising the planner's NULL/MISSING key handling.
def row_strategy(extra: str):
    return st.fixed_dictionaries(
        {},
        optional={
            "k": st.one_of(
                st.none(), st.integers(0, 4), st.sampled_from(["a", "b"])
            ),
            "j": st.integers(0, 2),
            extra: st.integers(-10, 10),
        },
    )


tables = st.tuples(
    st.lists(row_strategy("u"), max_size=8),
    st.lists(row_strategy("v"), max_size=8),
    st.lists(row_strategy("w"), max_size=5),
)

JOIN_KINDS = ["JOIN", "LEFT JOIN"]
ON_PREDICATES = [
    "l.k = r.k",                      # single-key equi join → hash
    "l.k = r.k AND l.j = r.j",        # composite key → hash
    "l.k = r.k AND l.u < r.v",        # equi + residual
    "l.j >= r.j",                     # non-equi → materialize
    "l.k = r.nope",                   # key always MISSING on one side
    "TRUE",                           # cross product
]
WHERE_CLAUSES = [
    None,
    "l.j = 1",                        # pushable to the left scan
    "r.v > 0",                        # right side: pushable only for INNER
    "l.j = 1 AND r.v > 0 AND l.u <= r.v",
]

query_parts = st.tuples(
    st.sampled_from(JOIN_KINDS),
    st.sampled_from(ON_PREDICATES),
    st.sampled_from(WHERE_CLAUSES),
)


def run_both(db: Database, query: str) -> None:
    optimized = db.execute(query, optimize=True)
    reference = db.execute(query, optimize=False)
    assert deep_equals(Bag(list(optimized)), Bag(list(reference))), (
        f"planner parity violation for {query!r}"
    )


@given(tables, query_parts)
@settings(max_examples=80, deadline=None)
def test_two_way_join_parity(data, parts):
    left, right, _ = data
    kind, on, where = parts
    db = Database()
    db.set("lt", left)
    db.set("rt", right)
    query = f"SELECT l.k AS lk, r.k AS rk FROM lt AS l {kind} rt AS r ON {on}"
    if where is not None:
        query += f" WHERE {where}"
    run_both(db, query)


@given(tables, st.sampled_from(JOIN_KINDS), st.sampled_from(JOIN_KINDS))
@settings(max_examples=50, deadline=None)
def test_three_way_join_parity(data, kind1, kind2):
    left, right, third = data
    db = Database()
    db.set("lt", left)
    db.set("rt", right)
    db.set("wt", third)
    query = (
        "SELECT l.k AS a, r.k AS b, w.k AS c FROM lt AS l "
        f"{kind1} rt AS r ON l.k = r.k "
        f"{kind2} wt AS w ON r.j = w.j"
    )
    run_both(db, query)


@given(tables)
@settings(max_examples=40, deadline=None)
def test_comma_cross_product_with_pushdown_parity(data):
    left, right, _ = data
    db = Database()
    db.set("lt", left)
    db.set("rt", right)
    run_both(
        db,
        "SELECT l.k AS lk, r.k AS rk FROM lt AS l, rt AS r "
        "WHERE l.j = 1 AND r.j = 1 AND l.k = r.k",
    )


@given(st.lists(row_strategy("u"), max_size=6))
@settings(max_examples=40, deadline=None)
def test_lateral_unnest_parity(rows):
    db = Database()
    db.set("src", [{"id": i, "items": rows} for i in range(3)])
    run_both(
        db,
        "SELECT s.id AS id, i.k AS k FROM src AS s "
        "LEFT JOIN s.items AS i ON i.j = s.id",
    )
