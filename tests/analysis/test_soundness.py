"""The lattice soundness property, checked by hypothesis.

For any expression the generator produces and any environment, the
category of the value permissive-mode evaluation returns must be
contained in the statically inferred category set — and in particular
a static always-MISSING verdict means evaluation really returns
MISSING.  This is the contract that makes every ``cats``-based rule
(SQLPP101/102/103/104) trustworthy: over-approximation can hide a
warning but can never fabricate one.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.lattice import (
    AType,
    category_of,
    join_all,
    scalar,
    tuple_of,
)
from repro.analysis.typeflow import infer_expression
from repro.catalog import Catalog
from repro.config import EvalConfig
from repro.core.environment import Environment
from repro.core.evaluator import Evaluator
from repro.datamodel.convert import from_python
from repro.datamodel.values import MISSING, Bag, Struct
from repro.errors import SQLPPError


def atype_of_value(value):
    """The exact abstract type of one concrete runtime value."""
    category = category_of(value)
    if isinstance(value, Struct):
        return tuple_of(
            sorted(
                (name, atype_of_value(item))
                for name, item in value.items()
            ),
            open=False,
        )
    if isinstance(value, (list, Bag)):
        element = join_all(atype_of_value(item) for item in value)
        return AType(
            cats=frozenset({category}),
            element=element if len(value) else None,
        )
    return scalar(category)


VARIABLES = {
    "x": st.integers(-20, 20),
    "s": st.sampled_from(["a", "bee", ""]),
    "flag": st.booleans(),
    "nn": st.none(),
    "row": st.fixed_dictionaries(
        {},
        optional={
            "a": st.integers(0, 9),
            "b": st.sampled_from(["p", "q"]),
        },
    ),
    "xs": st.lists(st.integers(0, 5), max_size=3),
}

LEAVES = st.sampled_from(
    [
        "x",
        "s",
        "flag",
        "nn",
        "xs",
        "row",
        "row.a",
        "row.b",
        "row.nosuch",
        "1",
        "2.5",
        "'lit'",
        "TRUE",
        "NULL",
        "MISSING",
    ]
)


def _unary(sub):
    return st.one_of(
        # Parenthesized as a whole: NOT binds looser than the arithmetic
        # and comparison operators, so a bare "NOT (x)" nested as a
        # binary operand ("x + NOT (x)") would not parse.
        sub.map(lambda a: f"(NOT ({a}))"),
        sub.map(lambda a: f"({a} IS MISSING)"),
        sub.map(lambda a: f"({a} IS NULL)"),
        sub.map(lambda a: f"ABS({a})"),
        sub.map(lambda a: f"-({a})"),
    )


def _binary(sub):
    ops = st.sampled_from(
        ["+", "-", "*", "/", "%", "=", "!=", "<", ">=", "AND", "OR", "||"]
    )
    return st.builds(lambda op, a, b: f"({a} {op} {b})", ops, sub, sub)


def _shaped(sub):
    return st.one_of(
        st.builds(lambda a, b: f"[{a}, {b}]", sub, sub),
        sub.map(lambda a: f"{{'k': {a}}}"),
        sub.map(lambda a: f"{{'k': {a}}}.k"),
        st.builds(lambda a, b: f"COALESCE({a}, {b})", sub, sub),
        st.builds(
            lambda a, b, c: f"CASE WHEN {a} THEN {b} ELSE {c} END",
            sub,
            sub,
            sub,
        ),
    )


EXPRESSIONS = st.recursive(
    LEAVES,
    lambda sub: st.one_of(_unary(sub), _binary(sub), _shaped(sub)),
    max_leaves=8,
)


@settings(max_examples=300, deadline=None)
@given(source=EXPRESSIONS, bindings=st.fixed_dictionaries(VARIABLES))
def test_static_categories_contain_runtime_category(source, bindings):
    values = {
        name: from_python(value) for name, value in bindings.items()
    }
    env_types = {
        name: atype_of_value(value) for name, value in values.items()
    }
    config = EvalConfig(typing_mode="permissive", sql_compat=False)

    inferred, _diagnostics = infer_expression(
        source, env_types, config=config
    )

    from repro.syntax.parser import parse_expression

    evaluator = Evaluator(Catalog(), config)
    try:
        value = evaluator.eval_expr(
            parse_expression(source), Environment(dict(values))
        )
    except SQLPPError:
        # Permissive evaluation refused outright; the category claim
        # is about produced values only.
        return

    assert category_of(value) in inferred.cats, (
        f"{source!r} evaluated to category {category_of(value)} "
        f"outside inferred {inferred.describe()}"
    )
    if inferred.is_always_missing():
        assert value is MISSING


@settings(max_examples=150, deadline=None)
@given(source=EXPRESSIONS, bindings=st.fixed_dictionaries(VARIABLES))
def test_analyzer_never_crashes_on_generated_expressions(
    source, bindings
):
    env_types = {
        name: atype_of_value(from_python(value))
        for name, value in bindings.items()
    }
    inferred, diagnostics = infer_expression(source, env_types)
    assert inferred.cats <= frozenset(
        {
            "number",
            "string",
            "boolean",
            "null",
            "missing",
            "array",
            "bag",
            "tuple",
        }
    )
    for diagnostic in diagnostics:
        assert diagnostic.code.startswith("SQLPP")
