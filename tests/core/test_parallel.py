"""Morsel-driven parallel execution (docs/PLANNER.md "Morsel-driven
parallelism"): result identity with the serial paths, worker-count
gating, error propagation across the fork, serial fallback on
infrastructure failure, and the governor's mid-chunk timeout checks.

The fixtures are small, so the fork thresholds are monkeypatched down
— the point is the machinery, not the speedup (see
benchmarks/bench_e16_parallel.py for the wall-clock story).
"""

from __future__ import annotations

import time

import pytest

from repro import Database, errors
from repro.core import parallel
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag


@pytest.fixture
def small_morsels(monkeypatch):
    """Let ~200-row fixtures fork into multiple morsels."""
    monkeypatch.setattr(parallel, "MIN_PARALLEL_ROWS", 64)
    monkeypatch.setattr(parallel, "MIN_MORSEL_ROWS", 32)


def fact_rows(n: int):
    return [{"k": i % 10, "v": (i * 13) % 100} for i in range(n)]


def build_db(n: int = 256, **kwargs) -> Database:
    db = Database(parallel=2, **kwargs)
    db.set("fact", fact_rows(n))
    db.set("dim", [{"k": i, "name": f"d{i}"} for i in range(10)])
    return db


def assert_bag_equal(left, right):
    left = Bag(list(left)) if isinstance(left, (list, Bag)) else left
    right = Bag(list(right)) if isinstance(right, (list, Bag)) else right
    assert deep_equals(left, right)


class TestRowsMode:
    def test_filter_scan_parity_and_workers(self, small_morsels):
        db = build_db()
        query = "SELECT VALUE f.v FROM fact AS f WHERE f.v < 50"
        result = db.execute(query)
        assert db.metrics.last.parallel_workers == 2
        assert db.metrics.last.batched is True
        assert_bag_equal(result, db.execute(query, parallel=0))

    def test_join_with_prebuilt_table(self, small_morsels):
        db = build_db()
        query = (
            "SELECT VALUE {'v': f.v, 'name': d.name} "
            "FROM fact AS f JOIN dim AS d ON f.k = d.k WHERE f.v < 50"
        )
        result = db.execute(query)
        assert db.metrics.last.parallel_workers == 2
        assert_bag_equal(result, db.execute(query, batch=False))

    def test_order_by_is_order_exact(self, small_morsels):
        # Ordered merge: morsel order == serial row order, so the final
        # sort sees identical input and ties break identically.
        db = build_db()
        query = "SELECT VALUE f.v FROM fact AS f ORDER BY f.v DESC, f.k"
        assert deep_equals(
            list(db.execute(query)), list(db.execute(query, parallel=0))
        )


class TestFoldMode:
    def test_group_by_fold_parity(self, small_morsels):
        db = build_db()
        query = (
            "SELECT k, COUNT(*) AS n, SUM(f.v) AS total, AVG(f.v) AS mean "
            "FROM fact AS f GROUP BY f.k AS k"
        )
        result = db.execute(query)
        assert db.metrics.last.parallel_workers == 2
        assert_bag_equal(result, db.execute(query, batch=False))

    def test_distinct_aggregate_fold_parity(self, small_morsels):
        db = build_db()
        query = (
            "SELECT k, COUNT(DISTINCT f.v) AS n "
            "FROM fact AS f GROUP BY f.k AS k"
        )
        assert_bag_equal(db.execute(query), db.execute(query, parallel=0))


class TestGating:
    def test_parallel_one_never_forks(self, small_morsels):
        db = build_db()
        db.execute("SELECT VALUE f.v FROM fact AS f", parallel=1)
        assert db.metrics.last.parallel_workers == 0

    def test_small_input_stays_serial(self):
        # Default thresholds: 256 rows is far below MIN_PARALLEL_ROWS.
        db = build_db()
        db.execute("SELECT VALUE f.v FROM fact AS f")
        assert db.metrics.last.parallel_workers == 0
        assert db.metrics.last.batched is True

    def test_lazy_source_is_not_partitionable(self, small_morsels):
        db = Database(parallel=2)
        db.set_lazy("lazy", lambda: ({"x": i} for i in range(256)))
        result = db.execute("SELECT VALUE l.x FROM lazy AS l WHERE l.x < 99")
        assert db.metrics.last.parallel_workers == 0
        assert len(list(result)) == 99

    def test_pool_failure_falls_back_to_serial(
        self, small_morsels, monkeypatch
    ):
        def broken_context(method):
            raise OSError("no fork for you")

        monkeypatch.setattr(
            parallel.multiprocessing, "get_context", broken_context
        )
        db = build_db()
        query = "SELECT VALUE f.v FROM fact AS f WHERE f.v < 50"
        result = db.execute(query)
        assert db.metrics.last.parallel_workers == 0
        assert_bag_equal(result, db.execute(query, parallel=0))


class TestLimitsAcrossTheFork:
    def test_max_rows_enforced_at_the_barrier(self, small_morsels):
        # Each worker's governor sees only its own morsels; the global
        # budget breach surfaces when the parent re-accounts the deltas.
        db = build_db(n=300, max_rows=250)
        with pytest.raises(errors.ResourceExhausted) as info:
            db.execute("SELECT VALUE f.v FROM fact AS f WHERE f.v >= 0")
        assert info.value.kind == "max_rows"

    def test_rebuild_error_round_trips_resource_exhausted(self):
        rebuilt = parallel._rebuild_error(
            "ResourceExhausted",
            "out of rows",
            {"kind": "max_rows", "rows_produced": 7, "elapsed_s": 0.5},
        )
        assert isinstance(rebuilt, errors.ResourceExhausted)
        assert rebuilt.kind == "max_rows"
        assert rebuilt.rows_produced == 7

    def test_rebuild_error_unknown_class_degrades(self):
        rebuilt = parallel._rebuild_error("NoSuchError", "boom", None)
        assert isinstance(rebuilt, errors.EvaluationError)


class TestMidChunkTimeout:
    def test_timeout_fires_inside_a_chunk(self):
        # A slow lazy source emits ~25 rows before the 50ms deadline; a
        # batch loop that only checked limits at chunk boundaries would
        # block for the full 1024-row chunk (~2s) before noticing.  The
        # scan ticks the governor every 64 pulls, so the error must
        # arrive promptly and report far fewer than 1024 rows.
        def slow_rows():
            for i in range(100_000):
                time.sleep(0.002)
                yield {"x": i}

        db = Database(timeout_s=0.05)
        db.set_lazy("slow", lambda: slow_rows())
        started = time.perf_counter()
        with pytest.raises(errors.ResourceExhausted) as info:
            db.execute("SELECT VALUE s.x FROM slow AS s WHERE s.x >= 0")
        elapsed = time.perf_counter() - started
        assert db.metrics.last.batched is True
        assert info.value.kind == "timeout"
        assert info.value.rows_produced < 1024
        assert elapsed < 1.0


class TestTracingAcrossTheFork:
    def test_explain_analyze_merges_worker_tallies(self, small_morsels):
        db = build_db()
        report = db.explain_analyze(
            "SELECT VALUE {'v': f.v, 'name': d.name} "
            "FROM fact AS f JOIN dim AS d ON f.k = d.k WHERE f.v < 50"
        )
        assert "HashJoin" in report
        assert "calls=" in report
