"""Diagnostics: the value type every analysis pass produces.

A :class:`Diagnostic` is one finding — a stable rule code, a severity,
a message, and (when the offending construct has a source span) a
1-based line/column.  Findings are plain frozen dataclasses so they
sort, dedupe and serialise trivially.

Suppression comes in two layers:

* a per-call allowlist (``suppress={"SQLPP003"}`` on the API, repeated
  ``--ignore`` flags on the CLI), and
* inline comments in the query text: ``-- sqlpp-ignore: SQLPP001,
  SQLPP003`` suppresses those codes for findings *on that source
  line*; a bare ``-- sqlpp-ignore`` suppresses every code on the line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

#: Severity levels, ordered most to least severe.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK: Dict[str, int] = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``code`` is the stable rule identifier (``SQLPP001``); ``severity``
    is one of :data:`ERROR` / :data:`WARNING` / :data:`INFO`.  ``line``
    and ``column`` are 1-based positions into the analyzed source, or
    ``None`` when the finding is about a synthesized node with no
    surface span.  ``hint`` optionally suggests a fix.  ``fixable``
    names the semantic rewrite rule (``SQLPPR01`` ... —
    docs/REWRITER.md) that would transform the flagged construct
    automatically, for findings that mirror a registered rewrite.
    """

    code: str
    severity: str
    message: str
    line: Optional[int] = None
    column: Optional[int] = None
    hint: Optional[str] = None
    fixable: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready representation (``None`` fields omitted)."""
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.line is not None:
            payload["line"] = self.line
            payload["column"] = self.column
        if self.hint is not None:
            payload["hint"] = self.hint
        if self.fixable is not None:
            payload["fixable"] = self.fixable
        return payload


def severity_rank(severity: str) -> int:
    """Sort rank for a severity (unknown severities sort last)."""
    return _SEVERITY_RANK.get(severity, len(_SEVERITY_RANK))


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable order: severity first, then source position, then code."""
    return sorted(
        diagnostics,
        key=lambda d: (
            severity_rank(d.severity),
            d.line if d.line is not None else 1 << 30,
            d.column if d.column is not None else 1 << 30,
            d.code,
            d.message,
        ),
    )


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any finding is error-severity."""
    return any(d.severity == ERROR for d in diagnostics)


#: ``-- sqlpp-ignore`` with an optional ``: CODE[, CODE...]`` tail.
_IGNORE_COMMENT = re.compile(
    r"--[^\n]*?sqlpp-ignore\s*(?::\s*(?P<codes>[A-Za-z0-9_,\s]*))?",
)


def suppressions_by_line(
    source: str,
) -> Dict[int, Optional[FrozenSet[str]]]:
    """Inline suppressions per source line.

    Maps a 1-based line number to the set of suppressed codes on that
    line, or to ``None`` when a bare ``-- sqlpp-ignore`` suppresses
    everything on the line.
    """
    result: Dict[int, Optional[FrozenSet[str]]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _IGNORE_COMMENT.search(text)
        if match is None:
            continue
        raw = match.group("codes")
        codes = (
            frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
            if raw is not None
            else frozenset()
        )
        # An empty code list (bare marker, or a dangling colon) means
        # "everything on this line".
        result[number] = codes or None
    return result


def filter_suppressed(
    diagnostics: Iterable[Diagnostic],
    source: Optional[str] = None,
    suppress: Iterable[str] = (),
) -> List[Diagnostic]:
    """Drop findings matched by per-call or inline suppressions."""
    global_codes = frozenset(code.upper() for code in suppress)
    inline: Dict[int, Optional[FrozenSet[str]]] = (
        suppressions_by_line(source) if source else {}
    )
    kept: List[Diagnostic] = []
    for diagnostic in diagnostics:
        if diagnostic.code in global_codes:
            continue
        if diagnostic.line is not None and diagnostic.line in inline:
            codes = inline[diagnostic.line]
            if codes is None or diagnostic.code in codes:
                continue
        kept.append(diagnostic)
    return kept


def dedupe(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Drop exact-duplicate findings, keeping first occurrence order."""
    seen: set[Tuple[Any, ...]] = set()
    kept: List[Diagnostic] = []
    for diagnostic in diagnostics:
        key = (
            diagnostic.code,
            diagnostic.message,
            diagnostic.line,
            diagnostic.column,
        )
        if key in seen:
            continue
        seen.add(key)
        kept.append(diagnostic)
    return kept
