"""The ``lint`` CLI verb and the ``--check`` execution gate."""

import json

from repro.cli import main


class TestLintCommand:
    def test_clean_command_exits_zero(self, capsys):
        assert main(["lint", "-c", "SELECT VALUE 1"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_error_finding_exits_one(self, capsys):
        assert main(["lint", "-c", "SELECT VALUE FLOR(1)"]) == 1
        out = capsys.readouterr().out
        assert "SQLPP004" in out
        assert "^" in out

    def test_warning_only_exits_zero(self, capsys):
        assert main(["lint", "-c", "SELECT VALUE 1 = 'a'"]) == 0
        assert "SQLPP102" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main(["lint", "--json", "-c", "SELECT VALUE FLOR(1)"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["diagnostics"][0]["code"] == "SQLPP004"

    def test_ignore_flag(self, capsys):
        assert (
            main(
                [
                    "lint",
                    "--ignore",
                    "SQLPP102",
                    "--ignore",
                    "SQLPP122",
                    "-c",
                    "SELECT VALUE 1 = 'a'",
                ]
            )
            == 0
        )
        assert "clean" in capsys.readouterr().out

    def test_lint_file(self, tmp_path, capsys):
        script = tmp_path / "q.sqlpp"
        script.write_text("SELECT VALUE FLOR(1);\n")
        assert main(["lint", str(script)]) == 1
        assert "q.sqlpp:1:" in capsys.readouterr().out

    def test_lint_with_loaded_data(self, tmp_path, capsys):
        data = tmp_path / "emp.json"
        data.write_text(json.dumps([{"name": "bob"}]))
        code = main(
            [
                "lint",
                "--core",
                "--load",
                f"emp={data}",
                "-c",
                "SELECT VALUE e.name FROM emp AS e",
            ]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_compat_kit_sweep(self, capsys):
        assert main(["lint", "--compat-kit"]) == 0
        out = capsys.readouterr().out
        assert "0 with error findings" in out


class TestCheckGate:
    def test_check_refuses_error_query(self, capsys):
        assert main(["--check", "-c", "SELECT VALUE FLOR(1)"]) == 1
        err = capsys.readouterr().err
        assert "SQLPP004" in err

    def test_check_allows_clean_query(self, capsys):
        assert main(["--check", "-c", "SELECT VALUE 1 + 1"]) == 0
        assert "2" in capsys.readouterr().out

    def test_check_allows_warnings(self, capsys):
        # Warnings report to stderr but execution proceeds.
        assert main(["--check", "-c", "SELECT VALUE 1 = 'a'"]) == 0
        captured = capsys.readouterr()
        # Permissive equality across types is MISSING — exactly what
        # the warning (reported, non-blocking) is about.
        assert "missing" in captured.out
        assert "SQLPP102" in captured.err
