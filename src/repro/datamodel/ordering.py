"""The total order over SQL++ values used by ``ORDER BY``.

SQL defines ordering only between comparable scalars; SQL++ queries sort
heterogeneous data, so (following the PartiQL specification, which the
paper's unified definition builds on) a *total* order across types is
needed.  The order ranks types:

    MISSING < NULL < booleans < numbers < strings < arrays < tuples < bags

and within a type orders values naturally (numbers by value across
int/float, strings lexicographically, arrays lexicographically by element,
tuples by their sorted attribute pairs, bags by their sorted elements).

``ORDER BY ... ASC`` therefore places absent values first, matching SQL's
``NULLS FIRST`` default for ascending order.
"""

from __future__ import annotations

import math
from typing import Any, Tuple

from repro.datamodel.values import MISSING, Bag, Struct


def sort_key(value: Any) -> Tuple:
    """A key usable with :func:`sorted` implementing the SQL++ total order.

    The returned keys are nested tuples that always compare successfully
    against each other, whatever the original value types were.
    """
    if value is MISSING:
        return (0,)
    if value is None:
        return (1,)
    if isinstance(value, bool):
        return (2, value)
    if isinstance(value, (int, float)):
        if isinstance(value, float) and math.isnan(value):
            # NaN sorts below all other numbers, like SQL engines commonly
            # order it; -inf is the smallest non-NaN float.
            return (3, 0, 0.0)
        return (3, 1, value)
    if isinstance(value, str):
        return (4, value)
    if isinstance(value, list):
        return (5, tuple(sort_key(item) for item in value))
    if isinstance(value, Struct):
        pairs = sorted((name, sort_key(item)) for name, item in value.items())
        return (6, tuple(pairs))
    if isinstance(value, Bag):
        return (7, tuple(sorted(sort_key(item) for item in value)))
    raise TypeError(f"not a SQL++ value: {value!r}")
