"""Direct unit tests for operator internals not reachable via queries."""

import pytest

from repro.config import EvalConfig
from repro.datamodel.values import MISSING, Bag, Struct
from repro.errors import EvaluationError, TypeCheckError
from repro.functions import operators as ops

PERMISSIVE = EvalConfig()
STRICT = EvalConfig(typing_mode="strict")


class TestLikeInternals:
    def test_escape_at_pattern_end_is_an_error(self):
        with pytest.raises(EvaluationError):
            ops.like("x", "abc!", "!", PERMISSIVE)

    def test_multichar_escape_rejected(self):
        assert ops.like("x", "a", "!!", PERMISSIVE) is MISSING
        with pytest.raises(TypeCheckError):
            ops.like("x", "a", "!!", STRICT)

    def test_dotall_matches_newlines(self):
        assert ops.like("a\nb", "a%b", None, PERMISSIVE) is True

    def test_escaped_underscore(self):
        assert ops.like("a_b", "a!_b", "!", PERMISSIVE) is True
        assert ops.like("axb", "a!_b", "!", PERMISSIVE) is False


class TestEqualsInternals:
    def test_same_kind_compares(self):
        assert ops.equals(1, 1.0, PERMISSIVE) is True
        assert ops.equals("a", "b", PERMISSIVE) is False
        assert ops.equals([1, 2], [1, 2], PERMISSIVE) is True
        assert ops.equals(Bag([1, 2]), Bag([2, 1]), PERMISSIVE) is True
        assert ops.equals(Struct({"a": 1}), Struct({"a": 1}), PERMISSIVE) is True

    def test_mismatched_kinds_are_a_type_error(self):
        # Paper, Section IV-B rule 2: wrongly-typed inputs to ``=`` are
        # a dynamic type error, exactly like ``<``/``<=``/``>``/``>=`` —
        # MISSING in permissive mode, raised in strict mode.
        mismatches = [
            (1, "a"),
            (True, 1),
            ([1], Bag([1])),
            (Struct({"a": 1}), [("a", 1)]),
            ("a", Struct({"a": 1})),
        ]
        for left, right in mismatches:
            assert ops.equals(left, right, PERMISSIVE) is MISSING
            with pytest.raises(TypeCheckError):
                ops.equals(left, right, STRICT)

    def test_absence_beats_type_checking(self):
        # Rule ordering: NULL/MISSING propagation applies before the
        # type check, in both typing modes.
        assert ops.equals(None, "a", STRICT) is None
        assert ops.equals(MISSING, "a", STRICT) is MISSING

    def test_not_equals_propagates_absence(self):
        assert ops.not_equals(None, 1, PERMISSIVE) is None
        assert ops.not_equals(MISSING, 1, PERMISSIVE) is MISSING

    def test_not_equals_mismatch_follows_equals(self):
        assert ops.not_equals(1, "a", PERMISSIVE) is MISSING
        with pytest.raises(TypeCheckError):
            ops.not_equals(1, "a", STRICT)


class TestInCollectionInternals:
    def test_null_collection_is_null(self):
        assert ops.in_collection(1, None, PERMISSIVE) is None

    def test_missing_collection_is_missing(self):
        assert ops.in_collection(1, MISSING, PERMISSIVE) is MISSING

    def test_non_collection_rhs(self):
        assert ops.in_collection(1, 5, PERMISSIVE) is MISSING
        with pytest.raises(TypeCheckError):
            ops.in_collection(1, 5, STRICT)

    def test_unknown_when_absent_member_blocks_false(self):
        assert ops.in_collection(9, [1, MISSING], PERMISSIVE) is None


class TestNavigationInternals:
    def test_index_with_bool_rejected(self):
        assert ops.navigate_index([1], True, PERMISSIVE) is MISSING

    def test_struct_index_requires_string(self):
        assert ops.navigate_index(Struct({"a": 1}), 0, PERMISSIVE) is MISSING

    def test_null_index_is_null(self):
        assert ops.navigate_index([1], None, PERMISSIVE) is None


class TestDistinct:
    def test_keeps_first_occurrence_order(self):
        assert ops.distinct_elements([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_distinct_across_int_float(self):
        assert ops.distinct_elements([1, 1.0]) == [1]

    def test_distinct_nested(self):
        result = ops.distinct_elements([Bag([1, 2]), Bag([2, 1]), [1, 2]])
        assert len(result) == 2


class TestBagOrList:
    def test_accepts_collections(self):
        assert ops.bag_or_list_elements([1], PERMISSIVE) == [1]
        assert ops.bag_or_list_elements(Bag([1]), PERMISSIVE) == [1]

    def test_rejects_scalars(self):
        assert ops.bag_or_list_elements(1, PERMISSIVE) is MISSING


class TestLogicTruthiness:
    def test_non_boolean_strict_raises(self):
        with pytest.raises(TypeCheckError):
            ops.logical_and("yes", True, STRICT)

    def test_is_true_only_for_true(self):
        assert ops.is_true(True)
        for value in (False, None, MISSING, 1, "true"):
            assert not ops.is_true(value)


class TestExistsInternals:
    def test_exists_on_struct_is_type_error(self):
        assert ops.exists(Struct({"a": 1}), PERMISSIVE) is MISSING
        with pytest.raises(TypeCheckError):
            ops.exists(Struct({"a": 1}), STRICT)


class TestIsPredicateInternals:
    def test_unknown_type_name_rejected(self):
        with pytest.raises(EvaluationError):
            ops.is_predicate(1, "WIDGET", PERMISSIVE)

    def test_absent_kind(self):
        assert ops.is_predicate(None, "ABSENT", PERMISSIVE)
        assert ops.is_predicate(MISSING, "ABSENT", PERMISSIVE)
        assert not ops.is_predicate(0, "ABSENT", PERMISSIVE)
