"""Cross-cutting checks over the kit's queries and expectations."""

import pytest

from repro.compat.corpus import all_cases
from repro.compat.runner import _results_equal, build_database
from repro.datamodel.values import Bag
from repro.formats.sqlpp_text import loads
from repro.syntax.parser import parse
from repro.syntax.printer import print_ast

CASES = all_cases()


@pytest.mark.parametrize(
    "case", CASES, ids=[case.case_id for case in CASES]
)
def test_every_kit_query_print_parses(case):
    """The kit's queries survive the canonical printer round trip."""
    first = print_ast(parse(case.query))
    assert print_ast(parse(first)) == first


@pytest.mark.parametrize(
    "case", CASES, ids=[case.case_id for case in CASES]
)
def test_every_kit_query_ast_round_trips(case):
    """parse → print → parse reproduces the identical AST (spans are
    excluded from node equality), including surface trivia like the
    paper's FROM-first clause order."""
    tree = parse(case.query)
    assert parse(print_ast(tree)) == tree


@pytest.mark.parametrize(
    "case",
    [case for case in CASES if case.expected is not None],
    ids=[case.case_id for case in CASES if case.expected is not None],
)
def test_every_expectation_is_a_valid_literal(case):
    loads(case.expected)


@pytest.mark.parametrize(
    "case", CASES, ids=[case.case_id for case in CASES]
)
def test_every_data_literal_loads(case):
    database = build_database(case)
    assert sorted(database.names()) == sorted(case.data)


class TestResultComparison:
    def test_bag_vs_array_top_level_tolerated(self):
        assert _results_equal(Bag([1, 2]), loads("[2, 1]"), ordered=False)

    def test_ordered_comparison_is_positional(self):
        assert not _results_equal([1, 2], [2, 1], ordered=True)
        assert _results_equal([1, 2], [1, 2], ordered=True)

    def test_scalar_results(self):
        assert _results_equal(2, loads("2"), ordered=False)
        assert not _results_equal(2, loads("3"), ordered=False)
