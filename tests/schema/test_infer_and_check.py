"""Schema inference, static type checking, and the query-stability tenet."""

import pytest

from repro import Database
from repro.datamodel.convert import from_python
from repro.datamodel.equality import deep_equals
from repro.schema import (
    FloatType,
    IntegerType,
    StringType,
    UnionType,
    check_query,
    infer_schema,
    validate,
)


class TestInference:
    def test_scalars(self):
        assert infer_schema(1) == IntegerType()
        assert infer_schema("x") == StringType()

    def test_homogeneous_collection(self):
        schema = infer_schema(from_python([1, 2, 3]))
        assert str(schema) == "ARRAY<INT>"

    def test_numeric_widening(self):
        schema = infer_schema(from_python([1, 2.5]))
        assert schema.element == FloatType()

    def test_heterogeneous_union(self):
        schema = infer_schema(from_python(["a", 1]))
        assert isinstance(schema.element, UnionType)

    def test_optional_fields(self):
        schema = infer_schema(from_python([{"a": 1}, {"a": 2, "b": "x"}]))
        struct = schema.element
        assert not struct.field_named("a").optional
        assert struct.field_named("b").optional

    def test_nullable_fields(self):
        schema = infer_schema(from_python([{"a": None}, {"a": 1}]))
        assert schema.element.field_named("a").nullable

    def test_inferred_schema_validates_its_data(self):
        data = from_python(
            [
                {"id": 1, "tags": ["a"], "meta": {"x": 1}},
                {"id": 2, "tags": [], "extra": 2.5},
                {"id": 3, "tags": ["b", "c"], "meta": {"x": None}},
            ]
        )
        validate(data, infer_schema(data))


class TestStaticChecker:
    def make_db(self):
        db = Database()
        db.set("emp", [{"name": "a", "salary": 10, "projects": ["x"]}])
        db.set_schema(
            "emp", "BAG<STRUCT<name STRING, salary INT, projects ARRAY<STRING>>>"
        )
        return db

    def findings(self, db, query):
        return check_query(db.compile(query), db._schemas)

    def test_clean_query_has_no_findings(self):
        db = self.make_db()
        assert self.findings(db, "SELECT e.name AS n FROM emp AS e") == []

    def test_unknown_attribute_in_closed_struct(self):
        db = self.make_db()
        findings = self.findings(db, "SELECT e.bogus AS b FROM emp AS e")
        assert any("bogus" in finding for finding in findings)

    def test_from_over_scalar_attribute(self):
        db = self.make_db()
        findings = self.findings(
            db, "SELECT VALUE x FROM emp AS e, e.salary AS x"
        )
        assert any("non-collection" in finding for finding in findings)

    def test_arithmetic_on_string(self):
        db = self.make_db()
        findings = self.findings(db, "SELECT VALUE e.name * 2 FROM emp AS e")
        assert any("arithmetic" in finding for finding in findings)

    def test_unnesting_array_is_fine(self):
        db = self.make_db()
        assert (
            self.findings(db, "SELECT VALUE p FROM emp AS e, e.projects AS p")
            == []
        )

    def test_no_schema_means_no_findings(self):
        db = Database()
        db.set("t", [{"anything": 1}])
        assert check_query(db.compile("SELECT VALUE r.x.y FROM t AS r"), {}) == []


class TestQueryStability:
    """Tenet 3: imposing a schema must not change any query result."""

    QUERIES = [
        "SELECT e.name AS n, p AS p FROM emp AS e, e.projects AS p",
        "SELECT e.title AS t, COUNT(*) AS n FROM emp AS e GROUP BY e.title",
        "SELECT VALUE e.salary FROM emp AS e ORDER BY e.salary",
        "PIVOT e.salary AT e.name FROM emp AS e",
    ]

    def make_data(self):
        return [
            {"id": 1, "name": "a", "title": "X", "salary": 10, "projects": ["p"]},
            {"id": 2, "name": "b", "title": "Y", "salary": 20, "projects": []},
        ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_results_identical_with_and_without_schema(self, query):
        without = Database()
        without.set("emp", self.make_data())

        with_schema = Database()
        with_schema.set("emp", self.make_data())
        with_schema.set_schema(
            "emp",
            "BAG<STRUCT<id INT, name STRING, title STRING, salary INT, "
            "projects ARRAY<STRING>>>",
        )
        assert deep_equals(without.execute(query), with_schema.execute(query))

    def test_nonconforming_schema_rejected_upfront(self):
        db = Database()
        db.set("emp", [{"id": "not an int"}])
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            db.set_schema("emp", "BAG<STRUCT<id INT>>")

    def test_set_validates_against_existing_schema(self):
        db = Database()
        db.set("emp", [{"id": 1}])
        db.set_schema("emp", "BAG<STRUCT<id INT>>")
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            db.set("emp", [{"id": "nope"}])
