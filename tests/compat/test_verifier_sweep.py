"""Plan/rewrite invariant verifier over the full compatibility kit.

Acceptance bar for the structural verifier (docs/ANALYZER.md): with
``REPRO_VERIFY_PLANS=1`` set, every conformance case — every paper
listing plus the extended and analytics corpora, each swept in *both*
typing modes — must compile, rewrite, and plan without a single
:class:`~repro.analysis.verify_plan.PlanVerificationError`.  Engine
errors the case itself provokes (type errors in strict mode, missing
bindings) are fine; a verifier failure never is, which is why
``PlanVerificationError`` is not an ``SQLPPError`` and would surface
here as a hard test failure rather than an expected outcome.
"""

from __future__ import annotations

import pytest

from repro import errors
from repro.catalog.database import Database
from repro.compat.corpus import all_cases


@pytest.fixture(autouse=True)
def _verify_plans(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")


@pytest.mark.parametrize("typing_mode", ["permissive", "strict"])
@pytest.mark.parametrize("case", all_cases(), ids=lambda case: case.case_id)
def test_every_plan_and_rewrite_verifies(case, typing_mode):
    db = Database(typing_mode=typing_mode, sql_compat=case.sql_compat)
    for name, literal in case.data.items():
        db.load_value(name, literal)
    try:
        db.execute(case.query)
    except errors.SQLPPError:
        pass  # the case's own runtime outcome; not a verifier violation


@pytest.mark.parametrize("typing_mode", ["permissive", "strict"])
@pytest.mark.parametrize("case", all_cases(), ids=lambda case: case.case_id)
def test_verify_plan_reports_no_violations(case, typing_mode):
    """The on-demand entry point agrees with the automatic sweep."""
    db = Database(typing_mode=typing_mode, sql_compat=case.sql_compat)
    for name, literal in case.data.items():
        db.load_value(name, literal)
    try:
        violations = db.verify_plan(case.query)
    except errors.SQLPPError:
        return  # the query does not compile in this mode; nothing to verify
    assert violations == []
