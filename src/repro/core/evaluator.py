"""The SQL++ Core evaluator.

Evaluates *rewritten* (Core) queries: a query block is a pipeline of
clause functions over binding streams (paper, Section V-B — "it is best
to think of a SQL++ query as being a pipeline of clauses, starting with
the FROM, continuing with the optional WHERE, proceeding to the optional
GROUP BY, and then the optional HAVING, and finishing with the SELECT
clause.  Each clause is a function that inputs data and outputs data.").

The pipeline:

``FROM`` → bindings (left-correlated nested loops; variables bind to any
value, Section III-A) → ``LET`` → ``WHERE`` (keep on TRUE only) →
``GROUP BY ... GROUP AS`` (groups become data, Section V-B) → ``HAVING``
→ windows → ``SELECT VALUE`` / ``SELECT *`` / ``PIVOT`` → ``ORDER BY`` /
``LIMIT`` / ``OFFSET``.

Unordered queries produce bags; ``ORDER BY`` produces arrays; ``PIVOT``
queries produce a single tuple (Section VI-B).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import EvalConfig
from repro.core import coercion
from repro.core.environment import Environment, Unbound
from repro.core.grouping_sets import expand_grouping_sets
from repro.core.windows import compute_window_values, find_window_calls
from repro.datamodel.equality import group_key
from repro.datamodel.ordering import sort_key
from repro.datamodel.values import MISSING, Bag, Struct, is_collection, type_name
from repro.errors import BindingError, EvaluationError, TypeCheckError
from repro.functions import operators as ops
from repro.functions.registry import REGISTRY
from repro.functions.scalar import cast_value
from repro.syntax import ast


class _BlockResult:
    """Output of one query block: values plus (optionally) the binding
    environments they came from, used for ORDER BY key evaluation."""

    __slots__ = ("values", "envs", "is_pivot")

    def __init__(
        self,
        values: List[Any],
        envs: Optional[List[Environment]],
        is_pivot: bool = False,
    ):
        self.values = values
        self.envs = envs
        self.is_pivot = is_pivot


class Evaluator:
    """Evaluates Core queries against a catalog of named values.

    ``catalog`` is any mapping-like object supporting ``__contains__``
    and ``__getitem__`` over dotted names (see
    :class:`repro.catalog.Catalog`).  ``parameters`` supplies values for
    positional ``?`` parameters.
    """

    def __init__(
        self,
        catalog,
        config: Optional[EvalConfig] = None,
        parameters: Optional[Sequence[Any]] = None,
        tracer=None,
    ):
        from repro.datamodel.convert import from_python
        from repro.observability.limits import ResourceGovernor

        self._catalog = catalog if catalog is not None else {}
        self.config = config or EvalConfig()
        self._parameters = [from_python(value) for value in parameters or []]
        self._compiled: Dict[int, Any] = {}
        self._plans: Dict[int, Any] = {}
        #: Optional ExecTracer collecting EXPLAIN ANALYZE statistics.
        self.tracer = tracer
        #: Wall time spent in the physical planner, or None when the
        #: planner never ran for this execution (reference pipeline,
        #: strict mode).  Always measured — planning happens once per
        #: block per evaluator, never per binding — so `plan:` phase
        #: reporting does not depend on a tracer being attached.
        self.plan_time_s: Optional[float] = None
        #: Cooperative limit enforcement; None when the config sets no
        #: limits, so the hot paths pay a single identity check.
        self.governor = ResourceGovernor.for_config(self.config)

    def compiled(self, expr: ast.Expr):
        """The closure-compiled form of an expression (cached per node).

        Semantically identical to ``eval_expr`` (see
        :mod:`repro.core.compile_expr`); used on the per-binding hot
        paths of the clause pipeline.
        """
        entry = self._compiled.get(id(expr))
        if entry is None:
            from repro.core.compile_expr import compile_expr

            # The cache keeps a reference to the node alongside the
            # closure: a key of bare id() could be reused by a new node
            # after the old one is garbage-collected.
            entry = (expr, compile_expr(expr, self))
            self._compiled[id(expr)] = entry
        return entry[1]

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(self, query: ast.Query, env: Optional[Environment] = None) -> Any:
        """Evaluate a query, translating internal signals to public errors."""
        try:
            return self.eval_query(query, env or Environment())
        except Unbound as unbound:
            raise BindingError(
                f"unresolved name {unbound.name!r}: not a variable in scope "
                "and not a named value in the database"
            ) from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def eval_query(self, query: ast.Query, env: Environment) -> Any:
        governor = self.governor
        if governor is None:
            return self._eval_query_impl(query, env)
        # Every (sub)query entry counts toward ``max_recursion`` and is a
        # natural point to check the wall-clock deadline.
        governor.enter_query()
        try:
            return self._eval_query_impl(query, env)
        finally:
            governor.exit_query()

    def _eval_query_impl(self, query: ast.Query, env: Environment) -> Any:
        body = query.body
        if isinstance(body, ast.QueryBlock):
            result = self.eval_block(body, env)
            if result.is_pivot:
                return result.values[0]
            values, envs = result.values, result.envs
        elif isinstance(body, ast.SetOp):
            values, envs = self._eval_setop(body, env), None
        else:
            value = self.eval_expr(body, env)
            if not query.order_by and query.limit is None and query.offset is None:
                return value
            values = list(self._require_collection(value, "query body"))
            envs = None

        ordered = bool(query.order_by)
        if ordered:
            values = self._apply_order_by(values, envs, query.order_by, env)
        values = self._apply_limit_offset(values, query, env)
        if ordered:
            return values
        return Bag(values)

    def _apply_order_by(
        self,
        values: List[Any],
        envs: Optional[List[Environment]],
        order_by: Sequence[ast.OrderItem],
        outer_env: Environment,
    ) -> List[Any]:
        """Stable multi-pass sort by the ORDER BY keys.

        Keys are evaluated in the block's final binding environment when
        available, overlaid with the output element's attributes (so both
        underlying variables and select aliases are usable, as in SQL).
        """
        indexed = list(range(len(values)))
        sort_envs: List[Environment] = []
        for position in indexed:
            base = envs[position] if envs is not None else outer_env
            value = values[position]
            if isinstance(value, Struct):
                base = base.extend(dict(value.items()))
            sort_envs.append(base)

        for item in reversed(list(order_by)):
            keys: Dict[int, tuple] = {}
            for position in indexed:
                key_value = self.eval_expr(item.expr, sort_envs[position])
                absent = key_value is None or key_value is MISSING
                if item.nulls_first is None:
                    primary = 0 if absent else 1
                else:
                    primary = 0 if (absent == item.nulls_first) else 1
                    if item.desc:
                        primary = 1 - primary
                keys[position] = (primary, sort_key(key_value))
            indexed.sort(key=keys.__getitem__, reverse=item.desc)
        return [values[position] for position in indexed]

    def _apply_limit_offset(
        self, values: List[Any], query: ast.Query, env: Environment
    ) -> List[Any]:
        if query.offset is not None:
            offset = self._cardinal(query.offset, env, "OFFSET")
            values = values[offset:]
        if query.limit is not None:
            limit = self._cardinal(query.limit, env, "LIMIT")
            values = values[:limit]
        return values

    def _cardinal(self, expr: ast.Expr, env: Environment, what: str) -> int:
        value = self.eval_expr(expr, env)
        if isinstance(value, bool) or not isinstance(value, int):
            raise EvaluationError(f"{what} expects an integer, got {type_name(value)}")
        if value < 0:
            raise EvaluationError(f"{what} must be non-negative")
        return value

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------

    def _eval_setop(self, setop: ast.SetOp, env: Environment) -> List[Any]:
        left = self._setop_elements(setop.left, env)
        right = self._setop_elements(setop.right, env)
        if setop.op == "UNION":
            combined = left + right
            return combined if setop.all else ops.distinct_elements(combined)
        if setop.op == "INTERSECT":
            counts = _multiset_counts(right)
            result = []
            for item in left:
                key = group_key(item)
                if counts.get(key, 0) > 0:
                    counts[key] -= 1
                    result.append(item)
            return result if setop.all else ops.distinct_elements(result)
        if setop.op == "EXCEPT":
            counts = _multiset_counts(right)
            result = []
            for item in left:
                key = group_key(item)
                if counts.get(key, 0) > 0:
                    counts[key] -= 1
                else:
                    result.append(item)
            return result if setop.all else ops.distinct_elements(result)
        raise EvaluationError(f"unknown set operation {setop.op}")

    def _setop_elements(self, term: ast.Node, env: Environment) -> List[Any]:
        if isinstance(term, ast.QueryBlock):
            result = self.eval_block(term, env)
            if result.is_pivot:
                raise EvaluationError("PIVOT query cannot be a set-operation input")
            return list(result.values)
        if isinstance(term, ast.SetOp):
            return self._eval_setop(term, env)
        if isinstance(term, ast.Query):
            return list(
                self._require_collection(
                    self.eval_query(term, env), "set-operation input"
                )
            )
        value = self.eval_expr(term, env)
        return list(self._require_collection(value, "set-operation input"))

    def _require_collection(self, value: Any, what: str):
        if is_collection(value):
            return value
        raise EvaluationError(f"{what} must be a collection, got {type_name(value)}")

    # ------------------------------------------------------------------
    # Query blocks
    # ------------------------------------------------------------------

    def eval_block(self, block: ast.QueryBlock, env: Environment) -> _BlockResult:
        # FROM — binding streams; no FROM means a single empty binding.
        # With optimization on (permissive mode only), the planner may
        # replace the FROM loop and part of the WHERE with a physical
        # plan (hash joins, pushed-down predicates — docs/PLANNER.md);
        # ``optimize=False`` is the executable reference semantics.
        tracer = self.tracer
        trace = tracer.trace if tracer is not None else None
        mark = perf_counter() if tracer is not None else 0.0

        def record(stage: str, rows_in: int, rows_out: int) -> None:
            nonlocal mark
            now = perf_counter()
            tracer.record_stage(block, stage, rows_in, rows_out, now - mark)
            if trace is not None:
                trace.event(
                    stage,
                    "stage",
                    mark,
                    now - mark,
                    {"rows_in": rows_in, "rows_out": rows_out},
                )
            mark = now

        var_order: List[str] = []
        plan = None
        if block.from_ is None:
            envs = [env]
        else:
            for item in block.from_:
                self._collect_item_vars(item, var_order)
            plan = self._block_plan(block)
            if plan is not None:
                envs = plan.execute(self, env)
            else:
                envs = [env]
                for item in block.from_:
                    envs = self._apply_from_item(item, envs)
            if tracer is not None:
                record("FROM", 1, len(envs))

        # LET
        if block.lets:
            rows_in = len(envs)
            for let in block.lets:
                var_order.append(let.name)
                let_fn = self.compiled(let.expr)
                envs = [
                    current.bind(let.name, let_fn(current)) for current in envs
                ]
            if tracer is not None:
                record("LET", rows_in, len(envs))

        # WHERE (the planner may have pushed some conjuncts into FROM)
        where_expr = block.where if plan is None else plan.residual_where
        if where_expr is not None:
            rows_in = len(envs)
            where_fn = self.compiled(where_expr)
            envs = [current for current in envs if where_fn(current) is True]
            if tracer is not None:
                record("WHERE", rows_in, len(envs))

        # GROUP BY ... GROUP AS
        output_vars = var_order
        if block.group_by is not None:
            rows_in = len(envs)
            envs = self._apply_group_by(block.group_by, envs, env, var_order)
            output_vars = [key.alias for key in block.group_by.keys]
            if block.group_by.group_as:
                output_vars = output_vars + [block.group_by.group_as]
            if tracer is not None:
                record("GROUP BY", rows_in, len(envs))

        # HAVING
        if block.having is not None:
            rows_in = len(envs)
            having_fn = self.compiled(block.having)
            envs = [current for current in envs if having_fn(current) is True]
            if tracer is not None:
                record("HAVING", rows_in, len(envs))

        # Window functions (computed over the final binding stream).
        select = block.select
        window_calls = find_window_calls(select)
        if window_calls:
            select, envs = self._bind_windows(select, window_calls, envs)

        # SELECT / PIVOT
        if isinstance(select, ast.PivotClause):
            result = _BlockResult(
                [self._eval_pivot(select, envs)], None, is_pivot=True
            )
            if tracer is not None:
                record("PIVOT", len(envs), 1)
            return result
        if isinstance(select, ast.SelectValue):
            select_fn = self.compiled(select.expr)
            values = [select_fn(current) for current in envs]
            if select.distinct:
                values = ops.distinct_elements(values)
                if tracer is not None:
                    record("SELECT DISTINCT", len(envs), len(values))
                return _BlockResult(values, None)
            if tracer is not None:
                record("SELECT", len(envs), len(values))
            return _BlockResult(values, envs)
        if isinstance(select, ast.SelectStar):
            values = [self._eval_star(current, output_vars) for current in envs]
            if select.distinct:
                values = ops.distinct_elements(values)
                if tracer is not None:
                    record("SELECT DISTINCT", len(envs), len(values))
                return _BlockResult(values, None)
            if tracer is not None:
                record("SELECT", len(envs), len(values))
            return _BlockResult(values, envs)
        raise EvaluationError(
            f"unexpected SELECT clause after rewriting: {type(select).__name__}"
        )

    # -- FROM ----------------------------------------------------------------

    def _block_plan(self, block: ast.QueryBlock):
        """The (cached) physical plan for a block, or None for the
        reference pipeline.  Cached like ``compiled``: the block node is
        kept alive alongside the plan so id() keys stay unique."""
        if not self.config.optimize or not self.config.is_permissive:
            return None
        entry = self._plans.get(id(block))
        if entry is None:
            from repro.core.planner import plan_block

            started = perf_counter()
            entry = (block, plan_block(block, self.config))
            elapsed = perf_counter() - started
            self.plan_time_s = (self.plan_time_s or 0.0) + elapsed
            if self.tracer is not None and self.tracer.trace is not None:
                self.tracer.trace.event("plan", "phase", started, elapsed)
            self._plans[id(block)] = entry
        if self.tracer is not None and entry[1] is not None:
            self.tracer.register_plan(block, entry[1])
        return entry[1]

    def _apply_from_item(
        self,
        item: ast.FromItem,
        envs: List[Environment],
    ) -> List[Environment]:
        result: List[Environment] = []
        for current in envs:
            for bindings in self._item_bindings(item, current):
                result.append(current.extend(bindings))
        return result

    def _collect_item_vars(self, item: ast.FromItem, var_order: List[str]) -> None:
        if isinstance(item, ast.FromCollection):
            var_order.append(item.alias)
            if item.at_alias:
                var_order.append(item.at_alias)
        elif isinstance(item, ast.FromUnpivot):
            var_order.append(item.value_alias)
            var_order.append(item.at_alias)
        elif isinstance(item, ast.FromJoin):
            self._collect_item_vars(item.left, var_order)
            self._collect_item_vars(item.right, var_order)

    def _item_bindings(
        self, item: ast.FromItem, env: Environment
    ) -> List[Dict[str, Any]]:
        """Bindings for one FROM item — the shared enumeration entry
        point for the reference pipeline and the physical plan's scans.

        All governor row accounting and EXPLAIN ANALYZE item statistics
        hang off this choke point; with neither active it forwards to
        the dispatch unchanged.
        """
        tracer = self.tracer
        governor = self.governor
        if tracer is None and governor is None:
            return self._item_bindings_impl(item, env)
        span = None
        if tracer is not None and tracer.trace is not None:
            from repro.observability.tracer import describe_from_item

            span = tracer.trace.begin(describe_from_item(item), "item")
        started = perf_counter() if tracer is not None else 0.0
        rows = self._item_bindings_impl(item, env)
        if governor is not None:
            governor.add(len(rows))
        if tracer is not None:
            tracer.record_item(item, len(rows), perf_counter() - started)
            if span is not None:
                tracer.trace.end(span, {"rows_out": len(rows)})
        return rows

    def _item_bindings_impl(
        self, item: ast.FromItem, env: Environment
    ) -> List[Dict[str, Any]]:
        if isinstance(item, ast.FromCollection):
            return self._range_bindings(item, env)
        if isinstance(item, ast.FromUnpivot):
            return self._unpivot_bindings(item, env)
        if isinstance(item, ast.FromJoin):
            return self._join_bindings(item, env)
        raise EvaluationError(f"unknown FROM item {type(item).__name__}")

    def _range_bindings(
        self, item: ast.FromCollection, env: Environment
    ) -> List[Dict[str, Any]]:
        """``expr AS v [AT p]``: variables bind to any value (Section
        III-A).

        * array → one binding per element, AT = 0-based position;
        * bag → one binding per element, AT = MISSING (bags are
          unordered, so there is no stable position to report);
        * NULL / MISSING → no bindings in permissive mode (the paper's
          "convenient signal, which most often leads to data exclusion");
        * any other value → a singleton binding in permissive mode;
        * strict mode raises for every non-collection source.
        """
        value = self.compiled(item.expr)(env)
        bindings: List[Dict[str, Any]] = []
        if isinstance(value, list):
            for position, element in enumerate(value):
                binding = {item.alias: element}
                if item.at_alias:
                    binding[item.at_alias] = position
                bindings.append(binding)
            return bindings
        if isinstance(value, Bag):
            for element in value:
                binding = {item.alias: element}
                if item.at_alias:
                    binding[item.at_alias] = MISSING
                bindings.append(binding)
            return bindings
        if not self.config.is_permissive:
            raise TypeCheckError(
                f"FROM expects a collection, got {type_name(value)}"
            )
        if value is None or value is MISSING:
            return []
        binding = {item.alias: value}
        if item.at_alias:
            binding[item.at_alias] = MISSING
        return [binding]

    def _unpivot_bindings(
        self, item: ast.FromUnpivot, env: Environment
    ) -> List[Dict[str, Any]]:
        """``UNPIVOT expr AS v AT a``: ranges over a tuple's attributes
        (Section VI-A), turning attribute names into data."""
        value = self.eval_expr(item.expr, env)
        if isinstance(value, Struct):
            return [
                {item.value_alias: attr_value, item.at_alias: attr_name}
                for attr_name, attr_value in value.items()
            ]
        if not self.config.is_permissive:
            raise TypeCheckError(f"UNPIVOT expects a tuple, got {type_name(value)}")
        if value is None or value is MISSING:
            return []
        # Permissive mode treats a non-tuple as {'_1': value}.
        return [{item.value_alias: value, item.at_alias: "_1"}]

    def _join_bindings(
        self, item: ast.FromJoin, env: Environment
    ) -> List[Dict[str, Any]]:
        """Explicit JOIN with lateral right side; LEFT pads with NULLs.

        Padding covers every right-side variable — including variables
        bound by joins nested inside the right side and AT position
        variables — via the same helper the physical hash/materialized
        join operators use (:func:`repro.core.plan_ops.pad_right_vars`),
        so the nested-loop and hash paths cannot diverge.
        """
        from repro.core.plan_ops import pad_right_vars

        result: List[Dict[str, Any]] = []
        right_vars: List[str] = []
        self._collect_item_vars(item.right, right_vars)
        for left_binding in self._item_bindings(item.left, env):
            left_env = env.extend(left_binding)
            matched = False
            for right_binding in self._item_bindings(item.right, left_env):
                combined = {**left_binding, **right_binding}
                if item.on is not None:
                    verdict = self.eval_expr(item.on, env.extend(combined))
                    if not ops.is_true(verdict):
                        continue
                matched = True
                result.append(combined)
            if item.kind == "LEFT" and not matched:
                result.append(pad_right_vars(left_binding, right_vars))
        return result

    # -- GROUP BY --------------------------------------------------------------

    def _apply_group_by(
        self,
        clause: ast.GroupByClause,
        envs: List[Environment],
        outer_env: Environment,
        var_order: List[str],
    ) -> List[Environment]:
        """Grouping with ``GROUP AS`` (paper, Section V-B, Listing 14).

        Output: one binding per group, mapping each key alias to the key
        value and the GROUP AS variable to the group's content — a bag of
        tuples with one attribute per input variable.
        """
        group_envs: List[Environment] = []
        for key_indexes in expand_grouping_sets(clause):
            active = set(key_indexes)
            groups: Dict[tuple, Dict[str, Any]] = {}
            order: List[tuple] = []
            key_fns = [self.compiled(key.expr) for key in clause.keys]
            for current in envs:
                key_values: List[Any] = []
                for index, key_fn in enumerate(key_fns):
                    if index in active:
                        key_values.append(key_fn(current))
                    else:
                        key_values.append(None)
                identity = tuple(group_key(value) for value in key_values)
                group = groups.get(identity)
                if group is None:
                    group = {
                        "keys": key_values,
                        "members": [],
                    }
                    groups[identity] = group
                    order.append(identity)
                group["members"].append(current)
            if not groups and not clause.keys:
                # Implicit aggregation over empty input still produces a
                # single (empty) group, matching SQL's one-row answer.
                groups[()] = {"keys": [], "members": []}
                order.append(())
            for identity in order:
                group = groups[identity]
                bindings: Dict[str, Any] = {}
                for key, value in zip(clause.keys, group["keys"]):
                    bindings[key.alias] = value
                if clause.group_as:
                    bindings[clause.group_as] = Bag(
                        self._group_element(member, var_order)
                        for member in group["members"]
                    )
                group_envs.append(outer_env.extend(bindings))
        return group_envs

    def _group_element(
        self, env: Environment, var_order: List[str]
    ) -> Struct:
        """One element of a GROUP AS bag: a tuple of the input bindings
        (Listing 14: ``{ e: ..., p: ... }``)."""
        element = Struct()
        for name in var_order:
            try:
                value = env.lookup(name)
            except Unbound:
                continue
            element = element.with_attr(name, value)
        return element

    # -- SELECT * / PIVOT -------------------------------------------------------

    def _eval_star(self, env: Environment, var_order: List[str]) -> Struct:
        """``SELECT *``: splice tuple-valued bindings, name the rest."""
        result = Struct()
        for name in var_order:
            try:
                value = env.lookup(name)
            except Unbound:
                continue
            if isinstance(value, Struct):
                result = result.merged(value)
            elif value is not MISSING:
                result = result.with_attr(name, value)
        return result

    def _eval_pivot(
        self, clause: ast.PivotClause, envs: List[Environment]
    ) -> Struct:
        """``PIVOT v AT a``: one tuple from the whole binding stream
        (Section VI-B, Listings 24-25)."""
        pairs: List[Tuple[str, Any]] = []
        for env in envs:
            name = self.eval_expr(clause.at, env)
            value = self.eval_expr(clause.value, env)
            if not isinstance(name, str):
                if self.config.is_permissive:
                    continue
                raise TypeCheckError(
                    f"PIVOT attribute name must be a string, got {type_name(name)}"
                )
            if value is MISSING:
                continue
            pairs.append((name, value))
        return Struct(pairs)

    # -- Windows ---------------------------------------------------------------

    def _bind_windows(
        self,
        select: ast.SelectClause,
        window_calls: List[ast.WindowCall],
        envs: List[Environment],
    ) -> Tuple[ast.SelectClause, List[Environment]]:
        """Precompute window values and substitute variable references."""
        replacements: Dict[int, str] = {}
        per_env: List[Dict[str, Any]] = [dict() for __ in envs]
        for number, call in enumerate(window_calls):
            name = f"$window{number}"
            replacements[id(call)] = name
            for position, value in enumerate(
                compute_window_values(call, envs, self)
            ):
                per_env[position][name] = value

        def substitute(node: ast.Node) -> ast.Node:
            if id(node) in replacements:
                return ast.VarRef(name=replacements[id(node)])
            return node

        new_select = select.transform(substitute)
        new_envs = [env.extend(extra) for env, extra in zip(envs, per_env)]
        return new_select, new_envs

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def eval_expr(self, expr: ast.Expr, env: Environment) -> Any:
        method = _DISPATCH.get(type(expr))
        if method is None:
            raise EvaluationError(f"cannot evaluate {type(expr).__name__}")
        return method(self, expr, env)

    def _eval_literal(self, expr: ast.Literal, env: Environment) -> Any:
        return expr.value

    def _eval_varref(self, expr: ast.VarRef, env: Environment) -> Any:
        try:
            return env.lookup(expr.name)
        except Unbound:
            if expr.name in self._catalog:
                return self._catalog[expr.name]
            raise Unbound(expr.name) from None

    def _eval_path(self, expr: ast.Path, env: Environment) -> Any:
        try:
            base = self.eval_expr(expr.base, env)
        except Unbound as unbound:
            # ``hr.emp`` is a namespaced named value, not navigation into
            # a variable.  Try successively longer dotted catalog names.
            if isinstance(expr.base, (ast.VarRef, ast.Path)):
                dotted = f"{unbound.name}.{expr.attr}"
                if dotted in self._catalog:
                    return self._catalog[dotted]
                raise Unbound(dotted) from None
            raise
        return ops.navigate_path(base, expr.attr, self.config)

    def _eval_index(self, expr: ast.Index, env: Environment) -> Any:
        base = self.eval_expr(expr.base, env)
        index = self.eval_expr(expr.index, env)
        return ops.navigate_index(base, index, self.config)

    def _eval_path_wildcard(self, expr: ast.PathWildcard, env: Environment) -> Any:
        """``base[*].a.b`` — map trailing steps over the elements.

        Produces an array of the per-element navigation results, dropping
        MISSING results (the data-exclusion signal).  A further wildcard
        step flattens one level.
        """
        base = self.eval_expr(expr.base, env)
        current = self._wildcard_elements(base, expr.kind)
        for step in expr.steps:
            if step.wildcard is not None:
                flattened: List[Any] = []
                for item in current:
                    flattened.extend(self._wildcard_elements(item, step.wildcard))
                current = flattened
            elif step.attr is not None:
                current = [
                    ops.navigate_path(item, step.attr, self.config)
                    for item in current
                ]
            else:
                index = self.eval_expr(step.index, env)
                current = [
                    ops.navigate_index(item, index, self.config)
                    for item in current
                ]
        return [item for item in current if item is not MISSING]

    def _wildcard_elements(self, value: Any, kind: str) -> List[Any]:
        if kind == "attrs":
            if isinstance(value, Struct):
                return value.values()
        elif isinstance(value, (list, Bag)):
            return list(value)
        if value is None or value is MISSING:
            return []
        checked = self.config.type_error(
            f"path wildcard expects a collection, got {type_name(value)}"
        )
        return [] if checked is MISSING else [checked]

    def _eval_binary(self, expr: ast.Binary, env: Environment) -> Any:
        op = expr.op
        if op == "AND":
            return ops.logical_and(
                self.eval_expr(expr.left, env),
                self.eval_expr(expr.right, env),
                self.config,
            )
        if op == "OR":
            return ops.logical_or(
                self.eval_expr(expr.left, env),
                self.eval_expr(expr.right, env),
                self.config,
            )
        left = self.eval_expr(expr.left, env)
        right = self.eval_expr(expr.right, env)
        if op == "=":
            return ops.equals(left, right, self.config)
        if op == "!=":
            return ops.not_equals(left, right, self.config)
        if op in ("<", "<=", ">", ">="):
            return ops.compare(op, left, right, self.config)
        if op == "||":
            return ops.concat(left, right, self.config)
        return ops.arithmetic(op, left, right, self.config)

    def _eval_unary(self, expr: ast.Unary, env: Environment) -> Any:
        value = self.eval_expr(expr.operand, env)
        if expr.op == "NOT":
            return ops.logical_not(value, self.config)
        if expr.op == "-":
            return ops.negate(value, self.config)
        return ops.unary_plus(value, self.config)

    def _eval_is(self, expr: ast.IsPredicate, env: Environment) -> Any:
        verdict = ops.is_predicate(
            self.eval_expr(expr.operand, env), expr.kind, self.config
        )
        return (not verdict) if expr.negated else verdict

    def _eval_like(self, expr: ast.Like, env: Environment) -> Any:
        verdict = ops.like(
            self.eval_expr(expr.operand, env),
            self.eval_expr(expr.pattern, env),
            self.eval_expr(expr.escape, env) if expr.escape is not None else None,
            self.config,
        )
        if expr.negated:
            return ops.logical_not(verdict, self.config)
        return verdict

    def _eval_between(self, expr: ast.Between, env: Environment) -> Any:
        operand = self.eval_expr(expr.operand, env)
        low = self.eval_expr(expr.low, env)
        high = self.eval_expr(expr.high, env)
        verdict = ops.logical_and(
            ops.compare(">=", operand, low, self.config),
            ops.compare("<=", operand, high, self.config),
            self.config,
        )
        if expr.negated:
            return ops.logical_not(verdict, self.config)
        return verdict

    def _eval_in(self, expr: ast.InPredicate, env: Environment) -> Any:
        verdict = ops.in_collection(
            self.eval_expr(expr.operand, env),
            self.eval_expr(expr.collection, env),
            self.config,
        )
        if expr.negated:
            return ops.logical_not(verdict, self.config)
        return verdict

    def _eval_exists(self, expr: ast.Exists, env: Environment) -> Any:
        return ops.exists(self.eval_expr(expr.operand, env), self.config)

    def _eval_case(self, expr: ast.CaseExpr, env: Environment) -> Any:
        """CASE with the paper's MISSING treatment (Listing 9).

        In Core mode a MISSING comparison/condition makes the whole CASE
        MISSING (rule 3 of Section IV-B: operators propagate MISSING); in
        SQL-compat mode MISSING behaves like NULL — the condition simply
        does not match — because SQL's ``CASE WHEN NULL`` continues to
        the next branch (the Section IV-B compatibility exception).
        """
        operand = (
            self.eval_expr(expr.operand, env) if expr.operand is not None else None
        )
        if expr.operand is not None and operand is MISSING:
            if not self.config.sql_compat:
                return MISSING
        for condition, result in expr.whens:
            if expr.operand is not None:
                verdict = ops.equals(
                    operand, self.eval_expr(condition, env), self.config
                )
            else:
                verdict = self.eval_expr(condition, env)
            if verdict is MISSING and not self.config.sql_compat:
                return MISSING
            if ops.is_true(verdict):
                return self.eval_expr(result, env)
        if expr.else_ is not None:
            return self.eval_expr(expr.else_, env)
        return None

    def _eval_call(self, expr: ast.FunctionCall, env: Environment) -> Any:
        if expr.name == "$TUPLE_MERGE":
            return self._tuple_merge(expr.args, env)
        definition = REGISTRY.lookup(expr.name)
        if definition is None:
            raise EvaluationError(f"unknown function {expr.name}")
        if expr.star:
            raise EvaluationError(
                f"{expr.name}(*) is only meaningful inside a grouped query"
            )
        args = [self.eval_expr(arg, env) for arg in expr.args]
        if expr.distinct and definition.is_aggregate and args:
            first = args[0]
            if is_collection(first):
                args = [ops.distinct_elements(first)] + args[1:]
        return definition.invoke(args, self.config)

    def _tuple_merge(self, args: List[ast.Expr], env: Environment) -> Struct:
        """Internal: merge tuple parts for ``SELECT a.*, b.x`` projections."""
        result = Struct()
        for arg in args:
            value = self.eval_expr(arg, env)
            if isinstance(value, Struct):
                result = result.merged(value)
            elif value is MISSING or value is None:
                continue
            else:
                checked = self.config.type_error(
                    f"SELECT item.* expects a tuple, got {type_name(value)}"
                )
                if checked is MISSING:
                    continue
        return result

    def _eval_windowcall(self, expr: ast.WindowCall, env: Environment) -> Any:
        raise EvaluationError(
            "window functions (OVER) are only allowed in the SELECT clause "
            "of a query block"
        )

    def _eval_subquery(self, expr: ast.SubqueryExpr, env: Environment) -> Any:
        return self.eval_query(expr.query, env)

    def _eval_coerce(self, expr: ast.CoerceSubquery, env: Environment) -> Any:
        result = self.eval_query(expr.query, env)
        if expr.mode == "scalar":
            return coercion.coerce_scalar(result, self.config)
        return coercion.coerce_collection(result, self.config)

    def _eval_parameter(self, expr: ast.Parameter, env: Environment) -> Any:
        if expr.index >= len(self._parameters):
            raise EvaluationError(
                f"no value supplied for parameter #{expr.index + 1}"
            )
        return self._parameters[expr.index]

    def _eval_cast(self, expr: ast.CastExpr, env: Environment) -> Any:
        return cast_value(self.eval_expr(expr.operand, env), expr.type_name, self.config)

    def _eval_struct(self, expr: ast.StructLit, env: Environment) -> Struct:
        """Tuple construction; a MISSING attribute value omits the
        attribute (Section IV-B: "the output tuple will not have a title
        attribute")."""
        result = Struct()
        for field in expr.fields:
            key = self.eval_expr(field.key, env)
            if key is MISSING or key is None:
                if self.config.is_permissive:
                    continue
                raise TypeCheckError("tuple attribute name is absent")
            if not isinstance(key, str):
                checked = self.config.type_error(
                    f"tuple attribute name must be a string, got {type_name(key)}"
                )
                if checked is MISSING:
                    continue
            value = self.eval_expr(field.value, env)
            result = result.with_attr(key, value)
        return result

    def _eval_array(self, expr: ast.ArrayLit, env: Environment) -> list:
        values = (self.eval_expr(item, env) for item in expr.items)
        return [value for value in values if value is not MISSING]

    def _eval_bag(self, expr: ast.BagLit, env: Environment) -> Bag:
        values = (self.eval_expr(item, env) for item in expr.items)
        return Bag(value for value in values if value is not MISSING)


_DISPATCH = {
    ast.Literal: Evaluator._eval_literal,
    ast.VarRef: Evaluator._eval_varref,
    ast.Path: Evaluator._eval_path,
    ast.Index: Evaluator._eval_index,
    ast.PathWildcard: Evaluator._eval_path_wildcard,
    ast.Binary: Evaluator._eval_binary,
    ast.Unary: Evaluator._eval_unary,
    ast.IsPredicate: Evaluator._eval_is,
    ast.Like: Evaluator._eval_like,
    ast.Between: Evaluator._eval_between,
    ast.InPredicate: Evaluator._eval_in,
    ast.Exists: Evaluator._eval_exists,
    ast.CaseExpr: Evaluator._eval_case,
    ast.FunctionCall: Evaluator._eval_call,
    ast.WindowCall: Evaluator._eval_windowcall,
    ast.SubqueryExpr: Evaluator._eval_subquery,
    ast.CoerceSubquery: Evaluator._eval_coerce,
    ast.Parameter: Evaluator._eval_parameter,
    ast.CastExpr: Evaluator._eval_cast,
    ast.StructLit: Evaluator._eval_struct,
    ast.ArrayLit: Evaluator._eval_array,
    ast.BagLit: Evaluator._eval_bag,
}


def _multiset_counts(items: List[Any]) -> Dict[tuple, int]:
    counts: Dict[tuple, int] = {}
    for item in items:
        key = group_key(item)
        counts[key] = counts.get(key, 0) + 1
    return counts
