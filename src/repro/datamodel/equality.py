"""Deep (structural) equality and hashable grouping keys for SQL++ values.

Two distinct notions of equality exist in SQL++ and both are provided by
the library:

* **Operator equality** (the ``=`` operator) follows SQL: comparing with
  ``NULL`` yields ``NULL``, comparing with ``MISSING`` yields ``MISSING``,
  and comparing values of incomparable types is a dynamic type error —
  ``MISSING`` in permissive mode, raised in strict mode (paper,
  Section IV-B rule 2).  That logic lives in
  :mod:`repro.functions.operators`.

* **Deep equality** (this module) is the structural equality used for bag
  (multiset) equality, ``GROUP BY`` key identity, ``DISTINCT`` and test
  assertions.  Here ``NULL = NULL`` and ``MISSING = MISSING`` hold, arrays
  compare element-wise in order, structs compare as multisets of pairs and
  bags compare as multisets of values — exactly the identity the paper
  relies on when printing expected query results.

Numbers compare by value across ``int``/``float`` (``1 = 1.0``) but
booleans are distinct from numbers, matching SQL's separate BOOLEAN type.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.datamodel.values import MISSING, Bag, Struct


def deep_equals(left: Any, right: Any) -> bool:
    """Structural SQL++ equality. See module docstring for the rules."""
    if left is MISSING or right is MISSING:
        return left is right
    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if isinstance(left, (int, float)):
        return isinstance(right, (int, float)) and left == right
    if isinstance(left, str):
        return isinstance(right, str) and left == right
    if isinstance(left, list):
        if not isinstance(right, list) or len(left) != len(right):
            return False
        return all(deep_equals(a, b) for a, b in zip(left, right))
    if isinstance(left, Bag):
        if not isinstance(right, Bag) or len(left) != len(right):
            return False
        return _multiset_equals(left.to_list(), right.to_list())
    if isinstance(left, Struct):
        if not isinstance(right, Struct) or len(left) != len(right):
            return False
        return _multiset_equals(
            [list(pair) for pair in left.items()],
            [list(pair) for pair in right.items()],
        )
    raise TypeError(f"not a SQL++ value: {left!r}")


def _multiset_equals(left_items: list, right_items: list) -> bool:
    """Multiset equality via canonical grouping keys (O(n) expected)."""
    counts: dict = {}
    for item in left_items:
        key = group_key(item)
        counts[key] = counts.get(key, 0) + 1
    for item in right_items:
        key = group_key(item)
        remaining = counts.get(key, 0)
        if remaining == 0:
            return False
        counts[key] = remaining - 1
    return True


def group_key(value: Any) -> Tuple:
    """A hashable canonical key such that two values get the same key iff
    they are :func:`deep_equals`-equal.

    Used for ``GROUP BY``, ``DISTINCT``, set operations and multiset
    equality.  The key is a nested tuple whose first element is a type tag,
    so keys of different types never collide and always compare (the tags
    are strings, giving a total order for canonicalising bags).
    """
    if value is MISSING:
        return ("0missing",)
    if value is None:
        return ("1null",)
    if isinstance(value, bool):
        return ("2bool", value)
    if isinstance(value, (int, float)):
        # Python guarantees hash(1) == hash(1.0) and exact ==-comparison
        # across int/float, so the raw number canonicalises itself.
        return ("3num", value)
    if isinstance(value, str):
        return ("4str", value)
    if isinstance(value, list):
        return ("5arr", tuple(group_key(item) for item in value))
    if isinstance(value, Bag):
        return ("6bag", tuple(sorted(group_key(item) for item in value)))
    if isinstance(value, Struct):
        pairs = sorted((name, group_key(item)) for name, item in value.items())
        return ("7tup", tuple(pairs))
    raise TypeError(f"not a SQL++ value: {value!r}")
