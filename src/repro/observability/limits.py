"""Cooperative resource governance for query execution.

The north-star deployment serves heavy traffic, where one runaway query
(an accidental cross product, a pathological pattern) must not take the
worker down with it.  :class:`ResourceGovernor` enforces the three
limits on :class:`~repro.config.EvalConfig` — ``timeout_s``,
``max_rows`` and ``max_recursion`` — *cooperatively*: the evaluator and
the physical operators call :meth:`add` as binding rows materialize and
:meth:`enter_query`/:meth:`exit_query` around nested query evaluation,
and the governor raises :class:`~repro.errors.ResourceExhausted` as soon
as a limit is crossed.  No threads, no signals: the checks ride the row
loops the query was already paying for, so an exceeded limit surfaces
within one binding row of the breach instead of hanging.  On the
streaming clause pipeline (docs/PLANNER.md) the tick happens mid-stream
as each row is pulled, so a timeout interrupts a long scan even when no
downstream clause has produced a row yet.

The raised error carries the partial progress (rows produced, elapsed
wall time) so clients — the CLI in particular — can report what the
query achieved before it was stopped.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.config import EvalConfig
from repro.errors import ResourceExhausted


class ResourceGovernor:
    """Tracks one query execution against its configured limits."""

    __slots__ = (
        "max_rows",
        "max_recursion",
        "timeout_s",
        "started",
        "deadline",
        "rows",
        "depth",
    )

    def __init__(self, config: EvalConfig):
        self.max_rows = config.max_rows
        self.max_recursion = config.max_recursion
        self.timeout_s = config.timeout_s
        self.started = perf_counter()
        self.deadline: Optional[float] = (
            self.started + config.timeout_s
            if config.timeout_s is not None
            else None
        )
        self.rows = 0
        self.depth = 0

    @staticmethod
    def for_config(config: EvalConfig) -> Optional["ResourceGovernor"]:
        """A governor when any limit is set, else None (zero overhead)."""
        return ResourceGovernor(config) if config.has_limits else None

    def elapsed_s(self) -> float:
        return perf_counter() - self.started

    def add(self, produced: int = 1) -> None:
        """Account for newly materialized binding rows; raise on breach."""
        self.rows += produced
        if self.max_rows is not None and self.rows > self.max_rows:
            raise ResourceExhausted(
                f"query exceeded max_rows={self.max_rows} "
                f"({self.rows} binding rows materialized in "
                f"{self.elapsed_s():.3f}s)",
                kind="max_rows",
                rows_produced=self.rows,
                elapsed_s=self.elapsed_s(),
            )
        if self.deadline is not None and perf_counter() > self.deadline:
            raise ResourceExhausted(
                f"query exceeded timeout_s={self.timeout_s} "
                f"({self.elapsed_s():.3f}s elapsed, {self.rows} binding "
                "rows materialized)",
                kind="timeout",
                rows_produced=self.rows,
                elapsed_s=self.elapsed_s(),
            )

    def enter_query(self) -> None:
        """Entering one (possibly nested) query evaluation."""
        self.depth += 1
        if self.max_recursion is not None and self.depth > self.max_recursion:
            raise ResourceExhausted(
                f"query exceeded max_recursion={self.max_recursion} "
                "(nested subquery depth)",
                kind="max_recursion",
                rows_produced=self.rows,
                elapsed_s=self.elapsed_s(),
            )

    def exit_query(self) -> None:
        self.depth -= 1
