"""Querying messy, heterogeneous event logs (paper Section IV).

A realistic semistructured log: events differ in shape (some carry tag
arrays, some nested user tuples, some neither) and a fraction carry a
wrongly-typed field.  The example contrasts the two typing modes —
permissive mode keeps the healthy data flowing and signals the rest via
MISSING; stop-on-error mode halts at the first dirty row — and shows the
bolt-on JSON-column baseline losing the null/absent distinction that
SQL++ keeps.

Run:  python examples/dirty_data.py
"""

from repro import Database, TypeCheckError, sqlpp_dumps
from repro.baselines.jsoncolumn import JsonColumnDatabase
from repro.workloads import event_log


def show(title, result, limit=6):
    print(f"\n-- {title}")
    items = list(result) if hasattr(result, "__iter__") else [result]
    for item in items[:limit]:
        print("  ", sqlpp_dumps(item).replace("\n", " ").replace("  ", ""))
    if len(items) > limit:
        print(f"   ... ({len(items) - limit} more)")


def main():
    events = event_log(2000, dirty_rate=0.05, seed=99)
    db = Database()
    db.set("events", events)

    # Permissive mode: the 5% dirty latencies become MISSING in derived
    # attributes; the other 95% of the data is analysed normally.
    show(
        "Latency stats per kind, dirty rows excluded from the math",
        db.execute(
            """
            SELECT e.kind AS kind,
                   COUNT(*) AS events,
                   COUNT(e.latency * 1) AS clean,
                   AVG(e.latency) AS avg_latency
            FROM events AS e
            GROUP BY e.kind
            ORDER BY kind
            """
        ),
    )

    # The data-exclusion signal is queryable: find the quarantine set.
    show(
        "Quarantine: rows whose latency is not a number",
        db.execute(
            """
            SELECT e.id AS id, e.latency AS latency
            FROM events AS e
            WHERE (e.latency * 1) IS MISSING
            LIMIT 5
            """
        ),
    )

    # Heterogeneous shapes: tag analytics silently skip untagged events,
    # nested user tuples navigate with plain dots.
    show(
        "Tag frequencies (events without tags just don't contribute)",
        db.execute(
            """
            SELECT t AS tag, COUNT(*) AS n
            FROM events AS e, e.tags AS t
            GROUP BY t
            ORDER BY n DESC
            """
        ),
    )
    show(
        "Pro-tier users' purchases",
        db.execute(
            """
            SELECT e.id AS id, e.user.uid AS uid
            FROM events AS e
            WHERE e.user.tier = 'pro' AND e.kind = 'purchase'
            LIMIT 5
            """
        ),
    )

    # Stop-on-error mode: the same query refuses to run past dirty data.
    print("\n-- The same aggregation in stop-on-error mode:")
    try:
        db.execute(
            "SELECT VALUE e.latency * 2 FROM events AS e", typing_mode="strict"
        )
    except TypeCheckError as exc:
        print("   TypeCheckError:", exc)

    # The bolt-on baseline: everything is a JSON string in a column.
    # Path extraction conflates JSON null with absence — the distinction
    # SQL++'s MISSING preserves (Section IV-A).
    bolt_on = JsonColumnDatabase()
    bolt_on.create_table("events")
    bolt_on.insert_documents(
        "events",
        [
            {"id": 1, "user": None},   # logged out
            {"id": 2},                  # anonymous
        ],
    )
    rows = bolt_on.select("events", {"id": "$.id", "user": "$.user"})
    print("\n-- Bolt-on JSON column: null and absent are indistinguishable:")
    for row in rows:
        print("  ", row)

    db.set("two", [{"id": 1, "user": None}, {"id": 2}])
    show(
        "SQL++ keeps them apart",
        db.execute(
            """
            SELECT e.id AS id,
                   e.user IS MISSING AS anonymous,
                   e.user IS NULL AND e.user IS NOT MISSING AS logged_out
            FROM two AS e
            """
        ),
    )


if __name__ == "__main__":
    main()
