"""REPL dot-command handling (tested without a terminal)."""

import pytest

from repro import Database
from repro.cli import _dot_command, _is_complete


@pytest.fixture
def db(tmp_path):
    return Database()


class TestDotCommands:
    def test_quit_returns_false(self, db):
        assert _dot_command(db, ".quit") is False
        assert _dot_command(db, ".exit") is False

    def test_help(self, db, capsys):
        assert _dot_command(db, ".help") is True
        assert "dot-commands" in capsys.readouterr().out

    def test_set_and_names(self, db, capsys):
        _dot_command(db, ".set t {{ {'a': 1} }}")
        _dot_command(db, ".names")
        assert "t" in capsys.readouterr().out

    def test_load(self, db, tmp_path, capsys):
        path = tmp_path / "d.json"
        path.write_text('[{"a": 1}]')
        _dot_command(db, f".load t {path}")
        assert "loaded t" in capsys.readouterr().out
        assert "t" in db.names()

    def test_mode_toggle(self, db, capsys):
        _dot_command(db, ".mode core")
        assert not db._config.sql_compat
        _dot_command(db, ".mode compat")
        assert db._config.sql_compat

    def test_trace_prints_span_tree(self, db, capsys):
        _dot_command(db, ".trace SELECT VALUE v FROM [1, 2] AS v")
        out = capsys.readouterr().out
        assert "query" in out and "execute" in out

    def test_trace_on_bad_query_reports_error(self, db, capsys):
        _dot_command(db, ".trace SELECT FROM")
        assert "error" in capsys.readouterr().out

    def test_metrics_prints_prometheus_text(self, db, capsys):
        db.execute("SELECT VALUE 1")
        _dot_command(db, ".metrics")
        out = capsys.readouterr().out
        assert "repro_queries_total 1" in out
        assert "# TYPE repro_query_seconds histogram" in out

    def test_typing_toggle(self, db, capsys):
        _dot_command(db, ".typing strict")
        assert db._config.typing_mode == "strict"

    def test_schema(self, db, capsys):
        db.set("t", [{"a": 1}])
        _dot_command(db, ".schema t BAG<STRUCT<a INT>>")
        assert db.get_schema("t") is not None

    def test_explain(self, db, capsys):
        db.set("t", [])
        _dot_command(db, ".explain SELECT 1 AS one FROM t AS t")
        assert "SELECT VALUE" in capsys.readouterr().out

    def test_unknown_command(self, db, capsys):
        _dot_command(db, ".wat")
        assert "unknown command" in capsys.readouterr().out

    def test_errors_are_caught(self, db, capsys):
        _dot_command(db, ".load t /does/not/exist.json")   # OSError path
        _dot_command(db, ".set t {{ bad literal")          # SQLPPError path
        out = capsys.readouterr().out
        assert out.count("error") >= 2


class TestCompletenessProbe:
    def test_complete_single_line(self):
        assert _is_complete("SELECT VALUE 1")

    def test_incomplete_input(self):
        assert not _is_complete("SELECT VALUE")
