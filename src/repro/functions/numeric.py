"""Numeric builtins (default absence propagation; type errors → MISSING)."""

from __future__ import annotations

import math
from typing import Any, List

from repro.config import EvalConfig
from repro.datamodel.values import type_name
from repro.functions.registry import REGISTRY, builtin


def _number_arg(name: str, value: Any) -> Any:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} expects a number, got {type_name(value)}")
    return value


@builtin("ABS", 1, 1)
def abs_fn(args: List[Any], config: EvalConfig) -> Any:
    return abs(_number_arg("ABS", args[0]))


@builtin("CEIL", 1, 1)
def ceil(args: List[Any], config: EvalConfig) -> Any:
    return math.ceil(_number_arg("CEIL", args[0]))


REGISTRY.alias("CEIL", "CEILING")


@builtin("FLOOR", 1, 1)
def floor(args: List[Any], config: EvalConfig) -> Any:
    return math.floor(_number_arg("FLOOR", args[0]))


@builtin("ROUND", 1, 2)
def round_fn(args: List[Any], config: EvalConfig) -> Any:
    value = _number_arg("ROUND", args[0])
    if len(args) == 2:
        digits = args[1]
        if isinstance(digits, bool) or not isinstance(digits, int):
            raise TypeError("ROUND digits must be an integer")
        return round(value, digits)
    return round(value)


@builtin("TRUNC", 1, 1)
def trunc(args: List[Any], config: EvalConfig) -> Any:
    return math.trunc(_number_arg("TRUNC", args[0]))


@builtin("SIGN", 1, 1)
def sign(args: List[Any], config: EvalConfig) -> Any:
    value = _number_arg("SIGN", args[0])
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


@builtin("SQRT", 1, 1)
def sqrt(args: List[Any], config: EvalConfig) -> Any:
    value = _number_arg("SQRT", args[0])
    if value < 0:
        raise ValueError("SQRT of a negative number")
    return math.sqrt(value)


@builtin("POWER", 2, 2)
def power(args: List[Any], config: EvalConfig) -> Any:
    base = _number_arg("POWER", args[0])
    exponent = _number_arg("POWER", args[1])
    return base**exponent


REGISTRY.alias("POWER", "POW")


@builtin("MOD", 2, 2)
def mod(args: List[Any], config: EvalConfig) -> Any:
    left = _number_arg("MOD", args[0])
    right = _number_arg("MOD", args[1])
    if right == 0:
        raise ValueError("MOD by zero")
    return left % right


@builtin("EXP", 1, 1)
def exp(args: List[Any], config: EvalConfig) -> Any:
    return math.exp(_number_arg("EXP", args[0]))


@builtin("LN", 1, 1)
def ln(args: List[Any], config: EvalConfig) -> Any:
    value = _number_arg("LN", args[0])
    if value <= 0:
        raise ValueError("LN of a non-positive number")
    return math.log(value)


@builtin("LOG10", 1, 1)
def log10(args: List[Any], config: EvalConfig) -> Any:
    value = _number_arg("LOG10", args[0])
    if value <= 0:
        raise ValueError("LOG10 of a non-positive number")
    return math.log10(value)


@builtin("PI", 0, 0)
def pi(args: List[Any], config: EvalConfig) -> float:
    return math.pi
