"""E15 — streaming pipelined execution: top-K ORDER BY ... LIMIT,
first-row latency, and O(k) memory.

The pipelined evaluator (docs/PLANNER.md) replaces "materialize
everything, then sort/slice" with generator operators feeding bounded
consumers.  This experiment measures the three wins on a 100k-row
collection:

* ``ORDER BY ... LIMIT 10`` — a bounded top-K heap with deferred
  projection (late materialization) versus the eager engine's full
  materialize + project + sort.  The claim asserted below is a ≥10×
  wall-time speedup.
* first-row latency — ``LIMIT 1`` stops the scan after one row
  instead of scanning 100k rows and slicing.
* memory — with a generator-backed collection (``Database.set_lazy``)
  the top-K query's peak heap is O(k), not O(n); asserted with
  ``tracemalloc`` (select with ``pytest -k memory``).

Both engines must agree exactly on every result (ordered comparison).
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro import Database

N = 100_000
#: The acceptance bar: streamed top-K at n=100k must beat the eager
#: materialize-sort-slice by at least this factor.
MIN_SPEEDUP = 10.0

#: A projection heavy enough to be worth skipping: three collection
#: aggregates over a 12-element array per row.  Late materialization
#: evaluates it only for the k survivors; the eager engine pays it on
#: every row.
TOP_K_QUERY = (
    "SELECT b.x AS x, b.y AS y, COLL_SUM(b.v) AS total, "
    "COLL_MAX(b.v) AS top, COLL_AVG(b.v) AS mean "
    "FROM big AS b ORDER BY b.x LIMIT 10"
)
FIRST_ROW_QUERY = "SELECT VALUE b.x FROM big AS b LIMIT 1"


def rows(n: int):
    return [
        {
            "x": (i * 2654435761) % 1_000_000,
            "y": i % 997,
            "v": [(i + j) % 13 for j in range(12)],
        }
        for i in range(n)
    ]


def build_db(optimize: bool, n: int = N) -> Database:
    db = Database(optimize=optimize)
    db.set("big", rows(n))
    return db


@pytest.fixture(scope="module")
def engines():
    """(streamed, eager) databases with warm compile caches."""
    return build_db(optimize=True), build_db(optimize=False)


@pytest.fixture(scope="module")
def agreement_verified(engines):
    """Both engines return the identical ordered result (checked once)."""
    streamed, eager = engines
    for query in (TOP_K_QUERY, FIRST_ROW_QUERY):
        assert list(streamed.execute(query)) == list(eager.execute(query))
    return True


@pytest.mark.benchmark(group="E15-topk-n100000")
class TestTopK:
    def test_eager_full_sort(self, benchmark, engines, agreement_verified):
        __, eager = engines
        benchmark.pedantic(lambda: eager.execute(TOP_K_QUERY), rounds=2, iterations=1)

    def test_streamed_top_k(self, benchmark, engines, agreement_verified):
        streamed, __ = engines
        benchmark(lambda: streamed.execute(TOP_K_QUERY))


@pytest.mark.benchmark(group="E15-first-row-n100000")
class TestFirstRow:
    def test_eager_scan_then_slice(self, benchmark, engines, agreement_verified):
        __, eager = engines
        benchmark.pedantic(
            lambda: eager.execute(FIRST_ROW_QUERY), rounds=3, iterations=1
        )

    def test_streamed_early_termination(self, benchmark, engines, agreement_verified):
        streamed, __ = engines
        benchmark(lambda: streamed.execute(FIRST_ROW_QUERY))


def test_top_k_speedup_claim(engines, agreement_verified):
    """The tentpole claim: ≥10× for ORDER BY ... LIMIT 10 at n=100k."""
    streamed, eager = engines
    streamed.execute(TOP_K_QUERY)  # warm caches

    started = time.perf_counter()
    reference = eager.execute(TOP_K_QUERY)
    eager_s = time.perf_counter() - started

    started = time.perf_counter()
    result = streamed.execute(TOP_K_QUERY)
    streamed_s = time.perf_counter() - started

    assert list(result) == list(reference)
    speedup = eager_s / streamed_s
    print(
        f"\nE15 n=100k top-K: eager {eager_s:.2f}s, "
        f"streamed {streamed_s * 1e3:.0f}ms → {speedup:.1f}× speedup"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"streamed top-K only {speedup:.1f}× faster than the eager sort "
        f"(claim: ≥{MIN_SPEEDUP}×)"
    )


def test_first_row_latency(engines, agreement_verified):
    """LIMIT 1 answers without scanning the other 99 999 rows."""
    streamed, eager = engines
    streamed.execute(FIRST_ROW_QUERY)  # warm caches

    started = time.perf_counter()
    eager.execute(FIRST_ROW_QUERY)
    eager_s = time.perf_counter() - started

    started = time.perf_counter()
    streamed.execute(FIRST_ROW_QUERY)
    streamed_s = time.perf_counter() - started

    speedup = eager_s / streamed_s
    print(
        f"\nE15 n=100k first row: eager {eager_s * 1e3:.1f}ms, "
        f"streamed {streamed_s * 1e3:.2f}ms → {speedup:.0f}× speedup"
    )
    assert speedup >= MIN_SPEEDUP


def _lazy_db(optimize: bool) -> Database:
    db = Database(optimize=optimize)
    db.set_lazy("big", lambda: ({"x": (i * 2654435761) % 1_000_000} for i in range(N)))
    return db


def test_top_k_memory_is_o_of_k():
    """Peak heap for top-K over a 100k generator-backed collection.

    The streamed engine keeps the k-row heap plus one in-flight row;
    the eager engine materializes every binding before sorting.  The
    thresholds are two orders of magnitude apart, so this is a
    structural assertion, not a tuning-sensitive one.  (Selected in CI
    with ``pytest -k memory``.)
    """
    query = "SELECT VALUE b.x FROM big AS b ORDER BY b.x LIMIT 10"

    streamed = _lazy_db(optimize=True)
    streamed.execute(query)  # warm compile caches outside the trace
    tracemalloc.start()
    streamed.execute(query)
    __, streamed_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    eager = _lazy_db(optimize=False)
    eager.execute(query)
    tracemalloc.start()
    eager.execute(query)
    __, eager_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print(
        f"\nE15 n=100k top-K peak: streamed {streamed_peak / 1024:.0f} KiB, "
        f"eager {eager_peak / 1024 / 1024:.1f} MiB"
    )
    assert streamed_peak < 4 * 1024 * 1024, (
        f"streamed top-K peak {streamed_peak} bytes; expected O(k), not O(n)"
    )
    assert eager_peak > 4 * streamed_peak
