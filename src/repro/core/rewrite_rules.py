"""Semantic rewrite rules: a safety-checked registry over the Core AST.

The planner (:mod:`repro.core.planner`) rewrites *physical* execution —
hash joins, pushdown — without changing the Core query.  This module
rewrites the Core query itself, between sugar lowering
(:mod:`repro.core.rewriter`) and planning, turning shapes the executor
runs naively (correlated subqueries re-evaluated per outer row,
``OR``-chains probed linearly, repeated subqueries re-computed) into
cheaper equivalents the planner can then accelerate.

Every rule pairs a *matcher* with a *transformer* and, when it fires,
emits a :class:`RewriteResult` recording exactly which safety
conditions it discharged.  Equivalences that are textbook-safe in
two-valued SQL are **not** safe in SQL++ unchecked: the configurable
NULL/MISSING semantics (paper, Section IV) mean a correlation key may
be MISSING, ``=`` may yield MISSING instead of raising, and permissive
mode ranges ``FROM`` over a non-collection as a singleton.  Each rule
therefore either *proves* the hazard away — via the
:mod:`repro.analysis` typeflow lattice when schema information exists —
or *guards* it with an explicit filter (e.g. ``IS NOT MISSING`` on a
semi-join key), and refuses to fire when neither is possible.

The registry:

``SQLPPR01`` exists-to-semijoin
    A correlated ``EXISTS``/``IN``-subquery conjunct becomes an INNER
    join against the DISTINCT correlation-key values of the subquery —
    hash-joinable, turning O(outer x inner) into O(outer + inner).

``SQLPPR02`` decorrelate-scalar
    A correlated single-aggregate scalar subquery becomes a LEFT join
    against the subquery grouped by its correlation key.

``SQLPPR03`` or-to-in
    ``x = c1 OR x = c2 OR ...`` (literals) becomes ``x IN [c1, c2, ...]``,
    unlocking the compiled set-probe fast path and pushdown.

``SQLPPR04`` cse-to-let
    A subquery repeated in unconditional positions is hoisted into a
    ``LET``, evaluated once per binding instead of once per occurrence.

Rewrites run only under ``config.optimize`` with ``config.rewrite``
(the registry's own dial); all but ``SQLPPR03`` additionally require
permissive typing, because they change how often subexpressions are
evaluated and only permissive evaluation is total.  Results must be
indistinguishable with the registry on or off — the property tests in
``tests/properties/test_rewrite_equivalence.py`` and the full
compat-kit sweep in ``tests/compat/test_rewrite_parity.py`` pin that.

``REGISTRY_VERSION`` participates in the :class:`~repro.catalog.Database`
compile-cache key, so bumping it (any rule change) invalidates cached
rewritten queries exactly once, mirroring the stats provider's
``feedback_version``.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.config import EvalConfig
from repro.core.planner import (
    and_fold,
    free_names,
    is_relocatable,
    item_vars,
    split_conjuncts,
)
from repro.core.rewriter import _block_variables as block_variables
from repro.syntax import ast
from repro.syntax.ast import copy_span, copy_span_tree
from repro.syntax.printer import print_ast

#: Bumped on any change to a rule's matcher or transformer.  Part of the
#: Database compile-cache key: cached (pre, post, fired) entries from an
#: older registry must not survive an upgrade.
REGISTRY_VERSION = 1

#: The aggregate functions SQLPPR02 knows how to decorrelate.  Each maps
#: to how an *empty* group coerces on the original path, which the LEFT
#: join's NULL padding must reproduce: ``COLL_COUNT`` of an empty group
#: is 0 (needs a CASE), every other listed aggregate is NULL (matches
#: the padding directly).
_DECORRELATABLE_AGGREGATES = frozenset(
    {"COLL_SUM", "COLL_COUNT", "COLL_AVG", "COLL_MIN", "COLL_MAX"}
)

#: Minimum ``=``-disjuncts before SQLPPR03 rewrites an OR-chain; below
#: this the linear probe is as fast as the set probe.
_MIN_OR_CHAIN = 3

#: Fire-count bound per rule per block per pass (a runaway matcher must
#: not loop the driver; real queries fire each rule a handful of times).
_MAX_FIRES_PER_BLOCK = 16


@dataclass(frozen=True)
class RewriteResult:
    """One rule firing: what was rewritten and which safety conditions
    were discharged to allow it."""

    #: Registry code, e.g. ``"SQLPPR01"``.
    code: str
    #: Short rule name, e.g. ``"exists-to-semijoin"``.
    name: str
    #: Human description of the fire site ("EXISTS over orders ...").
    detail: str
    #: The safety conditions this firing discharged, as prose — each is
    #: either a proof ("correlation key provably non-MISSING ...") or a
    #: guard ("guarded with IS NOT MISSING").
    safety: Tuple[str, ...]
    #: Source position of the rewritten construct, for lint output.
    line: Optional[int] = None
    column: Optional[int] = None

    def describe(self) -> str:
        """One EXPLAIN line: ``SQLPPR01 exists-to-semijoin: <detail>``."""
        return f"{self.code} {self.name}: {self.detail}"


class RewriteContext:
    """Per-pass state shared by the rules: the config, optional abstract
    catalog types feeding the typeflow safety checks, and a fresh-name
    counter (``$semi1``, ``$dec2`` — the ``$`` prefix keeps synthesized
    names out of the user's namespace, like the sugar rewriter's
    ``$group1``)."""

    def __init__(
        self,
        config: EvalConfig,
        catalog_types: Optional[Dict[str, object]] = None,
    ) -> None:
        self.config = config
        self.catalog_types: Dict[str, object] = dict(catalog_types or {})
        self._counter = 0

    def fresh(self, base: str) -> str:
        self._counter += 1
        return f"${base}{self._counter}"

    # ------------------------------------------------------------------
    # Typeflow-backed safety checks
    # ------------------------------------------------------------------

    def key_provably_present(
        self, item: ast.FromItem, key: ast.Expr
    ) -> bool:
        """Whether the typeflow lattice proves ``key`` is never MISSING
        for bindings of ``item`` (so a semi-join needs no ``IS NOT
        MISSING`` guard).  Absence of schema information means "no":
        the lattice only proves presence from declared shapes."""
        if not self.catalog_types:
            return False
        try:
            from repro.analysis.lattice import MISSING_CAT, AType
            from repro.analysis.typeflow import TypeFlow

            flow = TypeFlow(
                config=self.config,
                catalog_types=self.catalog_types,  # type: ignore[arg-type]
            )
            env: Dict[str, AType] = {}
            flow._flow_from(item, env, [])
            inferred = flow.infer(key, env)
        except Exception:  # pragma: no cover - lattice bugs must not
            return False  # block execution, only widen to "guard".
        return not inferred.may(MISSING_CAT)

    def elements_provably_present(self, collection: ast.Expr) -> bool:
        """Whether the typeflow lattice proves every element of
        ``collection`` (an uncorrelated subquery) is non-MISSING."""
        if not self.catalog_types:
            return False
        try:
            from repro.analysis.lattice import MISSING_CAT, element_of
            from repro.analysis.typeflow import TypeFlow

            flow = TypeFlow(
                config=self.config,
                catalog_types=self.catalog_types,  # type: ignore[arg-type]
            )
            inferred = flow.infer(collection, {})
        except Exception:  # pragma: no cover
            return False
        return not element_of(inferred).may(MISSING_CAT)


#: A rule's matcher+transformer: applied to one block, returns the
#: rewritten block and the firing record, or None when it does not match.
RuleFn = Callable[
    [ast.QueryBlock, RewriteContext],
    Optional[Tuple[ast.QueryBlock, RewriteResult]],
]


@dataclass(frozen=True)
class RewriteRule:
    """A registered rewrite: identity, lint cross-reference, behaviour."""

    code: str
    name: str
    summary: str
    #: The lint catalog rule (``SQLPP11x``) that detects this rule's
    #: anti-pattern; its diagnostics carry ``fixable: <code>`` back here.
    lint_code: str
    apply: RuleFn


# =========================================================================
# Shared matching helpers
# =========================================================================


def _single_from_collection(
    block: ast.QueryBlock,
) -> Optional[ast.FromCollection]:
    """The block's sole FROM item when it is a plain collection scan."""
    if block.from_ is None or len(block.from_) != 1:
        return None
    item = block.from_[0]
    if isinstance(item, ast.FromCollection):
        return item
    return None


@dataclass(frozen=True)
class _Correlation:
    """A clean single-equality correlation split of a subquery WHERE."""

    #: The side of ``=`` over the inner (subquery) variables.
    inner_key: ast.Expr
    #: The side of ``=`` over the outer block's variables.
    outer_key: ast.Expr
    #: Conjuncts that reference no outer variable (stay in the subquery).
    inner_only: List[ast.Expr]


def _split_correlation(
    where: Optional[ast.Expr],
    outer_vars: Set[str],
    inner_vars: Set[str],
) -> Optional[_Correlation]:
    """Split a subquery WHERE into exactly one correlation equality plus
    inner-only conjuncts; None unless the split is clean.

    Clean means: exactly one conjunct is ``a = b`` with one side's free
    names touching the outer scope (and none of the inner), the other
    side's touching the inner scope (and none of the outer), both sides
    relocatable (they move to a join ON / SELECT VALUE position and may
    be evaluated a different number of times); every other conjunct
    references no outer variable at all.
    """
    if where is None:
        return None
    correlation: Optional[Tuple[ast.Expr, ast.Expr]] = None
    inner_only: List[ast.Expr] = []
    for conjunct in split_conjuncts(where):
        names = free_names(conjunct)
        if not names & outer_vars:
            inner_only.append(conjunct)
            continue
        if correlation is not None:  # a second correlated conjunct
            return None
        if not isinstance(conjunct, ast.Binary) or conjunct.op != "=":
            return None
        split = _classify_equality(conjunct, outer_vars, inner_vars)
        if split is None:
            return None
        correlation = split
    if correlation is None:
        return None
    inner_key, outer_key = correlation
    return _Correlation(
        inner_key=inner_key, outer_key=outer_key, inner_only=inner_only
    )


def _classify_equality(
    conjunct: ast.Binary, outer_vars: Set[str], inner_vars: Set[str]
) -> Optional[Tuple[ast.Expr, ast.Expr]]:
    """``(inner_key, outer_key)`` for a clean correlation ``=``."""
    for inner_side, outer_side in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        inner_names = free_names(inner_side)
        outer_names = free_names(outer_side)
        if (
            inner_names & inner_vars
            and not inner_names & outer_vars
            and outer_names & outer_vars
            and not outer_names & inner_vars
            and is_relocatable(inner_side)
            and is_relocatable(outer_side)
        ):
            return inner_side, outer_side
    return None


def _outer_scope_ok(
    block: ast.QueryBlock, outer_key: ast.Expr
) -> bool:
    """Whether ``outer_key`` may move into a join ON on the last FROM
    item: it must only use FROM-bound names (a join ON evaluates before
    the block's LETs and before grouping)."""
    let_names = {let.name for let in block.lets}
    return not free_names(outer_key) & let_names


def _join_safe_block(block: ast.QueryBlock) -> bool:
    """Whether adding a fresh, unreferenced FROM binding to ``block`` is
    invisible: the select must not splice unknown attributes
    (``SELECT *`` / PIVOT would expose the new variable) and any GROUP
    BY must not capture whole binding tuples via GROUP AS."""
    if not isinstance(block.select, ast.SelectValue):
        return False
    if block.group_by is not None and block.group_by.group_as is not None:
        return False
    return True


def _no_alias_capture(
    block: ast.QueryBlock, inner_vars: Set[str]
) -> bool:
    """Reject subqueries whose variables shadow an outer name: the
    free-name analysis above cannot tell the two apart."""
    return not inner_vars & block_variables(block)


def _missing_guard(key: ast.Expr, origin: ast.Node) -> ast.Expr:
    """``key IS NOT MISSING`` — the explicit guard used when typeflow
    cannot prove the correlation key present.  Semantics-preserving on
    its own: an absent key never ``=``-matches anything."""
    return copy_span(
        ast.IsPredicate(operand=key, kind="MISSING", negated=True), origin
    )


def _replace_last_item(
    items: Sequence[ast.FromItem], replacement: ast.FromItem
) -> List[ast.FromItem]:
    out = list(items)
    out[-1] = replacement
    return out


def _describe_source(expr: ast.Expr) -> str:
    text = print_ast(expr)
    return text if len(text) <= 40 else text[:37] + "..."


_GENERATED_NAME = re.compile(r"\$[A-Za-z_][A-Za-z_0-9]*")


def _bound_generated_names(node: ast.Node) -> Set[str]:
    """Generated (``$``-prefixed) names *bound inside* ``node`` — by a
    FROM alias, LET, GROUP key alias or GROUP AS.  Free references to
    enclosing generated bindings are excluded on purpose: renaming
    those would conflate subqueries that read different outer values."""
    bound: Set[str] = set()
    for sub in node.walk():
        if isinstance(sub, ast.FromCollection):
            bound.add(sub.alias)
            if sub.at_alias is not None:
                bound.add(sub.at_alias)
        elif isinstance(sub, ast.FromUnpivot):
            bound.add(sub.value_alias)
            bound.add(sub.at_alias)
        elif isinstance(sub, ast.LetBinding):
            bound.add(sub.name)
        elif isinstance(sub, ast.GroupKey):
            bound.add(sub.alias)
        elif isinstance(sub, ast.GroupByClause) and sub.group_as is not None:
            bound.add(sub.group_as)
    return {name for name in bound if name.startswith("$")}


def _canonical_text(node: ast.Node) -> str:
    """``print_ast`` with locally-bound generated names alpha-renamed in
    first-appearance order.  The sugar rewriter mints fresh ``$group1``
    / ``$g_elem2`` names per lowering, so two occurrences of the same
    surface subquery print differently; their canonical texts coincide
    exactly when the subqueries differ only in those bound names."""
    bound = _bound_generated_names(node)
    if not bound:
        return print_ast(node)
    mapping: Dict[str, str] = {}

    def rename(match: "re.Match[str]") -> str:
        token = match.group(0)
        if token not in bound:
            return token
        if token not in mapping:
            mapping[token] = f"$c{len(mapping)}"
        return mapping[token]

    return _GENERATED_NAME.sub(rename, print_ast(node))


def _scope_occurrence_texts(
    roots: Sequence[ast.Expr], kinds: Tuple[type, ...]
) -> List[str]:
    """Canonical texts of every ``kinds`` node at block scope — reached
    without entering another subquery (CASE branches are descended:
    a conditional occurrence at block scope still reads the same
    environment, so substituting it is value-preserving)."""
    texts: List[str] = []

    def walk(node: ast.Node) -> None:
        if isinstance(node, kinds):
            texts.append(_canonical_text(node))
            return
        for child in node.children():
            walk(child)

    for root in roots:
        walk(root)
    return texts


def _all_occurrence_count(
    roots: Sequence[ast.Expr], kinds: Tuple[type, ...], target: str
) -> int:
    """Occurrences of ``target`` anywhere under ``roots``, including
    nested inside other subqueries (where a shadowing alias could give
    the same text a different meaning — substitution must bail when
    this exceeds the block-scope count)."""
    count = 0
    for root in roots:
        for node in root.walk():
            if isinstance(node, kinds) and _canonical_text(node) == target:
                count += 1
    return count


# =========================================================================
# SQLPPR01: correlated EXISTS / IN subquery -> semi-join
# =========================================================================


def _r01_exists_in_to_semijoin(
    block: ast.QueryBlock, ctx: RewriteContext
) -> Optional[Tuple[ast.QueryBlock, RewriteResult]]:
    """Rewrite one semi-joinable WHERE conjunct.

    ``... WHERE EXISTS (SELECT ... FROM C AS c WHERE c.k = o.k AND p(c))``
    becomes::

        ... FROM <last item> JOIN
            (SELECT DISTINCT VALUE c.k FROM C AS c
             WHERE p(c) [AND c.k IS NOT MISSING]) AS $semiN
            ON o.k = $semiN
        WHERE <remaining conjuncts>

    Equivalent because (a) DISTINCT equivalence classes coincide with
    ``=``-TRUE on present values, so each outer row matches at most one
    semi-side value — multiplicity is preserved exactly; (b) an absent
    (NULL/MISSING) key matches nothing on either path; (c) the original
    conjunct keeps a row iff some inner row makes the correlation
    equality exactly TRUE, which is iff the INNER join finds a match.
    The same construction handles ``x IN (subquery)`` for uncorrelated
    subqueries, whose verdict-position semantics coincide with EXISTS
    over the matching elements.
    """
    if not ctx.config.is_permissive:
        return None
    if block.where is None or not block.from_ or not _join_safe_block(block):
        return None
    conjuncts = split_conjuncts(block.where)
    for index, conjunct in enumerate(conjuncts):
        fired = _try_semijoin_exists(block, conjunct, ctx)
        if fired is None:
            fired = _try_semijoin_in(block, conjunct, ctx)
        if fired is None:
            continue
        semi_item, on, detail, safety = fired
        remaining = conjuncts[:index] + conjuncts[index + 1 :]
        join = copy_span(
            ast.FromJoin(
                left=block.from_[-1], right=semi_item, kind="INNER", on=on
            ),
            conjunct,
        )
        new_block = dataclasses.replace(
            block,
            from_=_replace_last_item(block.from_, join),
            where=and_fold(remaining),
        )
        return new_block, RewriteResult(
            code="SQLPPR01",
            name="exists-to-semijoin",
            detail=detail,
            safety=tuple(safety),
            line=conjunct.line,
            column=conjunct.column,
        )
    return None


def _subquery_of(expr: ast.Expr) -> Optional[ast.Query]:
    if isinstance(expr, ast.SubqueryExpr):
        return expr.query
    if isinstance(expr, ast.CoerceSubquery) and expr.mode == "collection":
        return expr.query
    return None


def _plain_inner_block(query: ast.Query) -> Optional[ast.QueryBlock]:
    """The subquery's block when nothing outside plain FROM/WHERE/SELECT
    could change emptiness or per-row multiplicity (ORDER BY is harmless
    for EXISTS but LIMIT/OFFSET are not; grouping changes cardinality;
    LET/HAVING complicate the split)."""
    if query.order_by or query.limit is not None or query.offset is not None:
        return None
    body = query.body
    if not isinstance(body, ast.QueryBlock):
        return None
    if body.group_by is not None or body.having is not None or body.lets:
        return None
    if not isinstance(body.select, ast.SelectValue):
        return None
    return body


def _try_semijoin_exists(
    block: ast.QueryBlock, conjunct: ast.Expr, ctx: RewriteContext
) -> Optional[Tuple[ast.FromItem, ast.Expr, str, List[str]]]:
    if not isinstance(conjunct, ast.Exists):
        return None
    inner_query = (
        conjunct.operand.query
        if isinstance(conjunct.operand, ast.SubqueryExpr)
        else None
    )
    if inner_query is None:
        return None
    inner = _plain_inner_block(inner_query)
    if inner is None or not is_relocatable(inner.select.expr):
        return None
    scan = _single_from_collection(inner)
    if scan is None:
        return None
    outer_vars = set(block_variables(block))
    inner_vars = set(item_vars(scan))
    if not _no_alias_capture(block, inner_vars):
        return None
    if free_names(scan.expr) & outer_vars:
        return None  # correlated *source*; only the WHERE may correlate
    correlation = _split_correlation(inner.where, outer_vars, inner_vars)
    if correlation is None or not _outer_scope_ok(block, correlation.outer_key):
        return None

    safety = [
        "EXISTS is a top-level WHERE conjunct (verdict position: "
        "TRUE-vs-not is all that is observable)",
        "single clean correlation equality; all other subquery "
        "conjuncts are uncorrelated",
    ]
    semi_where = list(correlation.inner_only)
    if ctx.key_provably_present(scan, correlation.inner_key):
        safety.append(
            "correlation key proved non-MISSING by the typeflow lattice"
        )
    else:
        semi_where.append(_missing_guard(correlation.inner_key, conjunct))
        safety.append(
            "correlation key not provably present: guarded with "
            "IS NOT MISSING (an absent key matches no outer row)"
        )
    alias = ctx.fresh("semi")
    semi_block = copy_span_tree(
        ast.QueryBlock(
            select=ast.SelectValue(expr=correlation.inner_key, distinct=True),
            from_=[scan],
            where=and_fold(semi_where),
        ),
        conjunct,
    )
    semi_item = copy_span_tree(
        ast.FromCollection(
            expr=ast.SubqueryExpr(query=ast.Query(body=semi_block)),
            alias=alias,
        ),
        conjunct,
    )
    on = copy_span_tree(
        ast.Binary(
            op="=",
            left=correlation.outer_key,
            right=ast.VarRef(name=alias),
        ),
        conjunct,
    )
    detail = (
        f"correlated EXISTS over {_describe_source(scan.expr)} -> "
        f"hash-joinable semi-join {alias}"
    )
    return semi_item, on, detail, safety


def _try_semijoin_in(
    block: ast.QueryBlock, conjunct: ast.Expr, ctx: RewriteContext
) -> Optional[Tuple[ast.FromItem, ast.Expr, str, List[str]]]:
    if not isinstance(conjunct, ast.InPredicate) or conjunct.negated:
        return None
    if _subquery_of(conjunct.collection) is None:
        return None  # a subquery always yields a collection, so the
        # non-collection type error of IN cannot occur — load-bearing!
    outer_vars = set(block_variables(block))
    if free_names(conjunct.collection) & outer_vars:
        return None  # correlated IN-subquery: not handled (yet)
    operand = conjunct.operand
    if not is_relocatable(operand) or not _outer_scope_ok(block, operand):
        return None
    if not free_names(operand) & outer_vars:
        return None  # uncorrelated probe: nothing to join on

    safety = [
        "IN is a top-level WHERE conjunct (verdict position: the "
        "NULL-vs-MISSING distinction of IN is not observable)",
        "collection is a subquery, so it is always a collection "
        "(the FROM-over-scalar singleton divergence cannot occur)",
    ]
    element = ctx.fresh("e")
    alias = ctx.fresh("semi")
    semi_where: Optional[ast.Expr] = None
    if ctx.elements_provably_present(conjunct.collection):
        safety.append(
            "subquery elements proved non-MISSING by the typeflow lattice"
        )
    else:
        semi_where = _missing_guard(ast.VarRef(name=element), conjunct)
        safety.append(
            "subquery elements not provably present: guarded with "
            "IS NOT MISSING (an absent element matches nothing)"
        )
    semi_block = copy_span_tree(
        ast.QueryBlock(
            select=ast.SelectValue(
                expr=ast.VarRef(name=element), distinct=True
            ),
            from_=[
                ast.FromCollection(expr=conjunct.collection, alias=element)
            ],
            where=semi_where,
        ),
        conjunct,
    )
    semi_item = copy_span_tree(
        ast.FromCollection(
            expr=ast.SubqueryExpr(query=ast.Query(body=semi_block)),
            alias=alias,
        ),
        conjunct,
    )
    on = copy_span_tree(
        ast.Binary(op="=", left=operand, right=ast.VarRef(name=alias)),
        conjunct,
    )
    detail = (
        f"IN-subquery probe on {_describe_source(operand)} -> "
        f"hash-joinable semi-join {alias}"
    )
    return semi_item, on, detail, safety


# =========================================================================
# SQLPPR02: correlated scalar aggregate subquery -> LEFT join + GROUP BY
# =========================================================================


def _r02_decorrelate_scalar(
    block: ast.QueryBlock, ctx: RewriteContext
) -> Optional[Tuple[ast.QueryBlock, RewriteResult]]:
    """Decorrelate ``(SELECT AGG(...) FROM C AS c WHERE c.k = o.k)``.

    The scalar subquery (post sugar-lowering: a ``CoerceSubquery`` over
    a keyless ``GROUP AS`` block with one ``COLL_*`` aggregate) becomes
    a LEFT join against the subquery grouped by its correlation key::

        FROM <last item> LEFT JOIN
            (SELECT VALUE {'k': $dkN, 'v': COLL_AGG(...)}
             FROM C AS c WHERE p(c) [AND c.k IS NOT MISSING]
             GROUP BY c.k AS $dkN GROUP AS $groupM) AS $decN
            ON o.k = $decN.k

    with every occurrence of the subquery replaced by ``$decN.v``
    (``COLL_COUNT``: ``CASE WHEN $decN IS NULL THEN 0 ELSE $decN.v END``).

    Equivalence leans on three engine facts: a LEFT join pads the right
    side with NULL (not MISSING), matching the NULL a SUM/AVG/MIN/MAX
    over an empty group coerces to; keyed grouping partitions by the
    same equivalence classes ``=``-TRUE induces on present keys, so the
    LEFT join matches at most one group per outer row (cardinality 1,
    exactly like the scalar coercion of the always-one-row keyless
    group); and the keyed group's GROUP AS tuples have the same shape
    as the keyless group's, so the aggregate's group subquery is reused
    verbatim.
    """
    if not ctx.config.is_permissive:
        return None
    if not block.from_ or block.group_by is not None or block.having is not None:
        return None
    if not isinstance(block.select, ast.SelectValue):
        return None

    candidates = _unconditional_occurrences(
        [block.select.expr] + ([block.where] if block.where else []),
        (ast.CoerceSubquery,),
    )
    for node in candidates:
        assert isinstance(node, ast.CoerceSubquery)
        if node.mode != "scalar":
            continue
        match = _match_decorrelatable(block, node, ctx)
        if match is None:
            continue
        return match
    return None


def _match_decorrelatable(
    block: ast.QueryBlock, node: ast.CoerceSubquery, ctx: RewriteContext
) -> Optional[Tuple[ast.QueryBlock, RewriteResult]]:
    query = node.query
    if query.order_by or query.limit is not None or query.offset is not None:
        return None
    inner = query.body
    if not isinstance(inner, ast.QueryBlock):
        return None
    group = inner.group_by
    if (
        group is None
        or group.keys
        or group.group_as is None
        or group.mode != "simple"
        or inner.having is not None
        or inner.lets
    ):
        return None
    scan = _single_from_collection(inner)
    if scan is None:
        return None
    aggregate = _single_aggregate_struct(inner.select)
    if aggregate is None:
        return None
    key_field, call = aggregate
    outer_vars = set(block_variables(block))
    inner_vars = set(item_vars(scan))
    if not _no_alias_capture(block, inner_vars):
        return None
    if free_names(scan.expr) & outer_vars:
        return None
    correlation = _split_correlation(inner.where, outer_vars, inner_vars)
    if correlation is None or not _outer_scope_ok(block, correlation.outer_key):
        return None

    safety = [
        "subquery is a single COLL_* aggregate over a keyless group: "
        "exactly one row per outer row on both paths",
        "single clean correlation equality; all other subquery "
        "conjuncts are uncorrelated",
        "LEFT join pads with NULL, matching the empty-group NULL of "
        f"{call.name}"
        if call.name != "COLL_COUNT"
        else "LEFT join pads with NULL; COLL_COUNT of an empty group is "
        "0, reproduced with CASE WHEN ... IS NULL THEN 0",
    ]
    dec_where = list(correlation.inner_only)
    if ctx.key_provably_present(scan, correlation.inner_key):
        safety.append(
            "correlation key proved non-MISSING by the typeflow lattice"
        )
    else:
        dec_where.append(_missing_guard(correlation.inner_key, node))
        safety.append(
            "correlation key not provably present: guarded with "
            "IS NOT MISSING (an absent key feeds no outer row's "
            "aggregate on either path)"
        )

    key_alias = ctx.fresh("dk")
    alias = ctx.fresh("dec")
    dec_block = copy_span_tree(
        ast.QueryBlock(
            select=ast.SelectValue(
                expr=ast.StructLit(
                    fields=[
                        ast.StructField(
                            key=ast.Literal(value="k"),
                            value=ast.VarRef(name=key_alias),
                        ),
                        ast.StructField(
                            key=ast.Literal(value="v"), value=call
                        ),
                    ]
                )
            ),
            from_=[scan],
            where=and_fold(dec_where),
            group_by=ast.GroupByClause(
                keys=[
                    ast.GroupKey(
                        expr=correlation.inner_key, alias=key_alias
                    )
                ],
                group_as=group.group_as,
            ),
        ),
        node,
    )
    dec_item = copy_span_tree(
        ast.FromCollection(
            expr=ast.SubqueryExpr(query=ast.Query(body=dec_block)),
            alias=alias,
        ),
        node,
    )
    join = copy_span_tree(
        ast.FromJoin(
            left=block.from_[-1],
            right=dec_item,
            kind="LEFT",
            on=ast.Binary(
                op="=",
                left=correlation.outer_key,
                right=ast.Path(base=ast.VarRef(name=alias), attr="k"),
            ),
        ),
        node,
    )
    value = _aggregate_replacement(call.name, alias, node)
    target = _canonical_text(node)
    assert isinstance(block.select, ast.SelectValue)
    roots: List[ast.Expr] = [block.select.expr] + (
        [block.where] if block.where is not None else []
    )
    scope_count = sum(
        1
        for text in _scope_occurrence_texts(roots, (ast.CoerceSubquery,))
        if text == target
    )
    if _all_occurrence_count(roots, (ast.CoerceSubquery,), target) != (
        scope_count
    ):
        # The same subquery also occurs nested inside another subquery,
        # where a shadowing alias could give the text a different
        # meaning; the transform-based substitution below cannot tell
        # the scopes apart, so do not fire.
        return None

    def substitute(candidate: ast.Node) -> ast.Node:
        if isinstance(candidate, ast.CoerceSubquery) and (
            _canonical_text(candidate) == target
        ):
            return value
        return candidate

    assert isinstance(block.select, ast.SelectValue)
    new_block = dataclasses.replace(
        block,
        select=dataclasses.replace(
            block.select, expr=block.select.expr.transform(substitute)
        ),
        from_=_replace_last_item(block.from_, join),
        where=(
            block.where.transform(substitute)
            if block.where is not None
            else None
        ),
    )
    detail = (
        f"correlated scalar {call.name} over "
        f"{_describe_source(scan.expr)} -> LEFT join {alias} + GROUP BY"
    )
    del key_field  # the original output attribute name is irrelevant
    return new_block, RewriteResult(
        code="SQLPPR02",
        name="decorrelate-scalar",
        detail=detail,
        safety=tuple(safety),
        line=node.line,
        column=node.column,
    )


def _single_aggregate_struct(
    select: ast.SelectClause,
) -> Optional[Tuple[ast.Expr, ast.FunctionCall]]:
    """Match ``SELECT VALUE {'name': COLL_AGG(<group subquery>)}`` —
    the lowered form of a single-aggregate SQL scalar subquery."""
    if not isinstance(select, ast.SelectValue):
        return None
    struct = select.expr
    if (
        select.distinct
        or not isinstance(struct, ast.StructLit)
        or len(struct.fields) != 1
    ):
        return None
    field = struct.fields[0]
    call = field.value
    if (
        isinstance(call, ast.FunctionCall)
        and call.name in _DECORRELATABLE_AGGREGATES
        and not call.distinct
        and not call.star
        and len(call.args) == 1
    ):
        return field.key, call
    return None


def _aggregate_replacement(
    aggregate: str, alias: str, origin: ast.Node
) -> ast.Expr:
    """What replaces the scalar subquery.

    ``CASE WHEN $dec IS NULL THEN <empty-group value> ELSE $dec.v END``
    — the CASE is load-bearing for *every* aggregate, not just
    COLL_COUNT: a bare ``$dec.v`` would navigate into the LEFT join's
    NULL padding, which is a permissive type error yielding MISSING,
    while the original empty-group COLL_SUM/AVG/MIN/MAX coerces to
    NULL (and COLL_COUNT to 0)."""
    empty_value = 0 if aggregate == "COLL_COUNT" else None
    return copy_span_tree(
        ast.CaseExpr(
            operand=None,
            whens=[
                (
                    ast.IsPredicate(
                        operand=ast.VarRef(name=alias), kind="NULL"
                    ),
                    ast.Literal(value=empty_value),
                )
            ],
            else_=ast.Path(base=ast.VarRef(name=alias), attr="v"),
        ),
        origin,
    )


# =========================================================================
# SQLPPR03: OR-chain of literal equalities -> IN
# =========================================================================


def _r03_or_to_in(
    block: ast.QueryBlock, ctx: RewriteContext
) -> Optional[Tuple[ast.QueryBlock, RewriteResult]]:
    """``x = c1 OR x = c2 OR x = c3`` -> ``x IN [c1, c2, c3]``.

    Safe in verdict positions (top-level WHERE/HAVING conjuncts): the
    TRUE-sets coincide exactly, and where the OR-fold yields NULL while
    IN yields MISSING (absent operand) both drop the row.  In strict
    mode the rewrite additionally requires every literal to share one
    equality category — 3VL OR evaluates *every* disjunct, so a later
    mismatched ``=`` raises where IN's first-match early return would
    not; same-category literals make the two raise (or not) on exactly
    the same inputs, in the same left-to-right order.
    """
    fired = _or_to_in_in_expr(block.where, ctx)
    if fired is not None:
        new_where, result = fired
        return dataclasses.replace(block, where=new_where), result
    fired = _or_to_in_in_expr(block.having, ctx)
    if fired is not None:
        new_having, result = fired
        return dataclasses.replace(block, having=new_having), result
    return None


def _or_to_in_in_expr(
    predicate: Optional[ast.Expr], ctx: RewriteContext
) -> Optional[Tuple[ast.Expr, RewriteResult]]:
    if predicate is None:
        return None
    conjuncts = split_conjuncts(predicate)
    for index, conjunct in enumerate(conjuncts):
        match = _match_or_chain(conjunct, ctx)
        if match is None:
            continue
        operand, literals, safety = match
        replacement = copy_span_tree(
            ast.InPredicate(
                operand=operand,
                collection=ast.ArrayLit(items=list(literals)),
            ),
            conjunct,
        )
        rebuilt = conjuncts[:index] + [replacement] + conjuncts[index + 1 :]
        folded = and_fold(rebuilt)
        assert folded is not None
        result = RewriteResult(
            code="SQLPPR03",
            name="or-to-in",
            detail=(
                f"{len(literals)}-way OR-chain on "
                f"{_describe_source(operand)} -> IN list"
            ),
            safety=tuple(safety),
            line=conjunct.line,
            column=conjunct.column,
        )
        return folded, result
    return None


def _match_or_chain(
    conjunct: ast.Expr, ctx: RewriteContext
) -> Optional[Tuple[ast.Expr, List[ast.Literal], List[str]]]:
    disjuncts = _split_disjuncts(conjunct)
    if len(disjuncts) < _MIN_OR_CHAIN:
        return None
    operand: Optional[ast.Expr] = None
    operand_text = ""
    literals: List[ast.Literal] = []
    for disjunct in disjuncts:
        if not isinstance(disjunct, ast.Binary) or disjunct.op != "=":
            return None
        pair = _literal_equality(disjunct)
        if pair is None:
            return None
        expr, literal = pair
        if operand is None:
            operand = expr
            operand_text = print_ast(expr)
        elif print_ast(expr) != operand_text:
            return None
        literals.append(literal)
    if operand is None or not is_relocatable(operand):
        return None
    safety = [
        "verdict position: OR-fold NULL vs IN MISSING both drop the row",
        "operand relocatable: evaluated once instead of once per disjunct",
    ]
    categories = {_literal_category(lit.value) for lit in literals}
    if len(categories) == 1:
        safety.append(
            "all literals share one equality category: strict-mode "
            "comparisons raise identically on both paths"
        )
    elif ctx.config.is_permissive:
        safety.append(
            "mixed literal categories allowed in permissive mode: a "
            "mismatched = folds to unknown on both paths"
        )
    else:
        return None
    return operand, literals, safety


def _split_disjuncts(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.Binary) and expr.op == "OR":
        return _split_disjuncts(expr.left) + _split_disjuncts(expr.right)
    return [expr]


def _literal_equality(
    disjunct: ast.Binary,
) -> Optional[Tuple[ast.Expr, ast.Literal]]:
    """``(operand, literal)`` for ``e = lit`` / ``lit = e`` with a
    non-absent scalar literal (NULL/MISSING literals change the OR
    fold's unknown bookkeeping; collections don't belong in IN lists)."""
    for expr, literal in (
        (disjunct.left, disjunct.right),
        (disjunct.right, disjunct.left),
    ):
        if isinstance(literal, ast.Literal) and not isinstance(
            expr, ast.Literal
        ):
            value = literal.value
            if value is None or not isinstance(value, (bool, int, float, str)):
                return None
            return expr, literal
    return None


def _literal_category(value: object) -> str:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    return "string"


# =========================================================================
# SQLPPR04: repeated subquery -> LET (common subexpression elimination)
# =========================================================================


def _r04_cse_to_let(
    block: ast.QueryBlock, ctx: RewriteContext
) -> Optional[Tuple[ast.QueryBlock, RewriteResult]]:
    """Hoist a subquery repeated >= 2 times into a ``LET``.

    Fires only in permissive mode (LET evaluates once per binding, the
    occurrences evaluated once *per occurrence*; collapsing the count
    is unobservable only when evaluation is total), only when at least
    two occurrences are *unconditional* (not under a CASE branch or
    inside another subquery), and only when an occurrence sits in the
    WHERE — or the block has no WHERE — so the LET never evaluates the
    subquery for a row the original would have discarded first (hoisting
    a SELECT-only occurrence past a selective WHERE could regress).
    Blocks with GROUP BY are skipped: LET names are invisible
    post-grouping.  Known tradeoff (docs/REWRITER.md): the planner skips
    predicate pushdown on blocks with LETs.
    """
    if not ctx.config.is_permissive:
        return None
    if not block.from_ or block.group_by is not None or block.having is not None:
        return None
    if not isinstance(block.select, ast.SelectValue):
        return None
    where_occurrences = _unconditional_occurrences(
        [block.where] if block.where is not None else [],
        (ast.SubqueryExpr, ast.CoerceSubquery),
    )
    select_occurrences = _unconditional_occurrences(
        [block.select.expr], (ast.SubqueryExpr, ast.CoerceSubquery)
    )
    kinds = (ast.SubqueryExpr, ast.CoerceSubquery)
    roots: List[ast.Expr] = (
        [block.where] if block.where is not None else []
    ) + [block.select.expr]
    counts: Dict[str, int] = {}
    in_where: Set[str] = set()
    order: List[Tuple[str, ast.Expr]] = []
    for node in where_occurrences + select_occurrences:
        text = _canonical_text(node)
        counts[text] = counts.get(text, 0) + 1
        if counts[text] == 1:
            order.append((text, node))
    for node in where_occurrences:
        in_where.add(_canonical_text(node))
    scope_texts = _scope_occurrence_texts(roots, kinds)
    for text, node in order:
        if counts[text] < 2:
            continue
        if block.where is not None and text not in in_where:
            continue
        scope_count = sum(1 for t in scope_texts if t == text)
        if _all_occurrence_count(roots, kinds, text) != scope_count:
            # Also occurs nested inside another subquery, where a
            # shadowing alias could change its meaning; the transform
            # below cannot tell scopes apart, so skip this candidate.
            continue
        name = ctx.fresh("cse")
        safety = [
            f"{counts[text]} unconditional occurrences: the original "
            "evaluated the subquery at least that often per binding",
            "occurrence in WHERE (or no WHERE): the LET evaluates for "
            "no row the original would have discarded first"
            if block.where is not None
            else "no WHERE clause: every binding evaluated the subquery",
            "permissive mode: subquery evaluation is total, so "
            "collapsing the evaluation count is unobservable",
        ]

        def substitute(
            candidate: ast.Node, text: str = text, name: str = name
        ) -> ast.Node:
            if isinstance(
                candidate, (ast.SubqueryExpr, ast.CoerceSubquery)
            ) and _canonical_text(candidate) == text:
                return copy_span(ast.VarRef(name=name), candidate)
            return candidate

        assert isinstance(block.select, ast.SelectValue)
        new_block = dataclasses.replace(
            block,
            lets=list(block.lets)
            + [copy_span(ast.LetBinding(name=name, expr=node), node)],
            where=(
                block.where.transform(substitute)
                if block.where is not None
                else None
            ),
            select=dataclasses.replace(
                block.select, expr=block.select.expr.transform(substitute)
            ),
        )
        result = RewriteResult(
            code="SQLPPR04",
            name="cse-to-let",
            detail=(
                f"subquery repeated x{counts[text]} hoisted into "
                f"LET {name}"
            ),
            safety=tuple(safety),
            line=node.line,
            column=node.column,
        )
        return new_block, result
    return None


def _unconditional_occurrences(
    roots: Sequence[ast.Expr], kinds: Tuple[type, ...]
) -> List[ast.Expr]:
    """Nodes of ``kinds`` reached without crossing a CASE (branches may
    never evaluate) or entering another subquery (evaluated zero or
    many times, under a different scope)."""
    found: List[ast.Expr] = []

    def walk(node: ast.Node) -> None:
        if isinstance(node, kinds):
            found.append(node)  # type: ignore[arg-type]
            return  # do not descend into its own body
        if isinstance(node, ast.CaseExpr):
            return
        for child in node.children():
            walk(child)

    for root in roots:
        walk(root)
    return found


# =========================================================================
# The registry and driver
# =========================================================================

#: Applied in order per block; earlier rules see the original shapes
#: (e.g. SQLPPR01 claims an IN-subquery before SQLPPR04 would hoist it).
RULES: Tuple[RewriteRule, ...] = (
    RewriteRule(
        code="SQLPPR03",
        name="or-to-in",
        summary="OR-chain of literal equalities becomes IN, unlocking "
        "the compiled set probe and pushdown",
        lint_code="SQLPP110",
        apply=_r03_or_to_in,
    ),
    RewriteRule(
        code="SQLPPR01",
        name="exists-to-semijoin",
        summary="correlated EXISTS / IN-subquery conjunct becomes a "
        "hash-joinable DISTINCT semi-join",
        lint_code="SQLPP111",
        apply=_r01_exists_in_to_semijoin,
    ),
    RewriteRule(
        code="SQLPPR02",
        name="decorrelate-scalar",
        summary="correlated scalar aggregate subquery becomes a LEFT "
        "join + GROUP BY on the correlation key",
        lint_code="SQLPP112",
        apply=_r02_decorrelate_scalar,
    ),
    RewriteRule(
        code="SQLPPR04",
        name="cse-to-let",
        summary="subquery repeated in unconditional positions is "
        "hoisted into a LET",
        lint_code="SQLPP113",
        apply=_r04_cse_to_let,
    ),
)

RULES_BY_CODE: Dict[str, RewriteRule] = {rule.code: rule for rule in RULES}


def apply_rules(
    query: ast.Query,
    config: EvalConfig,
    catalog_types: Optional[Dict[str, object]] = None,
) -> Tuple[ast.Query, Tuple[RewriteResult, ...]]:
    """Run the registry over every block of a Core query.

    Blocks are visited bottom-up (nested subqueries first); per block,
    rules run in registry order until a full pass fires nothing.  The
    synthesized subqueries a firing emits are final — they are not
    re-visited, so the driver terminates.  Returns the rewritten query
    (``query`` itself when nothing fired) and the ordered firings.

    Gated on ``config.rewrite`` *and* ``config.optimize``: the rewrites
    exist to feed the physical planner, and ``optimize=False`` promises
    the untouched reference semantics.
    """
    if not (config.rewrite and config.optimize):
        return query, ()
    ctx = RewriteContext(config, catalog_types)
    fired: List[RewriteResult] = []

    def visit(node: ast.Node) -> ast.Node:
        if isinstance(node, ast.QueryBlock):
            return _apply_block(node, ctx, fired)
        return node

    rewritten = query.transform(visit)
    assert isinstance(rewritten, ast.Query)
    return rewritten, tuple(fired)


def _apply_block(
    block: ast.QueryBlock,
    ctx: RewriteContext,
    fired: List[RewriteResult],
) -> ast.QueryBlock:
    for _round in range(_MAX_FIRES_PER_BLOCK):
        changed = False
        for rule in RULES:
            outcome = rule.apply(block, ctx)
            if outcome is not None:
                block, result = outcome
                fired.append(result)
                changed = True
        if not changed:
            break
    return block


def describe_rules() -> str:
    """The registry catalog, one rule per line (REPL ``.rewrites``)."""
    lines = [f"rewrite registry v{REGISTRY_VERSION}:"]
    for rule in RULES:
        lines.append(f"  {rule.code} {rule.name}: {rule.summary}")
        lines.append(f"    lint: {rule.lint_code} (fixable hint)")
    return "\n".join(lines)
