"""E7 — aggregate sugar vs explicit Core aggregation (Section V-C,
Listings 15-18).

The theme of the rewriting is that the aggregated group "is first
(conceptually) materialized and then passed (conceptually again) to the
composable function".  The bench asserts the sugar and the explicit Core
forms agree, and times:

* the SQL sugar (rewriter does the lowering),
* the hand-written Core form (what the rewriter produces),
* a pre-aggregated Core pipeline mixing several COLL_* calls,

so the cost of the definitional materialisation is visible.
"""

import pytest

from repro.workloads import emp_flat

from conftest import assert_same_bag, make_db

SIZES = [1_000, 10_000]

SUGAR = (
    "SELECT e.deptno, AVG(e.salary) AS avgsal FROM emp AS e "
    "WHERE e.title = 'Engineer' GROUP BY e.deptno"
)
CORE = (
    "FROM emp AS e WHERE e.title = 'Engineer' "
    "GROUP BY e.deptno AS d GROUP AS g "
    "SELECT VALUE {deptno: d, "
    "avgsal: COLL_AVG(SELECT VALUE gi.e.salary FROM g AS gi)}"
)
MULTI = (
    "SELECT e.deptno, COUNT(*) AS n, SUM(e.salary) AS total, "
    "MIN(e.salary) AS lo, MAX(e.salary) AS hi "
    "FROM emp AS e GROUP BY e.deptno"
)


@pytest.fixture(scope="module")
def equivalence_verified():
    db = make_db(emp=emp_flat(2_000, seed=9))
    assert_same_bag(db.execute(SUGAR), db.execute(CORE, sql_compat=False))
    return True


@pytest.mark.benchmark(group="E7-aggregates")
@pytest.mark.parametrize("size", SIZES)
def test_sql_sugar(benchmark, size, equivalence_verified):
    db = make_db(emp=emp_flat(size, seed=9))
    benchmark(lambda: db.execute(SUGAR))


@pytest.mark.benchmark(group="E7-aggregates")
@pytest.mark.parametrize("size", SIZES)
def test_explicit_core(benchmark, size, equivalence_verified):
    db = make_db(emp=emp_flat(size, seed=9))
    benchmark(lambda: db.execute(CORE, sql_compat=False))


@pytest.mark.benchmark(group="E7-aggregates")
@pytest.mark.parametrize("size", SIZES)
def test_multi_aggregate(benchmark, size):
    db = make_db(emp=emp_flat(size, seed=9))
    benchmark(lambda: db.execute(MULTI))


@pytest.mark.benchmark(group="E7-rewrite-cost")
def test_rewrite_only_cost(benchmark):
    """Parsing + lowering alone, to separate it from execution."""
    db = make_db(emp=emp_flat(10, seed=9))
    benchmark(lambda: db.compile(SUGAR))
