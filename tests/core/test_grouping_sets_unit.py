"""Unit tests for the grouping-set expansion (separate from end-to-end)."""

import pytest

from repro.core.grouping_sets import expand_grouping_sets
from repro.syntax import ast


def clause(count, mode="simple", sets=None):
    keys = [
        ast.GroupKey(expr=ast.VarRef(name=f"k{i}"), alias=f"k{i}")
        for i in range(count)
    ]
    return ast.GroupByClause(keys=keys, mode=mode, grouping_sets=sets)


class TestExpansion:
    def test_simple_is_one_full_set(self):
        assert expand_grouping_sets(clause(3)) == [[0, 1, 2]]

    def test_simple_keyless(self):
        assert expand_grouping_sets(clause(0)) == [[]]

    def test_rollup_prefixes(self):
        assert expand_grouping_sets(clause(3, "rollup")) == [
            [0, 1, 2],
            [0, 1],
            [0],
            [],
        ]

    def test_cube_powerset(self):
        sets = expand_grouping_sets(clause(2, "cube"))
        assert sorted(map(tuple, sets)) == [(), (0,), (0, 1), (1,)]
        assert len(expand_grouping_sets(clause(3, "cube"))) == 8

    def test_explicit_sets_verbatim(self):
        explicit = [[0, 1], [1], []]
        assert expand_grouping_sets(clause(2, "sets", explicit)) == explicit

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            expand_grouping_sets(clause(1, "diagonal"))
