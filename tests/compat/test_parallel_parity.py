"""Batch + parallel parity over the full compatibility kit.

Acceptance bar for the PR-6 executor (docs/PLANNER.md "Batch
execution"): on every conformance case — every paper listing plus the
extended and analytics corpora — execution with the batch pipeline on
and ``parallel=2`` must be observationally identical to
``optimize=False``: same result bag (or array, for ordered cases) or
the same error class.

The fork thresholds are forced down so the kit's small fixtures
genuinely exercise the morsel fan-out wherever a case's plan is
partitionable; everything else takes the serial batch or streaming
path, which is exactly the production gating logic.
"""

from __future__ import annotations

import pytest

from repro import errors
from repro.compat.corpus import all_cases
from repro.compat.runner import build_database
from repro.core import parallel
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag


@pytest.fixture(autouse=True)
def forkable_fixtures(monkeypatch):
    monkeypatch.setattr(parallel, "MIN_PARALLEL_ROWS", 4)
    monkeypatch.setattr(parallel, "MIN_MORSEL_ROWS", 2)


def _outcome(db, case, **kwargs):
    try:
        return ("value", db.execute(case.query, **kwargs))
    except errors.SQLPPError as exc:
        return ("error", type(exc).__name__)


@pytest.mark.parametrize("workers", [0, 2], ids=["batch", "parallel2"])
@pytest.mark.parametrize(
    "case", all_cases(), ids=lambda case: case.case_id
)
def test_parallel_equals_reference(case, workers):
    candidate = _outcome(build_database(case), case, parallel=workers)
    reference = _outcome(build_database(case), case, optimize=False)
    assert candidate[0] == reference[0], (
        f"{case.case_id}: parallel → {candidate}, reference → {reference}"
    )
    if candidate[0] == "error":
        assert candidate[1] == reference[1]
        return
    left, right = candidate[1], reference[1]
    if case.ordered:
        assert deep_equals(left, right)
    else:
        left = Bag(list(left)) if isinstance(left, (list, Bag)) else left
        right = Bag(list(right)) if isinstance(right, (list, Bag)) else right
        assert deep_equals(left, right)
