"""Runtime observability and resource governance (docs/OBSERVABILITY.md).

Cooperating pieces, all optional and zero-cost when unused:

* :class:`ExecTracer` — per-operator/per-stage runtime statistics for
  ``EXPLAIN ANALYZE`` (rows in/out, invocation counts, wall time);
* :class:`TraceContext` / :class:`Span` — structured spans with parent
  links for one traced run, exportable as Chrome trace-event JSON and
  collapsed-stack text (``db.trace``, ``--trace-out``);
* :class:`QueryMetrics` / :class:`MetricsRegistry` — per-phase timings,
  compile-cache counters, latency :class:`Histogram`\\ s, Prometheus
  text exposition (``expose_text``) and pluggable sinks (in-memory
  ring buffer, JSON-lines slow-query log);
* :class:`ResourceGovernor` — cooperative enforcement of the
  ``timeout_s`` / ``max_rows`` / ``max_recursion`` limits on
  :class:`~repro.config.EvalConfig`, raising
  :class:`~repro.errors.ResourceExhausted` instead of hanging;
* :class:`QueryStore` — persistent fingerprint-keyed workload history
  with plan-change/latency-regression detection and the cardinality
  feedback loop (``db.query_store()``, CLI ``report``).
"""

from repro.observability.exposition import DEFAULT_BUCKETS, Histogram
from repro.observability.limits import ResourceGovernor
from repro.observability.metrics import MetricsRegistry, QueryMetrics
from repro.observability.query_store import (
    QueryStore,
    normalized_core_text,
    plan_hash,
    query_fingerprint,
)
from repro.observability.sinks import InMemorySink, JsonLinesSink
from repro.observability.spans import Span, TraceContext
from repro.observability.tracer import (
    ExecTracer,
    OpStats,
    describe_from_item,
    format_seconds,
    q_error,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "ExecTracer",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "OpStats",
    "QueryMetrics",
    "QueryStore",
    "ResourceGovernor",
    "Span",
    "TraceContext",
    "describe_from_item",
    "format_seconds",
    "normalized_core_text",
    "plan_hash",
    "q_error",
    "query_fingerprint",
]
