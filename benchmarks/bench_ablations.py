"""Ablation benches for the implementation's own design choices.

DESIGN.md calls out three load-bearing implementation decisions; each
is ablated here against the naive alternative so the choice is
justified by measurement, not taste:

* **A1 — canonical grouping keys.**  Bag equality, DISTINCT and GROUP
  BY all run on hashable ``group_key`` values (expected O(n)); the
  naive alternative compares elements pairwise with ``deep_equals``
  (O(n²)).
* **A2 — chained environments.**  FROM items extend a parent
  environment in O(1); the naive alternative copies the whole binding
  dict per joined row.
* **A3 — rewrite once, evaluate many.**  The sugar → Core rewrite is a
  compile step; the ablation re-parses and re-rewrites per execution
  (what an interpreter without the Core separation would do).
"""

import pytest

from repro import Database
from repro.core.environment import Environment
from repro.datamodel.convert import from_python
from repro.datamodel.equality import deep_equals, group_key
from repro.workloads import emp_flat

# -- A1: grouping keys vs pairwise deep equality ---------------------------

N_ELEMENTS = 800


def _bag_elements():
    return from_python(
        [{"k": index % 50, "tags": ["a", "b"]} for index in range(N_ELEMENTS)]
    )


@pytest.mark.benchmark(group="A1-multiset-equality")
def test_a1_canonical_keys(benchmark):
    left, right = _bag_elements(), list(reversed(_bag_elements()))

    def with_keys():
        counts = {}
        for item in left:
            key = group_key(item)
            counts[key] = counts.get(key, 0) + 1
        for item in right:
            counts[group_key(item)] -= 1
        return all(count == 0 for count in counts.values())

    assert benchmark(with_keys)


@pytest.mark.benchmark(group="A1-multiset-equality")
def test_a1_pairwise_deep_equals(benchmark):
    # Quadratic baseline on a smaller input (the full size would take
    # minutes) — the per-element cost comparison is what matters.
    left = _bag_elements()[:200]
    right = list(reversed(_bag_elements()[:200]))

    def pairwise():
        remaining = list(right)
        for item in left:
            for position, candidate in enumerate(remaining):
                if deep_equals(item, candidate):
                    del remaining[position]
                    break
            else:
                return False
        return not remaining

    assert benchmark(pairwise)


# -- A2: environment chaining vs dict copying -------------------------------
#
# The tradeoff is depth- and width-dependent: copying pays O(bindings)
# per extension but gives O(1) lookups; the chain extends in O(1) but
# looks up in O(depth).  ``wide`` models the case that actually bites —
# a wide outer scope (many catalog names / LETs / group attributes)
# being re-copied for every joined row.

DEPTH = 4
WIDTH = 2_000
WIDE_OUTER = {f"outer{i}": i for i in range(40)}


@pytest.mark.benchmark(group="A2-environments")
@pytest.mark.parametrize("outer_width", [1, 40], ids=["narrow", "wide"])
def test_a2_chained_environments(benchmark, outer_width):
    root_bindings = {f"outer{i}": i for i in range(outer_width)}

    def chained():
        root = Environment(root_bindings)
        total = 0
        for index in range(WIDTH):
            env = root
            for level in range(DEPTH):
                env = env.bind(f"v{level}", index + level)
            total += env.lookup("v0") + env.lookup("outer0")
        return total

    benchmark(chained)


@pytest.mark.benchmark(group="A2-environments")
@pytest.mark.parametrize("outer_width", [1, 40], ids=["narrow", "wide"])
def test_a2_copied_dicts(benchmark, outer_width):
    root_bindings = {f"outer{i}": i for i in range(outer_width)}

    def copied():
        total = 0
        for index in range(WIDTH):
            env = dict(root_bindings)
            for level in range(DEPTH):
                env = dict(env)  # the copy the chain avoids
                env[f"v{level}"] = index + level
            total += env["v0"] + env["outer0"]
        return total

    benchmark(copied)


# -- A3: compile-once vs re-rewrite per execution ----------------------------

QUERY = (
    "SELECT e.deptno, AVG(e.salary) AS a, COUNT(*) AS n "
    "FROM emp AS e WHERE e.salary > 60000 GROUP BY e.deptno"
)


@pytest.mark.benchmark(group="A3-compile-once")
def test_a3_precompiled(benchmark):
    db = Database()
    db.set("emp", emp_flat(2_000, seed=12))
    core = db.compile(QUERY)
    from repro.core.environment import Environment as Env
    from repro.core.evaluator import Evaluator

    evaluator = Evaluator(db.catalog, db._config)
    benchmark(lambda: evaluator.execute(core, Env()))


@pytest.mark.benchmark(group="A3-compile-once")
def test_a3_reparse_every_time(benchmark):
    db = Database()
    db.set("emp", emp_flat(2_000, seed=12))
    benchmark(lambda: db.execute(QUERY))


# -- A4: interpreted AST walk vs compiled closures ---------------------------
#
# The clause pipeline evaluates the same expressions once per binding;
# compiling them to closures (repro.core.compile_expr) removes the
# per-row dispatch.  The ablation runs the same WHERE+SELECT expression
# both ways over the same bindings.

from repro import Database  # noqa: E402
from repro.core.environment import Environment as _Env  # noqa: E402
from repro.core.evaluator import Evaluator  # noqa: E402
from repro.syntax.parser import parse_expression  # noqa: E402

_A4_EXPR = parse_expression(
    "r.salary > 80000 AND r.title = 'Engineer' AND r.name LIKE '%a%'"
)


def _a4_envs():
    db = Database()
    db.set("emp", emp_flat(3_000, seed=23))
    evaluator = Evaluator(db.catalog, db._config)
    rows = db.get("emp")
    return evaluator, [_Env({"r": row}) for row in rows]


@pytest.mark.benchmark(group="A4-expr-compilation")
def test_a4_interpreted_walk(benchmark):
    evaluator, envs = _a4_envs()
    benchmark(lambda: sum(
        1 for env in envs if evaluator.eval_expr(_A4_EXPR, env) is True
    ))


@pytest.mark.benchmark(group="A4-expr-compilation")
def test_a4_compiled_closures(benchmark):
    evaluator, envs = _a4_envs()
    compiled = evaluator.compiled(_A4_EXPR)
    benchmark(lambda: sum(1 for env in envs if compiled(env) is True))
