"""The function registry.

Every builtin is a :class:`FunctionDef` entry in a
:class:`FunctionRegistry`.  The registry implements the paper's
Section IV-B propagation rule centrally: by default a function returns
``MISSING`` when any input is ``MISSING`` and ``NULL`` when any input is
``NULL``.  Functions that intentionally *consume* absent values — the
``COALESCE`` family, ``EXISTS``, type predicates, the ``COLL_*``
aggregates — opt out with ``propagate_absent=False`` and handle absence
themselves.

The ``COALESCE`` exception of Section IV-B ("if a SQL expression, given a
null input, would return a non-null result, the same expression returns
the same result given MISSING") is carried by the individual function
implementations, which receive the :class:`~repro.config.EvalConfig` and
check its ``sql_compat`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.config import EvalConfig
from repro.datamodel.values import MISSING
from repro.errors import EvaluationError, TypeCheckError

#: Builtin signature: fn(args, config) -> value.
BuiltinFn = Callable[[List[Any], EvalConfig], Any]


@dataclass(frozen=True)
class FunctionDef:
    """Metadata and implementation of one builtin function."""

    name: str
    fn: BuiltinFn
    min_args: int
    max_args: Optional[int]  # None = variadic
    propagate_absent: bool = True
    is_aggregate: bool = False  # True for the COLL_* collection aggregates

    def invoke(self, args: List[Any], config: EvalConfig) -> Any:
        """Check arity, apply the absence rule, call the implementation."""
        count = len(args)
        if count < self.min_args or (
            self.max_args is not None and count > self.max_args
        ):
            expected = (
                str(self.min_args)
                if self.max_args == self.min_args
                else f"{self.min_args}..{self.max_args or 'N'}"
            )
            raise EvaluationError(
                f"{self.name} expects {expected} argument(s), got {count}"
            )
        if self.propagate_absent:
            if any(arg is MISSING for arg in args):
                return MISSING
            if any(arg is None for arg in args):
                return None
        try:
            return self.fn(args, config)
        except TypeCheckError:
            raise
        except (TypeError, ValueError, ArithmeticError) as exc:
            # A builtin tripping over bad input is a dynamic type error:
            # MISSING in permissive mode, raised in strict mode.
            return config.type_error(f"{self.name}: {exc}")


class FunctionRegistry:
    """Name → :class:`FunctionDef`, case-insensitive lookup."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionDef] = {}

    def register(
        self,
        name: str,
        fn: BuiltinFn,
        min_args: int,
        max_args: Optional[int] = -1,
        propagate_absent: bool = True,
        is_aggregate: bool = False,
    ) -> FunctionDef:
        """Register a builtin.  ``max_args=-1`` means ``max_args=min_args``."""
        if max_args == -1:
            max_args = min_args
        definition = FunctionDef(
            name=name.upper(),
            fn=fn,
            min_args=min_args,
            max_args=max_args,
            propagate_absent=propagate_absent,
            is_aggregate=is_aggregate,
        )
        self._functions[definition.name] = definition
        return definition

    def alias(self, existing: str, *names: str) -> None:
        """Register additional names for an existing function."""
        definition = self._functions[existing.upper()]
        for name in names:
            self._functions[name.upper()] = definition

    def lookup(self, name: str) -> Optional[FunctionDef]:
        return self._functions.get(name.upper())

    def names(self) -> List[str]:
        return sorted(self._functions)

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._functions


#: The global registry used by the evaluator.
REGISTRY = FunctionRegistry()


def builtin(
    name: str,
    min_args: int,
    max_args: Optional[int] = -1,
    propagate_absent: bool = True,
    is_aggregate: bool = False,
):
    """Decorator registering a function in :data:`REGISTRY`."""

    def decorate(fn: BuiltinFn) -> BuiltinFn:
        REGISTRY.register(
            name,
            fn,
            min_args,
            max_args,
            propagate_absent=propagate_absent,
            is_aggregate=is_aggregate,
        )
        return fn

    return decorate
