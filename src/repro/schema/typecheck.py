"""Static type checking of queries against an optional schema.

The paper (Section I, relaxation 2): "Typing rules are dynamically
checked in SQL++, with the possibility of static type checking when the
optional schema is present."  This module provides that possibility: a
conservative checker that walks a *rewritten* (Core) query with a typed
environment and reports statically-certain problems:

* ``FROM`` ranging over a value the schema proves is not a collection;
* navigation into an attribute a *closed* struct type cannot have (the
  error SQL would raise at compile time — Section II notes SQL fails
  such queries during compilation, SQL++ without schema cannot);
* arithmetic on values the schema proves non-numeric.

Anything the schema does not pin down types as *unknown* and produces no
report — absence of schema must never reject a query (tenet 3).

:func:`check_query` returns a list of human-readable findings; an empty
list means "no static errors found".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.schema.types import (
    AnyType,
    ArrayType,
    BagType,
    BooleanType,
    FloatType,
    IntegerType,
    NullType,
    SchemaType,
    StringType,
    StructType,
)
from repro.syntax import ast

_NUMERIC = (IntegerType, FloatType)
_SCALAR = (IntegerType, FloatType, StringType, BooleanType)


class _Checker:
    def __init__(self, schemas: Dict[str, SchemaType]):
        self._schemas = schemas
        self.findings: List[str] = []

    def report(self, message: str) -> None:
        self.findings.append(message)

    # -- queries -----------------------------------------------------------

    def check_query(self, query: ast.Query, scope: Dict[str, SchemaType]) -> SchemaType:
        body = query.body
        if isinstance(body, ast.QueryBlock):
            element = self.check_block(body, scope)
        elif isinstance(body, ast.SetOp):
            element = self._check_setop(body, scope)
        else:
            self.check_expr(body, scope)
            element = AnyType()
        if isinstance(element, AnyType):
            return AnyType()
        return ArrayType(element=element) if query.order_by else BagType(element=element)

    def _check_setop(self, setop: ast.SetOp, scope: Dict[str, SchemaType]) -> SchemaType:
        for side in (setop.left, setop.right):
            if isinstance(side, ast.QueryBlock):
                self.check_block(side, scope)
            elif isinstance(side, ast.SetOp):
                self._check_setop(side, scope)
            elif isinstance(side, ast.Query):
                self.check_query(side, scope)
            else:
                self.check_expr(side, scope)
        return AnyType()

    def check_block(
        self, block: ast.QueryBlock, outer: Dict[str, SchemaType]
    ) -> SchemaType:
        scope = dict(outer)
        for item in block.from_ or []:
            self._bind_from_item(item, scope)
        for let in block.lets:
            scope[let.name] = self.check_expr(let.expr, scope)
        if block.where is not None:
            self.check_expr(block.where, scope)
        if block.group_by is not None:
            group_scope = dict(outer)
            for key in block.group_by.keys:
                group_scope[key.alias] = self.check_expr(key.expr, scope)
            if block.group_by.group_as:
                group_scope[block.group_by.group_as] = BagType(element=AnyType())
            scope = group_scope
        if block.having is not None:
            self.check_expr(block.having, scope)
        select = block.select
        if isinstance(select, ast.SelectValue):
            return self.check_expr(select.expr, scope)
        if isinstance(select, ast.PivotClause):
            self.check_expr(select.value, scope)
            self.check_expr(select.at, scope)
            return AnyType()
        return AnyType()

    def _bind_from_item(self, item: ast.FromItem, scope: Dict[str, SchemaType]) -> None:
        if isinstance(item, ast.FromCollection):
            source = self.check_expr(item.expr, scope)
            scope[item.alias] = self._element_type(source, item)
            if item.at_alias:
                scope[item.at_alias] = IntegerType()
        elif isinstance(item, ast.FromUnpivot):
            source = self.check_expr(item.expr, scope)
            if isinstance(source, _SCALAR + (ArrayType, BagType)):
                self.report(
                    f"UNPIVOT over a non-tuple typed {source} "
                    f"(variable {item.value_alias!r})"
                )
            scope[item.value_alias] = AnyType()
            scope[item.at_alias] = StringType()
        elif isinstance(item, ast.FromJoin):
            self._bind_from_item(item.left, scope)
            self._bind_from_item(item.right, scope)
            if item.on is not None:
                self.check_expr(item.on, scope)

    def _element_type(self, source: SchemaType, item: ast.FromCollection) -> SchemaType:
        if isinstance(source, (ArrayType, BagType)):
            return source.element
        if isinstance(source, _SCALAR) or isinstance(source, NullType):
            self.report(
                f"FROM ranges over a non-collection typed {source} "
                f"(variable {item.alias!r})"
            )
        return AnyType()

    # -- expressions ---------------------------------------------------------

    def check_expr(
        self, expr: Optional[ast.Expr], scope: Dict[str, SchemaType]
    ) -> SchemaType:
        if expr is None:
            return AnyType()
        if isinstance(expr, ast.Literal):
            return _literal_type(expr.value)
        if isinstance(expr, ast.VarRef):
            if expr.name in scope:
                return scope[expr.name]
            if expr.name in self._schemas:
                return self._schemas[expr.name]
            return AnyType()
        if isinstance(expr, ast.Path):
            return self._check_path(expr, scope)
        if isinstance(expr, ast.Index):
            base = self.check_expr(expr.base, scope)
            self.check_expr(expr.index, scope)
            if isinstance(base, ArrayType):
                return base.element
            if isinstance(base, _SCALAR):
                self.report(f"indexing into a value typed {base}")
            return AnyType()
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.Unary):
            operand = self.check_expr(expr.operand, scope)
            if expr.op in ("-", "+") and isinstance(operand, (StringType, BooleanType)):
                self.report(f"unary {expr.op} over a value typed {operand}")
            return operand if expr.op in ("-", "+") else BooleanType()
        if isinstance(expr, (ast.Like, ast.Between, ast.InPredicate, ast.IsPredicate)):
            for child in expr.children():
                if isinstance(child, ast.Expr):
                    self.check_expr(child, scope)
            return BooleanType()
        if isinstance(expr, ast.Exists):
            self.check_expr(expr.operand, scope)
            return BooleanType()
        if isinstance(expr, ast.CaseExpr):
            for child in expr.children():
                if isinstance(child, ast.Expr):
                    self.check_expr(child, scope)
            return AnyType()
        if isinstance(expr, ast.FunctionCall):
            for arg in expr.args:
                self.check_expr(arg, scope)
            return AnyType()
        if isinstance(expr, ast.WindowCall):
            for child in expr.children():
                if isinstance(child, ast.Expr):
                    self.check_expr(child, scope)
            return AnyType()
        if isinstance(expr, (ast.SubqueryExpr, ast.CoerceSubquery)):
            result = self.check_query(expr.query, scope)
            if isinstance(expr, ast.CoerceSubquery):
                return AnyType()
            return result
        if isinstance(expr, ast.StructLit):
            for field in expr.fields:
                self.check_expr(field.key, scope)
                self.check_expr(field.value, scope)
            return StructType(open=True)
        if isinstance(expr, ast.ArrayLit):
            for item in expr.items:
                self.check_expr(item, scope)
            return ArrayType(element=AnyType())
        if isinstance(expr, ast.BagLit):
            for item in expr.items:
                self.check_expr(item, scope)
            return BagType(element=AnyType())
        if isinstance(expr, ast.CastExpr):
            self.check_expr(expr.operand, scope)
            return AnyType()
        return AnyType()

    def _check_path(self, expr: ast.Path, scope: Dict[str, SchemaType]) -> SchemaType:
        # A dotted catalog name is a named value, not navigation.
        dotted = _dotted_name(expr)
        if dotted is not None and dotted in self._schemas:
            return self._schemas[dotted]
        base = self.check_expr(expr.base, scope)
        if isinstance(base, StructType):
            fld = base.field_named(expr.attr)
            if fld is not None:
                return fld.type
            if not base.open:
                self.report(
                    f"navigation .{expr.attr} into a closed struct that "
                    f"declares no such attribute"
                )
            return AnyType()
        if isinstance(base, _SCALAR) or isinstance(base, (ArrayType, BagType)):
            self.report(f"navigation .{expr.attr} into a value typed {base}")
        return AnyType()

    def _check_binary(self, expr: ast.Binary, scope: Dict[str, SchemaType]) -> SchemaType:
        left = self.check_expr(expr.left, scope)
        right = self.check_expr(expr.right, scope)
        if expr.op in ("+", "-", "*", "/", "%"):
            for side in (left, right):
                if isinstance(side, (StringType, BooleanType)) or isinstance(
                    side, (ArrayType, BagType, StructType)
                ):
                    self.report(
                        f"arithmetic {expr.op} over a value typed {side}"
                    )
            if isinstance(left, _NUMERIC) and isinstance(right, _NUMERIC):
                if isinstance(left, FloatType) or isinstance(right, FloatType):
                    return FloatType()
                return IntegerType()
            return AnyType()
        if expr.op == "||":
            for side in (left, right):
                if isinstance(side, (_NUMERIC) + (BooleanType,)):
                    self.report(f"|| over a value typed {side}")
            return StringType()
        return BooleanType()


def _literal_type(value) -> SchemaType:
    from repro.datamodel.values import MISSING

    if value is MISSING or value is None:
        return AnyType() if value is MISSING else NullType()
    if isinstance(value, bool):
        return BooleanType()
    if isinstance(value, int):
        return IntegerType()
    if isinstance(value, float):
        return FloatType()
    if isinstance(value, str):
        return StringType()
    return AnyType()


def _dotted_name(expr: ast.Expr) -> Optional[str]:
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Path):
        base = _dotted_name(expr.base)
        if base is not None:
            return f"{base}.{expr.attr}"
    return None


def check_query(
    query: ast.Query, schemas: Dict[str, SchemaType]
) -> List[str]:
    """Statically check a (rewritten) query; returns finding messages.

    Pass the output of :meth:`repro.catalog.Database.compile` together
    with the database's registered schemas.
    """
    checker = _Checker(schemas)
    checker.check_query(query, scope={})
    return checker.findings
