"""The abstract-interpretation pass (docs/ANALYZER.md, SQLPP120-124).

Covers the three analyses — constant folding by execution, the
interval/value-set conjunction domain, CASE reachability — plus their
lint surface and the planner integration: folded constants reach the
compiled plan, proven-empty blocks collapse to a zero-row operator
with a ``pruned:`` EXPLAIN line, proven-TRUE conjuncts are dropped,
and every optimization is invisible in results (on/off parity pinned
here for the acceptance query; the property suite generalizes it).
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.analysis.absint import (
    block_prune_reason,
    fold_expr,
    fold_query,
    never_true,
    unreachable_whens,
)
from repro.config import EvalConfig
from repro.core.planner import split_conjuncts
from repro.core.rewriter import rewrite_query
from repro.datamodel.values import MISSING, Bag
from repro.syntax import ast
from repro.syntax.parser import parse
from repro.syntax.printer import print_ast

PERMISSIVE = EvalConfig()
STRICT = EvalConfig(typing_mode="strict")


def _expr(text: str) -> ast.Expr:
    """The Core form of one expression (parsed via a SELECT shell)."""
    core = rewrite_query(
        parse(f"SELECT VALUE {text} FROM [1] AS t"),
        PERMISSIVE,
        catalog_names=(),
    )
    return core.body.select.expr


def _where(text: str, config: EvalConfig = PERMISSIVE) -> ast.Expr:
    core = rewrite_query(
        parse(f"SELECT VALUE t FROM [1] AS t WHERE {text}"),
        config,
        catalog_names=(),
    )
    return core.body.where


class TestConstantFolding:
    @pytest.mark.parametrize(
        "text, value",
        [
            ("1 + 2 * 3", 7),
            ("'a' || 'b'", "ab"),
            ("NOT FALSE", True),
            ("-(2 + 3)", -5),
            ("1 < 2", True),
            ("1 = 1 AND 2 = 2", True),
            ("FALSE OR TRUE", True),
            ("2 BETWEEN 1 AND 3", True),
            ("'abc' LIKE 'a%'", True),
            ("3 IN [1, 2, 3]", True),
            ("NULL IS NULL", True),
            ("MISSING IS MISSING", True),
            ("CASE WHEN TRUE THEN 'y' ELSE 'n' END", "y"),
            ("CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END", "b"),
        ],
    )
    def test_folds_to_literal(self, text, value):
        folded = fold_expr(_expr(text), PERMISSIVE)
        assert isinstance(folded, ast.Literal)
        assert folded.value == value

    def test_fold_keeps_span(self):
        expr = _expr("1 + 2")
        folded = fold_expr(expr, PERMISSIVE)
        assert (folded.line, folded.column) == (expr.line, expr.column)

    def test_absent_comparison_folds_in_both_modes(self):
        # Comparisons against absent literals return early before type
        # checks, so the fold is safe even under strict typing.
        for config in (PERMISSIVE, STRICT):
            folded = fold_expr(_expr("1 = NULL"), config)
            assert isinstance(folded, ast.Literal)
            assert folded.value is None

    def test_raising_subexpression_stays_unfolded_in_strict(self):
        # 1 < 'a' raises TypeError in strict mode: the fold must leave
        # it in place so evaluation still raises.
        expr = _expr("1 < 'a'")
        folded = fold_expr(expr, STRICT)
        assert not isinstance(folded, ast.Literal)
        # ... but permissive mode folds it to its MISSING verdict.
        assert fold_expr(expr, PERMISSIVE).value is MISSING

    def test_dynamic_operands_stay(self):
        folded = fold_expr(_where("t > 1 + 1"), PERMISSIVE)
        assert isinstance(folded, ast.Binary)
        assert isinstance(folded.right, ast.Literal)
        assert folded.right.value == 2

    def test_fold_query_counts_and_shares_unchanged(self):
        query = rewrite_query(
            parse("SELECT VALUE t FROM [1] AS t WHERE t > 1"),
            PERMISSIVE,
            catalog_names=(),
        )
        same, folds = fold_query(query, PERMISSIVE)
        assert folds == 0 and same is query
        query2 = rewrite_query(
            parse("SELECT VALUE t FROM [1] AS t WHERE t > 1 + 1"),
            PERMISSIVE,
            catalog_names=(),
        )
        rebuilt, folds2 = fold_query(query2, PERMISSIVE)
        assert folds2 == 1 and rebuilt is not query2


class TestConjunctionSatisfiability:
    @pytest.mark.parametrize(
        "text",
        [
            "t.x > 5 AND t.x < 3",
            "t.x >= 5 AND t.x < 5",
            "t.x = 1 AND t.x = 2",
            "t.x = 1 AND t.x != 1",
            "t.x = 1 AND t.x > 10",
            "t.x < 'a' AND t.x > 5",  # disjoint categories
            "t.x = 1 AND t.x IS NULL",
            "t.x IS MISSING AND t.x IS NOT MISSING",
            "t.x = NULL",  # absent literal never =-matches
            "t.x IN [] AND t.x = 1",
            "t.x IN [1, 2] AND t.x = 3",
            "t.x BETWEEN 5 AND 3",
            "FALSE",
        ],
    )
    def test_proven_never_true(self, text):
        conjuncts = split_conjuncts(_where(text))
        assert never_true(conjuncts, PERMISSIVE) is not None

    @pytest.mark.parametrize(
        "text",
        [
            "t.x > 3 AND t.x < 5",
            "t.x >= 5 AND t.x <= 5",
            "t.x = 1 AND t.x <= 1",
            "t.x IN [1, 2] AND t.x = 2",
            "t.x != 1 AND t.x != 2",
            "t.x IS NULL",
            "t.x > 5 AND t.y < 3",  # different terms
            "t.x < t.y",  # no constant side
        ],
    )
    def test_satisfiable_stays(self, text):
        conjuncts = split_conjuncts(_where(text))
        assert never_true(conjuncts, PERMISSIVE) is None

    def test_contradiction_carries_span(self):
        conjuncts = split_conjuncts(_where("t.x > 5 AND t.x < 3"))
        contradiction = never_true(conjuncts, PERMISSIVE)
        assert contradiction.line is not None


class TestCaseReachability:
    def _case(self, text: str) -> ast.CaseExpr:
        expr = _expr(text)
        assert isinstance(expr, ast.CaseExpr)
        return expr

    def test_constant_false_branch_dead(self):
        node = self._case("CASE WHEN FALSE THEN 1 WHEN t > 0 THEN 2 END")
        assert unreachable_whens(node, PERMISSIVE) == [0]

    def test_branches_after_constant_true_dead(self):
        node = self._case(
            "CASE WHEN t > 0 THEN 1 WHEN TRUE THEN 2 WHEN t < 0 THEN 3 END"
        )
        assert unreachable_whens(node, PERMISSIVE) == [2]

    def test_simple_case_constant_mismatch_dead(self):
        node = self._case("CASE 1 WHEN 2 THEN 'a' WHEN t THEN 'b' END")
        assert unreachable_whens(node, PERMISSIVE) == [0]

    def test_all_dynamic_alive(self):
        node = self._case("CASE WHEN t > 0 THEN 1 WHEN t < 0 THEN 2 END")
        assert unreachable_whens(node, PERMISSIVE) == []


class TestBlockPruneReason:
    def _block(self, query: str, config: EvalConfig = PERMISSIVE):
        core = rewrite_query(parse(query), config, catalog_names=("t",))
        return core.body

    def test_contradiction_prunes(self):
        block = self._block(
            "SELECT VALUE r FROM t AS r WHERE r.x > 5 AND r.x < 3"
        )
        assert block_prune_reason(block, PERMISSIVE, {"t"}) is not None

    def test_strict_mode_never_prunes(self):
        block = self._block(
            "SELECT VALUE r FROM t AS r WHERE r.x > 5 AND r.x < 3", STRICT
        )
        assert block_prune_reason(block, STRICT, {"t"}) is None

    def test_unbound_catalog_name_blocks_prune(self):
        # Dropping evaluation must not erase the BindingError that
        # enumerating the unknown collection would raise.
        block = self._block(
            "SELECT VALUE r FROM t AS r WHERE r.x > 5 AND r.x < 3"
        )
        assert block_prune_reason(block, PERMISSIVE, set()) is None

    def test_satisfiable_where_blocks_prune(self):
        block = self._block("SELECT VALUE r FROM t AS r WHERE r.x > 5")
        assert block_prune_reason(block, PERMISSIVE, {"t"}) is None


class TestLintFindings:
    def _codes(self, db, query):
        return [d.code for d in db.check(query)]

    def test_sqlpp120_and_124_on_contradiction(self):
        db = Database()
        db.set("t", [{"x": 1}])
        codes = self._codes(
            db, "SELECT VALUE r FROM t AS r WHERE r.x > 5 AND r.x < 3"
        )
        assert "SQLPP120" in codes and "SQLPP124" in codes

    def test_sqlpp121_on_tautology(self):
        db = Database()
        db.set("t", [{"x": 1}, {"x": 2}])
        findings = db.check("SELECT VALUE r FROM t AS r WHERE r.x = r.x")
        tautologies = [d for d in findings if d.code == "SQLPP121"]
        assert len(tautologies) == 1
        assert tautologies[0].fixable == "drop-true"

    def test_sqlpp122_on_constant_expression(self):
        db = Database()
        findings = db.check("SELECT VALUE 1 + 2 * 3 FROM [1] AS t")
        folds = [d for d in findings if d.code == "SQLPP122"]
        assert len(folds) == 1
        assert folds[0].line is not None

    def test_sqlpp123_on_dead_branch(self):
        db = Database()
        codes = self._codes(
            db,
            "SELECT VALUE CASE WHEN FALSE THEN 1 ELSE t END "
            "FROM [1] AS t",
        )
        assert "SQLPP123" in codes

    def test_plain_queries_stay_clean(self):
        db = Database()
        db.set("t", [{"x": 1}])
        codes = self._codes(db, "SELECT VALUE r.x FROM t AS r WHERE r.x > 5")
        assert not any(code.startswith("SQLPP12") for code in codes)


class TestPlannerIntegration:
    ACCEPTANCE = "SELECT VALUE r FROM t AS r WHERE r.x > 5 AND r.x < 3"

    def _db(self, **kwargs) -> Database:
        db = Database(**kwargs)
        db.set(
            "t",
            [{"x": 1}, {"x": 4}, {"x": None}, {"y": 2}, {"x": "s"}],
        )
        return db

    def test_acceptance_query_prunes_to_empty(self):
        db = self._db()
        explained = db.explain_plan(self.ACCEPTANCE)
        assert "pruned:" in explained
        assert "Empty" in explained
        assert db.execute(self.ACCEPTANCE) == Bag() or list(
            db.execute(self.ACCEPTANCE)
        ) == []

    @pytest.mark.parametrize("typing_mode", ["permissive", "strict"])
    def test_acceptance_on_off_parity(self, typing_mode):
        # Same rows in permissive mode; the same TypeCheckError in
        # strict mode (the string row raises before any pruning could
        # apply — which is exactly why pruning is permissive-only).
        from repro import errors

        def outcome(db):
            try:
                return ("value", list(db.execute(self.ACCEPTANCE)))
            except errors.SQLPPError as exc:
                return ("error", type(exc).__name__)

        on = outcome(self._db(typing_mode=typing_mode))
        off = outcome(self._db(typing_mode=typing_mode, optimize=False))
        assert on == off

    def test_strict_mode_does_not_prune(self):
        db = self._db(typing_mode="strict")
        assert "pruned:" not in db.explain_plan(self.ACCEPTANCE)

    def test_drop_true_conjunct(self):
        db = self._db()
        explained = db.explain_plan(
            "SELECT VALUE r FROM t AS r WHERE 1 = 1 AND r.x > 5"
        )
        assert "drop-true" in explained

    def test_folded_constant_reaches_plan(self):
        db = self._db()
        explained = db.explain_plan(
            "SELECT VALUE r FROM t AS r WHERE r.x > 2 + 3"
        )
        assert "(2 + 3)" not in explained

    def test_optimize_off_leaves_everything(self):
        db = self._db(optimize=False)
        rows = list(db.execute("SELECT VALUE r.x FROM t AS r WHERE 1 = 1"))
        assert sorted(str(x) for x in rows) == sorted(
            str(x)
            for x in db.execute("SELECT VALUE r.x FROM t AS r WHERE 1 = 1")
        )

