"""Edge semantics and error-path tests across the evaluator."""

import pytest

from repro import Bag, MISSING, Struct
from repro.errors import BindingError, ParseError

from tests.conftest import bag_of


class TestNameResolution:
    def test_longest_dotted_prefix_wins(self, db):
        db.set("a", [{"b": "attr-world"}])
        db.set("a.b", ["name-world"])
        # 'a' resolves first, then .b navigates into its elements? No —
        # 'a' is a collection; navigation into a collection is a type
        # error, so the dotted name would never be reachable if 'a'
        # resolves. Resolution tries the variable/catalog name 'a'
        # first; 'a.b' the named value is shadowed.
        result = db.execute("a.b")
        assert result is MISSING or result == ["name-world"]

    def test_dotted_name_without_prefix_value(self, db):
        db.set("hr.emp", [1, 2])
        assert db.execute("hr.emp") == [1, 2]

    def test_partial_dotted_name_unresolved(self, db):
        db.set("hr.emp", [1])
        with pytest.raises(BindingError):
            db.execute("hr.staff")

    def test_deeply_dotted_names(self, db):
        db.set("x.y.z", 5)
        assert db.execute("x.y.z") == 5

    def test_error_message_names_the_culprit(self, db):
        with pytest.raises(BindingError) as info:
            db.execute("SELECT VALUE zap FROM [1] AS v", sql_compat=False)
        assert "zap" in str(info.value)


class TestShadowing:
    def test_let_shadows_from(self, db):
        result = bag_of(
            db.execute("SELECT VALUE x FROM [1] AS x LET x = 'shadowed'")
        )
        assert result == ["shadowed"]

    def test_subquery_variable_shadows_outer(self, db):
        result = bag_of(
            db.execute(
                "SELECT VALUE (SELECT VALUE v FROM [2] AS v) FROM [1] AS v"
            )
        )
        assert bag_of(result[0]) == [2]

    def test_nested_from_reuses_name_sequentially(self, db):
        db.set("t", [{"xs": [[10]]}])
        result = bag_of(
            db.execute("SELECT VALUE x FROM t AS r, r.xs AS x, x AS x")
        )
        assert result == [10]


class TestHeterogeneousGroupKeys:
    def test_keys_of_mixed_types_group_separately(self, db):
        db.set("t", [{"k": 1}, {"k": "1"}, {"k": True}, {"k": 1.0}])
        result = bag_of(
            db.execute(
                "SELECT VALUE COLL_COUNT(SELECT VALUE 1 FROM g AS v) "
                "FROM t AS r GROUP BY r.k AS k GROUP AS g"
            )
        )
        # 1 and 1.0 group together; '1' and TRUE are their own groups.
        assert sorted(result) == [1, 1, 2]

    def test_nested_group_keys(self, db):
        db.set("t", [{"k": {"a": 1}}, {"k": {"a": 1}}, {"k": {"a": 2}}])
        result = db.execute(
            "SELECT VALUE k FROM t AS r GROUP BY r.k AS k"
        )
        assert len(list(result)) == 2


class TestDuplicateAttributes:
    def test_navigation_takes_first(self, db):
        db.set("t", [Struct([("a", 1), ("a", 2)])])
        assert bag_of(db.execute("SELECT VALUE r.a FROM t AS r")) == [1]

    def test_unpivot_sees_every_pair(self, db):
        db.set("t", Struct([("a", 1), ("a", 2)]))
        result = bag_of(db.execute("SELECT VALUE [n, v] FROM UNPIVOT t AS v AT n"))
        assert sorted(result) == [["a", 1], ["a", 2]]

    def test_select_star_keeps_duplicates(self, db):
        db.set("t", [Struct([("a", 1), ("a", 2)])])
        result = bag_of(db.execute("SELECT * FROM t AS r"))
        assert result[0].get_all("a") == [1, 2]


class TestDegenerateQueries:
    def test_empty_collection_everything(self, db):
        db.set("empty", [])
        assert bag_of(db.execute("SELECT VALUE x FROM empty AS x")) == []
        assert bag_of(db.execute("SELECT VALUE x FROM empty AS x ORDER BY x")) == []
        assert db.execute("PIVOT r.v AT r.k FROM empty AS r") == Struct()

    def test_where_false_short_circuits_groups(self, db):
        db.set("t", [{"k": 1}])
        result = bag_of(
            db.execute("SELECT r.k FROM t AS r WHERE FALSE GROUP BY r.k")
        )
        assert result == []

    def test_limit_zero(self, db):
        assert bag_of(db.execute("SELECT VALUE v FROM [1, 2] AS v LIMIT 0")) == []

    def test_offset_beyond_end(self, db):
        assert bag_of(db.execute("SELECT VALUE v FROM [1] AS v OFFSET 10")) == []

    def test_deep_nesting_depth(self, db):
        # 30 levels of nested arrays navigate fine.
        value = 7
        for __ in range(30):
            value = [value]
        db.set("deep", [value])
        path = "r" + "[0]" * 30
        assert bag_of(db.execute(f"SELECT VALUE {path} FROM deep AS r")) == [7]

    def test_self_join_same_collection(self, db):
        db.set("t", [1, 2])
        result = bag_of(db.execute("SELECT VALUE [a, b] FROM t AS a, t AS b"))
        assert len(result) == 4


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT VALUE",
            "FROM t AS x",          # FROM-first without SELECT
            "SELECT VALUE 1 FROM",  # missing FROM item
            "SELECT VALUE 1 GROUP 2",
            "PIVOT a FROM t AS t",  # missing AT
            "SELECT VALUE {1: }",
            "SELECT VALUE [1, ]",
            "SELECT VALUE CASE END",
        ],
    )
    def test_rejected(self, db, bad):
        with pytest.raises(ParseError):
            db.execute(bad)

    def test_good_error_for_missing_alias(self, db):
        with pytest.raises(ParseError) as info:
            db.execute("SELECT VALUE 1 FROM [1] + [2]")
        assert "alias" in str(info.value)


class TestResultShapes:
    def test_bag_vs_array_vs_tuple_vs_scalar(self, db):
        db.set("t", [{"k": "a", "v": 1}])
        assert isinstance(db.execute("SELECT VALUE r FROM t AS r"), Bag)
        assert isinstance(
            db.execute("SELECT VALUE r FROM t AS r ORDER BY r.k"), list
        )
        assert isinstance(db.execute("PIVOT r.v AT r.k FROM t AS r"), Struct)
        assert db.execute("1 + 1") == 2
