"""The abstract interpreter: type flow over the Core AST.

Re-runs the evaluator's semantics over the :mod:`repro.analysis.lattice`
instead of over values: every expression gets an :class:`AType`
over-approximating the set of value categories permissive-mode
evaluation can produce.  The transfer functions mirror
:mod:`repro.functions.operators` and :mod:`repro.core.evaluator`
precisely — e.g. AND/OR/NOT can only yield ``boolean``/``null``
(``_to_truth`` folds a permissive type error into unknown), ``/`` may
yield MISSING on a zero divisor, struct constructors drop
always-MISSING attributes, and a grouping replaces the block scope.

Findings:

* ``SQLPP101`` always-missing: navigation that provably falls off a
  closed tuple;
* ``SQLPP102`` comparison-type-mismatch: operands in provably disjoint
  categories;
* ``SQLPP103`` aggregate-non-collection;
* ``SQLPP104`` order-by-never-comparable: a sort key that is always
  NULL/MISSING.

Soundness is inclusion, so every transfer function may err only toward
*more* categories; the hypothesis property test in ``tests/analysis``
checks the contract against the real evaluator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis import lattice
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lattice import (
    ABSENT_CATEGORIES,
    ARRAY,
    BAG,
    BOOLEAN,
    BOOLEAN_T,
    BOTTOM,
    COLLECTION_CATEGORIES,
    EQUALITY_CATEGORIES,
    MISSING_CAT,
    MISSING_T,
    NULL,
    NULL_T,
    NUMBER,
    ORDERED_CATEGORIES,
    STRING,
    TOP,
    TUPLE,
    AType,
    array_of,
    bag_of,
    element_of,
    infer_literal,
    join,
    join_all,
    narrow,
    scalar,
    tuple_of,
    widen,
)
from repro.analysis.rules import make
from repro.config import EvalConfig
from repro.syntax import ast

_Env = Dict[str, AType]

#: Success-category table for builtins whose result category is fixed.
#: The envelope (NULL/MISSING propagation and permissive type errors)
#: is added uniformly in :meth:`TypeFlow._infer_call`.
_CALL_RESULTS: Dict[str, Tuple[str, ...]] = {
    "ABS": (NUMBER,),
    "CEIL": (NUMBER,),
    "FLOOR": (NUMBER,),
    "ROUND": (NUMBER,),
    "TRUNC": (NUMBER,),
    "SIGN": (NUMBER,),
    "SQRT": (NUMBER,),
    "POWER": (NUMBER,),
    "MOD": (NUMBER,),
    "EXP": (NUMBER,),
    "LN": (NUMBER,),
    "LOG10": (NUMBER,),
    "PI": (NUMBER,),
    "CHAR_LENGTH": (NUMBER,),
    "POSITION": (NUMBER,),
    "ARRAY_LENGTH": (NUMBER,),
    "COLL_COUNT": (NUMBER,),
    "COLL_COUNT_DISTINCT": (NUMBER,),
    "COLL_SUM": (NUMBER,),
    "COLL_AVG": (NUMBER,),
    "COLL_STDDEV": (NUMBER,),
    "COLL_VARIANCE": (NUMBER,),
    "LOWER": (STRING,),
    "UPPER": (STRING,),
    "SUBSTRING": (STRING,),
    "TRIM": (STRING,),
    "LTRIM": (STRING,),
    "RTRIM": (STRING,),
    "REPLACE": (STRING,),
    "TO_STRING": (STRING,),
    "CONCAT": (STRING,),
    "REPEAT": (STRING,),
    "TYPEOF": (STRING,),
    "CONTAINS": (BOOLEAN,),
    "STARTS_WITH": (BOOLEAN,),
    "ENDS_WITH": (BOOLEAN,),
    "ARRAY_CONTAINS": (BOOLEAN,),
    "COLL_EVERY": (BOOLEAN,),
    "COLL_SOME": (BOOLEAN,),
    "SPLIT": (ARRAY,),
    "RANGE": (ARRAY,),
    "ARRAY_CONCAT": (ARRAY,),
    "ARRAY_DISTINCT": (ARRAY,),
    "ARRAY_FLATTEN": (ARRAY,),
    "ARRAY_SLICE": (ARRAY,),
    "ARRAY_SORT": (ARRAY,),
    "COLL_ARRAY_AGG": (ARRAY,),
    "TO_ARRAY": (ARRAY,),
    "ATTRIBUTE_NAMES": (ARRAY,),
    "TO_BAG": (BAG,),
    "BAG": (BAG,),
    "TUPLE_UNION": (TUPLE,),
}


class TypeFlow:
    """Abstract interpretation of one Core query."""

    def __init__(
        self,
        config: Optional[EvalConfig] = None,
        catalog_types: Optional[Dict[str, AType]] = None,
    ) -> None:
        self.config = config if config is not None else EvalConfig()
        self._catalog: Dict[str, AType] = (
            dict(catalog_types) if catalog_types else {}
        )
        self.diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------------
    # Queries and blocks
    # ------------------------------------------------------------------

    def check_query(
        self, query: ast.Query, env: Optional[_Env] = None
    ) -> AType:
        env = dict(env) if env else {}
        element, block_env, shaped = self._flow_body(query.body, env)
        order_env = dict(env)
        order_env.update(block_env)
        if (
            shaped
            and element.only(TUPLE)
            and element.attrs is not None
            and not element.open
        ):
            # Mirror the evaluator's sort environment: ORDER BY keys see
            # the output element's attributes overlaid on the row env.
            for name, attr_type in element.attrs:
                if name in order_env:
                    order_env[name] = join(order_env[name], attr_type)
                else:
                    order_env[name] = attr_type
        for item in query.order_by:
            key_type = self.infer(item.expr, order_env)
            if key_type.is_always_absent():
                self.diagnostics.append(
                    make(
                        "SQLPP104",
                        "ORDER BY key is always "
                        f"{key_type.describe().upper()}; it cannot "
                        "order the result",
                        line=item.line,
                        column=item.column,
                    )
                )
        if query.limit is not None:
            self.infer(query.limit, env)
        if query.offset is not None:
            self.infer(query.offset, env)
        if not shaped:
            # PIVOT blocks and bare-expression bodies produce a single
            # value, not a stream.
            return element
        if query.order_by:
            return array_of(element)
        return bag_of(element)

    def _flow_body(
        self, body: ast.Node, env: _Env
    ) -> Tuple[AType, _Env, bool]:
        """``(element_or_value_type, sort_env, is_stream)``."""
        if isinstance(body, ast.QueryBlock):
            return self._flow_block(body, env)
        if isinstance(body, ast.SetOp):
            left, __, left_stream = self._flow_body(body.left, env)
            right, __, right_stream = self._flow_body(body.right, env)
            if left_stream and right_stream:
                return join(left, right), {}, True
            return TOP, {}, True
        if isinstance(body, ast.Query):
            return element_of(self.check_query(body, env)), {}, True
        return self.infer(body, env), {}, False

    def _flow_block(
        self, block: ast.QueryBlock, outer_env: _Env
    ) -> Tuple[AType, _Env, bool]:
        env = dict(outer_env)
        local_names: List[str] = []

        if block.from_ is not None:
            for item in block.from_:
                self._flow_from(item, env, local_names)
        for let in block.lets:
            env[let.name] = self.infer(let.expr, env)
            local_names.append(let.name)
        if block.where is not None:
            self.infer(block.where, env)

        if block.group_by is not None:
            key_types: List[Tuple[str, AType]] = []
            for key in block.group_by.keys:
                key_type = self.infer(key.expr, env)
                if block.group_by.mode != "simple":
                    # ROLLUP/CUBE/GROUPING SETS: a key not in the
                    # active set evaluates to NULL for that group.
                    key_type = widen(key_type, NULL)
                key_types.append((key.alias, key_type))
            group_element = tuple_of(
                sorted((name, env.get(name, TOP)) for name in set(local_names)),
                open=False,
            )
            env = dict(outer_env)
            for alias, key_type in key_types:
                env[alias] = key_type
            if block.group_by.group_as is not None:
                env[block.group_by.group_as] = bag_of(group_element)

        if block.having is not None:
            self.infer(block.having, env)

        select = block.select
        if isinstance(select, ast.SelectValue):
            return self.infer(select.expr, env), env, True
        if isinstance(select, ast.SelectList):
            attrs: List[Tuple[str, AType]] = []
            known = True
            for item in select.items:
                item_type = self.infer(item.expr, env)
                if item.star or item.alias is None:
                    known = False
                else:
                    attrs.append((item.alias, item_type))
            return tuple_of(sorted(attrs) if known else None), env, True
        if isinstance(select, ast.SelectStar):
            return tuple_of(None), env, True
        if isinstance(select, ast.PivotClause):
            self.infer(select.value, env)
            self.infer(select.at, env)
            return TOP, env, False
        return TOP, env, True

    def _flow_from(
        self, item: ast.FromItem, env: _Env, local_names: List[str]
    ) -> List[str]:
        """Flow one FROM item; returns the names it binds."""
        bound: List[str] = []
        if isinstance(item, ast.FromCollection):
            source = self.infer(item.expr, env)
            parts: List[AType] = []
            if source.cats & COLLECTION_CATEGORIES:
                parts.append(element_of(source))
            value_cats = (
                source.cats - COLLECTION_CATEGORIES - ABSENT_CATEGORIES
            )
            if value_cats:
                # Permissive mode ranges over a non-collection as a
                # singleton of itself (NULL/MISSING yield no bindings).
                parts.append(narrow(source, ARRAY, BAG, NULL, MISSING_CAT))
            env[item.alias] = join_all(parts)
            bound.append(item.alias)
            if item.at_alias is not None:
                # AT over an array is the position; over a bag it is
                # MISSING.
                env[item.at_alias] = scalar(NUMBER, MISSING_CAT)
                bound.append(item.at_alias)
        elif isinstance(item, ast.FromUnpivot):
            source = self.infer(item.expr, env)
            parts = []
            if TUPLE in source.cats:
                if source.attrs is not None and not source.open:
                    parts.append(
                        join_all(
                            narrow(attr_type, MISSING_CAT)
                            for __, attr_type in source.attrs
                        )
                    )
                else:
                    parts.append(TOP)
            value_cats = source.cats - {TUPLE} - ABSENT_CATEGORIES
            if value_cats:
                # A non-tuple unpivots as the singleton {_1: value}.
                parts.append(narrow(source, TUPLE, NULL, MISSING_CAT))
            env[item.value_alias] = join_all(parts)
            env[item.at_alias] = scalar(STRING)
            bound.extend([item.value_alias, item.at_alias])
        elif isinstance(item, ast.FromJoin):
            bound.extend(self._flow_from(item.left, env, local_names))
            right_names = self._flow_from(item.right, env, local_names)
            if item.kind == "LEFT":
                # An unmatched left row pads the right side with NULL.
                for name in right_names:
                    env[name] = widen(env[name], NULL)
            bound.extend(right_names)
            if item.on is not None:
                self.infer(item.on, env)
        local_names.extend(bound)
        return bound

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def infer(self, node: ast.Expr, env: _Env) -> AType:
        if isinstance(node, ast.Literal):
            return infer_literal(node.value)
        if isinstance(node, ast.VarRef):
            if node.name in env:
                return env[node.name]
            return self._catalog.get(node.name, TOP)
        if isinstance(node, ast.Path):
            return self._infer_path(node, env)
        if isinstance(node, ast.Index):
            return self._infer_index(node, env)
        if isinstance(node, ast.PathWildcard):
            self.infer(node.base, env)
            for step in node.steps:
                if step.index is not None:
                    self.infer(step.index, env)
            return array_of(None)
        if isinstance(node, ast.StructLit):
            return self._infer_struct(node, env)
        if isinstance(node, ast.ArrayLit):
            return array_of(self._element_join(node.items, env))
        if isinstance(node, ast.BagLit):
            return bag_of(self._element_join(node.items, env))
        if isinstance(node, ast.Unary):
            return self._infer_unary(node, env)
        if isinstance(node, ast.Binary):
            return self._infer_binary(node, env)
        if isinstance(node, ast.IsPredicate):
            self.infer(node.operand, env)
            return BOOLEAN_T
        if isinstance(node, ast.Like):
            self.infer(node.operand, env)
            self.infer(node.pattern, env)
            if node.escape is not None:
                self.infer(node.escape, env)
            return scalar(BOOLEAN, NULL, MISSING_CAT)
        if isinstance(node, ast.Between):
            self.infer(node.operand, env)
            self.infer(node.low, env)
            self.infer(node.high, env)
            # Desugars to AND of comparisons; AND folds absence and
            # permissive type errors into unknown (NULL).
            return scalar(BOOLEAN, NULL)
        if isinstance(node, ast.InPredicate):
            self.infer(node.operand, env)
            self.infer(node.collection, env)
            if node.negated:
                return scalar(BOOLEAN, NULL)
            return scalar(BOOLEAN, NULL, MISSING_CAT)
        if isinstance(node, ast.Exists):
            operand = self.infer(node.operand, env)
            result = BOOLEAN_T
            if operand.cats - COLLECTION_CATEGORIES - ABSENT_CATEGORIES:
                result = widen(result, MISSING_CAT)
            return result
        if isinstance(node, ast.CaseExpr):
            return self._infer_case(node, env)
        if isinstance(node, ast.FunctionCall):
            return self._infer_call(node, env)
        if isinstance(node, ast.WindowCall):
            for arg in node.call.args:
                self.infer(arg, env)
            for expr in node.spec.partition_by:
                self.infer(expr, env)
            for item in node.spec.order_by:
                self.infer(item.expr, env)
            return TOP
        if isinstance(node, ast.SubqueryExpr):
            return self.check_query(node.query, env)
        if isinstance(node, ast.CoerceSubquery):
            self.check_query(node.query, env)
            return TOP
        if isinstance(node, ast.CastExpr):
            return self._infer_cast(node, env)
        if isinstance(node, ast.Parameter):
            return TOP
        return TOP

    # -- navigation ---------------------------------------------------

    def _infer_path(self, node: ast.Path, env: _Env) -> AType:
        whole = self._dotted_catalog_type(node, env)
        if whole is not None:
            return whole
        base = self._infer_path_base(node, env)
        parts: List[AType] = []
        if TUPLE in base.cats:
            if base.attrs is not None:
                attr_type = base.attr_map().get(node.attr)
                if attr_type is not None:
                    parts.append(attr_type)
                elif base.open:
                    parts.append(TOP)
                else:
                    # Provably falls off a closed tuple.
                    parts.append(MISSING_T)
            else:
                parts.append(TOP)
        if NULL in base.cats:
            parts.append(NULL_T)
        if MISSING_CAT in base.cats:
            parts.append(MISSING_T)
        if base.cats - {TUPLE} - ABSENT_CATEGORIES:
            # Navigating a non-tuple value: MISSING in *both* typing
            # modes (absent data, not a type error).
            parts.append(MISSING_T)
        result = join_all(parts) if parts else BOTTOM
        if result.is_always_missing() and not base.is_always_absent():
            self.diagnostics.append(
                make(
                    "SQLPP101",
                    f"navigation .{node.attr} always produces MISSING",
                    line=node.line,
                    column=node.column,
                    hint="the closed tuple shape here has no attribute "
                    f"{node.attr!r}",
                )
            )
        return result

    def _dotted_catalog_type(
        self, node: ast.Path, env: _Env
    ) -> Optional[AType]:
        """The stored type when the whole path spells a dotted catalog
        name (``hr.emp`` stored as one name), else None."""
        chain = [node.attr]
        current: ast.Expr = node.base
        while isinstance(current, ast.Path):
            chain.append(current.attr)
            current = current.base
        if isinstance(current, ast.VarRef) and current.name not in env:
            chain.append(current.name)
            chain.reverse()
            return self._catalog.get(".".join(chain))
        return None

    def _infer_path_base(self, node: ast.Path, env: _Env) -> AType:
        """The base type of a navigation, including the evaluator's
        dotted-catalog-name rescue (``hr.emp`` stored as one name)."""
        chain: List[str] = []
        current: ast.Expr = node.base
        while isinstance(current, ast.Path):
            chain.append(current.attr)
            current = current.base
        if isinstance(current, ast.VarRef) and current.name not in env:
            chain.append(current.name)
            chain.reverse()
            dotted = ".".join(chain)
            if dotted in self._catalog:
                return self._catalog[dotted]
        return self.infer(node.base, env)

    def _infer_index(self, node: ast.Index, env: _Env) -> AType:
        base = self.infer(node.base, env)
        self.infer(node.index, env)
        if TUPLE in base.cats:
            return TOP
        parts: List[AType] = []
        if ARRAY in base.cats or BAG in base.cats:
            parts.append(element_of(base))
        if NULL in base.cats:
            parts.append(NULL_T)
        # Out-of-bounds, non-integer index, or a non-indexable base:
        # MISSING (permissive) / raise (strict).
        parts.append(MISSING_T)
        return join_all(parts)

    # -- constructors -------------------------------------------------

    def _infer_struct(self, node: ast.StructLit, env: _Env) -> AType:
        attrs: List[Tuple[str, AType]] = []
        literal_keys = True
        for field in node.fields:
            value_type = self.infer(field.value, env)
            key = field.key
            if isinstance(key, ast.Literal) and isinstance(key.value, str):
                attrs.append((key.value, value_type))
            else:
                self.infer(key, env)
                literal_keys = False
        if not literal_keys:
            return tuple_of(None)
        # Later duplicates win at runtime; mirror that here.
        merged: Dict[str, AType] = {}
        for name, value_type in attrs:
            merged[name] = value_type
        return tuple_of(sorted(merged.items()), open=False)

    def _element_join(
        self, items: List[ast.Expr], env: _Env
    ) -> Optional[AType]:
        # Constructors drop MISSING elements.
        joined = join_all(
            narrow(self.infer(item, env), MISSING_CAT) for item in items
        )
        return joined if items else None

    # -- operators ----------------------------------------------------

    def _infer_unary(self, node: ast.Unary, env: _Env) -> AType:
        operand = self.infer(node.operand, env)
        if node.op == "NOT":
            # _to_truth folds non-booleans and MISSING into unknown.
            return scalar(BOOLEAN, NULL)
        cats = set()
        if NUMBER in operand.cats:
            cats.add(NUMBER)
        if NULL in operand.cats:
            cats.add(NULL)
        if MISSING_CAT in operand.cats or (
            operand.cats - {NUMBER} - ABSENT_CATEGORIES
        ):
            cats.add(MISSING_CAT)
        return scalar(*cats) if cats else BOTTOM

    def _infer_binary(self, node: ast.Binary, env: _Env) -> AType:
        left = self.infer(node.left, env)
        right = self.infer(node.right, env)
        op = node.op.upper()
        if op in ("AND", "OR"):
            return scalar(BOOLEAN, NULL)
        if op in ("+", "-", "*", "/", "%"):
            return self._arith(left, right, divides=op in ("/", "%"))
        if op == "||":
            return self._concat(left, right)
        if op in ("=", "!=", "<>"):
            return self._equality(node, left, right)
        if op in ("<", "<=", ">", ">="):
            return self._ordering(node, left, right)
        return TOP

    def _arith(self, left: AType, right: AType, divides: bool) -> AType:
        cats = set()
        both_number = NUMBER in left.cats and NUMBER in right.cats
        if both_number:
            cats.add(NUMBER)
        if MISSING_CAT in left.cats or MISSING_CAT in right.cats:
            cats.add(MISSING_CAT)
        if NULL in left.cats or NULL in right.cats:
            cats.add(NULL)
        non_number = (left.cats - {NUMBER} - ABSENT_CATEGORIES) or (
            right.cats - {NUMBER} - ABSENT_CATEGORIES
        )
        if non_number or (divides and both_number):
            # Type mismatch, or division by zero: MISSING permissive.
            cats.add(MISSING_CAT)
        return scalar(*cats) if cats else BOTTOM

    def _concat(self, left: AType, right: AType) -> AType:
        cats = set()
        if STRING in left.cats and STRING in right.cats:
            cats.add(STRING)
        if MISSING_CAT in left.cats or MISSING_CAT in right.cats:
            cats.add(MISSING_CAT)
        if NULL in left.cats or NULL in right.cats:
            cats.add(NULL)
        if (left.cats - {STRING} - ABSENT_CATEGORIES) or (
            right.cats - {STRING} - ABSENT_CATEGORIES
        ):
            cats.add(MISSING_CAT)
        return scalar(*cats) if cats else BOTTOM

    def _equality(
        self, node: ast.Binary, left: AType, right: AType
    ) -> AType:
        left_kinds = left.cats & EQUALITY_CATEGORIES
        right_kinds = right.cats & EQUALITY_CATEGORIES
        cats = set()
        if left_kinds & right_kinds:
            cats.add(BOOLEAN)
        if MISSING_CAT in left.cats or MISSING_CAT in right.cats:
            cats.add(MISSING_CAT)
        if NULL in left.cats or NULL in right.cats:
            cats.add(NULL)
        # A kind mismatch is a type error (MISSING in permissive mode);
        # it is ruled out only when both sides are one identical kind.
        if not (left_kinds == right_kinds and len(left_kinds) == 1):
            cats.add(MISSING_CAT)
        if not (left_kinds & right_kinds) and left_kinds and right_kinds:
            self.diagnostics.append(
                make(
                    "SQLPP102",
                    f"{node.op} compares disjoint types "
                    f"({left.describe()} vs {right.describe()}); it can "
                    "never compare actual values",
                    line=node.line,
                    column=node.column,
                )
            )
        return scalar(*cats) if cats else BOTTOM

    def _ordering(
        self, node: ast.Binary, left: AType, right: AType
    ) -> AType:
        left_kinds = left.cats & ORDERED_CATEGORIES
        right_kinds = right.cats & ORDERED_CATEGORIES
        cats = set()
        if left_kinds & right_kinds:
            cats.add(BOOLEAN)
        if MISSING_CAT in left.cats or MISSING_CAT in right.cats:
            cats.add(MISSING_CAT)
        if NULL in left.cats or NULL in right.cats:
            cats.add(NULL)
        left_values = left.cats - ABSENT_CATEGORIES
        right_values = right.cats - ABSENT_CATEGORIES
        # A type error (no common order) is ruled out only when both
        # sides can only be one identical ordered kind.
        if not (
            left_values == right_values
            and len(left_values) == 1
            and left_values <= ORDERED_CATEGORIES
        ):
            cats.add(MISSING_CAT)
        if (
            left_values
            and right_values
            and not (left_kinds & right_kinds)
        ):
            self.diagnostics.append(
                make(
                    "SQLPP102",
                    f"{node.op} compares values with no common order "
                    f"({left.describe()} vs {right.describe()})",
                    line=node.line,
                    column=node.column,
                )
            )
        return scalar(*cats) if cats else BOTTOM

    # -- conditionals, calls, casts ----------------------------------

    def _infer_case(self, node: ast.CaseExpr, env: _Env) -> AType:
        if node.operand is not None:
            self.infer(node.operand, env)
        branches: List[AType] = []
        for when, then in node.whens:
            self.infer(when, env)
            branches.append(self.infer(then, env))
        if node.else_ is not None:
            branches.append(self.infer(node.else_, env))
        else:
            branches.append(NULL_T)
        result = join_all(branches)
        if not self.config.sql_compat:
            # Core semantics: a MISSING operand/condition makes the
            # whole CASE MISSING (compat treats it as a non-match).
            result = widen(result, MISSING_CAT)
        return result

    def _infer_call(self, node: ast.FunctionCall, env: _Env) -> AType:
        from repro.functions.registry import REGISTRY

        arg_types = [self.infer(arg, env) for arg in node.args]
        name = node.name.upper()
        definition = REGISTRY.lookup(name)
        if (
            definition is not None
            and definition.is_aggregate
            and arg_types
        ):
            operand = arg_types[0]
            if operand.cats and not (
                operand.cats & (COLLECTION_CATEGORIES | ABSENT_CATEGORIES)
            ):
                self.diagnostics.append(
                    make(
                        "SQLPP103",
                        f"{definition.name} applied to a value that is "
                        f"never a collection ({operand.describe()})",
                        line=node.line,
                        column=node.column,
                    )
                )
        if name in ("COALESCE", "IFNULL", "IFMISSING", "IFMISSINGORNULL"):
            return widen(join_all(arg_types), NULL, MISSING_CAT)
        base = _CALL_RESULTS.get(name)
        if base is None:
            return TOP
        # The envelope: absence propagation plus permissive type errors.
        return scalar(*base, NULL, MISSING_CAT)

    def _infer_cast(self, node: ast.CastExpr, env: _Env) -> AType:
        self.infer(node.operand, env)
        target = node.type_name.lower()
        if target in ("int", "integer", "bigint", "smallint", "float",
                      "double", "real", "decimal", "numeric", "number"):
            return scalar(NUMBER, NULL, MISSING_CAT)
        if target in ("string", "varchar", "char", "text"):
            return scalar(STRING, NULL, MISSING_CAT)
        if target in ("bool", "boolean"):
            return scalar(BOOLEAN, NULL, MISSING_CAT)
        return TOP


def infer_expression(
    source: str,
    env: Optional[Dict[str, AType]] = None,
    config: Optional[EvalConfig] = None,
    catalog_types: Optional[Dict[str, AType]] = None,
) -> Tuple[AType, List[Diagnostic]]:
    """Infer the abstract type of a standalone expression.

    The entry point the soundness property test drives: parse
    ``source`` as an expression and run the abstract interpreter over
    it.  Returns the inferred type and any diagnostics the flow pass
    emitted along the way.
    """
    from repro.syntax.parser import parse_expression

    flow = TypeFlow(config=config, catalog_types=catalog_types)
    result = flow.infer(parse_expression(source), dict(env) if env else {})
    return result, flow.diagnostics


# Re-exported for the property test's runtime comparison.
category_of = lattice.category_of
