"""A strict SQL-92 subset engine over flat, schemaful tables.

This is the world SQL++ relaxes: tables are bags of homogeneous tuples
of scalars (Codd's normal form, the paper's reference [17]); every table
has a declared column list; a query referring to a column no table
declares **fails at compile time** (Section II: "Unlike SQL, where a
query that refers to a non-existent attribute name is expected to fail
during compilation...").

The engine reuses the SQL++ parser — SQL's grammar is a subset — and
implements its own strict binder/evaluator:

* FROM items must be table names (no correlation, no nested data);
* unqualified column names resolve against the declared schemas,
  ambiguous ones are compile-time errors;
* only scalar values exist; NULL follows SQL 3-valued logic;
* aggregates, GROUP BY, HAVING, ORDER BY, LIMIT/OFFSET, and
  INNER/LEFT/CROSS joins are supported.

Restrictions are enforced with :class:`SQL92Error` so the benchmark
harness (and the tests) can show exactly where classic SQL gives up on
the paper's workloads.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.datamodel.equality import group_key
from repro.datamodel.ordering import sort_key
from repro.errors import SQLPPError
from repro.functions.aggregates import SQL_AGGREGATES
from repro.functions.registry import REGISTRY
from repro.config import EvalConfig
from repro.syntax import ast
from repro.syntax.parser import parse

_SCALARS = (bool, int, float, str)


class SQL92Error(SQLPPError):
    """A violation of the strict SQL-92 subset."""


@dataclasses.dataclass
class _Table:
    columns: List[str]
    rows: List[Dict[str, Any]]


class SQL92Database:
    """Flat, schemaful tables with a strict SQL evaluator."""

    def __init__(self) -> None:
        self._tables: Dict[str, _Table] = {}
        # Strict config: the few shared scalar functions raise on type
        # errors instead of producing MISSING.
        self._config = EvalConfig(typing_mode="strict", sql_compat=True)

    # -- DDL / DML -----------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str]) -> None:
        if name in self._tables:
            raise SQL92Error(f"table {name} already exists")
        self._tables[name] = _Table(columns=list(columns), rows=[])

    def insert(self, name: str, rows: Sequence[Dict[str, Any]]) -> None:
        table = self._table(name)
        for row in rows:
            flat: Dict[str, Any] = {}
            for column in table.columns:
                value = row.get(column)
                if value is not None and not isinstance(value, _SCALARS):
                    raise SQL92Error(
                        f"column {column} of {name} only holds scalars; "
                        f"got {type(value).__name__}"
                    )
                flat[column] = value
            extra = set(row) - set(table.columns)
            if extra:
                raise SQL92Error(
                    f"row has undeclared columns for {name}: {sorted(extra)}"
                )
            table.rows.append(flat)

    def _table(self, name: str) -> _Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SQL92Error(f"unknown table {name}") from None

    # -- queries ----------------------------------------------------------------

    def execute(self, sql: str) -> List[Dict[str, Any]]:
        """Run a SQL query, returning a list of plain dict rows."""
        query = parse(sql)
        return _Executor(self).run(query)


class _Executor:
    """Compile-then-evaluate for one query."""

    def __init__(self, db: SQL92Database):
        self._db = db

    def run(self, query: ast.Query) -> List[Dict[str, Any]]:
        body = query.body
        if not isinstance(body, ast.QueryBlock):
            raise SQL92Error("only SELECT query blocks are supported")
        rows, scope = self._from(body)
        if body.lets:
            raise SQL92Error("LET is not SQL-92")
        if body.where is not None:
            predicate = self._compile(body.where, scope)
            rows = [row for row in rows if predicate(row) is True]
        select = body.select
        if not isinstance(select, (ast.SelectList, ast.SelectStar)):
            raise SQL92Error("SELECT VALUE / PIVOT are not SQL-92")

        group_keys: List[Tuple[str, Callable]] = []
        grouped: Optional[List[Tuple[Dict[str, Any], List[Dict]]]] = None
        if body.group_by is not None:
            if body.group_by.mode != "simple" or body.group_by.group_as:
                raise SQL92Error("only plain GROUP BY is supported")
            for key in body.group_by.keys:
                group_keys.append((key.alias, self._compile(key.expr, scope)))
            grouped = self._group(rows, group_keys)
        elif self._has_aggregate(select) or (
            body.having is not None
        ):
            grouped = [({}, rows)]

        if grouped is not None:
            output = []
            for key_values, members in grouped:
                if body.having is not None:
                    verdict = self._compile_grouped(
                        body.having, scope, group_keys, key_values
                    )(members)
                    if verdict is not True:
                        continue
                output.append((key_values, members))
            result_rows = [
                self._project_group(select, scope, group_keys, key_values, members)
                for key_values, members in output
            ]
        else:
            result_rows = [self._project_row(select, scope, row) for row in rows]

        if isinstance(select, (ast.SelectList, ast.SelectStar)) and select.distinct:
            seen = set()
            deduped = []
            for row in result_rows:
                key = tuple(sorted((k, group_key(v)) for k, v in row.items()))
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            result_rows = deduped

        if query.order_by:
            result_rows = self._order(result_rows, query.order_by)
        if query.offset is not None:
            result_rows = result_rows[_int_literal(query.offset, "OFFSET") :]
        if query.limit is not None:
            result_rows = result_rows[: _int_literal(query.limit, "LIMIT")]
        return result_rows

    # -- FROM -----------------------------------------------------------------

    def _from(self, body: ast.QueryBlock):
        if not body.from_:
            raise SQL92Error("SQL-92 queries require a FROM clause")
        scope: Dict[str, List[str]] = {}
        rows: List[Dict[str, Any]] = [dict()]
        for item in body.from_:
            rows = self._apply_item(item, rows, scope)
        return rows, scope

    def _apply_item(self, item: ast.FromItem, rows, scope):
        if isinstance(item, ast.FromJoin):
            left_rows = self._apply_item(item.left, rows, scope)
            if item.kind == "LEFT":
                return self._left_join(item, left_rows, scope)
            # Equality ON conditions use a hash join (what a real SQL
            # engine would pick); anything else falls back to the
            # nested-loop cross product + filter.
            hashed = self._try_hash_join(item, left_rows, scope, outer=False)
            if hashed is not None:
                return hashed
            joined = self._apply_item(item.right, left_rows, scope)
            if item.on is not None:
                predicate = self._compile(item.on, scope)
                joined = [row for row in joined if predicate(row) is True]
            return joined
        if not isinstance(item, ast.FromCollection) or item.at_alias:
            raise SQL92Error("FROM items must be plain tables")
        name = _table_name(item.expr)
        if name is None:
            raise SQL92Error(
                "FROM expressions (nested collections) are not SQL-92; "
                "normalise the data into tables"
            )
        table = self._db._table(name)
        alias = item.alias
        if alias in scope:
            raise SQL92Error(f"duplicate table alias {alias}")
        scope[alias] = table.columns
        return [
            {**outer, **{f"{alias}.{col}": row[col] for col in table.columns}}
            for outer in rows
            for row in table.rows
        ]

    def _left_join(self, item: ast.FromJoin, left_rows, scope):
        right = item.right
        if not isinstance(right, ast.FromCollection):
            raise SQL92Error("nested joins on the right are not supported")
        name = _table_name(right.expr)
        if name is None:
            raise SQL92Error("LEFT JOIN right side must be a table")
        table = self._db._table(name)
        alias = right.alias
        scope[alias] = table.columns
        hashed = self._try_hash_join(item, left_rows, scope, outer=True)
        if hashed is not None:
            return hashed
        predicate = self._compile(item.on, scope) if item.on is not None else None
        result = []
        for outer_row in left_rows:
            matched = False
            for row in table.rows:
                combined = {
                    **outer_row,
                    **{f"{alias}.{col}": row[col] for col in table.columns},
                }
                if predicate is None or predicate(combined) is True:
                    matched = True
                    result.append(combined)
            if not matched:
                result.append(
                    {**outer_row, **{f"{alias}.{col}": None for col in table.columns}}
                )
        return result

    def _try_hash_join(self, item: ast.FromJoin, left_rows, scope, outer: bool):
        """Hash equi-join for ``ON left_col = right_col`` conditions.

        Returns None when the shape doesn't apply (non-equality ON, a
        non-table right side, or keys not split across the two sides),
        letting the caller fall back to the nested loop.
        """
        right = item.right
        if not isinstance(right, ast.FromCollection) or right.at_alias:
            return None
        name = _table_name(right.expr)
        if name is None or item.on is None:
            return None
        condition = item.on
        if not (isinstance(condition, ast.Binary) and condition.op == "="):
            return None

        table = self._db._table(name)
        alias = right.alias
        added_alias = alias not in scope
        if not added_alias and scope[alias] is not table.columns:
            raise SQL92Error(f"duplicate table alias {alias}")
        scope[alias] = table.columns

        def bail():
            # Let the nested-loop fallback register the alias itself.
            if added_alias:
                del scope[alias]
            return None

        def side_of(expr):
            """('right', column) | ('left', compiled fn) | None."""
            if isinstance(expr, ast.Path) and isinstance(expr.base, ast.VarRef):
                if expr.base.name == alias:
                    if expr.attr not in table.columns:
                        raise SQL92Error(
                            f"column {expr.attr} does not exist in table "
                            f"aliased {alias}"
                        )
                    return ("right", expr.attr)
            try:
                left_scope = {k: v for k, v in scope.items() if k != alias}
                return ("left", self._compile(expr, left_scope))
            except SQL92Error:
                return None

        first = side_of(condition.left)
        second = side_of(condition.right)
        if first is None or second is None or first[0] == second[0]:
            return bail()
        right_col = first[1] if first[0] == "right" else second[1]
        left_key = first[1] if first[0] == "left" else second[1]

        buckets: Dict[Any, List[Dict[str, Any]]] = {}
        for row in table.rows:
            key = row[right_col]
            if key is None:
                continue  # NULL never equi-joins
            buckets.setdefault(key, []).append(row)

        result = []
        null_pad = {f"{alias}.{col}": None for col in table.columns}
        for outer_row in left_rows:
            key = left_key(outer_row)
            matches = buckets.get(key, ()) if key is not None else ()
            for row in matches:
                result.append(
                    {
                        **outer_row,
                        **{f"{alias}.{col}": row[col] for col in table.columns},
                    }
                )
            if outer and not matches:
                result.append({**outer_row, **null_pad})
        return result

    # -- projection ---------------------------------------------------------------

    def _project_row(self, select, scope, row) -> Dict[str, Any]:
        if isinstance(select, ast.SelectStar):
            return {key.split(".", 1)[1]: value for key, value in row.items()}
        output: Dict[str, Any] = {}
        for position, sel_item in enumerate(select.items):
            if sel_item.star:
                raise SQL92Error("alias.* items are not supported")
            name = sel_item.alias or _implied_name(sel_item.expr, position)
            output[name] = self._compile(sel_item.expr, scope)(row)
        return output

    def _project_group(self, select, scope, group_keys, key_values, members):
        if isinstance(select, ast.SelectStar):
            raise SQL92Error("SELECT * is not valid with GROUP BY")
        output: Dict[str, Any] = {}
        for position, sel_item in enumerate(select.items):
            name = sel_item.alias or _implied_name(sel_item.expr, position)
            output[name] = self._compile_grouped(
                sel_item.expr, scope, group_keys, key_values
            )(members)
        return output

    def _group(self, rows, group_keys):
        groups: Dict[tuple, Tuple[Dict[str, Any], List[Dict]]] = {}
        order: List[tuple] = []
        for row in rows:
            values = {alias: fn(row) for alias, fn in group_keys}
            identity = tuple(group_key(values[alias]) for alias, __ in group_keys)
            if identity not in groups:
                groups[identity] = (values, [])
                order.append(identity)
            groups[identity][1].append(row)
        return [groups[identity] for identity in order]

    def _order(self, rows, order_items):
        """ORDER BY over output column names (SQL's sort-by-alias rule)."""
        indexed = list(range(len(rows)))
        for item in reversed(order_items):
            name = _order_name(item.expr)

            def key_of(position, name=name):
                value = rows[position].get(name)
                return (0 if value is None else 1, sort_key(value))

            indexed.sort(key=key_of, reverse=item.desc)
        return [rows[position] for position in indexed]

    # -- expression compilation -------------------------------------------------

    def _resolve_column(self, expr: ast.Expr, scope) -> str:
        if isinstance(expr, ast.Path) and isinstance(expr.base, ast.VarRef):
            alias = expr.base.name
            if alias not in scope:
                raise SQL92Error(f"unknown table alias {alias}")
            if expr.attr not in scope[alias]:
                raise SQL92Error(
                    f"column {expr.attr} does not exist in table aliased {alias}"
                )
            return f"{alias}.{expr.attr}"
        if isinstance(expr, ast.VarRef):
            candidates = [
                alias for alias, columns in scope.items() if expr.name in columns
            ]
            if not candidates:
                raise SQL92Error(f"unknown column {expr.name}")
            if len(candidates) > 1:
                raise SQL92Error(f"ambiguous column {expr.name}")
            return f"{candidates[0]}.{expr.name}"
        raise SQL92Error("nested navigation is not SQL-92")

    def _compile(self, expr: ast.Expr, scope) -> Callable[[Dict[str, Any]], Any]:
        """Compile an expression to a row → value function (strict)."""
        from repro.functions import operators as ops

        config = self._db._config
        if isinstance(expr, ast.Literal):
            if not (expr.value is None or isinstance(expr.value, _SCALARS)):
                raise SQL92Error("only scalar literals are SQL-92")
            value = expr.value
            return lambda row: value
        if isinstance(expr, (ast.VarRef, ast.Path)):
            column = self._resolve_column(expr, scope)
            return lambda row: row[column]
        if isinstance(expr, ast.Binary):
            left = self._compile(expr.left, scope)
            right = self._compile(expr.right, scope)
            op = expr.op
            if op == "AND":
                return lambda row: ops.logical_and(left(row), right(row), config)
            if op == "OR":
                return lambda row: ops.logical_or(left(row), right(row), config)
            if op == "=":
                return lambda row: ops.equals(left(row), right(row), config)
            if op == "!=":
                return lambda row: ops.not_equals(left(row), right(row), config)
            if op in ("<", "<=", ">", ">="):
                return lambda row: ops.compare(op, left(row), right(row), config)
            if op == "||":
                return lambda row: ops.concat(left(row), right(row), config)
            return lambda row: ops.arithmetic(op, left(row), right(row), config)
        if isinstance(expr, ast.Unary):
            operand = self._compile(expr.operand, scope)
            if expr.op == "NOT":
                return lambda row: ops.logical_not(operand(row), config)
            if expr.op == "-":
                return lambda row: ops.negate(operand(row), config)
            return lambda row: ops.unary_plus(operand(row), config)
        if isinstance(expr, ast.Like):
            operand = self._compile(expr.operand, scope)
            pattern = self._compile(expr.pattern, scope)
            negated = expr.negated
            return lambda row: (
                ops.logical_not(
                    ops.like(operand(row), pattern(row), None, config), config
                )
                if negated
                else ops.like(operand(row), pattern(row), None, config)
            )
        if isinstance(expr, ast.Between):
            operand = self._compile(expr.operand, scope)
            low = self._compile(expr.low, scope)
            high = self._compile(expr.high, scope)
            return lambda row: ops.logical_and(
                ops.compare(">=", operand(row), low(row), config),
                ops.compare("<=", operand(row), high(row), config),
                config,
            )
        if isinstance(expr, ast.InPredicate):
            if not isinstance(expr.collection, ast.ArrayLit):
                raise SQL92Error("IN requires a literal value list in this subset")
            operand = self._compile(expr.operand, scope)
            items = [self._compile(item, scope) for item in expr.collection.items]
            return lambda row: ops.in_collection(
                operand(row), [item(row) for item in items], config
            )
        if isinstance(expr, ast.IsPredicate):
            operand = self._compile(expr.operand, scope)
            kind = expr.kind
            negated = expr.negated
            if kind != "NULL":
                raise SQL92Error("only IS [NOT] NULL is SQL-92")
            return lambda row: (operand(row) is None) != negated
        if isinstance(expr, ast.CaseExpr):
            return self._compile_case(expr, scope)
        if isinstance(expr, ast.FunctionCall):
            if expr.name.upper() in SQL_AGGREGATES:
                raise SQL92Error(
                    f"aggregate {expr.name} outside SELECT/HAVING of a "
                    "grouped query"
                )
            definition = REGISTRY.lookup(expr.name)
            if definition is None or definition.is_aggregate:
                raise SQL92Error(f"unknown function {expr.name}")
            compiled = [self._compile(arg, scope) for arg in expr.args]
            return lambda row: definition.invoke(
                [fn(row) for fn in compiled], config
            )
        raise SQL92Error(
            f"{type(expr).__name__} expressions are not in the SQL-92 subset"
        )

    def _compile_case(self, expr: ast.CaseExpr, scope):
        from repro.functions import operators as ops

        config = self._db._config
        operand = (
            self._compile(expr.operand, scope) if expr.operand is not None else None
        )
        whens = [
            (self._compile(cond, scope), self._compile(result, scope))
            for cond, result in expr.whens
        ]
        else_fn = self._compile(expr.else_, scope) if expr.else_ is not None else None

        def evaluate(row):
            base = operand(row) if operand is not None else None
            for cond_fn, result_fn in whens:
                if operand is not None:
                    verdict = ops.equals(base, cond_fn(row), config)
                else:
                    verdict = cond_fn(row)
                if verdict is True:
                    return result_fn(row)
            return else_fn(row) if else_fn is not None else None

        return evaluate

    def _compile_grouped(self, expr: ast.Expr, scope, group_keys, key_values):
        """Compile a SELECT/HAVING expression of a grouped query into a
        members → value function."""
        from repro.syntax.printer import print_ast

        key_by_text = {}
        for alias, __ in group_keys:
            key_by_text[alias] = key_values.get(alias)

        if isinstance(expr, ast.FunctionCall) and expr.name.upper() in SQL_AGGREGATES:
            definition = REGISTRY.lookup(SQL_AGGREGATES[expr.name.upper()])
            assert definition is not None
            if expr.star:
                return lambda members: definition.invoke(
                    [[1] * len(members)], self._db._config
                )
            arg = self._compile(expr.args[0], scope)
            distinct = expr.distinct
            config = self._db._config

            def aggregate(members):
                values = [arg(row) for row in members]
                if distinct:
                    from repro.functions.operators import distinct_elements

                    values = distinct_elements(values)
                return definition.invoke([values], config)

            return aggregate

        # A group key expression (matched by alias or printed text).
        if isinstance(expr, (ast.VarRef, ast.Path)):
            text = print_ast(expr)
            for key_alias, key_fn in group_keys:
                if key_alias == text or (
                    isinstance(expr, ast.Path) and expr.attr == key_alias
                ):
                    value = key_values[key_alias]
                    return lambda members: value
            # Fall through to a first-member lookup only if it is a key.
            raise SQL92Error(
                f"{text} is neither a GROUP BY key nor inside an aggregate"
            )
        if isinstance(expr, ast.Literal):
            value = expr.value
            return lambda members: value
        if isinstance(expr, ast.Binary):
            left = self._compile_grouped(expr.left, scope, group_keys, key_values)
            right = self._compile_grouped(expr.right, scope, group_keys, key_values)
            from repro.functions import operators as ops

            config = self._db._config
            op = expr.op

            def combine(members):
                left_value, right_value = left(members), right(members)
                if op == "AND":
                    return ops.logical_and(left_value, right_value, config)
                if op == "OR":
                    return ops.logical_or(left_value, right_value, config)
                if op == "=":
                    return ops.equals(left_value, right_value, config)
                if op == "!=":
                    return ops.not_equals(left_value, right_value, config)
                if op in ("<", "<=", ">", ">="):
                    return ops.compare(op, left_value, right_value, config)
                if op == "||":
                    return ops.concat(left_value, right_value, config)
                return ops.arithmetic(op, left_value, right_value, config)

            return combine
        raise SQL92Error(
            f"{type(expr).__name__} is not supported in grouped output"
        )

    @staticmethod
    def _has_aggregate(select: ast.SelectClause) -> bool:
        if not isinstance(select, ast.SelectList):
            return False
        for item in select.items:
            for node in item.expr.walk():
                if (
                    isinstance(node, ast.FunctionCall)
                    and node.name.upper() in SQL_AGGREGATES
                ):
                    return True
        return False


def _table_name(expr: ast.Expr) -> Optional[str]:
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Path):
        base = _table_name(expr.base)
        if base is not None:
            return f"{base}.{expr.attr}"
    return None


def _implied_name(expr: ast.Expr, position: int) -> str:
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Path):
        return expr.attr
    return f"_{position + 1}"


def _order_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Path):
        return expr.attr
    raise SQL92Error("ORDER BY supports output column names in this subset")


def _int_literal(expr: ast.Expr, what: str) -> int:
    if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
        return expr.value
    raise SQL92Error(f"{what} requires an integer literal")
