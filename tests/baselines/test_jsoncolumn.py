"""The JSON-column ("bolt-on") baseline and its documented deficiencies."""

import pytest

from repro.baselines.jsoncolumn import (
    JsonColumnDatabase,
    JsonPathError,
    json_exists,
    json_query,
    json_value,
    parse_path,
)


class TestPathLanguage:
    def test_parse_steps(self):
        assert parse_path("$.a.b[0]") == ["a", "b", 0]
        assert parse_path("$") == []
        assert parse_path('$."odd name"') == ["odd name"]

    def test_invalid_paths(self):
        with pytest.raises(JsonPathError):
            parse_path("a.b")
        with pytest.raises(JsonPathError):
            parse_path("$..")


class TestExtraction:
    DOC = '{"a": {"b": [10, {"c": null}]}, "t": "x"}'

    def test_json_value_scalar(self):
        assert json_value(self.DOC, "$.t") == "x"
        assert json_value(self.DOC, "$.a.b[0]") == 10

    def test_json_value_non_scalar_is_null(self):
        assert json_value(self.DOC, "$.a") is None

    def test_json_query_fragment(self):
        assert json_query(self.DOC, "$.a.b[0]") == "10"
        assert json_query(self.DOC, "$.a.b") == "[10, {\"c\": null}]"

    def test_absent_path(self):
        assert json_value(self.DOC, "$.nope") is None
        assert json_exists(self.DOC, "$.nope") is False

    def test_null_and_absent_conflated(self):
        # The deficiency the paper's MISSING fixes: the bolt-on model
        # cannot distinguish a JSON null from an absent attribute.
        assert json_value(self.DOC, "$.a.b[1].c") is None
        assert json_value(self.DOC, "$.a.b[1].zzz") is None
        assert json_exists(self.DOC, "$.a.b[1].c") == json_exists(
            self.DOC, "$.a.b[1].zzz"
        )


class TestTables:
    @pytest.fixture
    def jdb(self):
        db = JsonColumnDatabase()
        db.create_table("docs")
        db.insert_documents(
            "docs",
            [
                {"name": "Bob", "projects": [{"name": "OLAP Security"},
                                             {"name": "OLTP Security"}]},
                {"name": "Susan", "projects": []},
            ],
        )
        return db

    def test_select_projects_paths(self, jdb):
        rows = jdb.select("docs", {"n": "$.name"})
        assert rows == [{"n": "Bob"}, {"n": "Susan"}]

    def test_select_with_where(self, jdb):
        rows = jdb.select("docs", {"n": "$.name"}, where=lambda r: r["n"] == "Bob")
        assert len(rows) == 1

    def test_explode_unnests(self, jdb):
        rows = jdb.explode(
            "docs", "$.projects", {"emp": "$.name"}, {"proj": "$.name"}
        )
        assert rows == [
            {"emp": "Bob", "proj": "OLAP Security"},
            {"emp": "Bob", "proj": "OLTP Security"},
        ]

    def test_explode_scalar_elements(self):
        db = JsonColumnDatabase()
        db.create_table("t")
        db.insert_documents("t", [{"xs": [1, 2]}])
        rows = db.explode("t", "$.xs", {}, {"x": "$"})
        assert rows == [{"x": 1}, {"x": 2}]

    def test_explode_with_filter(self, jdb):
        rows = jdb.explode(
            "docs",
            "$.projects",
            {"emp": "$.name"},
            {"proj": "$.name"},
            where=lambda r: "OLTP" in r["proj"],
        )
        assert len(rows) == 1

    def test_unknown_table(self, jdb):
        from repro.errors import SQLPPError

        with pytest.raises(SQLPPError):
            jdb.rows("nope")
