"""Optimizer parity over the full compatibility kit.

Acceptance bar for the physical planner (docs/PLANNER.md): on every
conformance case — every paper listing plus the extended and analytics
corpora — ``optimize=True`` must be observationally identical to
``optimize=False``: same result bag (or array, for ordered cases) or
the same error class.
"""

from __future__ import annotations

import pytest

from repro import errors
from repro.compat.corpus import all_cases
from repro.compat.runner import build_database
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag


def _outcome(db, case, optimize: bool):
    try:
        return ("value", db.execute(case.query, optimize=optimize))
    except errors.SQLPPError as exc:
        return ("error", type(exc).__name__)


@pytest.mark.parametrize(
    "case", all_cases(), ids=lambda case: case.case_id
)
def test_optimized_equals_reference(case):
    optimized = _outcome(build_database(case), case, optimize=True)
    reference = _outcome(build_database(case), case, optimize=False)
    assert optimized[0] == reference[0], (
        f"{case.case_id}: optimized → {optimized}, reference → {reference}"
    )
    if optimized[0] == "error":
        assert optimized[1] == reference[1]
        return
    left, right = optimized[1], reference[1]
    if case.ordered:
        assert deep_equals(left, right)
    else:
        left = Bag(list(left)) if isinstance(left, (list, Bag)) else left
        right = Bag(list(right)) if isinstance(right, (list, Bag)) else right
        assert deep_equals(left, right)
