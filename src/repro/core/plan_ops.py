"""Physical FROM-clause operators — the planner's target language.

The SQL++ Core defines ``FROM`` as left-correlated nested loops (paper,
Section III-A); that definition is a *specification*, not an execution
strategy.  This module provides the physical operators the planner
(:mod:`repro.core.planner`) compiles a Core FROM clause into:

* :class:`ScanOp` — enumerate one range/UNPIVOT item (reference
  semantics), optionally applying pushed-down filter conjuncts before
  the bindings enter any cross product;
* :class:`HashJoinOp` — an equi-join executed by hashing the right
  (build) side once and probing per left binding, with LEFT-join NULL
  padding and the Core rule that NULL/MISSING keys never match;
* :class:`MaterializeJoinOp` — a nested loop whose uncorrelated right
  side is materialized once instead of per left binding (exact
  reference semantics for arbitrary ``ON`` predicates);
* :class:`CorrelatedJoinOp` — the lateral fallback: the right side is
  re-enumerated under each left binding, exactly as the reference
  evaluator does, preserving the paper's left-correlation semantics.

Operators follow the Volcano (iterator) model: the primary interface is
:meth:`PlanOp.iter_bindings`, a generator yielding binding dicts one at
a time, so a downstream consumer (top-K heap, LIMIT, EXISTS) can stop
pulling and the whole pipeline stops producing.  Probe sides stream;
only what *must* be materialized is — the hash-join build table and the
materialize-once right side of an uncorrelated nested loop (both built
lazily, on the first probe-side row).  :meth:`PlanOp.bindings` remains
as the eager wrapper (``list(iter_bindings(...))``).

Every operator must be observationally equivalent to the reference
pipeline under permissive typing (the only mode the planner runs in);
the property tests ``tests/properties/test_planner_equivalence.py`` and
``tests/properties/test_streaming_equivalence.py`` enforce this on
generated workloads.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from repro.datamodel.equality import group_key
from repro.datamodel.values import Bag, LazyBag, MISSING, type_name
from repro.errors import TypeCheckError
from repro.syntax import ast

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.environment import Environment
    from repro.core.evaluator import Evaluator

Binding = Dict[str, Any]

#: Target rows per chunk in the batch protocol.  Chunks are advisory —
#: an operator may emit slightly larger or smaller ones — so the value
#: trades Python loop overhead against cache residency, not semantics.
CHUNK_ROWS = 1024

#: Rows between cooperative :class:`ResourceGovernor` checks inside a
#: batch loop.  A timeout or ``max_rows`` breach must fire *mid-chunk*
#: (a chunk of slow rows cannot postpone enforcement by ~1024 rows), so
#: batch producers account rows to the governor in increments of at
#: most this many.
GOVERNOR_TICK = 64


def pad_right_vars(left_binding: Binding, right_vars: List[str]) -> Binding:
    """A LEFT-join padded binding: every right-side variable — including
    variables of joins nested inside the right side and AT position
    variables — becomes NULL.

    Shared by the reference nested-loop path and every physical join
    operator so the padding sets cannot drift apart.
    """
    padded = dict(left_binding)
    for name in right_vars:
        padded[name] = None
    return padded


class PlanOp:
    """Base class: produces binding dicts for one FROM item subtree."""

    #: Variables this operator binds (set by the planner).
    vars: List[str]

    def __init__(self) -> None:
        self.vars = []
        #: Pushed-down WHERE conjuncts applied to this operator's output.
        self.filters: List[ast.Expr] = []
        #: The planner's estimated output rows (post attached filters),
        #: set by :func:`repro.core.planner.annotate_estimates` when
        #: statistics are available; None means "no estimate" and
        #: renders as ``est=?`` on EXPLAIN ANALYZE lines.
        self.est_rows: Optional[float] = None
        #: Where ``est_rows`` came from: ``"model"`` (selectivity math
        #: over collected statistics) or ``"feedback"`` (an observed
        #: actual from the query store's cardinality feedback loop).
        #: Feedback estimates are ground truth for *this* plan shape
        #: and may legitimately exceed what the model derives from the
        #: children, so the structural verifier
        #: (:mod:`repro.analysis.verify_plan`) only enforces the
        #: join-output <= product-of-inputs monotonicity law on
        #: model-derived estimates.
        self.est_source: str = "model"

    def bindings(
        self, evaluator: "Evaluator", env: "Environment"
    ) -> List[Binding]:
        """Eager wrapper: the fully materialized binding rows."""
        return list(self.iter_bindings(evaluator, env))

    def iter_bindings(
        self, evaluator: "Evaluator", env: "Environment"
    ) -> Iterator[Binding]:
        """Yield this operator's binding rows one at a time, with pushed
        filters applied per row inside the stream and (when the
        evaluator carries an :class:`~repro.observability.ExecTracer`)
        instrumentation.  Closing the generator closes the whole
        upstream pipeline, so consumers that stop early (LIMIT, top-K,
        EXISTS) stop production too.

        Subclasses implement :meth:`_iter_produce`; recorded timing is
        inclusive of child operators, as is conventional for EXPLAIN
        ANALYZE output, and for a stream it means "time spent inside
        ``next()`` of this operator", which includes its children's
        production time but not the consumer's."""
        tracer = evaluator.tracer
        if tracer is not None:
            if tracer.timing:
                return self._iter_traced(evaluator, env, tracer)
            return self._iter_counted(evaluator, env, tracer)
        if not self.filters:
            return self._iter_produce(evaluator, env)
        return self._iter_filtered(evaluator, env)

    def iter_chunks(
        self,
        evaluator: "Evaluator",
        env: "Environment",
        morsel: Optional[Tuple[int, int]] = None,
        tables: Optional[Dict[int, Dict[Tuple, List[Binding]]]] = None,
    ) -> Iterator[List[Binding]]:
        """Yield this operator's binding rows in chunks of ~CHUNK_ROWS.

        The batch protocol: downstream consumers process a Python list
        of binding dicts at a time, so compiled expressions map over
        whole chunks instead of crossing a generator frame per row.
        This default adapter batches :meth:`iter_bindings` — every
        operator participates from day one; operators with a native
        chunk implementation (scan, hash join) override it and skip the
        per-row generator entirely.

        ``morsel`` is a ``(start, stop)`` row span over the operator's
        *base scan* for morsel-driven parallelism; only native
        implementations over materialized sources accept one.
        ``tables`` optionally maps ``id(op)`` to a prebuilt hash-join
        build table (shared copy-on-write across forked workers).
        """
        if morsel is not None:
            raise ValueError(
                f"{type(self).__name__} does not support morsel scans"
            )
        return _rechunk(self.iter_bindings(evaluator, env))

    def _iter_produce(
        self, evaluator: "Evaluator", env: "Environment"
    ) -> Iterator[Binding]:
        raise NotImplementedError

    def _iter_filtered(
        self, evaluator: "Evaluator", env: "Environment"
    ) -> Iterator[Binding]:
        fns = [evaluator.compiled(predicate) for predicate in self.filters]
        for row in self._iter_produce(evaluator, env):
            row_env = env.extend(row)
            if all(fn(row_env) is True for fn in fns):
                yield row

    def _iter_traced(
        self, evaluator: "Evaluator", env: "Environment", tracer
    ) -> Iterator[Binding]:
        """The instrumented stream: counts rows in (produced) and out
        (surviving pushed filters) incrementally, and records the span
        and operator stats when the stream finishes — by exhaustion or
        by an early ``close()`` from a downstream consumer, in which
        case the counts cover exactly the rows that were pulled."""
        trace = tracer.trace
        fns = [evaluator.compiled(predicate) for predicate in self.filters]
        span = trace.begin(self.describe(), "operator") if trace is not None else None
        rows_in = 0
        rows_out = 0
        elapsed = 0.0
        source = self._iter_produce(evaluator, env)
        try:
            while True:
                started = perf_counter()
                try:
                    row = next(source)
                except StopIteration:
                    elapsed += perf_counter() - started
                    break
                rows_in += 1
                keep = True
                if fns:
                    row_env = env.extend(row)
                    keep = all(fn(row_env) is True for fn in fns)
                elapsed += perf_counter() - started
                if keep:
                    rows_out += 1
                    yield row
        finally:
            source.close()
            if span is not None:
                trace.end(span, {"rows_in": rows_in, "rows_out": rows_out})
            tracer.record_op(self, rows_in, rows_out, elapsed)

    def _iter_counted(
        self, evaluator: "Evaluator", env: "Environment", tracer
    ) -> Iterator[Binding]:
        """Row counting without per-row clock reads: the cardinality-
        feedback mode (``ExecTracer(timing=False)``) still needs exact
        rows in/out — including under early termination — but must not
        pay two ``perf_counter`` calls per row on a sampled execution."""
        fns = [evaluator.compiled(predicate) for predicate in self.filters]
        rows_in = 0
        rows_out = 0
        source = self._iter_produce(evaluator, env)
        try:
            for row in source:
                rows_in += 1
                if fns:
                    row_env = env.extend(row)
                    if not all(fn(row_env) is True for fn in fns):
                        continue
                rows_out += 1
                yield row
        finally:
            close = getattr(source, "close", None)
            if close is not None:
                close()
            tracer.record_op(self, rows_in, rows_out, 0.0)

    # -- EXPLAIN -----------------------------------------------------------

    def describe(self) -> str:
        raise NotImplementedError

    def explain_lines(
        self, indent: int = 0, tracer=None, worst_id: Optional[int] = None
    ) -> List[str]:
        """Plan lines; with a tracer, annotated with runtime stats and
        the estimate-vs-actual comparison (``worst_id`` marks the
        operator with the plan's largest q-error)."""
        from repro.observability.tracer import estimate_suffix
        from repro.syntax.printer import print_ast

        line = "  " * indent + self.describe()
        if self.filters:
            rendered = " AND ".join(print_ast(f) for f in self.filters)
            line += f"  [filter: {rendered}]"
        if tracer is not None:
            stats = tracer.op_stats(self)
            if stats is not None:
                line += stats.suffix()
                line += estimate_suffix(
                    self.est_rows, stats.rows_out, worst=id(self) == worst_id
                )
        return [line] + self._child_lines(indent + 1, tracer, worst_id)

    def _child_lines(
        self, indent: int, tracer=None, worst_id: Optional[int] = None
    ) -> List[str]:
        return []


class EmptyOp(PlanOp):
    """A statically-proven zero-row pipeline.

    The planner emits one when abstract interpretation proves the
    block's WHERE conjunction can never be exactly TRUE under
    conditions where erasing the enumeration is unobservable
    (:func:`repro.analysis.absint.block_prune_reason`).  It still
    declares the variables the replaced FROM items would have bound, so
    downstream plumbing (EXPLAIN, the verifier, batch compilation)
    sees a well-formed operator; it just never yields a binding.
    """

    def __init__(self, variables: List[str], reason: str):
        super().__init__()
        self.vars = list(variables)
        self.reason = reason
        self.est_rows = 0.0

    def _iter_produce(self, evaluator, env):
        return iter(())

    def iter_chunks(self, evaluator, env, morsel=None, tables=None):
        # A morsel request would be a driver bug (there is no base scan
        # to partition), but answering it with emptiness is still exact.
        return iter(())

    def describe(self) -> str:
        return f"Empty ({self.reason})"


class ScanOp(PlanOp):
    """Enumerate one FromCollection / FromUnpivot item (reference
    semantics), then apply pushed filters before any cross product."""

    def __init__(self, item: ast.FromItem):
        super().__init__()
        self.item = item

    def _iter_produce(self, evaluator, env):
        return evaluator._iter_item_bindings(self.item, env)

    def iter_chunks(self, evaluator, env, morsel=None, tables=None):
        if not isinstance(self.item, ast.FromCollection):
            return super().iter_chunks(evaluator, env, morsel, tables)
        return self._iter_scan_chunks(evaluator, env, morsel)

    def morsel_rows(self, evaluator, env) -> Optional[int]:
        """Row count of a materialized FromCollection source, or None.

        The morsel driver partitions this range into spans; a lazy bag
        (or a non-collection singleton) has no cheap stable range, so
        such scans stay serial.
        """
        if not isinstance(self.item, ast.FromCollection):
            return None
        value = evaluator.compiled(self.item.expr)(env)
        if isinstance(value, LazyBag):
            return None
        if isinstance(value, (list, Bag)):
            return len(value)
        return None

    def _iter_scan_chunks(self, evaluator, env, morsel):
        from repro.core.compile_expr import compile_batch

        tracer = evaluator.tracer
        trace = tracer.trace if tracer is not None else None
        span = (
            trace.begin(self.describe(), "operator") if trace is not None else None
        )
        filter_fns = [
            compile_batch(predicate, evaluator, frozenset(self.vars))
            for predicate in self.filters
        ]
        rows_in = 0
        rows_out = 0
        elapsed = 0.0
        source = self._scan_chunks(evaluator, env, morsel)
        try:
            while True:
                started = perf_counter()
                try:
                    chunk = next(source)
                except StopIteration:
                    elapsed += perf_counter() - started
                    break
                rows_in += len(chunk)
                for fn in filter_fns:
                    if not chunk:
                        break
                    verdicts = fn(chunk, env)
                    chunk = [
                        row
                        for row, verdict in zip(chunk, verdicts)
                        if verdict is True
                    ]
                elapsed += perf_counter() - started
                if chunk:
                    rows_out += len(chunk)
                    yield chunk
        finally:
            source.close()
            if span is not None:
                trace.end(span, {"rows_in": rows_in, "rows_out": rows_out})
            if tracer is not None:
                tracer.record_op(self, rows_in, rows_out, elapsed)

    def _scan_chunks(self, evaluator, env, morsel):
        """Raw (pre-filter) chunks for one FromCollection, with governor
        accounting every GOVERNOR_TICK rows — matching the reference
        case analysis of ``Evaluator._iter_range_bindings`` exactly."""
        item = self.item
        alias = item.alias
        at = item.at_alias
        governor = evaluator.governor
        value = evaluator.compiled(item.expr)(env)
        # LazyBag first: it subclasses Bag but must stream element-wise
        # (materializing it would defeat its purpose), ticking the
        # governor as elements are pulled so a slow source cannot defer
        # a timeout to the chunk boundary.
        if isinstance(value, LazyBag):
            if morsel is not None:
                raise ValueError("cannot morsel-scan a lazy bag")
            chunk: List[Binding] = []
            pending = 0
            for element in value:
                binding = {alias: element}
                if at:
                    binding[at] = MISSING
                chunk.append(binding)
                pending += 1
                if pending >= GOVERNOR_TICK:
                    if governor is not None:
                        governor.add(pending)
                    pending = 0
                if len(chunk) >= CHUNK_ROWS:
                    yield chunk
                    chunk = []
            if pending and governor is not None:
                governor.add(pending)
            if chunk:
                yield chunk
            return
        if isinstance(value, (list, Bag)):
            if isinstance(value, list):
                elements = value
                positional = bool(at)
            else:
                elements = value.to_list()
                positional = False
            base = 0
            if morsel is not None:
                base, stop = morsel
                elements = elements[base:stop]
            for start in range(0, len(elements), CHUNK_ROWS):
                piece = elements[start : start + CHUNK_ROWS]
                if governor is not None:
                    for offset in range(0, len(piece), GOVERNOR_TICK):
                        governor.add(min(GOVERNOR_TICK, len(piece) - offset))
                if positional:
                    origin = base + start
                    yield [
                        {alias: element, at: origin + offset}
                        for offset, element in enumerate(piece)
                    ]
                elif at:
                    yield [{alias: element, at: MISSING} for element in piece]
                else:
                    yield [{alias: element} for element in piece]
            return
        if not evaluator.config.is_permissive:
            raise TypeCheckError(
                f"FROM expects a collection, got {type_name(value)}"
            )
        if value is None or value is MISSING:
            return
        if morsel is not None and morsel[0] > 0:
            return  # the singleton binding belongs to the first morsel
        binding = {alias: value}
        if at:
            binding[at] = MISSING
        if governor is not None:
            governor.add(1)
        yield [binding]

    def describe(self) -> str:
        from repro.syntax.printer import print_ast

        if isinstance(self.item, ast.FromCollection):
            source = print_ast(self.item.expr)
            at = f" AT {self.item.at_alias}" if self.item.at_alias else ""
            return f"Scan {source} AS {self.item.alias}{at}"
        if isinstance(self.item, ast.FromUnpivot):
            source = print_ast(self.item.expr)
            return (
                f"Unpivot {source} AS {self.item.value_alias} "
                f"AT {self.item.at_alias}"
            )
        return f"Scan {type(self.item).__name__}"


class CorrelatedJoinOp(PlanOp):
    """The lateral fallback: right side re-enumerated per left binding.

    Mirrors ``Evaluator._join_bindings`` exactly (the left subtree may
    still be planned), so correlated right sides keep the paper's
    left-correlation semantics.
    """

    def __init__(self, left: PlanOp, item: ast.FromJoin):
        super().__init__()
        self.left = left
        self.item = item
        self.right_vars: List[str] = []

    def _iter_produce(self, evaluator, env):
        item = self.item
        governor = evaluator.governor
        on_fn = (
            evaluator.compiled(item.on) if item.on is not None else None
        )
        for left_binding in self.left.iter_bindings(evaluator, env):
            left_env = env.extend(left_binding)
            matched = False
            for right_binding in evaluator._iter_item_bindings(
                item.right, left_env
            ):
                combined = {**left_binding, **right_binding}
                if on_fn is not None and on_fn(env.extend(combined)) is not True:
                    continue
                matched = True
                if governor is not None:
                    governor.add(1)
                yield combined
            if item.kind == "LEFT" and not matched:
                if governor is not None:
                    governor.add(1)
                yield pad_right_vars(left_binding, self.right_vars)

    def describe(self) -> str:
        return f"NestedLoopJoin[{self.item.kind}] (correlated/lateral right side)"

    def _child_lines(
        self, indent: int, tracer=None, worst_id: Optional[int] = None
    ) -> List[str]:
        from repro.syntax.printer import print_ast

        lines = self.left.explain_lines(indent, tracer, worst_id)
        prefix = "  " * indent
        if isinstance(self.item.right, ast.FromCollection):
            right = (
                f"lateral: {print_ast(self.item.right.expr)} "
                f"AS {self.item.right.alias}"
            )
        else:
            right = f"lateral: {type(self.item.right).__name__}"
        lines.append(prefix + right)
        return lines


class MaterializeJoinOp(PlanOp):
    """Nested loop with the uncorrelated right side materialized once.

    Exact reference semantics for any ``ON`` predicate (same pairs, same
    evaluation order); the saving is that the right side's enumeration
    cost is paid once instead of once per left binding.
    """

    def __init__(
        self,
        left: PlanOp,
        right: PlanOp,
        kind: str,
        on: Optional[ast.Expr],
        right_vars: List[str],
    ):
        super().__init__()
        self.left = left
        self.right = right
        self.kind = kind
        self.on = on
        self.right_vars = right_vars

    def _iter_produce(self, evaluator, env):
        governor = evaluator.governor
        on_fn = evaluator.compiled(self.on) if self.on is not None else None
        # The right side materializes only once a left row exists: the
        # reference never enumerates the right of an empty left side
        # (error parity), and a closed stream never pays for it.
        right_rows: Optional[List[Binding]] = None
        for left_binding in self.left.iter_bindings(evaluator, env):
            if right_rows is None:
                right_rows = self.right.bindings(evaluator, env)
            matched = False
            for right_binding in right_rows:
                combined = {**left_binding, **right_binding}
                if on_fn is not None and on_fn(env.extend(combined)) is not True:
                    continue
                matched = True
                if governor is not None:
                    governor.add(1)
                yield combined
            if self.kind == "LEFT" and not matched:
                if governor is not None:
                    governor.add(1)
                yield pad_right_vars(left_binding, self.right_vars)

    def describe(self) -> str:
        from repro.syntax.printer import print_ast

        on = f" ON {print_ast(self.on)}" if self.on is not None else ""
        return f"NestedLoopJoin[{self.kind}] (right side materialized once){on}"

    def _child_lines(
        self, indent: int, tracer=None, worst_id: Optional[int] = None
    ) -> List[str]:
        return self.left.explain_lines(
            indent, tracer, worst_id
        ) + self.right.explain_lines(indent, tracer, worst_id)


class HashJoinOp(PlanOp):
    """Hash equi-join: build a hash table over the right side once,
    probe it per left binding.

    Key semantics follow Core equality (:func:`repro.functions.operators
    .equals`): a NULL or MISSING key component makes the ``ON``
    conjunct non-TRUE, so such rows never match — they are skipped on
    both sides (and LEFT-padded on the probe side).  Non-absent keys
    hash by :func:`repro.datamodel.equality.group_key`, whose identity
    coincides with the deep equality ``=`` uses on non-absent values.

    ``residual`` holds the non-equi conjuncts of a conjunctive ``ON``;
    they are evaluated per key-matching pair, like the reference.
    """

    def __init__(
        self,
        left: PlanOp,
        right: PlanOp,
        kind: str,
        left_keys: List[ast.Expr],
        right_keys: List[ast.Expr],
        residual: List[ast.Expr],
        right_vars: List[str],
    ):
        super().__init__()
        self.left = left
        self.right = right
        self.kind = kind
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.right_vars = right_vars

    def _iter_produce(self, evaluator, env):
        governor = evaluator.governor
        left_key_fns = [evaluator.compiled(key) for key in self.left_keys]
        right_key_fns = [evaluator.compiled(key) for key in self.right_keys]
        residual_fns = [evaluator.compiled(p) for p in self.residual]

        # The probe (left) side streams; the build table is the one
        # thing a hash join *must* materialize, and it is built lazily
        # on the first probe row so an empty or early-closed probe side
        # never pays for (or observes errors from) the build side.
        table: Optional[Dict[Tuple, List[Binding]]] = None
        for left_binding in self.left.iter_bindings(evaluator, env):
            if table is None:
                table = {}
                for right_binding in self.right.bindings(evaluator, env):
                    key = _key_tuple(right_key_fns, env.extend(right_binding))
                    if key is None:
                        continue  # absent key: can never satisfy the equi-ON
                    table.setdefault(key, []).append(right_binding)
            key = _key_tuple(left_key_fns, env.extend(left_binding))
            matched = False
            for right_binding in (table.get(key, ()) if key is not None else ()):
                combined = {**left_binding, **right_binding}
                if residual_fns:
                    combined_env = env.extend(combined)
                    if not all(fn(combined_env) is True for fn in residual_fns):
                        continue
                matched = True
                if governor is not None:
                    governor.add(1)
                yield combined
            if self.kind == "LEFT" and not matched:
                if governor is not None:
                    governor.add(1)
                yield pad_right_vars(left_binding, self.right_vars)

    def iter_chunks(self, evaluator, env, morsel=None, tables=None):
        return self._iter_join_chunks(evaluator, env, morsel, tables)

    def build_table(
        self, evaluator, env
    ) -> Dict[Tuple, List[Binding]]:
        """Materialize the build-side hash table chunk-at-a-time.

        Factored out of the probe loop so the morsel driver can build
        the table once in the parent process before forking: workers
        then share the pages copy-on-write instead of each re-building.
        """
        from repro.core.compile_expr import compile_batch

        right_vars = frozenset(self.right.vars)
        key_fns = [
            compile_batch(key, evaluator, right_vars) for key in self.right_keys
        ]
        table: Dict[Tuple, List[Binding]] = {}
        for chunk in self.right.iter_chunks(evaluator, env):
            key_columns = [fn(chunk, env) for fn in key_fns]
            for index, right_binding in enumerate(chunk):
                parts = []
                for column in key_columns:
                    value = column[index]
                    if value is None or value is MISSING:
                        parts = None
                        break  # absent key: can never satisfy the equi-ON
                    parts.append(group_key(value))
                if parts is not None:
                    table.setdefault(tuple(parts), []).append(right_binding)
        return table

    def _iter_join_chunks(self, evaluator, env, morsel, tables):
        from repro.core.compile_expr import compile_batch

        tracer = evaluator.tracer
        governor = evaluator.governor
        trace = tracer.trace if tracer is not None else None
        span = (
            trace.begin(self.describe(), "operator") if trace is not None else None
        )
        left_vars = frozenset(self.left.vars)
        out_vars = frozenset(self.vars)
        left_key_fns = [
            compile_batch(key, evaluator, left_vars) for key in self.left_keys
        ]
        residual_fns = [
            compile_batch(p, evaluator, out_vars) for p in self.residual
        ]
        filter_fns = [
            compile_batch(p, evaluator, out_vars) for p in self.filters
        ]
        is_left = self.kind == "LEFT"
        right_vars = self.right_vars
        table = tables.get(id(self)) if tables is not None else None
        rows_in = 0
        rows_out = 0
        elapsed = 0.0
        out: List[Binding] = []
        source = self.left.iter_chunks(
            evaluator, env, morsel=morsel, tables=tables
        )
        try:
            while True:
                started = perf_counter()
                try:
                    probe = next(source)
                except StopIteration:
                    elapsed += perf_counter() - started
                    break
                if table is None:
                    # Built lazily on the first probe chunk, like the
                    # streaming path: an empty or early-closed probe
                    # side never pays for (or observes errors from) the
                    # build side.
                    table = self.build_table(evaluator, env)
                key_columns = [fn(probe, env) for fn in left_key_fns]
                # Gather candidate pairs for the whole probe chunk, then
                # batch-evaluate residual conjuncts over all candidates.
                candidates: List[Binding] = []
                candidate_left: List[int] = []
                for index, left_binding in enumerate(probe):
                    parts = []
                    for column in key_columns:
                        value = column[index]
                        if value is None or value is MISSING:
                            parts = None
                            break
                        parts.append(group_key(value))
                    if parts is None:
                        continue
                    for right_binding in table.get(tuple(parts), ()):
                        candidates.append({**left_binding, **right_binding})
                        candidate_left.append(index)
                keep = [True] * len(candidates)
                for fn in residual_fns:
                    verdicts = fn(candidates, env)
                    for pair, verdict in enumerate(verdicts):
                        if keep[pair] and verdict is not True:
                            keep[pair] = False
                per_left: List[List[Binding]] = [[] for _ in probe]
                for pair, combined in enumerate(candidates):
                    if keep[pair]:
                        per_left[candidate_left[pair]].append(combined)
                produced = 0
                for index, left_binding in enumerate(probe):
                    matches = per_left[index]
                    if matches:
                        out.extend(matches)
                        produced += len(matches)
                    elif is_left:
                        out.append(pad_right_vars(left_binding, right_vars))
                        produced += 1
                if governor is not None:
                    for offset in range(0, produced, GOVERNOR_TICK):
                        governor.add(min(GOVERNOR_TICK, produced - offset))
                rows_in += produced
                ready: Optional[List[Binding]] = None
                if len(out) >= CHUNK_ROWS:
                    ready = out
                    out = []
                    for fn in filter_fns:
                        if not ready:
                            break
                        verdicts = fn(ready, env)
                        ready = [
                            row
                            for row, verdict in zip(ready, verdicts)
                            if verdict is True
                        ]
                    rows_out += len(ready)
                elapsed += perf_counter() - started
                if ready:
                    yield ready
            if out:
                started = perf_counter()
                for fn in filter_fns:
                    if not out:
                        break
                    verdicts = fn(out, env)
                    out = [
                        row
                        for row, verdict in zip(out, verdicts)
                        if verdict is True
                    ]
                rows_out += len(out)
                elapsed += perf_counter() - started
                if out:
                    yield out
        finally:
            source.close()
            if span is not None:
                trace.end(span, {"rows_in": rows_in, "rows_out": rows_out})
            if tracer is not None:
                tracer.record_op(self, rows_in, rows_out, elapsed)

    def describe(self) -> str:
        from repro.syntax.printer import print_ast

        keys = ", ".join(
            f"{print_ast(lk)} = {print_ast(rk)}"
            for lk, rk in zip(self.left_keys, self.right_keys)
        )
        text = f"HashJoin[{self.kind}] key ({keys})"
        if self.residual:
            residual = " AND ".join(print_ast(p) for p in self.residual)
            text += f" residual ({residual})"
        return text

    def _child_lines(
        self, indent: int, tracer=None, worst_id: Optional[int] = None
    ) -> List[str]:
        prefix = "  " * indent
        left = self.left.explain_lines(indent + 1, tracer, worst_id)
        right = self.right.explain_lines(indent + 1, tracer, worst_id)
        return (
            [prefix + "probe:"] + left + [prefix + "build:"] + right
        )


def _rechunk(source: Iterator[Binding]) -> Iterator[List[Binding]]:
    """Batch a row stream into chunks, closing it with the consumer."""
    try:
        chunk: List[Binding] = []
        for row in source:
            chunk.append(row)
            if len(chunk) >= CHUNK_ROWS:
                yield chunk
                chunk = []
        if chunk:
            yield chunk
    finally:
        close = getattr(source, "close", None)
        if close is not None:
            close()


def _key_tuple(key_fns, env) -> Optional[Tuple]:
    """The composite hash key for one binding, or None when any
    component is NULL/MISSING (Core equality: such keys never match)."""
    parts = []
    for fn in key_fns:
        value = fn(env)
        if value is None or value is MISSING:
            return None
        parts.append(group_key(value))
    return tuple(parts)
