"""Aggregate functions (paper, Section V-C).

SQL's aggregates lack composability: ``AVG(e.salary)`` only makes sense
inside a grouped query block.  The SQL++ Core instead provides, for each
SQL aggregate, a fully composable function that takes a *collection*
argument and returns its aggregate: ``COLL_AVG``, ``COLL_SUM``,
``COLL_MIN``, ``COLL_MAX``, ``COLL_COUNT``, plus boolean ``COLL_EVERY`` /
``COLL_SOME``, statistics ``COLL_STDDEV`` / ``COLL_VARIANCE`` and the
collection-valued ``COLL_ARRAY_AGG``.

SQL aggregate calls (``AVG`` etc.) are rewritten by
:mod:`repro.core.rewriter` into ``COLL_*`` calls over a ``SELECT VALUE``
subquery ranging over the ``GROUP AS`` group — Listings 15–18 of the
paper, reproduced verbatim in the tests.

Null handling follows SQL: NULL *and* MISSING elements are skipped by
every aggregate except ``COLL_COUNT`` (which counts non-absent elements;
``COUNT(*)`` counts all bindings and is handled in the rewriter).  An
empty (post-skip) input yields NULL, except COUNT which yields 0.

Wrongly-typed elements: the numeric aggregates (SUM/AVG/STDDEV/VARIANCE)
exclude them in permissive mode (see :func:`_numbers`); MIN/MAX instead
return MISSING when elements are mutually incomparable — there is no
principled "skip" for an ordering, so the whole aggregate carries the
data-exclusion signal.  Strict mode raises in both cases.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.config import EvalConfig
from repro.datamodel.values import MISSING, Bag, type_name
from repro.functions.operators import compare, distinct_elements
from repro.functions.registry import builtin


def _elements(name: str, value: Any) -> Optional[list]:
    """Extract the non-absent elements of the collection argument.

    Returns None when the argument itself is absent (aggregate → NULL),
    raises TypeError when it is not a collection.
    """
    if value is None or value is MISSING:
        return None
    if isinstance(value, Bag):
        items = value.to_list()
    elif isinstance(value, list):
        items = value
    else:
        raise TypeError(f"{name} expects a collection, got {type_name(value)}")
    return [item for item in items if item is not None and item is not MISSING]


def _numbers(name: str, items: list, config: EvalConfig) -> List[Any]:
    """The numeric elements of an aggregate's input.

    Wrongly-typed elements are a dynamic type error: strict mode raises,
    permissive mode *excludes just those elements* so that aggregation of
    the healthy data proceeds (the paper's data-exclusion signal,
    Section IV) — the behaviour Couchbase's SQL++ implements.
    """
    numbers = []
    for item in items:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            if config.is_permissive:
                continue
            raise TypeError(f"{name} expects numbers, got {type_name(item)}")
        numbers.append(item)
    return numbers


@builtin("COLL_COUNT", 1, 1, propagate_absent=False, is_aggregate=True)
def coll_count(args: List[Any], config: EvalConfig) -> Any:
    items = _elements("COLL_COUNT", args[0])
    if items is None:
        return None
    return len(items)


@builtin("COLL_SUM", 1, 1, propagate_absent=False, is_aggregate=True)
def coll_sum(args: List[Any], config: EvalConfig) -> Any:
    items = _elements("COLL_SUM", args[0])
    if items is None:
        return None
    numbers = _numbers("COLL_SUM", items, config)
    if not numbers:
        return None
    total = 0
    for item in numbers:
        total += item
    return total


@builtin("COLL_AVG", 1, 1, propagate_absent=False, is_aggregate=True)
def coll_avg(args: List[Any], config: EvalConfig) -> Any:
    items = _elements("COLL_AVG", args[0])
    if items is None:
        return None
    numbers = _numbers("COLL_AVG", items, config)
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


@builtin("COLL_MIN", 1, 1, propagate_absent=False, is_aggregate=True)
def coll_min(args: List[Any], config: EvalConfig) -> Any:
    items = _elements("COLL_MIN", args[0])
    if items is None or not items:
        return None
    best = items[0]
    for item in items[1:]:
        verdict = compare("<", item, best, config)
        if verdict is MISSING:
            return MISSING
        if verdict is True:
            best = item
    return best


@builtin("COLL_MAX", 1, 1, propagate_absent=False, is_aggregate=True)
def coll_max(args: List[Any], config: EvalConfig) -> Any:
    items = _elements("COLL_MAX", args[0])
    if items is None or not items:
        return None
    best = items[0]
    for item in items[1:]:
        verdict = compare(">", item, best, config)
        if verdict is MISSING:
            return MISSING
        if verdict is True:
            best = item
    return best


@builtin("COLL_EVERY", 1, 1, propagate_absent=False, is_aggregate=True)
def coll_every(args: List[Any], config: EvalConfig) -> Any:
    """True when every non-absent element is TRUE (empty → True)."""
    items = _elements("COLL_EVERY", args[0])
    if items is None:
        return None
    for item in items:
        if not isinstance(item, bool):
            raise TypeError(f"COLL_EVERY expects booleans, got {type_name(item)}")
        if item is False:
            return False
    return True


@builtin("COLL_SOME", 1, 1, propagate_absent=False, is_aggregate=True)
def coll_some(args: List[Any], config: EvalConfig) -> Any:
    """True when some non-absent element is TRUE (empty → False)."""
    items = _elements("COLL_SOME", args[0])
    if items is None:
        return None
    for item in items:
        if not isinstance(item, bool):
            raise TypeError(f"COLL_SOME expects booleans, got {type_name(item)}")
        if item is True:
            return True
    return False


@builtin("COLL_ARRAY_AGG", 1, 1, propagate_absent=False, is_aggregate=True)
def coll_array_agg(args: List[Any], config: EvalConfig) -> Any:
    """Materialise the collection's non-absent elements as an array."""
    items = _elements("COLL_ARRAY_AGG", args[0])
    if items is None:
        return None
    return items


@builtin("COLL_STDDEV", 1, 1, propagate_absent=False, is_aggregate=True)
def coll_stddev(args: List[Any], config: EvalConfig) -> Any:
    """Sample standard deviation (NULL for fewer than two elements)."""
    items = _elements("COLL_STDDEV", args[0])
    if items is None or len(items) < 2:
        return None
    numbers = _numbers("COLL_STDDEV", items, config)
    if len(numbers) < 2:
        return None
    mean = sum(numbers) / len(numbers)
    variance = sum((x - mean) ** 2 for x in numbers) / (len(numbers) - 1)
    return math.sqrt(variance)


@builtin("COLL_VARIANCE", 1, 1, propagate_absent=False, is_aggregate=True)
def coll_variance(args: List[Any], config: EvalConfig) -> Any:
    """Sample variance (NULL for fewer than two elements)."""
    items = _elements("COLL_VARIANCE", args[0])
    if items is None or len(items) < 2:
        return None
    numbers = _numbers("COLL_VARIANCE", items, config)
    if len(numbers) < 2:
        return None
    mean = sum(numbers) / len(numbers)
    return sum((x - mean) ** 2 for x in numbers) / (len(numbers) - 1)


@builtin("COLL_COUNT_DISTINCT", 1, 1, propagate_absent=False, is_aggregate=True)
def coll_count_distinct(args: List[Any], config: EvalConfig) -> Any:
    items = _elements("COLL_COUNT_DISTINCT", args[0])
    if items is None:
        return None
    return len(distinct_elements(items))


#: SQL aggregate name → composable Core function name (paper, Section V-C:
#: "The composable version of AVG is named COLL_AVG. This naming
#: convention applies to the other SQL aggregate functions as well.")
SQL_AGGREGATES: Dict[str, str] = {
    "COUNT": "COLL_COUNT",
    "SUM": "COLL_SUM",
    "AVG": "COLL_AVG",
    "MIN": "COLL_MIN",
    "MAX": "COLL_MAX",
    "EVERY": "COLL_EVERY",
    "SOME": "COLL_SOME",
    "ANY": "COLL_SOME",
    "ARRAY_AGG": "COLL_ARRAY_AGG",
    "STDDEV": "COLL_STDDEV",
    "VARIANCE": "COLL_VARIANCE",
}


def is_sql_aggregate(name: str) -> bool:
    """True when ``name`` is a SQL (sugar) aggregate function name."""
    return name.upper() in SQL_AGGREGATES


# Outside a grouped query block the SQL names behave as their composable
# COLL_* twins (``AVG([1, 2, 3])`` → 2), which is the Core reading; the
# rewriter intercepts them *inside* SQL-compat grouped blocks first.
from repro.functions.registry import REGISTRY  # noqa: E402

for _sql_name, _coll_name in SQL_AGGREGATES.items():
    REGISTRY.alias(_coll_name, _sql_name)
