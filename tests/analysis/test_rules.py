"""One test class per lint rule: every documented code fires on a
minimal trigger, stays silent on the corrected query, and reports a
usable source position."""

from repro.analysis import AnalyzerOptions, analyze
from repro.analysis.lattice import from_schema
from repro.analysis.rules import RULES, rule_for
from repro.config import EvalConfig
from repro.schema.ddl import parse_schema

EMP_SCHEMA = from_schema(
    parse_schema("BAG<STRUCT<name STRING, age INT, dept STRING>>")
)

SCHEMA_OPTS = AnalyzerOptions(
    config=EvalConfig(sql_compat=True),
    catalog_types={"emp": EMP_SCHEMA},
    schema_attrs={"emp": {"name", "age", "dept"}},
)

COMPAT_OPTS = AnalyzerOptions(
    config=EvalConfig(sql_compat=True), catalog_names=("emp",)
)

CORE_OPTS = AnalyzerOptions(
    config=EvalConfig(sql_compat=False), catalog_names=("emp",)
)


def codes(source, options=None):
    return [d.code for d in analyze(source, options)]


def find(source, code, options=None):
    matches = [d for d in analyze(source, options) if d.code == code]
    assert matches, f"expected {code}, got {codes(source, options)}"
    return matches[0]


class TestRegistry:
    def test_catalog_has_at_least_twelve_documented_rules(self):
        assert len(RULES) >= 12
        for code, rule in RULES.items():
            assert code == rule.code
            assert rule.summary
            assert rule.severity in ("error", "warning", "info")

    def test_rule_for_unknown_code(self):
        import pytest

        with pytest.raises(KeyError):
            rule_for("SQLPP999")


class TestSyntaxError000:
    def test_parse_error_is_a_finding(self):
        diagnostic = find("SELECT FROM WHERE", "SQLPP000")
        assert diagnostic.severity == "error"
        assert diagnostic.line == 1

    def test_lex_error_is_a_finding(self):
        assert "SQLPP000" in codes("SELECT VALUE 'unterminated")


class TestUnboundVariable001:
    def test_unbound_name(self):
        diagnostic = find(
            "SELECT VALUE nosuch FROM emp AS e", "SQLPP001", CORE_OPTS
        )
        assert diagnostic.severity == "error"
        assert "nosuch" in diagnostic.message

    def test_compat_single_from_var_disambiguates(self):
        # SQL-compat mode reads a bare name as e.nosuch, which is a
        # legal (MISSING-producing) navigation, not an unbound name.
        assert "SQLPP001" not in codes(
            "SELECT VALUE nosuch FROM emp AS e", COMPAT_OPTS
        )

    def test_catalog_name_resolves(self):
        assert codes("SELECT VALUE e.name FROM emp AS e", CORE_OPTS) == []

    def test_post_group_by_scope(self):
        # After GROUP BY only key aliases and GROUP AS survive.
        assert "SQLPP001" in codes(
            "SELECT VALUE e FROM emp AS e GROUP BY e.dept AS d",
            CORE_OPTS,
        )


class TestShadowedVariable002:
    def test_let_shadows_from(self):
        diagnostic = find(
            "SELECT VALUE e FROM emp AS e LET e = 1", "SQLPP002", CORE_OPTS
        )
        assert diagnostic.severity == "warning"

    def test_distinct_names_are_fine(self):
        assert "SQLPP002" not in codes(
            "SELECT VALUE x FROM emp AS e LET x = e.name", CORE_OPTS
        )


class TestUnusedLet003:
    def test_unused_binding(self):
        diagnostic = find(
            "SELECT VALUE e FROM emp AS e LET unused = 1",
            "SQLPP003",
            CORE_OPTS,
        )
        assert "unused" in diagnostic.message

    def test_underscore_prefix_is_exempt(self):
        assert "SQLPP003" not in codes(
            "SELECT VALUE e FROM emp AS e LET _scratch = 1", CORE_OPTS
        )

    def test_used_binding_is_fine(self):
        assert "SQLPP003" not in codes(
            "SELECT VALUE x FROM emp AS e LET x = e.name", CORE_OPTS
        )


class TestUnknownFunction004:
    def test_unknown_function_with_hint(self):
        diagnostic = find("SELECT VALUE FLOR(1.5)", "SQLPP004")
        assert diagnostic.severity == "error"
        assert "FLOOR" in (diagnostic.hint or "")

    def test_wrong_arity(self):
        diagnostic = find("SELECT VALUE SUBSTRING('abc')", "SQLPP004")
        assert "argument" in diagnostic.message

    def test_known_function_is_fine(self):
        assert codes("SELECT VALUE ABS(-1)") == []


class TestDuplicateKey005:
    def test_duplicate_struct_key(self):
        diagnostic = find("SELECT VALUE {'a': 1, 'a': 2}", "SQLPP005")
        assert "last occurrence wins" in diagnostic.message

    def test_duplicate_select_alias(self):
        assert "SQLPP005" in codes(
            "SELECT e.name AS x, e.age AS x FROM emp AS e", COMPAT_OPTS
        )

    def test_distinct_keys_are_fine(self):
        assert codes("SELECT VALUE {'a': 1, 'b': 2}") == []


class TestNegativeLimit006:
    def test_negative_limit(self):
        diagnostic = find(
            "SELECT VALUE e FROM emp AS e LIMIT -1", "SQLPP006", CORE_OPTS
        )
        assert diagnostic.severity == "error"

    def test_negative_offset(self):
        assert "SQLPP006" in codes(
            "SELECT VALUE e FROM emp AS e OFFSET -2", CORE_OPTS
        )

    def test_zero_limit_is_fine(self):
        assert "SQLPP006" not in codes(
            "SELECT VALUE e FROM emp AS e LIMIT 0", CORE_OPTS
        )


class TestAlwaysMissing101:
    def test_closed_schema_navigation(self):
        diagnostic = find(
            "SELECT VALUE e.salary FROM emp AS e", "SQLPP101", SCHEMA_OPTS
        )
        assert diagnostic.severity == "warning"
        assert "MISSING" in diagnostic.message

    def test_known_attribute_is_fine(self):
        assert codes("SELECT VALUE e.name FROM emp AS e", SCHEMA_OPTS) == []

    def test_no_schema_no_conclusion(self):
        assert "SQLPP101" not in codes(
            "SELECT VALUE e.salary FROM emp AS e", COMPAT_OPTS
        )


class TestComparisonMismatch102:
    def test_string_vs_number_order(self):
        diagnostic = find(
            "SELECT VALUE e FROM emp AS e WHERE e.name > e.age",
            "SQLPP102",
            SCHEMA_OPTS,
        )
        assert "string" in diagnostic.message
        assert "number" in diagnostic.message

    def test_disjoint_equality(self):
        assert "SQLPP102" in codes("SELECT VALUE 1 = 'a'")

    def test_same_kind_is_fine(self):
        assert "SQLPP102" not in codes(
            "SELECT VALUE e FROM emp AS e WHERE e.age > 30", SCHEMA_OPTS
        )


class TestAggregateNonCollection103:
    def test_coll_aggregate_on_scalar(self):
        diagnostic = find("SELECT VALUE COLL_SUM(1)", "SQLPP103")
        assert "collection" in diagnostic.message

    def test_coll_aggregate_on_array_is_fine(self):
        assert "SQLPP103" not in codes("SELECT VALUE COLL_SUM([1, 2])")

    def test_lowered_sql_aggregate_is_fine(self):
        # SUM over a group lowers to COLL_SUM over a subquery.
        assert "SQLPP103" not in codes(
            "SELECT e.dept AS d, SUM(e.age) AS t "
            "FROM emp AS e GROUP BY e.dept",
            SCHEMA_OPTS,
        )


class TestOrderByNeverComparable104:
    def test_always_missing_key(self):
        diagnostic = find(
            "SELECT e.salary AS k FROM emp AS e ORDER BY k",
            "SQLPP104",
            SCHEMA_OPTS,
        )
        assert "MISSING" in diagnostic.message

    def test_comparable_key_is_fine(self):
        assert "SQLPP104" not in codes(
            "SELECT e.age AS k FROM emp AS e ORDER BY k", SCHEMA_OPTS
        )


class TestEqualsNull105:
    def test_equals_null(self):
        diagnostic = find(
            "SELECT VALUE e FROM emp AS e WHERE e.name = NULL",
            "SQLPP105",
            CORE_OPTS,
        )
        assert "IS NULL" in (diagnostic.hint or "")

    def test_not_equals_null(self):
        diagnostic = find("SELECT VALUE 1 != NULL", "SQLPP105")
        assert "IS NOT NULL" in (diagnostic.hint or "")

    def test_is_null_is_fine(self):
        assert "SQLPP105" not in codes(
            "SELECT VALUE e FROM emp AS e WHERE e.name IS NULL", CORE_OPTS
        )
