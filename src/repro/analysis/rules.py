"""The lint-rule registry: one stable code per finding kind.

Codes never change meaning once released; retired rules keep their
number reserved.  The ``SQLPP0xx`` range is syntactic/structural (the
scope resolver and the surface pass), ``SQLPP1xx`` is the abstract
type-flow pass.  Every rule documents *when it is sound*: error
severity is reserved for findings that are guaranteed runtime failures
in **both** typing modes; anything mode-dependent or merely suspicious
is a warning.

docs/ANALYZER.md carries the narrative catalog; this module is the
single source of truth the docs and renderers read from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.diagnostics import ERROR, INFO, WARNING, Diagnostic


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule.

    ``fixable`` cross-references the automatic remedy for the flagged
    construct: a semantic rewrite rule (``SQLPPR01`` ... —
    :mod:`repro.core.rewrite_rules`, docs/REWRITER.md) or a planner
    action (``prune-empty`` / ``drop-true`` / ``fold-constant`` —
    :mod:`repro.analysis.absint`, docs/PLANNER.md); ``None`` for
    findings with no registered remedy.
    """

    code: str
    name: str
    severity: str
    summary: str
    fixable: Optional[str] = None


def _rule(
    code: str,
    name: str,
    severity: str,
    summary: str,
    fixable: Optional[str] = None,
) -> Rule:
    return Rule(
        code=code,
        name=name,
        severity=severity,
        summary=summary,
        fixable=fixable,
    )


#: Every rule the analyzer can emit, by stable code.
RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        _rule(
            "SQLPP000",
            "syntax-error",
            ERROR,
            "The query does not lex, parse, or rewrite onto the SQL++ "
            "Core; nothing downstream can run it.",
        ),
        _rule(
            "SQLPP001",
            "unbound-variable",
            ERROR,
            "A name resolves to neither a variable in scope nor a named "
            "value in the database; evaluation raises BindingError.",
        ),
        _rule(
            "SQLPP002",
            "shadowed-variable",
            WARNING,
            "A FROM/LET/GROUP binding reuses a name already bound in an "
            "enclosing or earlier scope, hiding it for the rest of the "
            "query.",
        ),
        _rule(
            "SQLPP003",
            "unused-let",
            WARNING,
            "A LET binding is never referenced after its definition "
            "(names starting with '_' are exempt).",
        ),
        _rule(
            "SQLPP004",
            "unknown-function",
            ERROR,
            "A function call names no builtin; evaluation raises "
            "EvaluationError in both typing modes.",
        ),
        _rule(
            "SQLPP005",
            "duplicate-key",
            WARNING,
            "A struct constructor or SELECT list repeats an attribute "
            "name; the last occurrence silently wins.",
        ),
        _rule(
            "SQLPP006",
            "negative-limit",
            ERROR,
            "LIMIT or OFFSET has a statically negative argument; "
            "evaluation raises EvaluationError in both typing modes.",
        ),
        _rule(
            "SQLPP101",
            "always-missing",
            WARNING,
            "The expression is statically guaranteed to produce MISSING "
            "(e.g. navigation into a closed tuple that lacks the "
            "attribute).",
        ),
        _rule(
            "SQLPP102",
            "comparison-type-mismatch",
            WARNING,
            "A comparison's operands lie in provably disjoint type "
            "categories, so it can never compare actual values: it "
            "yields MISSING (permissive) or raises (strict).",
        ),
        _rule(
            "SQLPP103",
            "aggregate-non-collection",
            WARNING,
            "A COLL_* aggregate is applied to a value that is provably "
            "never a collection.",
        ),
        _rule(
            "SQLPP104",
            "order-by-never-comparable",
            WARNING,
            "An ORDER BY key is statically always NULL/MISSING, so it "
            "cannot order the result.",
        ),
        _rule(
            "SQLPP105",
            "equals-null",
            WARNING,
            "Comparing with = / != against NULL never yields TRUE; use "
            "IS [NOT] NULL.",
        ),
        # The SQLPP11x range mirrors the semantic rewrite registry
        # (repro.core.rewrite_rules): each rule flags a construct the
        # engine rewrites automatically, at info severity — the query
        # is correct, the lint only explains what the optimizer will do
        # (or would do, were rewrites enabled).
        _rule(
            "SQLPP110",
            "or-chain-rewritable",
            INFO,
            "A chain of OR'd equality comparisons on one operand can "
            "run as a single hashed IN-list membership probe.",
            fixable="SQLPPR03",
        ),
        _rule(
            "SQLPP111",
            "exists-subquery-rewritable",
            INFO,
            "A correlated EXISTS/IN subquery predicate can run as a "
            "hash semi-join instead of a nested re-evaluation per "
            "outer binding.",
            fixable="SQLPPR01",
        ),
        _rule(
            "SQLPP112",
            "scalar-subquery-rewritable",
            INFO,
            "A correlated scalar aggregate subquery can be "
            "decorrelated into a grouped LEFT join computed once.",
            fixable="SQLPPR02",
        ),
        _rule(
            "SQLPP113",
            "repeated-subquery-rewritable",
            INFO,
            "A subquery repeated verbatim inside one block can be "
            "hoisted into a LET binding and evaluated once.",
            fixable="SQLPPR04",
        ),
        # The SQLPP12x range is the abstract-interpretation pass
        # (repro.analysis.absint): constant/interval facts over the
        # rewritten Core.  ``fixable`` here names the *planner action*
        # that exploits the same proof (visible in EXPLAIN `rewrites
        # fired:` / `pruned:` lines) rather than a registry rewrite.
        _rule(
            "SQLPP120",
            "contradictory-predicate",
            WARNING,
            "A WHERE/ON/HAVING conjunction is statically unsatisfiable "
            "— no binding can make every conjunct exactly TRUE — so "
            "the clause filters out everything.",
            fixable="prune-empty",
        ),
        _rule(
            "SQLPP121",
            "tautological-conjunct",
            INFO,
            "A conjunct (e.g. `x = x` over a provably non-absent, "
            "comparable value) is TRUE for every binding that reaches "
            "it and filters nothing.",
            fixable="drop-true",
        ),
        _rule(
            "SQLPP122",
            "constant-foldable",
            INFO,
            "An expression is built entirely from literals and always "
            "evaluates to the same value.",
            fixable="fold-constant",
        ),
        _rule(
            "SQLPP123",
            "unreachable-case-branch",
            WARNING,
            "A CASE branch can never produce the result: its condition "
            "is constant and never matches, or an earlier constant "
            "branch always terminates the chain first.",
            fixable="fold-constant",
        ),
        _rule(
            "SQLPP124",
            "statically-empty-query",
            WARNING,
            "A query block's WHERE clause is proven never TRUE, so the "
            "block always yields zero bindings.",
            fixable="prune-empty",
        ),
    )
}


def rule_for(code: str) -> Rule:
    """The registered rule for a code (KeyError on unknown codes)."""
    return RULES[code]


def make(
    code: str,
    message: str,
    line: Optional[int] = None,
    column: Optional[int] = None,
    hint: Optional[str] = None,
) -> Diagnostic:
    """A :class:`Diagnostic` for ``code`` with the rule's severity."""
    rule = RULES[code]
    return Diagnostic(
        code=code,
        severity=rule.severity,
        message=message,
        line=line,
        column=column,
        hint=hint,
        fixable=rule.fixable,
    )
