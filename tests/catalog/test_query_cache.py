"""The Database LRU parse+rewrite cache.

Repeated query texts must reuse the compiled Core AST; any change the
rewriter can observe — either language dial, the set of catalog names,
or a schema — must miss; the cache stays bounded.
"""

from __future__ import annotations

from repro import Database
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag


QUERY = "SELECT r.v AS v FROM t AS r WHERE r.v > 1"


def make_db() -> Database:
    db = Database()
    db.set("t", [{"v": 1}, {"v": 2}, {"v": 3}])
    return db


class TestCompileCache:
    def test_repeat_compile_returns_same_ast_object(self):
        db = make_db()
        assert db.compile(QUERY) is db.compile(QUERY)

    def test_cached_execution_still_correct(self):
        db = make_db()
        first = db.execute(QUERY)
        second = db.execute(QUERY)
        assert deep_equals(Bag(list(first)), Bag(list(second)))
        assert len(second) == 2

    def test_language_dials_cached_separately(self):
        db = make_db()
        compat = db.compile("SELECT r.v FROM t AS r")
        core = db.compile("SELECT r.v FROM t AS r", sql_compat=False)
        assert compat is not core
        strict = db.compile(QUERY, typing_mode="strict")
        assert strict is not db.compile(QUERY)

    def test_catalog_name_set_change_invalidates(self):
        db = make_db()
        before = db.compile(QUERY)
        # Replacing an existing name keeps the name set: still a hit.
        db.set("t", [{"v": 9}])
        assert db.compile(QUERY) is before
        # A new name changes what dotted-name resolution can see: miss.
        db.set("u", [])
        after = db.compile(QUERY)
        assert after is not before
        # Rewriting is deterministic, so recompiling is harmless.
        assert len(db.execute(QUERY)) == 1

    def test_drop_invalidates(self):
        db = make_db()
        db.set("u", [])
        before = db.compile(QUERY)
        db.drop("u")
        assert db.compile(QUERY) is not before

    def test_schema_change_invalidates(self):
        db = make_db()
        before = db.compile(QUERY)
        db.set_schema("t", "BAG<STRUCT<v INT>>")
        assert db.compile(QUERY) is not before

    def test_cache_is_bounded(self):
        db = make_db()
        for index in range(db.COMPILE_CACHE_SIZE + 10):
            db.compile(f"SELECT VALUE {index}")
        assert len(db._compile_cache) <= db.COMPILE_CACHE_SIZE

    def test_lru_evicts_oldest_not_hottest(self):
        db = make_db()
        hot = db.compile(QUERY)
        for index in range(db.COMPILE_CACHE_SIZE - 1):
            db.compile(f"SELECT VALUE {index}")
            db.compile(QUERY)  # keep the hot entry recent
        assert db.compile(QUERY) is hot
