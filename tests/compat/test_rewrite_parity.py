"""Rewrite-registry parity over the full compatibility kit.

Acceptance bar for the semantic rewrite registry (docs/REWRITER.md):
on every conformance case — every paper listing plus the extended and
analytics corpora, each swept in *both* typing modes — execution with
the registry enabled must be observationally identical to
``rewrite=False``: same result bag (or array, for ordered cases) or
the same error class.  The sweep runs with physical planning on, so it
also covers the registry's interaction with pushdown and hash joins.
"""

from __future__ import annotations

import pytest

from repro import errors
from repro.catalog.database import Database
from repro.compat.corpus import all_cases
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag


def _build_database(case, typing_mode: str) -> Database:
    db = Database(typing_mode=typing_mode, sql_compat=case.sql_compat)
    for name, literal in case.data.items():
        db.load_value(name, literal)
    return db


def _outcome(db: Database, case, rewrite: bool):
    try:
        return ("value", db.execute(case.query, rewrite=rewrite))
    except errors.SQLPPError as exc:
        return ("error", type(exc).__name__)


@pytest.mark.parametrize("typing_mode", ["permissive", "strict"])
@pytest.mark.parametrize("case", all_cases(), ids=lambda case: case.case_id)
def test_rewritten_equals_reference(case, typing_mode):
    rewritten = _outcome(
        _build_database(case, typing_mode), case, rewrite=True
    )
    reference = _outcome(
        _build_database(case, typing_mode), case, rewrite=False
    )
    assert rewritten[0] == reference[0], (
        f"{case.case_id} [{typing_mode}]: "
        f"rewritten → {rewritten}, reference → {reference}"
    )
    if rewritten[0] == "error":
        assert rewritten[1] == reference[1]
        return
    left, right = rewritten[1], reference[1]
    if case.ordered:
        assert deep_equals(left, right)
    else:
        left = Bag(list(left)) if isinstance(left, (list, Bag)) else left
        right = Bag(list(right)) if isinstance(right, (list, Bag)) else right
        assert deep_equals(left, right)
