"""E4 — the null-vs-missing guarantee at scale (Section IV-B).

"Given a working SQL query q over a collection d that has null values
and a collection d′ where some nulls have been replaced with missing
attributes, the SQL++ query q will deliver the same result q(d′) as the
SQL result q(d), except that some attributes that would have null values
in q(d) will be simply missing in q(d′)."

The bench sweeps the absent-rate, asserts the guarantee (results equal
modulo null-valued attributes), and times both variants — showing the
missing-attribute representation is also the cheaper one (smaller
tuples, fewer attribute bindings).
"""

import pytest

from repro.datamodel.values import Bag, Struct
from repro.workloads import emp_with_absent_titles

from conftest import make_db

SIZE = 5_000
RATES = [0.0, 0.1, 0.5]

QUERY = (
    "SELECT e.id, e.title AS title, CASE WHEN e.title LIKE 'Eng%' "
    "THEN 'tech' ELSE 'other' END AS wing FROM emp AS e"
)


def strip_nulls(result):
    out = []
    for row in result:
        out.append(
            Struct([(k, v) for k, v in row.items() if v is not None])
        )
    return Bag(out)


@pytest.fixture(scope="module")
def guarantee_verified():
    for rate in RATES:
        db_null = make_db(emp=emp_with_absent_titles(SIZE, rate, use_missing=False))
        db_missing = make_db(emp=emp_with_absent_titles(SIZE, rate, use_missing=True))
        left = strip_nulls(db_null.execute(QUERY))
        right = strip_nulls(db_missing.execute(QUERY))
        assert left == right, f"guarantee violated at rate {rate}"
    return True


@pytest.mark.benchmark(group="E4-null-vs-missing")
@pytest.mark.parametrize("rate", RATES)
def test_null_representation(benchmark, rate, guarantee_verified):
    db = make_db(emp=emp_with_absent_titles(SIZE, rate, use_missing=False))
    benchmark(lambda: db.execute(QUERY))


@pytest.mark.benchmark(group="E4-null-vs-missing")
@pytest.mark.parametrize("rate", RATES)
def test_missing_representation(benchmark, rate, guarantee_verified):
    db = make_db(emp=emp_with_absent_titles(SIZE, rate, use_missing=True))
    benchmark(lambda: db.execute(QUERY))
