"""The pipelined (streaming) clause engine: consumers, laziness, edges.

These tests pin the *observable contract* of streaming execution
(docs/PLANNER.md, docs/LANGUAGE.md §8):

* bounded consumers — top-K ``ORDER BY ... LIMIT``, plain ``LIMIT``,
  ``EXISTS``, ``IN (subquery)`` — stop pulling rows once the answer is
  decided, which is visible both through lazy collections (how many
  elements the factory yields) and through strict-mode error
  visibility (errors in rows that are never pulled never surface);
* the top-K heap and the deferred-select (late materialization) rewrite
  agree exactly with the eager reference semantics on everything they
  *do* evaluate;
* ``QueryMetrics.streamed`` reports which engine ran.
"""

import pytest

from repro import Database
from repro.datamodel import Bag, LazyBag, from_python
from repro.errors import TypeCheckError


@pytest.fixture
def db():
    database = Database()
    database.set("t", [{"k": i % 7, "v": i} for i in range(50)])
    return database


class CountingSource:
    """A ``set_lazy`` factory that counts how many elements it yielded."""

    def __init__(self, rows):
        self.rows = rows
        self.yielded = 0

    def __call__(self):
        for row in self.rows:
            self.yielded += 1
            yield row


class TestStreamedFlag:
    def test_streaming_query_sets_flag(self, db):
        db.execute("SELECT VALUE t.v FROM t AS t")
        assert db.metrics.last.streamed is True

    def test_reference_path_does_not(self, db):
        db.execute("SELECT VALUE t.v FROM t AS t", optimize=False)
        assert db.metrics.last.streamed is False

    def test_strict_mode_streams_too(self, db):
        db.execute("SELECT VALUE t.v FROM t AS t", typing_mode="strict")
        assert db.metrics.last.streamed is True

    def test_window_functions_fall_back_to_eager(self, db):
        db.execute(
            "SELECT t.v AS v, ROW_NUMBER() OVER (ORDER BY t.v) AS rn "
            "FROM t AS t"
        )
        assert db.metrics.last.streamed is False

    def test_expression_only_query_does_not_stream(self, db):
        db.execute("1 + 1")
        assert db.metrics.last.streamed is False


class TestEarlyTermination:
    """Strict-mode error visibility under early termination.

    Decision log (docs/LANGUAGE.md §8): a bounded consumer never pulls
    rows past the point where its answer is decided, so a strict-mode
    type error hiding in an *unconsumed* row does not surface under
    ``optimize=True``.  Errors in consumed rows surface on both paths.
    """

    @pytest.fixture
    def poisoned(self):
        database = Database()
        # Row 3 poisons any comparison against a number in strict mode.
        rows = [{"n": i if i != 3 else "three"} for i in range(10)]
        database.set("p", rows)
        return database

    def test_error_in_consumed_row_surfaces_on_both_paths(self, poisoned):
        query = "SELECT VALUE p.n FROM p AS p WHERE p.n < 100 LIMIT 8"
        for optimize in (True, False):
            with pytest.raises(TypeCheckError):
                poisoned.execute(query, typing_mode="strict", optimize=optimize)

    def test_error_past_the_limit_is_skipped_when_streaming(self, poisoned):
        query = "SELECT VALUE p.n FROM p AS p WHERE p.n < 100 LIMIT 3"
        assert poisoned.execute(query, typing_mode="strict") == Bag([0, 1, 2])
        # The eager reference path evaluates every row before LIMIT cuts,
        # so the same query errors there — the pinned divergence.
        with pytest.raises(TypeCheckError):
            poisoned.execute(query, typing_mode="strict", optimize=False)

    def test_exists_stops_before_the_poisoned_row(self, poisoned):
        query = (
            "SELECT VALUE EXISTS "
            "(SELECT VALUE p.n FROM p AS p WHERE p.n >= 0) FROM [1] AS one"
        )
        assert poisoned.execute(query, typing_mode="strict") == Bag([True])
        with pytest.raises(TypeCheckError):
            poisoned.execute(query, typing_mode="strict", optimize=False)

    def test_deferred_select_skips_evicted_projections(self):
        # The ORDER BY key (p.n) is clean but the projected attribute
        # p.x is poisoned on row 3, which the top-K evicts.  Under late
        # materialization the projection only runs for the survivors,
        # so the streamed query succeeds where the eager one errors.
        database = Database()
        database.set(
            "p", [{"n": i, "x": 0 if i != 3 else "bad"} for i in range(10)]
        )
        query = "SELECT p.n AS n, p.x + 1 AS y FROM p AS p ORDER BY p.n LIMIT 3"
        result = database.execute(query, typing_mode="strict")
        assert [row["n"] for row in result] == [0, 1, 2]
        with pytest.raises(TypeCheckError):
            database.execute(query, typing_mode="strict", optimize=False)


class TestLazyCollections:
    def test_set_lazy_round_trips(self):
        db = Database()
        db.set_lazy("lz", lambda: ({"v": i} for i in range(5)))
        assert db.execute("SELECT VALUE l.v FROM lz AS l") == Bag(range(5))
        # The factory is re-invoked per traversal, not consumed once.
        assert db.execute("SELECT VALUE l.v FROM lz AS l") == Bag(range(5))

    def test_lazybag_streams_per_traversal(self):
        bag = LazyBag(lambda: iter([from_python({"v": 1})]))
        assert len(bag) == 1
        with pytest.raises(TypeError):
            bag.add(from_python({"v": 2}))

    def test_limit_pulls_only_what_it_returns(self):
        source = CountingSource([{"v": i} for i in range(1000)])
        db = Database()
        db.set_lazy("lz", source)
        result = db.execute("SELECT VALUE l.v FROM lz AS l LIMIT 3")
        assert result == Bag([0, 1, 2])
        assert source.yielded == 3

    def test_exists_pulls_one_row(self):
        source = CountingSource([{"v": i} for i in range(1000)])
        db = Database()
        db.set_lazy("lz", source)
        result = db.execute(
            "SELECT VALUE EXISTS (SELECT VALUE l.v FROM lz AS l) "
            "FROM [1] AS one"
        )
        assert result == Bag([True])
        assert source.yielded == 1

    def test_in_subquery_stops_at_first_match(self):
        source = CountingSource([{"v": i} for i in range(1000)])
        db = Database()
        db.set_lazy("lz", source)
        result = db.execute(
            "SELECT VALUE 2 IN (SELECT VALUE l.v FROM lz AS l) "
            "FROM [1] AS one"
        )
        assert result == Bag([True])
        assert source.yielded == 3

    def test_top_k_consumes_everything_but_keeps_k(self):
        # Top-K must see every row (the minimum could be last); the win
        # is memory and skipped projections, not skipped input.
        source = CountingSource([{"v": i} for i in range(200)])
        db = Database()
        db.set_lazy("lz", source)
        result = db.execute(
            "SELECT VALUE l.v FROM lz AS l ORDER BY l.v DESC LIMIT 2"
        )
        assert list(result) == [199, 198]
        assert source.yielded == 200


class TestTopKEdges:
    """The top-K heap agrees with the eager stable sort on edge shapes."""

    def run_both(self, db, query):
        streamed = db.execute(query, optimize=True)
        reference = db.execute(query, optimize=False)
        assert list(streamed) == list(reference)
        return list(streamed)

    def test_limit_zero(self, db):
        assert self.run_both(
            db, "SELECT VALUE t.v FROM t AS t ORDER BY t.v LIMIT 0"
        ) == []

    def test_offset_beyond_input(self, db):
        assert self.run_both(
            db, "SELECT VALUE t.v FROM t AS t ORDER BY t.v LIMIT 5 OFFSET 90"
        ) == []

    def test_limit_beyond_input(self, db):
        assert len(
            self.run_both(
                db, "SELECT VALUE t.v FROM t AS t ORDER BY t.v LIMIT 500"
            )
        ) == 50

    def test_stable_on_duplicate_keys(self, db):
        # t.k has duplicates; ties must come out in input order, exactly
        # like the reference's stable sort.
        rows = self.run_both(
            db,
            "SELECT t.k AS k, t.v AS v FROM t AS t ORDER BY t.k LIMIT 10",
        )
        assert [row["v"] for row in rows] == [0, 7, 14, 21, 28, 35, 42, 49, 1, 8]

    def test_mixed_directions_and_nulls(self):
        db = Database()
        db.set(
            "m",
            [
                {"a": 1, "b": None, "v": 0},
                {"a": 1, "v": 1},  # b MISSING
                {"a": 2, "b": 5, "v": 2},
                {"a": 1, "b": 3, "v": 3},
            ],
        )
        self.run_both(
            db,
            "SELECT m.v AS v FROM m AS m "
            "ORDER BY m.a DESC, m.b NULLS FIRST LIMIT 3",
        )

    def test_order_by_select_alias_is_not_deferred(self, db):
        # The ORDER BY key names a select alias, so late materialization
        # must not fire (the key needs the projected struct); results
        # still match the reference.
        rows = self.run_both(
            db,
            "SELECT t.v AS ranked FROM t AS t ORDER BY ranked DESC LIMIT 3",
        )
        assert [row["ranked"] for row in rows] == [49, 48, 47]


class TestExplainStreaming:
    def test_explain_plan_names_the_consumer(self, db):
        plan = db.explain_plan(
            "SELECT VALUE t.v FROM t AS t ORDER BY t.v LIMIT 3"
        )
        assert "top-K heap" in plan
        plan = db.explain_plan("SELECT VALUE t.v FROM t AS t LIMIT 3")
        assert "early termination" in plan
        plan = db.explain_plan("SELECT VALUE t.v FROM t AS t")
        assert "streamed bag" in plan

    def test_non_streamable_shapes_have_no_consumer_line(self, db):
        assert "consumer:" not in Database().explain_plan("1 + 1")

    def test_analyze_row_counts_are_exact_under_streaming(self, db):
        # The planner pushes t.v < 10 into the scan; the scan operator
        # must report the exact pre/post-filter cardinalities even
        # though rows now flow one at a time.
        report = db.explain_analyze(
            "SELECT VALUE t.v FROM t AS t WHERE t.v < 10"
        )
        scan_line = next(
            line for line in report.splitlines() if "Scan" in line
        )
        assert "rows_in=50" in scan_line and "rows_out=10" in scan_line
        assert "rows returned: 10" in report

    def test_analyze_shows_early_termination_counts(self, db):
        report = db.explain_analyze("SELECT VALUE t.v FROM t AS t LIMIT 4")
        from_stage = next(
            line
            for line in report.splitlines()
            if line.strip().startswith("FROM") and "rows_out" in line
        )
        # Only the four consumed rows were ever pulled from the scan.
        assert "rows_out=4" in from_stage
        scan_line = next(
            line for line in report.splitlines() if "Scan" in line
        )
        assert "rows_out=4" in scan_line
