"""Prometheus-style metric exposition: histograms and the text format.

Two pieces:

* :class:`Histogram` — a fixed-bucket latency histogram.  Buckets are
  log-spaced (each bound 2.5× the previous, 10 µs .. ~9 s), chosen
  once at import so every histogram in the process shares the same
  grid and exposed series are comparable across phases and databases.
  ``observe`` is two integer increments and one float add; thread
  safety is the caller's concern (:class:`~repro.observability.metrics
  .MetricsRegistry` holds its lock around the whole record path).
* The ``expose_*`` renderers — produce the Prometheus text exposition
  format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers followed by
  ``name{labels} value`` samples.  Histograms render the conventional
  cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.

Nothing here imports anything heavier than :mod:`bisect`; the engine
stays dependency-free and an actual Prometheus server is optional —
the text format is also trivially parseable by tests and ad-hoc
tooling, which is the point of exposing it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Shared log-spaced bucket upper bounds, in seconds: 10 µs growing by
#: 2.5× per bucket up to ~9.3 s.  16 finite buckets + implicit +Inf.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    1e-5 * (2.5**exponent) for exponent in range(16)
)


class Histogram:
    """A fixed-bucket histogram of non-negative observations."""

    __slots__ = ("buckets", "counts", "inf_count", "sum", "count")

    def __init__(self, buckets: Optional[Iterable[float]] = None):
        self.buckets: Tuple[float, ...] = tuple(buckets or DEFAULT_BUCKETS)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        #: Per-bucket (non-cumulative) observation counts.
        self.counts: List[int] = [0] * len(self.buckets)
        #: Observations above the last finite bound.
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        if index == len(self.buckets):
            self.inf_count += 1
        else:
            self.counts[index] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le-label, cumulative-count)`` pairs, ending with +Inf."""
        pairs: List[Tuple[str, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            pairs.append((format_bound(bound), running))
        pairs.append(("+Inf", self.count))
        return pairs

    def quantile(self, fraction: float) -> float:
        """A bucket-resolution quantile estimate (upper bound of the
        bucket containing the target rank); 0.0 on an empty histogram."""
        if self.count == 0:
            return 0.0
        target = max(1, int(fraction * self.count + 0.5))
        running = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            if running >= target:
                return bound
        return float("inf")


def format_bound(bound: float) -> str:
    """A bucket bound as a Prometheus ``le`` value (shortest float
    form; no exponent noise for the common millisecond range)."""
    text = f"{bound:.10f}".rstrip("0")
    if text.endswith("."):
        text += "0"
    return text


def escape_label_value(value: str) -> str:
    """Label-value escaping per text format 0.0.4: backslash first
    (it is the escape character), then quote, then newline."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def escape_help(help_text: str) -> str:
    """HELP-line escaping: only backslash and newline — quotes are
    legal in help text, unlike in label values."""
    return help_text.replace("\\", r"\\").replace("\n", r"\n")


def format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def expose_counter(
    name: str,
    help_text: str,
    samples: Iterable[Tuple[Dict[str, str], Any]],
) -> List[str]:
    """HELP/TYPE header plus one sample line per ``(labels, value)``."""
    lines = [f"# HELP {name} {escape_help(help_text)}", f"# TYPE {name} counter"]
    for labels, value in samples:
        lines.append(f"{name}{format_labels(labels)} {format_value(value)}")
    return lines


def expose_gauge(
    name: str,
    help_text: str,
    samples: Iterable[Tuple[Dict[str, str], Any]],
) -> List[str]:
    lines = [f"# HELP {name} {escape_help(help_text)}", f"# TYPE {name} gauge"]
    for labels, value in samples:
        lines.append(f"{name}{format_labels(labels)} {format_value(value)}")
    return lines


def expose_histogram(
    name: str,
    help_text: str,
    series: Dict[str, "Histogram"],
    label_name: str = "phase",
) -> List[str]:
    """One histogram metric family with one labelled series per entry.

    Renders the conventional cumulative ``_bucket`` samples (the +Inf
    bucket equals ``_count``), then ``_sum`` and ``_count`` per series.
    """
    lines = [
        f"# HELP {name} {escape_help(help_text)}",
        f"# TYPE {name} histogram",
    ]
    for label_value in sorted(series):
        histogram = series[label_value]
        base = {label_name: label_value}
        for le, cumulative_count in histogram.cumulative():
            labels = format_labels({**base, "le": le})
            lines.append(f"{name}_bucket{labels} {cumulative_count}")
        labels = format_labels(base)
        lines.append(f"{name}_sum{labels} {format_value(histogram.sum)}")
        lines.append(f"{name}_count{labels} {histogram.count}")
    return lines
