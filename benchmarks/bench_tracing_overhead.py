"""Tracing must be free when off.

The span/metrics instrumentation added to the execution pipeline is
gated behind a single ``tracer is None`` identity check per loop, so
the default path (no tracer) must run at the same speed it did when
the baseline snapshot was committed.  This suite asserts the E13
hash-join median stays within tolerance of the committed
``BENCH_PR<N>.json`` figure with tracing off, and bounds the
(expected, paid-only-when-asked) cost of tracing on.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro import Database
from repro.observability import ExecTracer, TraceContext

#: Allowed drift of the untraced hash-join median vs the committed
#: baseline.  The acceptance figure is 5%; same-machine CI noise on a
#: ~16ms workload stays well inside it.
MAX_DRIFT = 0.05

QUERY = (
    "SELECT u.uid AS uid, o.oid AS oid, o.total AS total "
    "FROM users AS u JOIN orders AS o ON o.user_id = u.uid "
    "WHERE o.total >= 10"
)


def _db(n: int = 2_000) -> Database:
    n_users = max(n // 10, 10)
    db = Database(optimize=True)
    db.set("users", [{"uid": i, "name": f"user-{i}"} for i in range(n_users)])
    db.set(
        "orders",
        [
            {"oid": i, "user_id": (i * 7) % n_users, "total": (i * 13) % 500}
            for i in range(n)
        ],
    )
    db.execute(QUERY)  # warm compile + plan caches
    return db


def _median(db: Database, rounds: int = 9, tracer_factory=None) -> float:
    samples = []
    for __ in range(rounds):
        tracer = tracer_factory() if tracer_factory else None
        started = time.perf_counter()
        db.execute(QUERY, tracer=tracer)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _committed_baseline_median() -> float:
    from trajectory import latest_snapshot

    snapshot = latest_snapshot(Path(__file__).resolve().parent)
    assert snapshot is not None, "no committed BENCH_PR<N>.json"
    with open(snapshot) as handle:
        groups = json.load(handle)["groups"]
    return float(groups["e13_hash_join_n2000"]["median_s"])


def test_untraced_hash_join_matches_committed_baseline():
    """The acceptance bar: tracing off costs nothing measurable."""
    baseline = _committed_baseline_median()
    median = _median(_db())
    drift = (median - baseline) / baseline
    print(
        f"\nE13 hash join n=2000: committed {baseline * 1e3:.2f}ms, "
        f"now {median * 1e3:.2f}ms ({drift * 100:+.1f}%)"
    )
    assert drift <= MAX_DRIFT, (
        f"untraced hash join {drift * 100:+.1f}% vs committed baseline "
        f"(gate {MAX_DRIFT * 100:.0f}%) — instrumentation leaked onto "
        f"the default path?"
    )


def test_traced_run_overhead_is_bounded():
    """Tracing on is allowed to cost, but not an order of magnitude."""
    db = _db()
    off = _median(db)
    on = _median(
        db,
        tracer_factory=lambda: ExecTracer(trace=TraceContext(name="bench")),
    )
    ratio = on / off
    print(f"\ntracing on/off: {on * 1e3:.2f}ms / {off * 1e3:.2f}ms = {ratio:.2f}x")
    assert ratio < 5.0
