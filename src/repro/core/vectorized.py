"""Batch-vectorized execution of a planned query block.

The streaming clause pipeline (docs/PLANNER.md) moves one binding row
per generator frame; for large scans the interpreter overhead of those
frames dominates.  This module executes the same clause pipeline a
*chunk* (~:data:`~repro.core.plan_ops.CHUNK_ROWS` binding rows) at a
time: the physical operators yield lists of binding dicts
(:meth:`PlanOp.iter_chunks`), compiled expressions map over whole
chunks (:func:`repro.core.compile_expr.compile_batch`), and GROUP BY
folds chunks into per-group accumulator state.

Semantics are the eager reference pipeline's (``eval_block``): clauses
run clause-major (all FROM rows, then LET over them, and so on within
each chunk), which is exactly the order ``optimize=False`` evaluates
in, so any error the batch path surfaces is one the reference
semantics surfaces too.  The entry point is gated by
``Evaluator._can_batch`` — permissive mode, a single FROM item, no
LIMIT/OFFSET — and anything the gate rejects stays on the streaming
path.

Aggregate decomposition
-----------------------

The rewriter lowers SQL aggregates to ``COLL_X((SELECT VALUE expr FROM
grp AS g))`` over the GROUP AS bag.  Evaluated literally, that
materializes every group's members and re-runs a subquery per group.
:func:`decompose_block` recognizes those lowered call sites and inverts
them: each becomes an :class:`AggSpec` whose value expression is
evaluated *per input row* during the fold, so groups accumulate plain
value lists and never materialize member tuples.  The fold is exact —
it keeps the raw per-member values (including NULL/MISSING, which the
``COLL_*`` definitions treat per their own semantics) and invokes the
same registered aggregate definition over them at finalize time — so
results are bit-identical to evaluating the lowered subquery.  Blocks
whose GROUP AS variable is used outside recognized sites fall back to
the semi-batch path (:meth:`Evaluator._iter_group_by` over the folded
rows), which is always available.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.environment import Environment
from repro.core.grouping_sets import expand_grouping_sets
from repro.datamodel.equality import group_key
from repro.datamodel.values import Bag
from repro.errors import EvaluationError
from repro.functions import operators as ops
from repro.functions.registry import REGISTRY
from repro.syntax import ast

Binding = Dict[str, Any]

#: Placeholder-variable prefix for decomposed aggregate results; ``$``
#: keeps the names out of the user-writable identifier space.
_FOLD_VAR = "$fold"


# =========================================================================
# Aggregate decomposition
# =========================================================================


@dataclass
class AggSpec:
    """One decomposed aggregate call site.

    During the fold, ``value_expr`` (row-space: the lowered
    ``g.e.salary`` path rewritten back to the binding variable
    ``e.salary``) is evaluated per input row and appended to the
    group's accumulator list; at finalize time ``definition`` is
    invoked over the (optionally deduplicated) list and the result is
    bound to ``var`` in the group's output row.
    """

    var: str
    definition: Any
    distinct: bool
    value_expr: ast.Expr


@dataclass
class Decomposition:
    """A GROUP BY block rewritten into fold + finalize form."""

    clause: ast.GroupByClause
    specs: List[AggSpec]
    #: SELECT VALUE expression with aggregate sites replaced by
    #: ``VarRef($foldN)`` placeholders.
    select_expr: ast.Expr
    #: HAVING predicate with sites replaced likewise, or None.
    having_expr: Optional[ast.Expr]
    #: Row variables of the finalized group rows: key aliases then
    #: placeholder vars.
    group_row_vars: Tuple[str, ...]


def _rebinds(expr: ast.Expr, name: str) -> bool:
    """Whether any scope inside ``expr`` rebinds ``name`` (a nested
    subquery shadowing the group-element variable would make reverse
    substitution unsound)."""
    for node in expr.walk():
        if isinstance(node, ast.FromCollection):
            if node.alias == name or node.at_alias == name:
                return True
        elif isinstance(node, ast.FromUnpivot):
            if node.value_alias == name or node.at_alias == name:
                return True
        elif isinstance(node, ast.LetBinding):
            if node.name == name:
                return True
        elif isinstance(node, ast.GroupKey):
            if node.alias == name:
                return True
        elif isinstance(node, ast.GroupByClause):
            if node.group_as == name:
                return True
    return False


def _match_site(
    node: ast.Expr, group_var: str, row_vars: frozenset
) -> Optional[Tuple[Any, bool, ast.Expr]]:
    """Match one lowered aggregate call site.

    The exact shape ``Rewriter._lower_aggregate_call`` produces:
    ``COLL_X((SELECT VALUE value_expr FROM group_var AS elem))`` with no
    other clauses.  Returns ``(definition, distinct, value_expr)`` with
    ``value_expr`` rewritten from element-space (``elem.v``) back to
    row-space (``v``), or None when the node is not a decomposable
    site.
    """
    if not isinstance(node, ast.FunctionCall) or node.star or node.distinct:
        return None
    definition = REGISTRY.lookup(node.name)
    if definition is None or not definition.is_aggregate:
        return None
    if len(node.args) != 1 or not isinstance(node.args[0], ast.SubqueryExpr):
        return None
    query = node.args[0].query
    if not isinstance(query, ast.Query):
        return None
    if query.order_by or query.limit is not None or query.offset is not None:
        return None
    body = query.body
    if not isinstance(body, ast.QueryBlock):
        return None
    if (
        body.lets
        or body.where is not None
        or body.group_by is not None
        or body.having is not None
    ):
        return None
    if not isinstance(body.select, ast.SelectValue):
        return None
    if body.from_ is None or len(body.from_) != 1:
        return None
    item = body.from_[0]
    if not isinstance(item, ast.FromCollection) or item.at_alias:
        return None
    if not isinstance(item.expr, ast.VarRef) or item.expr.name != group_var:
        return None
    elem = item.alias
    if _rebinds(body.select.expr, elem):
        return None

    failed: List[bool] = []

    def strip(inner: ast.Node) -> ast.Node:
        if (
            isinstance(inner, ast.Path)
            and isinstance(inner.base, ast.VarRef)
            and inner.base.name == elem
        ):
            # ``g.v.attr`` came from substituting the row variable
            # ``v``; an attribute that is not a row variable means the
            # site navigates the group element itself — not invertible.
            if inner.attr not in row_vars:
                failed.append(True)
                return inner
            return ast.copy_span(ast.VarRef(name=inner.attr), inner)
        return inner

    value_expr = body.select.expr.transform(strip)
    if failed:
        return None
    from repro.core.planner import free_names

    names = free_names(value_expr)
    if elem in names or group_var in names:
        return None
    return definition, body.select.distinct, value_expr


def _replace_sites(
    expr: ast.Expr,
    group_var: str,
    row_vars: frozenset,
    specs: List[AggSpec],
) -> ast.Expr:
    """Replace lowered aggregate sites with placeholder variables.

    Top-down so an outer site is matched before its interior is
    touched; unmatched subqueries are left opaque (their aggregate
    sites, if any, reference their *own* group variable and must not
    be folded against ours — a remaining free reference to our group
    variable is caught by the caller's free-name check).
    """

    def rebuild(node: ast.Node) -> ast.Node:
        if isinstance(node, ast.Expr):
            site = _match_site(node, group_var, row_vars)
            if site is not None:
                definition, distinct, value_expr = site
                var = f"{_FOLD_VAR}{len(specs)}"
                specs.append(AggSpec(var, definition, distinct, value_expr))
                return ast.copy_span(ast.VarRef(name=var), node)
        if isinstance(node, (ast.SubqueryExpr, ast.CoerceSubquery)):
            return node
        changes = {}
        for fld in dataclasses.fields(node):
            old = getattr(node, fld.name)
            new = _rebuild_value(old, rebuild)
            if new is not old:
                changes[fld.name] = new
        return dataclasses.replace(node, **changes) if changes else node

    return rebuild(expr)


def _rebuild_value(value: Any, rebuild) -> Any:
    if isinstance(value, ast.Node):
        return rebuild(value)
    if isinstance(value, list):
        new_items = [_rebuild_value(item, rebuild) for item in value]
        if all(new is old for new, old in zip(new_items, value)):
            return value
        return new_items
    if isinstance(value, tuple):
        new_items = tuple(_rebuild_value(item, rebuild) for item in value)
        if all(new is old for new, old in zip(new_items, value)):
            return value
        return new_items
    return value


def decompose_block(
    block: ast.QueryBlock, row_vars: Tuple[str, ...]
) -> Optional[Decomposition]:
    """Fold/finalize decomposition of a GROUP BY block, or None.

    ``row_vars`` are the binding variables in scope at the GROUP BY
    (FROM variables plus LET names).  Decomposition requires a single
    plain grouping set, a ``SELECT VALUE`` projection, and that every
    use of the GROUP AS variable is a recognized lowered-aggregate
    site; anything else returns None and the caller uses the
    general-purpose grouping fallback.
    """
    clause = block.group_by
    if clause is None:
        return None
    sets = expand_grouping_sets(clause)
    if sets != [list(range(len(clause.keys)))]:
        return None
    if not isinstance(block.select, ast.SelectValue):
        return None
    group_var = clause.group_as
    row_var_set = frozenset(row_vars)
    specs: List[AggSpec] = []
    if group_var is not None:
        select_expr = _replace_sites(
            block.select.expr, group_var, row_var_set, specs
        )
        having_expr = (
            _replace_sites(block.having, group_var, row_var_set, specs)
            if block.having is not None
            else None
        )
        from repro.core.planner import free_names

        if group_var in free_names(select_expr):
            return None
        if having_expr is not None and group_var in free_names(having_expr):
            return None
    else:
        select_expr = block.select.expr
        having_expr = block.having
    group_row_vars = tuple(key.alias for key in clause.keys) + tuple(
        spec.var for spec in specs
    )
    return Decomposition(
        clause=clause,
        specs=specs,
        select_expr=select_expr,
        having_expr=having_expr,
        group_row_vars=group_row_vars,
    )


def cached_decomposition(
    evaluator, block: ast.QueryBlock, row_vars: Tuple[str, ...]
) -> Optional[Decomposition]:
    """Per-evaluator memo of :func:`decompose_block` (the block node is
    kept alive alongside the result so id() keys stay unique)."""
    entry = evaluator._decompositions.get(id(block))
    if entry is None:
        entry = (block, decompose_block(block, row_vars))
        evaluator._decompositions[id(block)] = entry
    return entry[1]


# =========================================================================
# Group folding (shared by the serial path and the morsel workers)
# =========================================================================

#: Group accumulator: identity tuple -> (key values, one value list per
#: AggSpec).  ``order`` preserves first-seen group order, which is the
#: output order of the reference pipeline.
GroupState = Dict[tuple, Tuple[List[Any], List[List[Any]]]]


def build_fold_fns(
    evaluator, decomp: Decomposition, row_vars: Tuple[str, ...]
) -> Tuple[List[Callable], List[Callable]]:
    """Batch-compiled key and aggregate-value functions for a fold."""
    from repro.core.compile_expr import compile_batch

    row_var_set = frozenset(row_vars)
    key_fns = [
        compile_batch(key.expr, evaluator, row_var_set)
        for key in decomp.clause.keys
    ]
    value_fns = [
        compile_batch(spec.value_expr, evaluator, row_var_set)
        for spec in decomp.specs
    ]
    return key_fns, value_fns


def fold_chunk(
    chunk: List[Binding],
    env: Environment,
    key_fns: List[Callable],
    value_fns: List[Callable],
    groups: GroupState,
    order: List[tuple],
) -> None:
    """Fold one chunk of binding rows into the group accumulators."""
    key_columns = [fn(chunk, env) for fn in key_fns]
    value_columns = [fn(chunk, env) for fn in value_fns]
    for index in range(len(chunk)):
        key_values = [column[index] for column in key_columns]
        identity = tuple(group_key(value) for value in key_values)
        state = groups.get(identity)
        if state is None:
            state = (key_values, [[] for __ in value_columns])
            groups[identity] = state
            order.append(identity)
        accumulators = state[1]
        for position, column in enumerate(value_columns):
            accumulators[position].append(column[index])


def merge_folds(
    partials: Iterable[Tuple[List[tuple], GroupState]],
) -> Tuple[List[tuple], GroupState]:
    """Merge per-morsel fold states in morsel order.

    Morsels partition the scan in row order, so first-seen group order
    and per-group value order across the merged state equal the serial
    fold's — the parallel result is bit-identical, not just
    bag-equal.
    """
    groups: GroupState = {}
    order: List[tuple] = []
    for partial_order, partial_groups in partials:
        for identity in partial_order:
            key_values, value_lists = partial_groups[identity]
            state = groups.get(identity)
            if state is None:
                groups[identity] = (key_values, value_lists)
                order.append(identity)
            else:
                for target, part in zip(state[1], value_lists):
                    target.extend(part)
    return order, groups


def finalize_groups(
    decomp: Decomposition,
    order: List[tuple],
    groups: GroupState,
    config,
) -> List[Binding]:
    """Finalize fold state into group output rows.

    Mirrors the reference semantics of the lowered subquery: optional
    DISTINCT over the raw member values, then the registered ``COLL_*``
    definition over a bag of them.  An empty input with no keys still
    produces the single implicit group (SQL's one-row answer).
    """
    clause = decomp.clause
    if not order and not clause.keys:
        groups[()] = ([], [[] for __ in decomp.specs])
        order.append(())
    rows: List[Binding] = []
    for identity in order:
        key_values, value_lists = groups[identity]
        row: Binding = {}
        for key, value in zip(clause.keys, key_values):
            row[key.alias] = value
        for spec, values in zip(decomp.specs, value_lists):
            if spec.distinct:
                values = ops.distinct_elements(values)
            row[spec.var] = spec.definition.invoke([Bag(values)], config)
        rows.append(row)
    return rows


# =========================================================================
# The batch executor
# =========================================================================


class _Stage:
    """Row/time tally for one clause stage of the batch pipeline."""

    __slots__ = ("name", "rows", "elapsed")

    def __init__(self, name: str):
        self.name = name
        self.rows = 0
        self.elapsed = 0.0


def execute_batch_query(evaluator, query, body, plan, env) -> Any:
    """Run one gated query block on the batch pipeline; returns the
    final query result (an ordered list under ORDER BY, else a Bag).

    The caller (``Evaluator._eval_query_batch``) has already verified
    the gate: permissive mode, optimization on, a physical plan with a
    single FROM item, no LIMIT/OFFSET, and not GROUP BY + ORDER BY
    together.
    """
    from repro.core.compile_expr import compile_batch

    config = evaluator.config
    tracer = evaluator.tracer
    item_plan = plan.items[0]
    op = item_plan.op

    var_order: List[str] = []
    for item in body.from_:
        evaluator._collect_item_vars(item, var_order)
    let_names = [let.name for let in body.lets]
    row_vars = tuple(var_order) + tuple(let_names)

    decomp: Optional[Decomposition] = None
    if body.group_by is not None:
        decomp = cached_decomposition(evaluator, body, row_vars)

    stages: List[_Stage] = []

    def stage(name: str) -> _Stage:
        tally = _Stage(name)
        stages.append(tally)
        return tally

    from_stage = stage("FROM")
    let_stage = stage("LET") if body.lets else None
    residual = plan.residual_where
    where_stage = stage("WHERE") if residual is not None else None
    group_stage = stage("GROUP BY") if body.group_by is not None else None

    prefix_fns = [
        compile_batch(predicate, evaluator, frozenset(var_order))
        for predicate in item_plan.prefix_filters
    ]
    let_fns = [
        (
            let.name,
            compile_batch(
                let.expr, evaluator, frozenset(var_order + let_names[:index])
            ),
        )
        for index, let in enumerate(body.lets)
    ]
    residual_fn = (
        compile_batch(residual, evaluator, frozenset(row_vars))
        if residual is not None
        else None
    )

    folding = decomp is not None
    key_fns: List[Callable] = []
    value_fns: List[Callable] = []
    if folding:
        key_fns, value_fns = build_fold_fns(evaluator, decomp, row_vars)
    groups: GroupState = {}
    group_order: List[tuple] = []
    kept_rows: List[Binding] = []

    def process_chunk(chunk: List[Binding]) -> None:
        """LET -> residual WHERE -> fold/accumulate, one chunk."""
        if let_fns:
            started = perf_counter()
            for name, let_fn in let_fns:
                column = let_fn(chunk, env)
                for row, value in zip(chunk, column):
                    row[name] = value
            let_stage.rows += len(chunk)
            let_stage.elapsed += perf_counter() - started
        if residual_fn is not None:
            started = perf_counter()
            verdicts = residual_fn(chunk, env)
            chunk = [
                row for row, verdict in zip(chunk, verdicts) if verdict is True
            ]
            where_stage.rows += len(chunk)
            where_stage.elapsed += perf_counter() - started
            if not chunk:
                return
        if folding:
            started = perf_counter()
            fold_chunk(chunk, env, key_fns, value_fns, groups, group_order)
            group_stage.elapsed += perf_counter() - started
        else:
            kept_rows.extend(chunk)

    # ---- FROM: serial chunks, or the morsel-parallel driver ----------
    ran_parallel = False
    if config.parallel >= 2:
        from repro.core.parallel import try_parallel

        parallel_mode = (
            "fold"
            if (
                folding
                and not let_fns
                and residual_fn is None
                and not prefix_fns
            )
            else "rows"
        )
        outcome = try_parallel(
            evaluator, item_plan, env, parallel_mode, decomp, row_vars
        )
        if outcome is not None:
            ran_parallel = True
            evaluator.parallel_workers = max(
                evaluator.parallel_workers, outcome.workers
            )
            from_stage.rows = outcome.rows_seen
            from_stage.elapsed = outcome.elapsed
            if outcome.mode == "fold":
                group_order, groups = outcome.order, outcome.groups
            else:
                rows = outcome.rows
                if prefix_fns:
                    for fn in prefix_fns:
                        if not rows:
                            break
                        verdicts = fn(rows, env)
                        rows = [
                            row
                            for row, verdict in zip(rows, verdicts)
                            if verdict is True
                        ]
                    from_stage.rows = len(rows)
                process_chunk(rows)

    if not ran_parallel:
        source = op.iter_chunks(evaluator, env)
        try:
            while True:
                started = perf_counter()
                try:
                    chunk = next(source)
                except StopIteration:
                    from_stage.elapsed += perf_counter() - started
                    break
                if prefix_fns:
                    for fn in prefix_fns:
                        if not chunk:
                            break
                        verdicts = fn(chunk, env)
                        chunk = [
                            row
                            for row, verdict in zip(chunk, verdicts)
                            if verdict is True
                        ]
                from_stage.rows += len(chunk)
                from_stage.elapsed += perf_counter() - started
                if chunk:
                    process_chunk(chunk)
        finally:
            close = getattr(source, "close", None)
            if close is not None:
                close()

    # ---- GROUP BY ----------------------------------------------------
    group_envs: Optional[List[Environment]] = None
    output_vars: List[str] = list(var_order) + let_names
    if folding:
        started = perf_counter()
        kept_rows = finalize_groups(decomp, group_order, groups, config)
        group_stage.rows += len(kept_rows)
        group_stage.elapsed += perf_counter() - started
        row_vars = decomp.group_row_vars
        having_expr = decomp.having_expr
        select_expr: Optional[ast.Expr] = decomp.select_expr
    elif body.group_by is not None:
        # Semi-batch fallback: general grouping (grouping sets, GROUP AS
        # consumed directly) over the folded rows via the streaming
        # grouper, then env-space HAVING/SELECT.
        started = perf_counter()
        group_envs = list(
            evaluator._iter_group_by(
                body.group_by,
                (env.extend(row) for row in kept_rows),
                env,
                output_vars,
            )
        )
        group_stage.rows += len(group_envs)
        group_stage.elapsed += perf_counter() - started
        output_vars = [key.alias for key in body.group_by.keys]
        if body.group_by.group_as:
            output_vars = output_vars + [body.group_by.group_as]
        having_expr = body.having
        select_expr = (
            body.select.expr
            if isinstance(body.select, ast.SelectValue)
            else None
        )
    else:
        having_expr = body.having
        select_expr = (
            body.select.expr
            if isinstance(body.select, ast.SelectValue)
            else None
        )

    # ---- HAVING ------------------------------------------------------
    if having_expr is not None:
        having_stage = stage("HAVING")
        started = perf_counter()
        if group_envs is not None:
            having_fn = evaluator.compiled(having_expr)
            group_envs = [
                current for current in group_envs if having_fn(current) is True
            ]
            having_stage.rows = len(group_envs)
        else:
            batch_fn = compile_batch(having_expr, evaluator, frozenset(row_vars))
            verdicts = batch_fn(kept_rows, env)
            kept_rows = [
                row
                for row, verdict in zip(kept_rows, verdicts)
                if verdict is True
            ]
            having_stage.rows = len(kept_rows)
        having_stage.elapsed = perf_counter() - started

    # ---- SELECT ------------------------------------------------------
    select = body.select
    distinct = select.distinct
    started = perf_counter()
    envs_out: Optional[List[Environment]] = None
    if group_envs is not None:
        if select_expr is not None:
            select_fn = evaluator.compiled(select_expr)
            values = [select_fn(current) for current in group_envs]
        else:
            values = [
                evaluator._eval_star(current, output_vars)
                for current in group_envs
            ]
        envs_out = group_envs
    elif select_expr is not None:
        select_fn = compile_batch(select_expr, evaluator, frozenset(row_vars))
        values = select_fn(kept_rows, env)
    else:
        values = [
            evaluator._eval_star(env.extend(row), output_vars)
            for row in kept_rows
        ]
    if distinct:
        values = ops.distinct_elements(values)
        envs_out = None
        select_stage = stage("SELECT DISTINCT")
    else:
        select_stage = stage("SELECT")
    select_stage.rows = len(values)
    select_stage.elapsed = perf_counter() - started

    # ---- stage records (streaming-recorder parity) -------------------
    if tracer is not None:
        trace = tracer.trace
        flush_started = perf_counter()
        rows_in = 1
        for tally in stages:
            tracer.record_stage(
                body, tally.name, rows_in, tally.rows, tally.elapsed
            )
            if trace is not None:
                trace.event(
                    tally.name,
                    "stage",
                    flush_started,
                    tally.elapsed,
                    {"rows_in": rows_in, "rows_out": tally.rows},
                )
            rows_in = tally.rows

    # ---- ORDER BY tail -----------------------------------------------
    if query.order_by:
        if envs_out is None and group_envs is None and not distinct:
            envs_out = [env.extend(row) for row in kept_rows]
        values = evaluator._apply_order_by(
            values, envs_out, query.order_by, env
        )
        return values
    return Bag(values)
