"""The paper's literal object notation.

Listings in the paper print data "using SQL literals ... similar to a
data format such as JSON, CBOR, or Ion" (Section II): bags as
``{{ ... }}``, tuples as ``{ 'name': value, ... }``, arrays as
``[ ... ]``, strings single-quoted, plus ``null``/``true``/``false`` and
``missing``.

Reading reuses the SQL++ expression parser (the notation *is* a constant
SQL++ expression) and evaluates it with the Core evaluator, so the
notation automatically stays consistent with the query language — e.g.
a MISSING attribute value omits the attribute.

:func:`dumps` pretty-prints any model value back in the same notation;
it is what the compatibility-kit report uses to show results the way the
paper prints them.
"""

from __future__ import annotations

from typing import Any

from repro.config import EvalConfig
from repro.core.environment import Environment
from repro.core.evaluator import Evaluator
from repro.datamodel.values import MISSING, Bag, Struct, type_name
from repro.errors import FormatError, SQLPPError
from repro.syntax.parser import parse_expression


def loads(text: str) -> Any:
    """Parse a literal value written in the paper's notation."""
    try:
        expr = parse_expression(text)
        evaluator = Evaluator(catalog={}, config=EvalConfig(typing_mode="strict"))
        return evaluator.eval_expr(expr, Environment())
    except SQLPPError as exc:
        raise FormatError(f"invalid SQL++ literal: {exc}") from exc


def dumps(value: Any, indent: int = 0, width: int = 2) -> str:
    """Render a model value in the paper's literal notation."""
    return _render(value, indent, width)


def _render(value: Any, indent: int, width: int) -> str:
    pad = " " * indent
    inner_pad = " " * (indent + width)
    if value is MISSING:
        return "missing"
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, list):
        if not value:
            return "[]"
        items = ",\n".join(
            inner_pad + _render(item, indent + width, width) for item in value
        )
        return "[\n" + items + "\n" + pad + "]"
    if isinstance(value, Bag):
        if not len(value):
            return "{{}}"
        items = ",\n".join(
            inner_pad + _render(item, indent + width, width) for item in value
        )
        return "{{\n" + items + "\n" + pad + "}}"
    if isinstance(value, Struct):
        if not len(value):
            return "{}"
        fields = ",\n".join(
            inner_pad
            + "'"
            + name.replace("'", "''")
            + "': "
            + _render(item, indent + width, width)
            for name, item in value.items()
        )
        return "{\n" + fields + "\n" + pad + "}"
    raise FormatError(f"cannot render {type_name(value)} as a SQL++ literal")
