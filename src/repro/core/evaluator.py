"""The SQL++ Core evaluator.

Evaluates *rewritten* (Core) queries: a query block is a pipeline of
clause functions over binding streams (paper, Section V-B — "it is best
to think of a SQL++ query as being a pipeline of clauses, starting with
the FROM, continuing with the optional WHERE, proceeding to the optional
GROUP BY, and then the optional HAVING, and finishing with the SELECT
clause.  Each clause is a function that inputs data and outputs data.").

The pipeline:

``FROM`` → bindings (left-correlated nested loops; variables bind to any
value, Section III-A) → ``LET`` → ``WHERE`` (keep on TRUE only) →
``GROUP BY ... GROUP AS`` (groups become data, Section V-B) → ``HAVING``
→ windows → ``SELECT VALUE`` / ``SELECT *`` / ``PIVOT`` → ``ORDER BY`` /
``LIMIT`` / ``OFFSET``.

Unordered queries produce bags; ``ORDER BY`` produces arrays; ``PIVOT``
queries produce a single tuple (Section VI-B).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.config import EvalConfig
from repro.core import coercion
from repro.core.environment import Environment, Unbound
from repro.core.grouping_sets import expand_grouping_sets
from repro.core.windows import compute_window_values, find_window_calls
from repro.datamodel.equality import group_key
from repro.datamodel.ordering import sort_key
from repro.datamodel.values import MISSING, Bag, Struct, is_collection, type_name
from repro.errors import BindingError, EvaluationError, TypeCheckError
from repro.functions import operators as ops
from repro.functions.registry import REGISTRY
from repro.functions.scalar import cast_value
from repro.syntax import ast


class _BlockResult:
    """Output of one query block: values plus (optionally) the binding
    environments they came from, used for ORDER BY key evaluation."""

    __slots__ = ("values", "envs", "is_pivot")

    def __init__(
        self,
        values: List[Any],
        envs: Optional[List[Environment]],
        is_pivot: bool = False,
    ):
        self.values = values
        self.envs = envs
        self.is_pivot = is_pivot


class _OrderKey:
    """A composite ORDER BY key with per-component direction.

    ``parts`` holds one ``(absence_rank, sort_key)`` component per ORDER
    BY item; comparison walks the components, flipping any marked
    descending, and resolves full ties by input sequence number — which
    makes the order total and reproduces exactly what the stable
    multi-pass sort (sort once per key, last key first) used to produce.
    """

    __slots__ = ("parts", "descs", "seq")

    def __init__(self, parts: Tuple, descs: Tuple[bool, ...], seq: int):
        self.parts = parts
        self.descs = descs
        self.seq = seq

    def __lt__(self, other: "_OrderKey") -> bool:
        for mine, theirs, desc in zip(self.parts, other.parts, self.descs):
            if mine == theirs:
                continue
            return theirs < mine if desc else mine < theirs
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _OrderKey):
            return NotImplemented
        return self.parts == other.parts and self.seq == other.seq


class _ReverseKey:
    """Inverts an :class:`_OrderKey` so ``heapq``'s min-heap behaves as
    a max-heap (the top-K consumer evicts the *largest* kept key)."""

    __slots__ = ("key",)

    def __init__(self, key: _OrderKey):
        self.key = key

    def __lt__(self, other: "_ReverseKey") -> bool:
        return other.key < self.key


def _parts_less(mine: Tuple, theirs: Tuple, descs: Tuple[bool, ...]) -> bool:
    """Whether composite key ``mine`` sorts strictly before ``theirs``.

    The allocation-free pre-check of the top-K hot loop: equal
    composites return False because the candidate always carries the
    larger sequence number, so arrival order breaks the tie against it
    — the same verdict :class:`_OrderKey` would reach, without
    building one for the (overwhelmingly common) rejected rows.
    """
    for mine_part, theirs_part, desc in zip(mine, theirs, descs):
        if mine_part == theirs_part:
            continue
        return theirs_part < mine_part if desc else mine_part < theirs_part
    return False


class _StageTally:
    """Per-stage row/time counters for the streaming clause pipeline."""

    __slots__ = ("name", "rows", "elapsed")

    def __init__(self, name: str):
        self.name = name
        self.rows = 0
        self.elapsed = 0.0


def _close_iter(it) -> None:
    """Close a generator-backed iterator promptly (no-op for plain
    iterators); used so early-terminating consumers release upstream
    producers deterministically instead of waiting for garbage
    collection."""
    close = getattr(it, "close", None)
    if close is not None:
        close()


def _tallied(source: Iterable, tally: _StageTally) -> Iterator:
    """Count rows and time-in-``next()`` (inclusive of upstream stages,
    like operator timings) as they stream through a stage boundary."""
    it = iter(source)
    try:
        while True:
            started = perf_counter()
            try:
                item = next(it)
            except StopIteration:
                tally.elapsed += perf_counter() - started
                break
            tally.elapsed += perf_counter() - started
            tally.rows += 1
            yield item
    finally:
        _close_iter(it)


def _let_rows(let_fns, source: Iterable[Environment]) -> Iterator[Environment]:
    for current in source:
        for name, let_fn in let_fns:
            current = current.bind(name, let_fn(current))
        yield current


def _filter_rows(predicate_fn, source: Iterable[Environment]) -> Iterator[Environment]:
    for current in source:
        if predicate_fn(current) is True:
            yield current


#: Sentinel returned by ``_eval_query_batch`` when the batch pipeline
#: declines after the gate passed (no usable plan); the caller falls
#: through to the streaming path.
_STREAM_INSTEAD = object()


class Evaluator:
    """Evaluates Core queries against a catalog of named values.

    ``catalog`` is any mapping-like object supporting ``__contains__``
    and ``__getitem__`` over dotted names (see
    :class:`repro.catalog.Catalog`).  ``parameters`` supplies values for
    positional ``?`` parameters.
    """

    #: Bound on the per-evaluator compiled-closure cache; crossed only
    #: by long-lived memoized evaluators, which clear and re-warm.
    COMPILED_CACHE_SIZE = 8192

    def __init__(
        self,
        catalog,
        config: Optional[EvalConfig] = None,
        parameters: Optional[Sequence[Any]] = None,
        tracer=None,
        stats=None,
    ):
        from repro.datamodel.convert import from_python
        from repro.observability.limits import ResourceGovernor

        self._catalog = catalog if catalog is not None else {}
        self.config = config or EvalConfig()
        self._parameters = [from_python(value) for value in parameters or []]
        self._compiled: Dict[int, Any] = {}
        self._plans: Dict[int, Any] = {}
        self._batch_plans: Dict[int, Any] = {}
        self._decompositions: Dict[int, Any] = {}
        self._streamable: Dict[int, Tuple[Any, bool]] = {}
        self._reorder_flags: Dict[int, Tuple[Any, bool]] = {}
        #: Whether any query block ran on the streaming (pipelined)
        #: clause pipeline during this evaluator's lifetime; surfaced
        #: as ``QueryMetrics.streamed``.
        self.streamed = False
        #: Whether the top-level block ran on the batch (vectorized)
        #: pipeline; surfaced as ``QueryMetrics.batched``.
        self.batched = False
        #: How many morsel workers the parallel driver actually used
        #: (0 = serial); surfaced as ``QueryMetrics.parallel_workers``.
        self.parallel_workers = 0
        #: Optional ExecTracer collecting EXPLAIN ANALYZE statistics.
        self.tracer = tracer
        #: Optional :class:`repro.catalog.statistics.StatsProvider`
        #: feeding the planner's cost-based join ordering.
        self._stats = stats
        #: The query object ``execute`` was entered with; the batch
        #: pipeline engages only for this top-level query, so nested
        #: subqueries keep the cheap streaming path.
        self._top_query: Optional[ast.Query] = None
        #: Wall time spent in the physical planner, or None when the
        #: planner never ran for this execution (reference pipeline,
        #: strict mode).  Always measured — planning happens once per
        #: block per evaluator, never per binding — so `plan:` phase
        #: reporting does not depend on a tracer being attached.
        self.plan_time_s: Optional[float] = None
        #: Cooperative limit enforcement; None when the config sets no
        #: limits, so the hot paths pay a single identity check.
        self.governor = ResourceGovernor.for_config(self.config)

    def rebind(self, parameters=None, tracer=None) -> "Evaluator":
        """Reset per-execution state so a memoized evaluator can serve
        a new query with warm compile/plan caches.

        Everything keyed to the *query text or config* survives
        (compiled closures, physical plans, streamability verdicts —
        staleness against catalog data is handled per lookup); anything
        keyed to the *execution* is rebuilt: parameters, tracer, the
        streamed/batched flags, planner timing, and a fresh governor so
        limits measure this query's own clock and rows.
        """
        from repro.datamodel.convert import from_python
        from repro.observability.limits import ResourceGovernor

        self._parameters = [from_python(value) for value in parameters or []]
        self.tracer = tracer
        self.streamed = False
        self.batched = False
        self.parallel_workers = 0
        self.plan_time_s = None
        self._top_query = None
        self.governor = ResourceGovernor.for_config(self.config)
        if len(self._compiled) > self.COMPILED_CACHE_SIZE:
            self._compiled.clear()
        return self

    def compiled(self, expr: ast.Expr):
        """The closure-compiled form of an expression (cached per node).

        Semantically identical to ``eval_expr`` (see
        :mod:`repro.core.compile_expr`); used on the per-binding hot
        paths of the clause pipeline.
        """
        entry = self._compiled.get(id(expr))
        if entry is None:
            from repro.core.compile_expr import compile_expr

            # The cache keeps a reference to the node alongside the
            # closure: a key of bare id() could be reused by a new node
            # after the old one is garbage-collected.
            entry = (expr, compile_expr(expr, self))
            self._compiled[id(expr)] = entry
        return entry[1]

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(self, query: ast.Query, env: Optional[Environment] = None) -> Any:
        """Evaluate a query, translating internal signals to public errors."""
        self._top_query = query
        try:
            return self.eval_query(query, env or Environment())
        except Unbound as unbound:
            raise BindingError(
                f"unresolved name {unbound.name!r}: not a variable in scope "
                "and not a named value in the database"
            ) from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def eval_query(self, query: ast.Query, env: Environment) -> Any:
        governor = self.governor
        if governor is None:
            return self._eval_query_impl(query, env)
        # Every (sub)query entry counts toward ``max_recursion`` and is a
        # natural point to check the wall-clock deadline.
        governor.enter_query()
        try:
            return self._eval_query_impl(query, env)
        finally:
            governor.exit_query()

    def _eval_query_impl(self, query: ast.Query, env: Environment) -> Any:
        body = query.body
        if isinstance(body, ast.QueryBlock):
            self._note_reorder(query, body)
            if self._can_batch(query, body):
                result = self._eval_query_batch(query, body, env)
                if result is not _STREAM_INSTEAD:
                    return result
            if self._can_stream(body):
                return self._eval_query_streaming(query, body, env)
            result = self.eval_block(body, env)
            if result.is_pivot:
                return result.values[0]
            values, envs = result.values, result.envs
        elif isinstance(body, ast.SetOp):
            values, envs = self._eval_setop(body, env), None
        else:
            value = self.eval_expr(body, env)
            if not query.order_by and query.limit is None and query.offset is None:
                return value
            values = list(self._require_collection(value, "query body"))
            envs = None

        ordered = bool(query.order_by)
        if ordered:
            values = self._apply_order_by(values, envs, query.order_by, env)
        values = self._apply_limit_offset(values, query, env)
        if ordered:
            return values
        return Bag(values)

    # ------------------------------------------------------------------
    # Streaming (pipelined) execution
    # ------------------------------------------------------------------

    def _can_stream(self, block: ast.QueryBlock) -> bool:
        """Whether a block runs on the pipelined clause pipeline.

        Streaming requires ``optimize=True`` (``optimize=False`` is the
        eager executable reference semantics) and a block shape without
        pipeline-incompatible features: PIVOT produces one tuple from
        the whole stream and window functions need the full partition,
        so both stay on the eager path; a block without FROM is a single
        binding and gains nothing from laziness.
        """
        if not self.config.optimize:
            return False
        entry = self._streamable.get(id(block))
        if entry is None:
            streamable = (
                block.from_ is not None
                and not isinstance(block.select, ast.PivotClause)
                and not find_window_calls(block.select)
            )
            entry = (block, streamable)
            self._streamable[id(block)] = entry
        return entry[1]

    # ------------------------------------------------------------------
    # Batch (vectorized) execution
    # ------------------------------------------------------------------

    def _note_reorder(self, query: ast.Query, body: ast.QueryBlock) -> None:
        """Record whether cost-based join reordering may change this
        block's plan.  Reordering permutes the output *bag* order —
        semantically free, but ORDER BY tie-breaking, DISTINCT
        first-seen order and GROUP BY first-group order are all defined
        by input sequence, so those shapes keep the syntactic order."""
        if id(body) not in self._reorder_flags:
            allowed = (
                not query.order_by
                and body.group_by is None
                and not getattr(body.select, "distinct", False)
            )
            self._reorder_flags[id(body)] = (body, allowed)

    def _can_batch(self, query: ast.Query, body: ast.QueryBlock) -> bool:
        """Whether the top-level block runs on the batch pipeline.

        Batch requires everything streaming requires, plus: it must be
        the query ``execute`` was entered with (nested subqueries are
        usually small — chunking them costs more than it saves) and
        have no LIMIT/OFFSET (bounded consumers are the streaming
        pipeline's home turf).  GROUP BY with ORDER BY stays streaming
        because the sort keys may contain lowered aggregate sites that
        must see the group environments.  Whether the planner folded
        the FROM clause into a *single* operator tree is only known
        after planning, so that check lives in ``_eval_query_batch``.
        """
        config = self.config
        if not config.batch or not config.optimize or not config.is_permissive:
            return False
        if query is not self._top_query:
            return False
        if query.limit is not None or query.offset is not None:
            return False
        if body.from_ is None:
            return False
        if not self._can_stream(body):
            return False
        if body.group_by is not None and query.order_by:
            return False
        return True

    def _eval_query_batch(self, query: ast.Query, body: ast.QueryBlock, env):
        plan = self._batch_plan(body)
        if plan is None:
            return _STREAM_INSTEAD
        if len(plan.items) != 1:
            # The planner kept several FROM items (e.g. a comma join it
            # could not turn into a hash join); the chunk protocol
            # drives exactly one operator tree, so stream instead.
            return _STREAM_INSTEAD
        from repro.core.vectorized import execute_batch_query

        # The batch pipeline is the chunked form of the streaming
        # pipeline; both flags are observable so existing streaming
        # assertions stay true and the batch path is distinguishable.
        self.streamed = True
        self.batched = True
        return execute_batch_query(self, query, body, plan, env)

    def _batch_plan(self, block: ast.QueryBlock):
        """A physical plan for the batch executor, forcing one when the
        planner found no rewrite (the chunk protocol needs an operator
        tree even for a bare scan).  Traced executions decline instead:
        EXPLAIN ANALYZE renders the reference FROM tree for plans
        without rewrites, and a forced plan would change that surface.
        """
        plan = self._block_plan(block)
        if plan is not None:
            return plan
        if self.tracer is not None and self.tracer.timing:
            return None
        version = self._catalog_data_version()
        entry = self._batch_plans.get(id(block))
        if entry is None or entry[2] != version:
            from repro.core.planner import plan_block

            started = perf_counter()
            plan = plan_block(
                block,
                self.config,
                stats=self._stats,
                reorder_ok=self._reorder_flags.get(id(block), (None, False))[1],
                force=True,
                catalog_names=self._catalog_names(),
            )
            elapsed = perf_counter() - started
            self.plan_time_s = (self.plan_time_s or 0.0) + elapsed
            if plan is not None:
                from repro.analysis.verify_plan import maybe_verify_block_plan

                maybe_verify_block_plan(plan)
            entry = (block, plan, version)
            self._batch_plans[id(block)] = entry
        return entry[1]

    def _catalog_names(self) -> set:
        """Names the catalog can resolve, for the planner's emptiness
        proof (a free name outside this set might be a binding error at
        runtime, so pruning must not erase its evaluation)."""
        names = getattr(self._catalog, "names", None)
        if callable(names):
            return set(names())
        try:
            return set(self._catalog)
        except TypeError:  # pragma: no cover - defensive
            return set()

    def _catalog_data_version(self):
        """The catalog's data + feedback version, for plan staleness —
        0 for plain mapping catalogs (tests), which never invalidate.
        The feedback component makes a new cardinality observation
        (query store, docs/OBSERVABILITY.md) invalidate cached plans
        exactly once, so the corrected join order takes effect on the
        next execution."""
        if self._stats is None:
            return 0
        data_version = getattr(self._catalog, "data_version", 0)
        feedback_version = getattr(self._stats, "feedback_version", None)
        if feedback_version is None:
            return data_version
        return (data_version, feedback_version)

    def _eval_query_streaming(
        self, query: ast.Query, body: ast.QueryBlock, env: Environment
    ) -> Any:
        """Pipelined evaluation of a query whose body is a streamable
        block (docs/PLANNER.md).

        LIMIT/OFFSET cardinals are evaluated *before* the stream starts
        (decision log, docs/LANGUAGE.md §8) so the consumers can bound
        the work: ``ORDER BY ... LIMIT k`` runs a top-K heap in O(k)
        memory, an unordered LIMIT stops the producers as soon as
        enough rows arrived, and a full ORDER BY still materializes but
        over a streamed input.
        """
        self.streamed = True
        limit = (
            self._cardinal(query.limit, env, "LIMIT")
            if query.limit is not None
            else None
        )
        offset = (
            self._cardinal(query.offset, env, "OFFSET")
            if query.offset is not None
            else None
        )
        if query.order_by:
            if limit is not None:
                bound = limit + (offset or 0)
                select_fn = self._deferred_select_fn(body, query.order_by)
                if select_fn is not None:
                    values = self._top_k_deferred(
                        body, query.order_by, bound, env, select_fn
                    )
                else:
                    stream = self._stream_block(body, env)
                    values = self._top_k(stream, query.order_by, bound, env)
                return values[offset:] if offset else values
            stream = self._stream_block(body, env)
            pairs: List[Tuple[Any, Optional[Environment]]] = []
            source = iter(stream)
            try:
                for pair in source:
                    pairs.append(pair)
            finally:
                _close_iter(source)
            values = [value for value, __ in pairs]
            envs: Optional[List[Environment]] = None
            if pairs and pairs[0][1] is not None:
                envs = [pair_env for __, pair_env in pairs]
            values = self._apply_order_by(values, envs, query.order_by, env)
            if offset:
                values = values[offset:]
            return values
        stream = self._stream_block(body, env)
        values = []
        source = iter(stream)
        try:
            if limit != 0:
                skipped = 0
                for value, __ in source:
                    if offset is not None and skipped < offset:
                        skipped += 1
                        continue
                    values.append(value)
                    if limit is not None and len(values) >= limit:
                        break
        finally:
            _close_iter(source)
        return Bag(values)

    def _top_k(
        self,
        stream: Iterable[Tuple[Any, Optional[Environment]]],
        order_by: Sequence[ast.OrderItem],
        bound: int,
        outer_env: Environment,
    ) -> List[Any]:
        """``ORDER BY ... LIMIT k`` via a bounded heap.

        Keeps the ``bound`` smallest composite keys seen so far (a
        min-heap of inverted keys, so the root is the largest kept key
        and is evicted when a smaller one arrives) — O(k) memory and
        exactly one evaluation of each ORDER BY key per row.  Ties
        resolve by arrival sequence, reproducing the stable full sort
        bit-for-bit.
        """
        source = iter(stream)
        if bound <= 0:
            _close_iter(source)
            return []
        spec = self._order_spec(order_by)
        descs = tuple(item.desc for item in order_by)
        heap: List[Tuple[_ReverseKey, Any]] = []
        root_parts: Optional[Tuple] = None
        seq = 0
        try:
            for value, pair_env in source:
                sort_env = self._sort_env(value, pair_env, outer_env)
                parts = self._composite_parts(spec, sort_env)
                if root_parts is None:
                    key = _OrderKey(parts, descs, seq)
                    heapq.heappush(heap, (_ReverseKey(key), value))
                    if len(heap) == bound:
                        root_parts = heap[0][0].key.parts
                elif _parts_less(parts, root_parts, descs):
                    key = _OrderKey(parts, descs, seq)
                    heapq.heapreplace(heap, (_ReverseKey(key), value))
                    root_parts = heap[0][0].key.parts
                seq += 1
        finally:
            _close_iter(source)
        entries = sorted(heap, key=lambda entry: entry[0].key)
        return [value for __, value in entries]

    def _deferred_select_fn(
        self, block: ast.QueryBlock, order_by: Sequence[ast.OrderItem]
    ) -> Optional[Any]:
        """The compiled SELECT expression when projection can be
        deferred past the top-K heap (late materialization), else None.

        Deferring evaluates the SELECT only for the k rows the heap
        keeps — the big win when the projection is expensive (computed
        attributes, nested subqueries).  It is sound only when the
        ORDER BY keys provably cannot observe the projected value: the
        select must be a non-DISTINCT ``SELECT VALUE`` of a tuple
        literal with literal attribute names, none of which occur as a
        variable name in any ORDER BY key (the keys' sort environment
        overlays the output tuple's attributes, so a shared name could
        shadow a binding variable).
        """
        select = block.select
        if not isinstance(select, ast.SelectValue) or select.distinct:
            return None
        expr = select.expr
        if not isinstance(expr, ast.StructLit):
            return None
        field_names = set()
        for field in expr.fields:
            if not isinstance(field.key, ast.Literal) or not isinstance(
                field.key.value, str
            ):
                return None
            field_names.add(field.key.value)
        from repro.core.planner import free_names

        for item in order_by:
            if free_names(item.expr) & field_names:
                return None
        return self.compiled(expr)

    def _top_k_deferred(
        self,
        block: ast.QueryBlock,
        order_by: Sequence[ast.OrderItem],
        bound: int,
        outer_env: Environment,
        select_fn,
    ) -> List[Any]:
        """Top-K with late materialization: the heap keeps binding
        environments, and the SELECT expression runs only for the
        ``bound`` survivors after the stream is exhausted.  Rows the
        heap evicts never evaluate their projection — including any
        error it would have raised, the same visibility rule as every
        other early-terminating consumer (docs/LANGUAGE.md §8)."""
        stream = self._stream_block(block, outer_env, project=False)
        source = iter(stream)
        if bound <= 0:
            _close_iter(source)
            return []
        spec = self._order_spec(order_by)
        descs = tuple(item.desc for item in order_by)
        heap: List[Tuple[_ReverseKey, Environment]] = []
        root_parts: Optional[Tuple] = None
        seq = 0
        composite_parts = self._composite_parts
        try:
            for current in source:
                parts = composite_parts(spec, current)
                if root_parts is None:
                    key = _OrderKey(parts, descs, seq)
                    heapq.heappush(heap, (_ReverseKey(key), current))
                    if len(heap) == bound:
                        root_parts = heap[0][0].key.parts
                elif _parts_less(parts, root_parts, descs):
                    key = _OrderKey(parts, descs, seq)
                    heapq.heapreplace(heap, (_ReverseKey(key), current))
                    root_parts = heap[0][0].key.parts
                seq += 1
        finally:
            _close_iter(source)
        entries = sorted(heap, key=lambda entry: entry[0].key)
        tracer = self.tracer
        if tracer is not None and not tracer.timing:
            tracer = None
        started = perf_counter() if tracer is not None else 0.0
        values = [select_fn(current) for __, current in entries]
        if tracer is not None:
            elapsed = perf_counter() - started
            tracer.record_stage(block, "SELECT", seq, len(values), elapsed)
            if tracer.trace is not None:
                tracer.trace.event(
                    "SELECT",
                    "stage",
                    started,
                    elapsed,
                    {"rows_in": seq, "rows_out": len(values)},
                )
        return values

    def _order_spec(self, order_by: Sequence[ast.OrderItem]) -> List[Tuple]:
        """``(key_fn, desc, nulls_first)`` per ORDER BY item — the key
        builder shared by the full sort and the top-K heap."""
        return [
            (self.compiled(item.expr), item.desc, item.nulls_first)
            for item in order_by
        ]

    def _composite_parts(self, spec: List[Tuple], sort_env: Environment) -> Tuple:
        """One row's composite sort key: an ``(absence_rank, sort_key)``
        component per ORDER BY item, each key expression evaluated
        exactly once.  The absence rank implements NULLS FIRST/LAST
        (SQL++ default: absent first ascending, last descending)."""
        parts = []
        for key_fn, desc, nulls_first in spec:
            key_value = key_fn(sort_env)
            absent = key_value is None or key_value is MISSING
            if nulls_first is None:
                primary = 0 if absent else 1
            else:
                primary = 0 if (absent == nulls_first) else 1
                if desc:
                    primary = 1 - primary
            parts.append((primary, sort_key(key_value)))
        return tuple(parts)

    def _sort_env(
        self,
        value: Any,
        env: Optional[Environment],
        outer_env: Environment,
    ) -> Environment:
        """The environment ORDER BY keys evaluate in: the row's binding
        environment when available, overlaid with the output element's
        attributes (so both underlying variables and select aliases are
        usable, as in SQL)."""
        base = env if env is not None else outer_env
        if isinstance(value, Struct):
            base = base.extend(dict(value.items()))
        return base

    def _apply_order_by(
        self,
        values: List[Any],
        envs: Optional[List[Environment]],
        order_by: Sequence[ast.OrderItem],
        outer_env: Environment,
    ) -> List[Any]:
        """Stable single-pass sort on one composite key per row.

        Each ORDER BY key expression is evaluated exactly once per row
        and the rows are sorted once, on the composite of all keys —
        direction and absence handled per component — replacing the
        previous evaluate-and-stable-sort-per-key passes (identical
        ordering by lexicographic composition).  Uniform-direction keys
        sort as native tuples; mixed ASC/DESC uses the
        :class:`_OrderKey` comparator that flips components
        individually.
        """
        spec = self._order_spec(order_by)
        all_parts: List[Tuple] = []
        for position, value in enumerate(values):
            sort_env = self._sort_env(
                value, envs[position] if envs is not None else None, outer_env
            )
            all_parts.append(self._composite_parts(spec, sort_env))
        indexed = list(range(len(values)))
        descs = tuple(item.desc for item in order_by)
        if len(set(descs)) <= 1:
            indexed.sort(key=all_parts.__getitem__, reverse=descs[0])
        else:
            indexed.sort(
                key=lambda position: _OrderKey(all_parts[position], descs, position)
            )
        return [values[position] for position in indexed]

    def _apply_limit_offset(
        self, values: List[Any], query: ast.Query, env: Environment
    ) -> List[Any]:
        if query.offset is not None:
            offset = self._cardinal(query.offset, env, "OFFSET")
            values = values[offset:]
        if query.limit is not None:
            limit = self._cardinal(query.limit, env, "LIMIT")
            values = values[:limit]
        return values

    def _cardinal(self, expr: ast.Expr, env: Environment, what: str) -> int:
        value = self.eval_expr(expr, env)
        if isinstance(value, bool) or not isinstance(value, int):
            raise EvaluationError(f"{what} expects an integer, got {type_name(value)}")
        if value < 0:
            raise EvaluationError(f"{what} must be non-negative")
        return value

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------

    def _eval_setop(self, setop: ast.SetOp, env: Environment) -> List[Any]:
        left = self._setop_elements(setop.left, env)
        right = self._setop_elements(setop.right, env)
        if setop.op == "UNION":
            combined = left + right
            return combined if setop.all else ops.distinct_elements(combined)
        if setop.op == "INTERSECT":
            counts = _multiset_counts(right)
            result = []
            for item in left:
                key = group_key(item)
                if counts.get(key, 0) > 0:
                    counts[key] -= 1
                    result.append(item)
            return result if setop.all else ops.distinct_elements(result)
        if setop.op == "EXCEPT":
            counts = _multiset_counts(right)
            result = []
            for item in left:
                key = group_key(item)
                if counts.get(key, 0) > 0:
                    counts[key] -= 1
                else:
                    result.append(item)
            return result if setop.all else ops.distinct_elements(result)
        raise EvaluationError(f"unknown set operation {setop.op}")

    def _setop_elements(self, term: ast.Node, env: Environment) -> List[Any]:
        if isinstance(term, ast.QueryBlock):
            result = self.eval_block(term, env)
            if result.is_pivot:
                raise EvaluationError("PIVOT query cannot be a set-operation input")
            return list(result.values)
        if isinstance(term, ast.SetOp):
            return self._eval_setop(term, env)
        if isinstance(term, ast.Query):
            return list(
                self._require_collection(
                    self.eval_query(term, env), "set-operation input"
                )
            )
        value = self.eval_expr(term, env)
        return list(self._require_collection(value, "set-operation input"))

    def _require_collection(self, value: Any, what: str):
        if is_collection(value):
            return value
        raise EvaluationError(f"{what} must be a collection, got {type_name(value)}")

    # ------------------------------------------------------------------
    # Query blocks
    # ------------------------------------------------------------------

    def eval_block(self, block: ast.QueryBlock, env: Environment) -> _BlockResult:
        # FROM — binding streams; no FROM means a single empty binding.
        # With optimization on (permissive mode only), the planner may
        # replace the FROM loop and part of the WHERE with a physical
        # plan (hash joins, pushed-down predicates — docs/PLANNER.md);
        # ``optimize=False`` is the executable reference semantics.
        tracer = self.tracer
        trace = tracer.trace if tracer is not None else None
        mark = perf_counter() if tracer is not None else 0.0

        def record(stage: str, rows_in: int, rows_out: int) -> None:
            nonlocal mark
            now = perf_counter()
            tracer.record_stage(block, stage, rows_in, rows_out, now - mark)
            if trace is not None:
                trace.event(
                    stage,
                    "stage",
                    mark,
                    now - mark,
                    {"rows_in": rows_in, "rows_out": rows_out},
                )
            mark = now

        var_order: List[str] = []
        plan = None
        if block.from_ is None:
            envs = [env]
        else:
            for item in block.from_:
                self._collect_item_vars(item, var_order)
            plan = self._block_plan(block)
            if plan is not None:
                envs = plan.execute(self, env)
            else:
                envs = [env]
                for item in block.from_:
                    envs = self._apply_from_item(item, envs)
            if tracer is not None:
                record("FROM", 1, len(envs))

        # LET
        if block.lets:
            rows_in = len(envs)
            for let in block.lets:
                var_order.append(let.name)
                let_fn = self.compiled(let.expr)
                envs = [
                    current.bind(let.name, let_fn(current)) for current in envs
                ]
            if tracer is not None:
                record("LET", rows_in, len(envs))

        # WHERE (the planner may have pushed some conjuncts into FROM)
        where_expr = block.where if plan is None else plan.residual_where
        if where_expr is not None:
            rows_in = len(envs)
            where_fn = self.compiled(where_expr)
            envs = [current for current in envs if where_fn(current) is True]
            if tracer is not None:
                record("WHERE", rows_in, len(envs))

        # GROUP BY ... GROUP AS
        output_vars = var_order
        if block.group_by is not None:
            rows_in = len(envs)
            envs = self._apply_group_by(block.group_by, envs, env, var_order)
            output_vars = [key.alias for key in block.group_by.keys]
            if block.group_by.group_as:
                output_vars = output_vars + [block.group_by.group_as]
            if tracer is not None:
                record("GROUP BY", rows_in, len(envs))

        # HAVING
        if block.having is not None:
            rows_in = len(envs)
            having_fn = self.compiled(block.having)
            envs = [current for current in envs if having_fn(current) is True]
            if tracer is not None:
                record("HAVING", rows_in, len(envs))

        # Window functions (computed over the final binding stream).
        select = block.select
        window_calls = find_window_calls(select)
        if window_calls:
            select, envs = self._bind_windows(select, window_calls, envs)

        # SELECT / PIVOT
        if isinstance(select, ast.PivotClause):
            result = _BlockResult(
                [self._eval_pivot(select, envs)], None, is_pivot=True
            )
            if tracer is not None:
                record("PIVOT", len(envs), 1)
            return result
        if isinstance(select, ast.SelectValue):
            select_fn = self.compiled(select.expr)
            values = [select_fn(current) for current in envs]
            if select.distinct:
                values = ops.distinct_elements(values)
                if tracer is not None:
                    record("SELECT DISTINCT", len(envs), len(values))
                return _BlockResult(values, None)
            if tracer is not None:
                record("SELECT", len(envs), len(values))
            return _BlockResult(values, envs)
        if isinstance(select, ast.SelectStar):
            values = [self._eval_star(current, output_vars) for current in envs]
            if select.distinct:
                values = ops.distinct_elements(values)
                if tracer is not None:
                    record("SELECT DISTINCT", len(envs), len(values))
                return _BlockResult(values, None)
            if tracer is not None:
                record("SELECT", len(envs), len(values))
            return _BlockResult(values, envs)
        raise EvaluationError(
            f"unexpected SELECT clause after rewriting: {type(select).__name__}"
        )

    # -- streaming clause pipeline -------------------------------------------

    def _stream_block(
        self, block: ast.QueryBlock, env: Environment, project: bool = True
    ) -> Iterator[Any]:
        """The block's clause pipeline as a lazy generator chain.

        Yields ``(value, env)`` pairs — the output element plus the
        binding environment it came from (None after DISTINCT, which
        collapses environments), mirroring what :meth:`eval_block`
        returns eagerly.  Each clause wraps the previous clause's
        iterator, so a consumer that stops early (LIMIT, top-K, EXISTS)
        stops every upstream producer with it.  GROUP BY remains a
        pipeline breaker but folds rows into hash-group state as they
        arrive instead of buffering the binding stream.

        With ``project=False`` the SELECT clause is skipped and the
        stream yields bare binding environments — the late-
        materialization mode of :meth:`_top_k_deferred`, which records
        the SELECT stage itself after projecting the survivors.
        """
        tracer = self.tracer
        if tracer is not None and not tracer.timing:
            # Feedback-sampling mode: operators count their own rows
            # inside the plan; the stage tallies (and their closures)
            # are pure timing surface, so skip them entirely.
            tracer = None
        var_order: List[str] = []
        for item in block.from_:
            self._collect_item_vars(item, var_order)
        plan = self._block_plan(block)
        stages: List[_StageTally] = []

        def tally(source: Iterable, name: str) -> Iterable:
            if tracer is None:
                return source
            stage = _StageTally(name)
            stages.append(stage)
            return _tallied(source, stage)

        rows: Iterable[Environment]
        if plan is not None:
            rows = plan.iter_envs(self, env)
        else:
            rows = iter((env,))
            for item in block.from_:
                rows = self._iter_from_item(item, rows)
        rows = tally(rows, "FROM")

        if block.lets:
            let_fns = []
            for let in block.lets:
                var_order.append(let.name)
                let_fns.append((let.name, self.compiled(let.expr)))
            rows = tally(_let_rows(let_fns, rows), "LET")

        where_expr = block.where if plan is None else plan.residual_where
        if where_expr is not None:
            rows = tally(_filter_rows(self.compiled(where_expr), rows), "WHERE")

        output_vars = var_order
        if block.group_by is not None:
            rows = tally(
                self._iter_group_by(block.group_by, rows, env, var_order),
                "GROUP BY",
            )
            output_vars = [key.alias for key in block.group_by.keys]
            if block.group_by.group_as:
                output_vars = output_vars + [block.group_by.group_as]

        if block.having is not None:
            rows = tally(_filter_rows(self.compiled(block.having), rows), "HAVING")

        if not project:
            if tracer is None:
                return rows
            return self._record_stream_stages(rows, block, stages)

        select = block.select
        if isinstance(select, ast.SelectValue):
            pairs = self._select_value_rows(self.compiled(select.expr), rows)
        elif isinstance(select, ast.SelectStar):
            pairs = self._select_star_rows(rows, output_vars)
        else:
            raise EvaluationError(
                f"unexpected SELECT clause after rewriting: {type(select).__name__}"
            )
        if select.distinct:
            pairs = tally(self._distinct_rows(pairs), "SELECT DISTINCT")
        else:
            pairs = tally(pairs, "SELECT")
        if tracer is None:
            return pairs
        return self._record_stream_stages(pairs, block, stages)

    def _record_stream_stages(
        self,
        source: Iterable[Tuple[Any, Optional[Environment]]],
        block: ast.QueryBlock,
        stages: List[_StageTally],
    ) -> Iterator[Tuple[Any, Optional[Environment]]]:
        """Flush per-stage tallies to the tracer when the stream ends.

        The tallies update incrementally as rows pass each boundary, so
        the counts are exact even when the consumer closes the stream
        early; ``rows_in`` chains from the previous stage's output, as
        in the eager recorder (FROM's input is the single seed binding).
        """
        tracer = self.tracer
        trace = tracer.trace
        started = perf_counter()
        try:
            for pair in source:
                yield pair
        finally:
            _close_iter(source)
            rows_in = 1
            for stage in stages:
                tracer.record_stage(
                    block, stage.name, rows_in, stage.rows, stage.elapsed
                )
                if trace is not None:
                    trace.event(
                        stage.name,
                        "stage",
                        started,
                        stage.elapsed,
                        {"rows_in": rows_in, "rows_out": stage.rows},
                    )
                rows_in = stage.rows

    def _select_value_rows(
        self, select_fn, source: Iterable[Environment]
    ) -> Iterator[Tuple[Any, Optional[Environment]]]:
        for current in source:
            yield select_fn(current), current

    def _select_star_rows(
        self, source: Iterable[Environment], output_vars: List[str]
    ) -> Iterator[Tuple[Any, Optional[Environment]]]:
        for current in source:
            yield self._eval_star(current, output_vars), current

    def _distinct_rows(
        self, pairs: Iterable[Tuple[Any, Optional[Environment]]]
    ) -> Iterator[Tuple[Any, Optional[Environment]]]:
        """First occurrence wins, by SQL++ grouping equality — the
        streaming form of :func:`ops.distinct_elements`."""
        seen = set()
        for value, __ in pairs:
            identity = group_key(value)
            if identity in seen:
                continue
            seen.add(identity)
            yield value, None

    # -- FROM ----------------------------------------------------------------

    def _block_plan(self, block: ast.QueryBlock):
        """The (cached) physical plan for a block, or None for the
        reference pipeline.  Cached like ``compiled``: the block node is
        kept alive alongside the plan so id() keys stay unique."""
        if not self.config.optimize or not self.config.is_permissive:
            return None
        version = self._catalog_data_version()
        entry = self._plans.get(id(block))
        if entry is None or entry[2] != version:
            from repro.core.planner import plan_block

            started = perf_counter()
            plan = plan_block(
                block,
                self.config,
                stats=self._stats,
                reorder_ok=self._reorder_flags.get(id(block), (None, False))[1],
                catalog_names=self._catalog_names(),
            )
            elapsed = perf_counter() - started
            if plan is not None:
                from repro.analysis.verify_plan import maybe_verify_block_plan

                maybe_verify_block_plan(plan)
            entry = (block, plan, version)
            self.plan_time_s = (self.plan_time_s or 0.0) + elapsed
            if self.tracer is not None and self.tracer.trace is not None:
                self.tracer.trace.event("plan", "phase", started, elapsed)
            self._plans[id(block)] = entry
        if self.plan_time_s is None:
            # Cache hit on a memoized evaluator: the planner "ran" for
            # this query (from cache), so the plan phase reports 0 time
            # rather than absent.
            self.plan_time_s = 0.0
        if self.tracer is not None and entry[1] is not None:
            self.tracer.register_plan(block, entry[1])
        return entry[1]

    def _apply_from_item(
        self,
        item: ast.FromItem,
        envs: List[Environment],
    ) -> List[Environment]:
        result: List[Environment] = []
        for current in envs:
            for bindings in self._item_bindings(item, current):
                result.append(current.extend(bindings))
        return result

    def _collect_item_vars(self, item: ast.FromItem, var_order: List[str]) -> None:
        if isinstance(item, ast.FromCollection):
            var_order.append(item.alias)
            if item.at_alias:
                var_order.append(item.at_alias)
        elif isinstance(item, ast.FromUnpivot):
            var_order.append(item.value_alias)
            var_order.append(item.at_alias)
        elif isinstance(item, ast.FromJoin):
            self._collect_item_vars(item.left, var_order)
            self._collect_item_vars(item.right, var_order)

    def _item_bindings(
        self, item: ast.FromItem, env: Environment
    ) -> List[Dict[str, Any]]:
        """Bindings for one FROM item — the shared enumeration entry
        point for the reference pipeline and the physical plan's scans.

        All governor row accounting and EXPLAIN ANALYZE item statistics
        hang off this choke point; with neither active it forwards to
        the dispatch unchanged.
        """
        tracer = self.tracer
        governor = self.governor
        if tracer is None and governor is None:
            return self._item_bindings_impl(item, env)
        span = None
        if tracer is not None and tracer.trace is not None:
            from repro.observability.tracer import describe_from_item

            span = tracer.trace.begin(describe_from_item(item), "item")
        started = perf_counter() if tracer is not None else 0.0
        rows = self._item_bindings_impl(item, env)
        if governor is not None:
            governor.add(len(rows))
        if tracer is not None:
            tracer.record_item(item, len(rows), perf_counter() - started)
            if span is not None:
                tracer.trace.end(span, {"rows_out": len(rows)})
        return rows

    def _item_bindings_impl(
        self, item: ast.FromItem, env: Environment
    ) -> List[Dict[str, Any]]:
        if isinstance(item, ast.FromCollection):
            return self._range_bindings(item, env)
        if isinstance(item, ast.FromUnpivot):
            return self._unpivot_bindings(item, env)
        if isinstance(item, ast.FromJoin):
            return self._join_bindings(item, env)
        raise EvaluationError(f"unknown FROM item {type(item).__name__}")

    def _range_bindings(
        self, item: ast.FromCollection, env: Environment
    ) -> List[Dict[str, Any]]:
        """``expr AS v [AT p]``: variables bind to any value (Section
        III-A).

        * array → one binding per element, AT = 0-based position;
        * bag → one binding per element, AT = MISSING (bags are
          unordered, so there is no stable position to report);
        * NULL / MISSING → no bindings in permissive mode (the paper's
          "convenient signal, which most often leads to data exclusion");
        * any other value → a singleton binding in permissive mode;
        * strict mode raises for every non-collection source.
        """
        value = self.compiled(item.expr)(env)
        bindings: List[Dict[str, Any]] = []
        if isinstance(value, list):
            for position, element in enumerate(value):
                binding = {item.alias: element}
                if item.at_alias:
                    binding[item.at_alias] = position
                bindings.append(binding)
            return bindings
        if isinstance(value, Bag):
            for element in value:
                binding = {item.alias: element}
                if item.at_alias:
                    binding[item.at_alias] = MISSING
                bindings.append(binding)
            return bindings
        if not self.config.is_permissive:
            raise TypeCheckError(
                f"FROM expects a collection, got {type_name(value)}"
            )
        if value is None or value is MISSING:
            return []
        binding = {item.alias: value}
        if item.at_alias:
            binding[item.at_alias] = MISSING
        return [binding]

    def _unpivot_bindings(
        self, item: ast.FromUnpivot, env: Environment
    ) -> List[Dict[str, Any]]:
        """``UNPIVOT expr AS v AT a``: ranges over a tuple's attributes
        (Section VI-A), turning attribute names into data."""
        value = self.eval_expr(item.expr, env)
        if isinstance(value, Struct):
            return [
                {item.value_alias: attr_value, item.at_alias: attr_name}
                for attr_name, attr_value in value.items()
            ]
        if not self.config.is_permissive:
            raise TypeCheckError(f"UNPIVOT expects a tuple, got {type_name(value)}")
        if value is None or value is MISSING:
            return []
        # Permissive mode treats a non-tuple as {'_1': value}.
        return [{item.value_alias: value, item.at_alias: "_1"}]

    def _join_bindings(
        self, item: ast.FromJoin, env: Environment
    ) -> List[Dict[str, Any]]:
        """Explicit JOIN with lateral right side; LEFT pads with NULLs.

        Padding covers every right-side variable — including variables
        bound by joins nested inside the right side and AT position
        variables — via the same helper the physical hash/materialized
        join operators use (:func:`repro.core.plan_ops.pad_right_vars`),
        so the nested-loop and hash paths cannot diverge.
        """
        from repro.core.plan_ops import pad_right_vars

        result: List[Dict[str, Any]] = []
        right_vars: List[str] = []
        self._collect_item_vars(item.right, right_vars)
        for left_binding in self._item_bindings(item.left, env):
            left_env = env.extend(left_binding)
            matched = False
            for right_binding in self._item_bindings(item.right, left_env):
                combined = {**left_binding, **right_binding}
                if item.on is not None:
                    verdict = self.eval_expr(item.on, env.extend(combined))
                    if not ops.is_true(verdict):
                        continue
                matched = True
                result.append(combined)
            if item.kind == "LEFT" and not matched:
                result.append(pad_right_vars(left_binding, right_vars))
        return result

    # -- FROM (streaming) ------------------------------------------------------

    def _iter_from_item(
        self, item: ast.FromItem, upstream: Iterable[Environment]
    ) -> Iterator[Environment]:
        """Lazily extend each upstream binding environment with one FROM
        item's bindings (the left-correlated nested loop, streamed)."""
        upstream = iter(upstream)
        try:
            for current in upstream:
                inner = self._iter_item_bindings(item, current)
                try:
                    for binding in inner:
                        yield current.extend(binding)
                finally:
                    _close_iter(inner)
        finally:
            _close_iter(upstream)

    def _iter_item_bindings(
        self, item: ast.FromItem, env: Environment
    ) -> Iterator[Dict[str, Any]]:
        """Streaming counterpart of :meth:`_item_bindings` — the shared
        enumeration choke point for the pipelined reference chain and
        the physical plan's scan operators.  Governor row accounting
        moves into the row loop (a timeout or ``max_rows`` breach now
        fires mid-stream) and EXPLAIN ANALYZE item statistics count
        rows as they are pulled.
        """
        tracer = self.tracer
        if tracer is not None and not tracer.timing:
            # Feedback-sampling mode measures physical operators only;
            # per-item wall clocks are timing surface, skip them.
            tracer = None
        governor = self.governor
        if tracer is None and governor is None:
            return self._iter_item_rows(item, env)
        return self._iter_item_instrumented(item, env, tracer, governor)

    def _iter_item_instrumented(
        self, item: ast.FromItem, env: Environment, tracer, governor
    ) -> Iterator[Dict[str, Any]]:
        span = None
        if tracer is not None and tracer.trace is not None:
            from repro.observability.tracer import describe_from_item

            span = tracer.trace.begin(describe_from_item(item), "item")
        source = self._iter_item_rows(item, env)
        rows = 0
        elapsed = 0.0
        try:
            while True:
                if tracer is not None:
                    started = perf_counter()
                    try:
                        binding = next(source)
                    except StopIteration:
                        elapsed += perf_counter() - started
                        break
                    elapsed += perf_counter() - started
                else:
                    try:
                        binding = next(source)
                    except StopIteration:
                        break
                rows += 1
                if governor is not None:
                    governor.add(1)
                yield binding
        finally:
            _close_iter(source)
            if tracer is not None:
                tracer.record_item(item, rows, elapsed)
                if span is not None:
                    tracer.trace.end(span, {"rows_out": rows})

    def _iter_item_rows(
        self, item: ast.FromItem, env: Environment
    ) -> Iterator[Dict[str, Any]]:
        if isinstance(item, ast.FromCollection):
            return self._iter_range_bindings(item, env)
        if isinstance(item, ast.FromUnpivot):
            return iter(self._unpivot_bindings(item, env))
        if isinstance(item, ast.FromJoin):
            return self._iter_join_bindings(item, env)
        raise EvaluationError(f"unknown FROM item {type(item).__name__}")

    def _iter_range_bindings(
        self, item: ast.FromCollection, env: Environment
    ) -> Iterator[Dict[str, Any]]:
        """Streaming form of :meth:`_range_bindings` (same case
        analysis); a bag source is pulled element by element, so a
        :class:`~repro.datamodel.values.LazyBag` never materializes."""
        value = self.compiled(item.expr)(env)
        if isinstance(value, list):
            for position, element in enumerate(value):
                binding = {item.alias: element}
                if item.at_alias:
                    binding[item.at_alias] = position
                yield binding
            return
        if isinstance(value, Bag):
            for element in value:
                binding = {item.alias: element}
                if item.at_alias:
                    binding[item.at_alias] = MISSING
                yield binding
            return
        if not self.config.is_permissive:
            raise TypeCheckError(
                f"FROM expects a collection, got {type_name(value)}"
            )
        if value is None or value is MISSING:
            return
        binding = {item.alias: value}
        if item.at_alias:
            binding[item.at_alias] = MISSING
        yield binding

    def _iter_join_bindings(
        self, item: ast.FromJoin, env: Environment
    ) -> Iterator[Dict[str, Any]]:
        """Streaming form of :meth:`_join_bindings`: the left side and
        each lateral right side are pulled row by row; LEFT padding
        still requires draining the right side per left row."""
        from repro.core.plan_ops import pad_right_vars

        right_vars: List[str] = []
        self._collect_item_vars(item.right, right_vars)
        on_fn = self.compiled(item.on) if item.on is not None else None
        left_source = self._iter_item_bindings(item.left, env)
        try:
            for left_binding in left_source:
                left_env = env.extend(left_binding)
                matched = False
                right_source = self._iter_item_bindings(item.right, left_env)
                try:
                    for right_binding in right_source:
                        combined = {**left_binding, **right_binding}
                        if on_fn is not None and not ops.is_true(
                            on_fn(env.extend(combined))
                        ):
                            continue
                        matched = True
                        yield combined
                finally:
                    _close_iter(right_source)
                if item.kind == "LEFT" and not matched:
                    yield pad_right_vars(left_binding, right_vars)
        finally:
            _close_iter(left_source)

    # -- GROUP BY --------------------------------------------------------------

    def _apply_group_by(
        self,
        clause: ast.GroupByClause,
        envs: List[Environment],
        outer_env: Environment,
        var_order: List[str],
    ) -> List[Environment]:
        """Grouping with ``GROUP AS`` (paper, Section V-B, Listing 14).

        Output: one binding per group, mapping each key alias to the key
        value and the GROUP AS variable to the group's content — a bag of
        tuples with one attribute per input variable.
        """
        group_envs: List[Environment] = []
        for key_indexes in expand_grouping_sets(clause):
            active = set(key_indexes)
            groups: Dict[tuple, Dict[str, Any]] = {}
            order: List[tuple] = []
            key_fns = [self.compiled(key.expr) for key in clause.keys]
            for current in envs:
                key_values: List[Any] = []
                for index, key_fn in enumerate(key_fns):
                    if index in active:
                        key_values.append(key_fn(current))
                    else:
                        key_values.append(None)
                identity = tuple(group_key(value) for value in key_values)
                group = groups.get(identity)
                if group is None:
                    group = {
                        "keys": key_values,
                        "members": [],
                    }
                    groups[identity] = group
                    order.append(identity)
                group["members"].append(current)
            if not groups and not clause.keys:
                # Implicit aggregation over empty input still produces a
                # single (empty) group, matching SQL's one-row answer.
                groups[()] = {"keys": [], "members": []}
                order.append(())
            for identity in order:
                group = groups[identity]
                bindings: Dict[str, Any] = {}
                for key, value in zip(clause.keys, group["keys"]):
                    bindings[key.alias] = value
                if clause.group_as:
                    bindings[clause.group_as] = Bag(
                        self._group_element(member, var_order)
                        for member in group["members"]
                    )
                group_envs.append(outer_env.extend(bindings))
        return group_envs

    def _group_element(
        self, env: Environment, var_order: List[str]
    ) -> Struct:
        """One element of a GROUP AS bag: a tuple of the input bindings
        (Listing 14: ``{ e: ..., p: ... }``)."""
        element = Struct()
        for name in var_order:
            try:
                value = env.lookup(name)
            except Unbound:
                continue
            element = element.with_attr(name, value)
        return element

    def _iter_group_by(
        self,
        clause: ast.GroupByClause,
        source: Iterable[Environment],
        outer_env: Environment,
        var_order: List[str],
    ) -> Iterator[Environment]:
        """Streaming hash aggregation: fold each arriving row into the
        per-grouping-set group state instead of buffering the binding
        stream.  Each key expression is evaluated once per row (shared
        across grouping sets, inactive keys masked to NULL) and the
        GROUP AS element is built once per row, so memory is bounded by
        the number of groups — plus the grouped members when GROUP AS
        retains them, which is inherent to its semantics."""
        key_fns = [self.compiled(key.expr) for key in clause.keys]
        key_sets = [set(indexes) for indexes in expand_grouping_sets(clause)]
        # One (groups, first-seen order) pair per grouping set.
        states: List[Tuple[Dict[tuple, Tuple[List[Any], List[Any]]], List[tuple]]]
        states = [({}, []) for __ in key_sets]
        group_as = clause.group_as
        for current in source:
            key_values_all = [key_fn(current) for key_fn in key_fns]
            element = (
                self._group_element(current, var_order) if group_as else None
            )
            for active, (groups, order) in zip(key_sets, states):
                key_values = [
                    value if index in active else None
                    for index, value in enumerate(key_values_all)
                ]
                identity = tuple(group_key(value) for value in key_values)
                group = groups.get(identity)
                if group is None:
                    group = (key_values, [])
                    groups[identity] = group
                    order.append(identity)
                if group_as:
                    group[1].append(element)
        for groups, order in states:
            if not groups and not clause.keys:
                # Implicit aggregation over empty input still produces a
                # single (empty) group, matching SQL's one-row answer.
                groups[()] = ([], [])
                order.append(())
            for identity in order:
                key_values, members = groups[identity]
                bindings: Dict[str, Any] = {}
                for key, value in zip(clause.keys, key_values):
                    bindings[key.alias] = value
                if group_as:
                    bindings[group_as] = Bag(members)
                yield outer_env.extend(bindings)

    # -- SELECT * / PIVOT -------------------------------------------------------

    def _eval_star(self, env: Environment, var_order: List[str]) -> Struct:
        """``SELECT *``: splice tuple-valued bindings, name the rest."""
        result = Struct()
        for name in var_order:
            try:
                value = env.lookup(name)
            except Unbound:
                continue
            if isinstance(value, Struct):
                result = result.merged(value)
            elif value is not MISSING:
                result = result.with_attr(name, value)
        return result

    def _eval_pivot(
        self, clause: ast.PivotClause, envs: List[Environment]
    ) -> Struct:
        """``PIVOT v AT a``: one tuple from the whole binding stream
        (Section VI-B, Listings 24-25)."""
        pairs: List[Tuple[str, Any]] = []
        for env in envs:
            name = self.eval_expr(clause.at, env)
            value = self.eval_expr(clause.value, env)
            if not isinstance(name, str):
                if self.config.is_permissive:
                    continue
                raise TypeCheckError(
                    f"PIVOT attribute name must be a string, got {type_name(name)}"
                )
            if value is MISSING:
                continue
            pairs.append((name, value))
        return Struct(pairs)

    # -- Windows ---------------------------------------------------------------

    def _bind_windows(
        self,
        select: ast.SelectClause,
        window_calls: List[ast.WindowCall],
        envs: List[Environment],
    ) -> Tuple[ast.SelectClause, List[Environment]]:
        """Precompute window values and substitute variable references."""
        replacements: Dict[int, str] = {}
        per_env: List[Dict[str, Any]] = [dict() for __ in envs]
        for number, call in enumerate(window_calls):
            name = f"$window{number}"
            replacements[id(call)] = name
            for position, value in enumerate(
                compute_window_values(call, envs, self)
            ):
                per_env[position][name] = value

        def substitute(node: ast.Node) -> ast.Node:
            if id(node) in replacements:
                return ast.VarRef(name=replacements[id(node)])
            return node

        new_select = select.transform(substitute)
        new_envs = [env.extend(extra) for env, extra in zip(envs, per_env)]
        return new_select, new_envs

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def eval_expr(self, expr: ast.Expr, env: Environment) -> Any:
        method = _DISPATCH.get(type(expr))
        if method is None:
            raise EvaluationError(f"cannot evaluate {type(expr).__name__}")
        return method(self, expr, env)

    def _eval_literal(self, expr: ast.Literal, env: Environment) -> Any:
        return expr.value

    def _eval_varref(self, expr: ast.VarRef, env: Environment) -> Any:
        try:
            return env.lookup(expr.name)
        except Unbound:
            if expr.name in self._catalog:
                return self._catalog[expr.name]
            raise Unbound(expr.name) from None

    def _eval_path(self, expr: ast.Path, env: Environment) -> Any:
        try:
            base = self.eval_expr(expr.base, env)
        except Unbound as unbound:
            # ``hr.emp`` is a namespaced named value, not navigation into
            # a variable.  Try successively longer dotted catalog names.
            if isinstance(expr.base, (ast.VarRef, ast.Path)):
                dotted = f"{unbound.name}.{expr.attr}"
                if dotted in self._catalog:
                    return self._catalog[dotted]
                raise Unbound(dotted) from None
            raise
        return ops.navigate_path(base, expr.attr, self.config)

    def _eval_index(self, expr: ast.Index, env: Environment) -> Any:
        base = self.eval_expr(expr.base, env)
        index = self.eval_expr(expr.index, env)
        return ops.navigate_index(base, index, self.config)

    def _eval_path_wildcard(self, expr: ast.PathWildcard, env: Environment) -> Any:
        """``base[*].a.b`` — map trailing steps over the elements.

        Produces an array of the per-element navigation results, dropping
        MISSING results (the data-exclusion signal).  A further wildcard
        step flattens one level.
        """
        base = self.eval_expr(expr.base, env)
        current = self._wildcard_elements(base, expr.kind)
        for step in expr.steps:
            if step.wildcard is not None:
                flattened: List[Any] = []
                for item in current:
                    flattened.extend(self._wildcard_elements(item, step.wildcard))
                current = flattened
            elif step.attr is not None:
                current = [
                    ops.navigate_path(item, step.attr, self.config)
                    for item in current
                ]
            else:
                index = self.eval_expr(step.index, env)
                current = [
                    ops.navigate_index(item, index, self.config)
                    for item in current
                ]
        return [item for item in current if item is not MISSING]

    def _wildcard_elements(self, value: Any, kind: str) -> List[Any]:
        if kind == "attrs":
            if isinstance(value, Struct):
                return value.values()
        elif isinstance(value, (list, Bag)):
            return list(value)
        if value is None or value is MISSING:
            return []
        checked = self.config.type_error(
            f"path wildcard expects a collection, got {type_name(value)}"
        )
        return [] if checked is MISSING else [checked]

    def _eval_binary(self, expr: ast.Binary, env: Environment) -> Any:
        op = expr.op
        if op == "AND":
            return ops.logical_and(
                self.eval_expr(expr.left, env),
                self.eval_expr(expr.right, env),
                self.config,
            )
        if op == "OR":
            return ops.logical_or(
                self.eval_expr(expr.left, env),
                self.eval_expr(expr.right, env),
                self.config,
            )
        left = self.eval_expr(expr.left, env)
        right = self.eval_expr(expr.right, env)
        if op == "=":
            return ops.equals(left, right, self.config)
        if op == "!=":
            return ops.not_equals(left, right, self.config)
        if op in ("<", "<=", ">", ">="):
            return ops.compare(op, left, right, self.config)
        if op == "||":
            return ops.concat(left, right, self.config)
        return ops.arithmetic(op, left, right, self.config)

    def _eval_unary(self, expr: ast.Unary, env: Environment) -> Any:
        value = self.eval_expr(expr.operand, env)
        if expr.op == "NOT":
            return ops.logical_not(value, self.config)
        if expr.op == "-":
            return ops.negate(value, self.config)
        return ops.unary_plus(value, self.config)

    def _eval_is(self, expr: ast.IsPredicate, env: Environment) -> Any:
        verdict = ops.is_predicate(
            self.eval_expr(expr.operand, env), expr.kind, self.config
        )
        return (not verdict) if expr.negated else verdict

    def _eval_like(self, expr: ast.Like, env: Environment) -> Any:
        verdict = ops.like(
            self.eval_expr(expr.operand, env),
            self.eval_expr(expr.pattern, env),
            self.eval_expr(expr.escape, env) if expr.escape is not None else None,
            self.config,
        )
        if expr.negated:
            return ops.logical_not(verdict, self.config)
        return verdict

    def _eval_between(self, expr: ast.Between, env: Environment) -> Any:
        operand = self.eval_expr(expr.operand, env)
        low = self.eval_expr(expr.low, env)
        high = self.eval_expr(expr.high, env)
        verdict = ops.logical_and(
            ops.compare(">=", operand, low, self.config),
            ops.compare("<=", operand, high, self.config),
            self.config,
        )
        if expr.negated:
            return ops.logical_not(verdict, self.config)
        return verdict

    def _eval_in(self, expr: ast.InPredicate, env: Environment) -> Any:
        verdict = self._in_verdict(expr, env)
        if expr.negated:
            return ops.logical_not(verdict, self.config)
        return verdict

    def _in_verdict(self, expr: ast.InPredicate, env: Environment) -> Any:
        """IN, with early termination over subquery collections.

        A subquery collection whose block can stream is probed row by
        row: the first TRUE comparison stops the subquery's producers
        (docs/LANGUAGE.md §8).  Everything else — including a MISSING
        operand, which needs the collection fully evaluated for its
        side conditions — falls back to :func:`ops.in_collection` on
        the materialized collection.
        """
        collection = expr.collection
        query = None
        coerce_rows = False
        if isinstance(collection, ast.SubqueryExpr):
            query = collection.query
        elif (
            isinstance(collection, ast.CoerceSubquery)
            and collection.mode == "collection"
        ):
            query = collection.query
            coerce_rows = True
        operand = self.eval_expr(expr.operand, env)
        if query is not None and operand is not MISSING:
            stream = self._open_value_stream(query, env)
            if stream is not None:
                return self._in_stream(operand, stream, coerce_rows)
        return ops.in_collection(
            operand, self.eval_expr(collection, env), self.config
        )

    def _in_stream(self, operand: Any, stream, coerce_rows: bool) -> Any:
        """Probe a streamed subquery: TRUE on the first match, keeping
        SQL's three-valued verdict (an unknown comparison anywhere in
        the stream downgrades FALSE to NULL, as in
        :func:`ops.in_collection`)."""
        saw_unknown = False
        try:
            for element in stream:
                if coerce_rows:
                    element = coercion.single_attribute(element, self.config)
                verdict = ops.equals(operand, element, self.config)
                if verdict is True:
                    return True
                if verdict is None or verdict is MISSING:
                    saw_unknown = True
        finally:
            stream.close()
        return None if saw_unknown else False

    def _eval_exists(self, expr: ast.Exists, env: Environment) -> Any:
        return self._exists_verdict(expr.operand, env)

    def _exists_verdict(self, operand: ast.Expr, env: Environment) -> Any:
        """EXISTS, with early termination: a streamable subquery stops
        its producers at the first row (EXISTS only asks whether the
        result is non-empty)."""
        if isinstance(operand, ast.SubqueryExpr):
            stream = self._open_value_stream(operand.query, env)
            if stream is not None:
                try:
                    for __ in stream:
                        return True
                    return False
                finally:
                    stream.close()
        return ops.exists(self.eval_expr(operand, env), self.config)

    def _open_value_stream(
        self, query: ast.Query, env: Environment
    ) -> Optional[Iterator[Any]]:
        """A lazy iterator over a subquery's output values, or None
        when the query's shape needs full evaluation first (ORDER BY /
        LIMIT / OFFSET, set operations, non-streamable block)."""
        body = query.body
        if (
            not isinstance(body, ast.QueryBlock)
            or not self._can_stream(body)
            or query.order_by
            or query.limit is not None
            or query.offset is not None
        ):
            return None
        self.streamed = True
        return self._subquery_value_stream(body, env)

    def _subquery_value_stream(
        self, body: ast.QueryBlock, env: Environment
    ) -> Iterator[Any]:
        governor = self.governor
        if governor is not None:
            governor.enter_query()
        try:
            source = self._stream_block(body, env)
            try:
                for value, __ in source:
                    yield value
            finally:
                _close_iter(source)
        finally:
            if governor is not None:
                governor.exit_query()

    def _eval_case(self, expr: ast.CaseExpr, env: Environment) -> Any:
        """CASE with the paper's MISSING treatment (Listing 9).

        In Core mode a MISSING comparison/condition makes the whole CASE
        MISSING (rule 3 of Section IV-B: operators propagate MISSING); in
        SQL-compat mode MISSING behaves like NULL — the condition simply
        does not match — because SQL's ``CASE WHEN NULL`` continues to
        the next branch (the Section IV-B compatibility exception).
        """
        operand = (
            self.eval_expr(expr.operand, env) if expr.operand is not None else None
        )
        if expr.operand is not None and operand is MISSING:
            if not self.config.sql_compat:
                return MISSING
        for condition, result in expr.whens:
            if expr.operand is not None:
                verdict = ops.equals(
                    operand, self.eval_expr(condition, env), self.config
                )
            else:
                verdict = self.eval_expr(condition, env)
            if verdict is MISSING and not self.config.sql_compat:
                return MISSING
            if ops.is_true(verdict):
                return self.eval_expr(result, env)
        if expr.else_ is not None:
            return self.eval_expr(expr.else_, env)
        return None

    def _eval_call(self, expr: ast.FunctionCall, env: Environment) -> Any:
        if expr.name == "$TUPLE_MERGE":
            return self._tuple_merge(expr.args, env)
        definition = REGISTRY.lookup(expr.name)
        if definition is None:
            raise EvaluationError(f"unknown function {expr.name}")
        if expr.star:
            raise EvaluationError(
                f"{expr.name}(*) is only meaningful inside a grouped query"
            )
        args = [self.eval_expr(arg, env) for arg in expr.args]
        if expr.distinct and definition.is_aggregate and args:
            first = args[0]
            if is_collection(first):
                args = [ops.distinct_elements(first)] + args[1:]
        return definition.invoke(args, self.config)

    def _tuple_merge(self, args: List[ast.Expr], env: Environment) -> Struct:
        """Internal: merge tuple parts for ``SELECT a.*, b.x`` projections."""
        result = Struct()
        for arg in args:
            value = self.eval_expr(arg, env)
            if isinstance(value, Struct):
                result = result.merged(value)
            elif value is MISSING or value is None:
                continue
            else:
                checked = self.config.type_error(
                    f"SELECT item.* expects a tuple, got {type_name(value)}"
                )
                if checked is MISSING:
                    continue
        return result

    def _eval_windowcall(self, expr: ast.WindowCall, env: Environment) -> Any:
        raise EvaluationError(
            "window functions (OVER) are only allowed in the SELECT clause "
            "of a query block"
        )

    def _eval_subquery(self, expr: ast.SubqueryExpr, env: Environment) -> Any:
        return self.eval_query(expr.query, env)

    def _eval_coerce(self, expr: ast.CoerceSubquery, env: Environment) -> Any:
        result = self.eval_query(expr.query, env)
        if expr.mode == "scalar":
            return coercion.coerce_scalar(result, self.config)
        return coercion.coerce_collection(result, self.config)

    def _eval_parameter(self, expr: ast.Parameter, env: Environment) -> Any:
        if expr.index >= len(self._parameters):
            raise EvaluationError(
                f"no value supplied for parameter #{expr.index + 1}"
            )
        return self._parameters[expr.index]

    def _eval_cast(self, expr: ast.CastExpr, env: Environment) -> Any:
        return cast_value(self.eval_expr(expr.operand, env), expr.type_name, self.config)

    def _eval_struct(self, expr: ast.StructLit, env: Environment) -> Struct:
        """Tuple construction; a MISSING attribute value omits the
        attribute (Section IV-B: "the output tuple will not have a title
        attribute")."""
        result = Struct()
        for field in expr.fields:
            key = self.eval_expr(field.key, env)
            if key is MISSING or key is None:
                if self.config.is_permissive:
                    continue
                raise TypeCheckError("tuple attribute name is absent")
            if not isinstance(key, str):
                checked = self.config.type_error(
                    f"tuple attribute name must be a string, got {type_name(key)}"
                )
                if checked is MISSING:
                    continue
            value = self.eval_expr(field.value, env)
            result = result.with_attr(key, value)
        return result

    def _eval_array(self, expr: ast.ArrayLit, env: Environment) -> list:
        values = (self.eval_expr(item, env) for item in expr.items)
        return [value for value in values if value is not MISSING]

    def _eval_bag(self, expr: ast.BagLit, env: Environment) -> Bag:
        values = (self.eval_expr(item, env) for item in expr.items)
        return Bag(value for value in values if value is not MISSING)


_DISPATCH = {
    ast.Literal: Evaluator._eval_literal,
    ast.VarRef: Evaluator._eval_varref,
    ast.Path: Evaluator._eval_path,
    ast.Index: Evaluator._eval_index,
    ast.PathWildcard: Evaluator._eval_path_wildcard,
    ast.Binary: Evaluator._eval_binary,
    ast.Unary: Evaluator._eval_unary,
    ast.IsPredicate: Evaluator._eval_is,
    ast.Like: Evaluator._eval_like,
    ast.Between: Evaluator._eval_between,
    ast.InPredicate: Evaluator._eval_in,
    ast.Exists: Evaluator._eval_exists,
    ast.CaseExpr: Evaluator._eval_case,
    ast.FunctionCall: Evaluator._eval_call,
    ast.WindowCall: Evaluator._eval_windowcall,
    ast.SubqueryExpr: Evaluator._eval_subquery,
    ast.CoerceSubquery: Evaluator._eval_coerce,
    ast.Parameter: Evaluator._eval_parameter,
    ast.CastExpr: Evaluator._eval_cast,
    ast.StructLit: Evaluator._eval_struct,
    ast.ArrayLit: Evaluator._eval_array,
    ast.BagLit: Evaluator._eval_bag,
}


def _multiset_counts(items: List[Any]) -> Dict[tuple, int]:
    counts: Dict[tuple, int] = {}
    for item in items:
        key = group_key(item)
        counts[key] = counts.get(key, 0) + 1
    return counts
