"""The query store must be (nearly) free in steady state.

The store is on by default, so every ``execute`` pays fingerprint
lookup, one ``observe`` fold and the gauge export.  All of that is
memoized or O(1): the fingerprint comes from an id-keyed memo after the
first compile, the plan hash from an id-keyed memo after the first
plan, and the sampled feedback trace (the one genuinely non-free part)
runs only on the first execution of a fingerprint and again after data
changes.  This suite pins the steady-state cost at <= 5% of the
store-off path, and bounds the one-off cost of a feedback-sampled run.
"""

from __future__ import annotations

import statistics
import time

from repro import Database

#: Steady-state drift allowed for store-on vs store-off execution (the
#: acceptance figure from the PR-8 issue).
MAX_OVERHEAD = 0.05

QUERY = (
    "SELECT u.uid AS uid, o.oid AS oid, o.total AS total "
    "FROM users AS u JOIN orders AS o ON o.user_id = u.uid "
    "WHERE o.total >= 10"
)


def _db(query_store) -> Database:
    n, n_users = 2_000, 200
    db = Database(query_store=query_store)
    db.set("users", [{"uid": i, "name": f"user-{i}"} for i in range(n_users)])
    db.set(
        "orders",
        [
            {"oid": i, "user_id": (i * 7) % n_users, "total": (i * 13) % 500}
            for i in range(n)
        ],
    )
    # Warm the compile/plan caches AND burn the one feedback-sampled
    # execution, so the timed rounds measure steady state.
    db.execute(QUERY)
    db.execute(QUERY)
    return db


def _median(db: Database, rounds: int = 9) -> float:
    samples = []
    for __ in range(rounds):
        started = time.perf_counter()
        db.execute(QUERY)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def test_steady_state_overhead_within_five_percent():
    """The acceptance bar: store-on execution within 5% of store-off.

    Measured as a *paired* difference: each round times one store-off
    and one store-on execution back to back, and the gate runs on the
    median of the per-round deltas.  Adjacent executions see the same
    machine state, so host-wide drift cancels within the pair and a
    jitter spike lands on one round's delta, where the median discards
    it — an unpaired A/B of medians flakes on shared hardware."""
    db_off = _db(query_store=False)
    db_on = _db(query_store=True)
    off_samples, on_samples = [], []
    for round_no in range(40):
        pair = [(db_off, off_samples), (db_on, on_samples)]
        # Alternate which side runs first, so "second in the pair"
        # cache effects cannot masquerade as store overhead.
        if round_no % 2:
            pair.reverse()
        for db, samples in pair:
            started = time.perf_counter()
            db.execute(QUERY)
            samples.append(time.perf_counter() - started)
    off = min(off_samples)
    delta = statistics.median(
        on - off_ for on, off_ in zip(on_samples, off_samples)
    )
    on = off + delta
    overhead = delta / off
    print(
        f"\nquery store on/off: {on * 1e3:.2f}ms / {off * 1e3:.2f}ms "
        f"({overhead * 100:+.1f}%)"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"steady-state store overhead {overhead * 100:+.1f}% "
        f"(gate {MAX_OVERHEAD * 100:.0f}%) — did per-execution work "
        f"sneak past the memos?"
    )


def test_feedback_sampled_run_is_bounded():
    """The first execution of a fingerprint runs with the timing-free
    tracer attached; counting rows may cost, but nothing like a full
    EXPLAIN ANALYZE."""
    db = _db(query_store=True)
    steady = _median(db)
    # Touching the data re-arms feedback sampling for the fingerprint.
    sampled = []
    for i in range(5):
        db.set("probe", [{"x": i}])
        started = time.perf_counter()
        db.execute(QUERY)
        sampled.append(time.perf_counter() - started)
    ratio = statistics.median(sampled) / steady
    print(f"\nfeedback-sampled / steady: {ratio:.2f}x")
    assert ratio < 3.0
