"""The strict SQL-92 baseline: what works, and where it gives up."""

import pytest

from repro.baselines.sql92 import SQL92Database, SQL92Error


@pytest.fixture
def sdb():
    db = SQL92Database()
    db.create_table("emp", ["id", "name", "deptno", "salary", "title"])
    db.insert(
        "emp",
        [
            {"id": 1, "name": "a", "deptno": 1, "salary": 100, "title": "Engineer"},
            {"id": 2, "name": "b", "deptno": 1, "salary": 200, "title": "Engineer"},
            {"id": 3, "name": "c", "deptno": 2, "salary": 300, "title": "Manager"},
            {"id": 4, "name": "d", "deptno": 2, "salary": None, "title": None},
        ],
    )
    db.create_table("dept", ["deptno", "dname"])
    db.insert("dept", [{"deptno": 1, "dname": "eng"}, {"deptno": 2, "dname": "ops"}])
    return db


class TestQueries:
    def test_projection_and_filter(self, sdb):
        rows = sdb.execute("SELECT e.name FROM emp AS e WHERE e.salary > 150")
        assert rows == [{"name": "b"}, {"name": "c"}]

    def test_unqualified_columns(self, sdb):
        rows = sdb.execute("SELECT name FROM emp AS e WHERE salary = 100")
        assert rows == [{"name": "a"}]

    def test_join(self, sdb):
        rows = sdb.execute(
            "SELECT e.name, d.dname FROM emp AS e JOIN dept AS d "
            "ON e.deptno = d.deptno WHERE e.id = 1"
        )
        assert rows == [{"name": "a", "dname": "eng"}]

    def test_left_join(self, sdb):
        sdb.create_table("bonus", ["emp_id", "amount"])
        sdb.insert("bonus", [{"emp_id": 1, "amount": 10}])
        rows = sdb.execute(
            "SELECT e.id, b.amount FROM emp AS e LEFT JOIN bonus AS b "
            "ON e.id = b.emp_id"
        )
        assert {"id": 2, "amount": None} in rows

    def test_group_by_aggregates(self, sdb):
        rows = sdb.execute(
            "SELECT e.deptno, AVG(e.salary) AS avgsal, COUNT(*) AS n "
            "FROM emp AS e GROUP BY e.deptno"
        )
        assert {"deptno": 1, "avgsal": 150.0, "n": 2} in rows
        # NULL salary is skipped by AVG but counted by COUNT(*).
        assert {"deptno": 2, "avgsal": 300.0, "n": 2} in rows

    def test_implicit_aggregation(self, sdb):
        assert sdb.execute("SELECT COUNT(*) AS n FROM emp AS e") == [{"n": 4}]

    def test_having(self, sdb):
        rows = sdb.execute(
            "SELECT e.deptno FROM emp AS e GROUP BY e.deptno "
            "HAVING COUNT(*) > 1"
        )
        assert len(rows) == 2

    def test_order_limit(self, sdb):
        rows = sdb.execute(
            "SELECT e.name FROM emp AS e ORDER BY name DESC LIMIT 2"
        )
        assert [row["name"] for row in rows] == ["d", "c"]

    def test_distinct(self, sdb):
        rows = sdb.execute("SELECT DISTINCT e.deptno FROM emp AS e")
        assert len(rows) == 2

    def test_null_three_valued_logic(self, sdb):
        rows = sdb.execute("SELECT e.id FROM emp AS e WHERE e.salary > 0")
        assert {"id": 4} not in rows  # NULL comparison is unknown

    def test_is_null(self, sdb):
        rows = sdb.execute("SELECT e.id FROM emp AS e WHERE e.title IS NULL")
        assert rows == [{"id": 4}]

    def test_case_expression(self, sdb):
        rows = sdb.execute(
            "SELECT e.id, CASE WHEN e.salary > 150 THEN 'hi' ELSE 'lo' END AS b "
            "FROM emp AS e WHERE e.id = 1"
        )
        assert rows == [{"id": 1, "b": "lo"}]


class TestStrictness:
    def test_unknown_column_is_compile_time_error(self, sdb):
        with pytest.raises(SQL92Error):
            sdb.execute("SELECT e.bogus FROM emp AS e")

    def test_unknown_table(self, sdb):
        with pytest.raises(SQL92Error):
            sdb.execute("SELECT x.a FROM nope AS x")

    def test_ambiguous_unqualified_column(self, sdb):
        with pytest.raises(SQL92Error):
            sdb.execute("SELECT deptno FROM emp AS e, dept AS d")

    def test_no_nested_values_on_insert(self, sdb):
        with pytest.raises(SQL92Error):
            sdb.insert("emp", [{"id": 9, "name": "x", "deptno": 1,
                                "salary": 1, "title": ["nested!"]}])

    def test_undeclared_column_on_insert(self, sdb):
        with pytest.raises(SQL92Error):
            sdb.insert("dept", [{"deptno": 3, "dname": "x", "extra": 1}])

    def test_no_correlated_from(self, sdb):
        with pytest.raises(SQL92Error):
            sdb.execute("SELECT p FROM emp AS e, e.projects AS p")

    def test_no_select_value(self, sdb):
        with pytest.raises(SQL92Error):
            sdb.execute("SELECT VALUE e FROM emp AS e")

    def test_no_group_as(self, sdb):
        with pytest.raises(SQL92Error):
            sdb.execute(
                "SELECT e.deptno FROM emp AS e GROUP BY e.deptno GROUP AS g"
            )

    def test_ungrouped_column_in_grouped_select(self, sdb):
        with pytest.raises(SQL92Error):
            sdb.execute(
                "SELECT e.name FROM emp AS e GROUP BY e.deptno"
            )

    def test_duplicate_table_creation(self, sdb):
        with pytest.raises(SQL92Error):
            sdb.create_table("emp", ["id"])


class TestHashJoin:
    """The equi-join fast path must agree with nested-loop semantics."""

    @pytest.fixture
    def hdb(self):
        db = SQL92Database()
        db.create_table("e", ["id", "d"])
        db.insert("e", [{"id": 1, "d": 10}, {"id": 2, "d": 20}, {"id": 3, "d": None}])
        db.create_table("x", ["eid", "w"])
        db.insert(
            "x",
            [
                {"eid": 1, "w": "a"},
                {"eid": 1, "w": "b"},
                {"eid": 9, "w": "z"},
                {"eid": None, "w": "n"},
            ],
        )
        return db

    def test_inner_equi_join(self, hdb):
        rows = hdb.execute("SELECT e.id, x.w FROM e AS e JOIN x AS x ON e.id = x.eid")
        assert rows == [{"id": 1, "w": "a"}, {"id": 1, "w": "b"}]

    def test_reversed_operands(self, hdb):
        rows = hdb.execute("SELECT e.id, x.w FROM e AS e JOIN x AS x ON x.eid = e.id")
        assert len(rows) == 2

    def test_null_keys_never_match(self, hdb):
        rows = hdb.execute("SELECT e.id, x.w FROM e AS e JOIN x AS x ON e.d = x.eid")
        assert rows == []

    def test_left_join_pads(self, hdb):
        rows = hdb.execute(
            "SELECT e.id, x.w FROM e AS e LEFT JOIN x AS x ON e.id = x.eid"
        )
        assert {"id": 2, "w": None} in rows
        assert {"id": 3, "w": None} in rows

    def test_non_equi_falls_back_to_nested_loop(self, hdb):
        rows = hdb.execute("SELECT e.id, x.w FROM e AS e JOIN x AS x ON e.id < x.eid")
        assert len(rows) == 3  # all ids < 9

    def test_unknown_join_column_still_compile_error(self, hdb):
        with pytest.raises(SQL92Error):
            hdb.execute("SELECT e.id FROM e AS e JOIN x AS x ON e.id = x.bogus")
