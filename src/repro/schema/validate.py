"""Validation of values against schema types."""

from __future__ import annotations

from typing import Any

from repro.datamodel.values import MISSING, Bag, Struct, type_name
from repro.errors import SchemaError
from repro.schema.types import (
    AnyType,
    ArrayType,
    BagType,
    BooleanType,
    FloatType,
    IntegerType,
    NullType,
    SchemaType,
    StringType,
    StructType,
    UnionType,
)


def validate(value: Any, schema: SchemaType, path: str = "$") -> None:
    """Raise :class:`SchemaError` when ``value`` does not match ``schema``.

    The error message names the path to the offending value
    (``hr.emp[3].projects[0]`` style) for diagnosability.
    """
    if isinstance(schema, AnyType):
        return
    if value is MISSING:
        raise SchemaError(f"{path}: MISSING value where {schema} expected")
    if isinstance(schema, UnionType):
        # Unions must be tried before the generic NULL rejection: an
        # alternative may be NULL itself.
        errors = []
        for alternative in schema.alternatives:
            try:
                validate(value, alternative, path)
                return
            except SchemaError as exc:
                errors.append(str(exc))
        raise SchemaError(
            f"{path}: value matches no alternative of {schema} "
            f"({'; '.join(errors)})"
        )
    if isinstance(schema, NullType):
        if value is not None:
            raise SchemaError(f"{path}: expected NULL, got {type_name(value)}")
        return
    if value is None:
        raise SchemaError(f"{path}: NULL where {schema} expected")
    if isinstance(schema, BooleanType):
        if not isinstance(value, bool):
            raise SchemaError(f"{path}: expected BOOLEAN, got {type_name(value)}")
        return
    if isinstance(schema, IntegerType):
        if isinstance(value, bool) or not isinstance(value, int):
            raise SchemaError(f"{path}: expected INT, got {type_name(value)}")
        return
    if isinstance(schema, FloatType):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"{path}: expected DOUBLE, got {type_name(value)}")
        return
    if isinstance(schema, StringType):
        if not isinstance(value, str):
            raise SchemaError(f"{path}: expected STRING, got {type_name(value)}")
        return
    if isinstance(schema, ArrayType):
        if not isinstance(value, list):
            raise SchemaError(f"{path}: expected ARRAY, got {type_name(value)}")
        for index, item in enumerate(value):
            validate(item, schema.element, f"{path}[{index}]")
        return
    if isinstance(schema, BagType):
        # A bag type accepts arrays too: any array's elements form a
        # valid bag, and top-level collections loaded from JSON/Python
        # lists arrive as arrays (order just carries no meaning).
        if not isinstance(value, (Bag, list)):
            raise SchemaError(f"{path}: expected BAG, got {type_name(value)}")
        for index, item in enumerate(value):
            validate(item, schema.element, f"{path}[{index}]")
        return
    if isinstance(schema, StructType):
        _validate_struct(value, schema, path)
        return
    raise SchemaError(f"unknown schema type {type(schema).__name__}")


def _validate_struct(value: Any, schema: StructType, path: str) -> None:
    if not isinstance(value, Struct):
        raise SchemaError(f"{path}: expected STRUCT, got {type_name(value)}")
    declared = schema.attribute_names()
    for fld in schema.fields:
        occurrences = value.get_all(fld.name)
        if not occurrences:
            if not fld.optional:
                raise SchemaError(f"{path}.{fld.name}: required attribute missing")
            continue
        for item in occurrences:
            if item is None:
                if not fld.nullable:
                    raise SchemaError(
                        f"{path}.{fld.name}: NULL in a non-nullable attribute"
                    )
                continue
            validate(item, fld.type, f"{path}.{fld.name}")
    if not schema.open:
        for name in value.keys():
            if name not in declared:
                raise SchemaError(
                    f"{path}.{name}: undeclared attribute in a closed struct"
                )


def conforms(value: Any, schema: SchemaType) -> bool:
    """Boolean form of :func:`validate`."""
    try:
        validate(value, schema)
    except SchemaError:
        return False
    return True
