"""String builtins.

All follow the default absence rule (MISSING in → MISSING out, NULL in →
NULL out) and treat wrongly-typed input as a dynamic type error, which
the registry converts to MISSING in permissive mode.
"""

from __future__ import annotations

from typing import Any, List

from repro.config import EvalConfig
from repro.datamodel.values import type_name
from repro.functions.registry import REGISTRY, builtin


def _string_arg(name: str, value: Any, config: EvalConfig) -> str:
    if not isinstance(value, str):
        raise TypeError(f"{name} expects a string, got {type_name(value)}")
    return value


@builtin("LOWER", 1, 1)
def lower(args: List[Any], config: EvalConfig) -> Any:
    return _string_arg("LOWER", args[0], config).lower()


@builtin("UPPER", 1, 1)
def upper(args: List[Any], config: EvalConfig) -> Any:
    return _string_arg("UPPER", args[0], config).upper()


@builtin("CHAR_LENGTH", 1, 1)
def char_length(args: List[Any], config: EvalConfig) -> Any:
    return len(_string_arg("CHAR_LENGTH", args[0], config))


REGISTRY.alias("CHAR_LENGTH", "CHARACTER_LENGTH", "LENGTH")


@builtin("SUBSTRING", 2, 3)
def substring(args: List[Any], config: EvalConfig) -> Any:
    """``SUBSTRING(s, start [, length])`` with SQL's 1-based start."""
    text = _string_arg("SUBSTRING", args[0], config)
    start = args[1]
    if isinstance(start, bool) or not isinstance(start, int):
        raise TypeError("SUBSTRING start must be an integer")
    begin = max(start - 1, 0)
    if len(args) == 3:
        length = args[2]
        if isinstance(length, bool) or not isinstance(length, int):
            raise TypeError("SUBSTRING length must be an integer")
        if length < 0:
            raise ValueError("SUBSTRING length must be non-negative")
        # Account for a start before position 1, as SQL does.
        end = max(start - 1 + length, 0)
        return text[begin:end]
    return text[begin:]


REGISTRY.alias("SUBSTRING", "SUBSTR")


@builtin("TRIM", 1, 2)
def trim(args: List[Any], config: EvalConfig) -> Any:
    text = _string_arg("TRIM", args[0], config)
    chars = _string_arg("TRIM", args[1], config) if len(args) == 2 else None
    return text.strip(chars)


@builtin("LTRIM", 1, 2)
def ltrim(args: List[Any], config: EvalConfig) -> Any:
    text = _string_arg("LTRIM", args[0], config)
    chars = _string_arg("LTRIM", args[1], config) if len(args) == 2 else None
    return text.lstrip(chars)


@builtin("RTRIM", 1, 2)
def rtrim(args: List[Any], config: EvalConfig) -> Any:
    text = _string_arg("RTRIM", args[0], config)
    chars = _string_arg("RTRIM", args[1], config) if len(args) == 2 else None
    return text.rstrip(chars)


@builtin("REPLACE", 3, 3)
def replace(args: List[Any], config: EvalConfig) -> Any:
    text = _string_arg("REPLACE", args[0], config)
    old = _string_arg("REPLACE", args[1], config)
    new = _string_arg("REPLACE", args[2], config)
    return text.replace(old, new)


@builtin("POSITION", 2, 2)
def position(args: List[Any], config: EvalConfig) -> Any:
    """``POSITION(needle, haystack)`` — 1-based index, 0 when absent."""
    needle = _string_arg("POSITION", args[0], config)
    haystack = _string_arg("POSITION", args[1], config)
    return haystack.find(needle) + 1


@builtin("CONTAINS", 2, 2)
def contains(args: List[Any], config: EvalConfig) -> Any:
    haystack = _string_arg("CONTAINS", args[0], config)
    needle = _string_arg("CONTAINS", args[1], config)
    return needle in haystack


@builtin("STARTS_WITH", 2, 2)
def starts_with(args: List[Any], config: EvalConfig) -> Any:
    text = _string_arg("STARTS_WITH", args[0], config)
    prefix = _string_arg("STARTS_WITH", args[1], config)
    return text.startswith(prefix)


@builtin("ENDS_WITH", 2, 2)
def ends_with(args: List[Any], config: EvalConfig) -> Any:
    text = _string_arg("ENDS_WITH", args[0], config)
    suffix = _string_arg("ENDS_WITH", args[1], config)
    return text.endswith(suffix)


@builtin("SPLIT", 2, 2)
def split(args: List[Any], config: EvalConfig) -> Any:
    """Split a string into an array on a separator."""
    text = _string_arg("SPLIT", args[0], config)
    separator = _string_arg("SPLIT", args[1], config)
    if not separator:
        raise ValueError("SPLIT separator must be non-empty")
    return text.split(separator)


@builtin("CONCAT", 1, None)
def concat_fn(args: List[Any], config: EvalConfig) -> Any:
    """Variadic string concatenation (function form of ``||``)."""
    return "".join(_string_arg("CONCAT", arg, config) for arg in args)


@builtin("REVERSE", 1, 1)
def reverse(args: List[Any], config: EvalConfig) -> Any:
    value = args[0]
    if isinstance(value, str):
        return value[::-1]
    if isinstance(value, list):
        return value[::-1]
    raise TypeError(f"REVERSE expects a string or array, got {type_name(value)}")


@builtin("REPEAT", 2, 2)
def repeat(args: List[Any], config: EvalConfig) -> Any:
    text = _string_arg("REPEAT", args[0], config)
    count = args[1]
    if isinstance(count, bool) or not isinstance(count, int) or count < 0:
        raise TypeError("REPEAT count must be a non-negative integer")
    return text * count
