"""Function registry mechanics."""

import pytest

from repro.config import EvalConfig
from repro.datamodel.values import MISSING
from repro.errors import EvaluationError, TypeCheckError
from repro.functions.registry import FunctionRegistry


@pytest.fixture
def registry():
    reg = FunctionRegistry()
    reg.register("ADD", lambda args, config: args[0] + args[1], 2)
    reg.register(
        "FIRST_PRESENT",
        lambda args, config: next(
            (a for a in args if a is not None and a is not MISSING), None
        ),
        1,
        None,
        propagate_absent=False,
    )
    return reg


class TestLookup:
    def test_case_insensitive(self, registry):
        assert registry.lookup("add") is registry.lookup("ADD")

    def test_unknown_is_none(self, registry):
        assert registry.lookup("nope") is None

    def test_alias(self, registry):
        registry.alias("ADD", "PLUS")
        assert registry.lookup("plus") is registry.lookup("add")

    def test_contains_and_names(self, registry):
        assert "ADD" in registry
        assert "ADD" in registry.names()


class TestInvoke:
    def test_arity_check(self, registry):
        with pytest.raises(EvaluationError):
            registry.lookup("ADD").invoke([1], EvalConfig())

    def test_variadic(self, registry):
        definition = registry.lookup("FIRST_PRESENT")
        assert definition.invoke([None, 5], EvalConfig()) == 5

    def test_absence_propagation_default(self, registry):
        definition = registry.lookup("ADD")
        assert definition.invoke([1, MISSING], EvalConfig()) is MISSING
        assert definition.invoke([1, None], EvalConfig()) is None

    def test_missing_wins_over_null(self, registry):
        definition = registry.lookup("ADD")
        assert definition.invoke([None, MISSING], EvalConfig()) is MISSING

    def test_opt_out_sees_absent_values(self, registry):
        definition = registry.lookup("FIRST_PRESENT")
        assert definition.invoke([MISSING, None, 7], EvalConfig()) == 7

    def test_internal_type_error_permissive(self, registry):
        definition = registry.lookup("ADD")
        assert definition.invoke([1, "x"], EvalConfig()) is MISSING

    def test_internal_type_error_strict(self, registry):
        definition = registry.lookup("ADD")
        with pytest.raises(TypeCheckError):
            definition.invoke([1, "x"], EvalConfig(typing_mode="strict"))
