"""Behavioural tests for the builtin function library, via the engine."""

import math

import pytest



@pytest.fixture
def run(db):
    return db.execute


class TestStrings:
    def test_case_functions(self, run):
        assert run("LOWER('AbC')") == "abc"
        assert run("UPPER('AbC')") == "ABC"

    def test_length(self, run):
        assert run("CHAR_LENGTH('héllo')") == 5
        assert run("LENGTH('')") == 0

    def test_substring_one_based(self, run):
        assert run("SUBSTRING('hello', 2)") == "ello"
        assert run("SUBSTRING('hello', 2, 3)") == "ell"

    def test_substring_start_before_one(self, run):
        assert run("SUBSTRING('hello', 0, 3)") == "he"

    def test_substring_negative_start_with_length(self, run):
        # SQL semantics: the window starts at the (possibly negative)
        # position and its length counts the virtual characters before
        # position 1, so only the overlap with the string survives.
        assert run("SUBSTRING('hello', -1, 3)") == "h"
        assert run("SUBSTRING('hello', -2, 2)") == ""
        assert run("SUBSTRING('hello', -5, 3)") == ""

    def test_trim_family(self, run):
        assert run("TRIM('  x  ')") == "x"
        assert run("LTRIM('xxa', 'x')") == "a"
        assert run("RTRIM('axx', 'x')") == "a"

    def test_trim_empty_char_set_is_identity(self, run):
        # An empty trim set removes nothing — it must not strip
        # whitespace (the no-argument default) or loop forever.
        assert run("TRIM('  x  ', '')") == "  x  "
        assert run("LTRIM('xxa', '')") == "xxa"
        assert run("RTRIM('axx', '')") == "axx"

    def test_replace(self, run):
        assert run("REPLACE('banana', 'na', 'NA')") == "baNANA"

    def test_position_one_based_zero_absent(self, run):
        assert run("POSITION('ll', 'hello')") == 3
        assert run("POSITION('zz', 'hello')") == 0

    def test_contains_starts_ends(self, run):
        assert run("CONTAINS('hello', 'ell')") is True
        assert run("STARTS_WITH('hello', 'he')") is True
        assert run("ENDS_WITH('hello', 'lo')") is True

    def test_split(self, run):
        assert run("SPLIT('a,b,c', ',')") == ["a", "b", "c"]

    def test_concat_fn(self, run):
        assert run("CONCAT('a', 'b', 'c')") == "abc"

    def test_reverse_string_and_array(self, run):
        assert run("REVERSE('abc')") == "cba"
        assert run("REVERSE([1, 2])") == [2, 1]

    def test_repeat(self, run):
        assert run("REPEAT('ab', 3)") == "ababab"

    def test_wrong_type_is_missing(self, run):
        assert run("LOWER(5) IS MISSING") is True

    def test_null_propagates(self, run):
        assert run("UPPER(NULL) IS NULL") is True


class TestNumerics:
    def test_rounding_family(self, run):
        assert run("CEIL(1.2)") == 2
        assert run("FLOOR(1.8)") == 1
        assert run("ROUND(2.567, 2)") == 2.57
        assert run("TRUNC(-1.9)") == -1

    def test_abs_sign(self, run):
        assert run("ABS(-4)") == 4
        assert run("SIGN(-9)") == -1
        assert run("SIGN(0)") == 0

    def test_sqrt_power_mod(self, run):
        assert run("SQRT(9)") == 3.0
        assert run("POWER(2, 10)") == 1024
        assert run("MOD(7, 3)") == 1

    def test_logs(self, run):
        assert run("EXP(0)") == 1.0
        assert abs(run("LN(EXP(1))") - 1.0) < 1e-12
        assert run("LOG10(1000)") == 3.0

    def test_pi(self, run):
        assert run("PI()") == math.pi

    def test_domain_errors_are_missing(self, run):
        assert run("SQRT(-1) IS MISSING") is True
        assert run("LN(0) IS MISSING") is True
        assert run("MOD(1, 0) IS MISSING") is True


class TestCollections:
    def test_length_contains(self, run):
        assert run("ARRAY_LENGTH([1, 2, 3])") == 3
        assert run("ARRAY_CONTAINS([1, 2], 2)") is True
        assert run("ARRAY_CONTAINS(<<'a'>>, 'a')") is True

    def test_concat_distinct_flatten(self, run):
        assert run("ARRAY_CONCAT([1], [2], [3])") == [1, 2, 3]
        assert run("ARRAY_DISTINCT([1, 1.0, 2, 'a', 'a'])") == [1, 2, "a"]
        assert run("ARRAY_FLATTEN([[1, 2], 3, [4]])") == [1, 2, 3, 4]

    def test_slice_sort(self, run):
        assert run("ARRAY_SLICE([1,2,3,4], 1, 3)") == [2, 3]
        assert run("ARRAY_SORT(<<3, 1, 2>>)") == [1, 2, 3]

    def test_to_array_to_bag(self, run):
        assert run("TO_ARRAY(5)") == [5]
        assert run("TO_ARRAY(<<1>>)") == [1]
        assert run("TO_BAG([1, 2]) = <<2, 1>>") is True
        assert run("TO_ARRAY(MISSING)") == []

    def test_range(self, run):
        assert run("RANGE(3)") == [0, 1, 2]
        assert run("RANGE(1, 4)") == [1, 2, 3]
        assert run("RANGE(10, 0, -5)") == [10, 5]


class TestAbsenceHelpers:
    def test_ifmissing_family(self, run):
        assert run("IFMISSING(MISSING, 1)") == 1
        assert run("IFMISSING(NULL, 1) IS NULL") is True
        assert run("IFNULL(NULL, 1)") == 1
        assert run("IFMISSINGORNULL(MISSING, 1)") == 1
        assert run("IFMISSINGORNULL(NULL, 1)") == 1

    def test_nvl_alias(self, run):
        assert run("NVL(NULL, 2)") == 2

    def test_missingif(self, run):
        assert run("MISSINGIF(1, 1) IS MISSING") is True
        assert run("MISSINGIF(1, 2)") == 1

    def test_typeof(self, run):
        assert run("TYPEOF(MISSING)") == "missing"
        assert run("TYPEOF({'a': 1})") == "tuple"
        assert run("TYPEOF(<<>>)") == "bag"


class TestTupleHelpers:
    def test_attribute_names(self, run):
        assert run("ATTRIBUTE_NAMES({'a': 1, 'b': 2})") == ["a", "b"]

    def test_tuple_union(self, run):
        result = run("TUPLE_UNION({'a': 1}, {'b': 2})")
        assert result.to_dict() == {"a": 1, "b": 2}

    def test_greatest_least(self, run):
        assert run("GREATEST(3, 9, 1)") == 9
        assert run("LEAST('b', 'a')") == "a"


class TestCollAggregates:
    def test_coll_family(self, run):
        assert run("COLL_SUM([1, 2, 3])") == 6
        assert run("COLL_AVG(<<2, 4>>)") == 3.0
        assert run("COLL_MIN([3, 1])") == 1
        assert run("COLL_MAX([3, 1])") == 3
        assert run("COLL_COUNT([1, NULL, MISSING])") == 1

    def test_coll_skips_absent(self, run):
        assert run("COLL_SUM([1, NULL, 2, MISSING])") == 3

    def test_coll_empty_null(self, run):
        assert run("COLL_AVG([]) IS NULL") is True
        assert run("COLL_MIN([NULL]) IS NULL") is True

    def test_coll_booleans(self, run):
        assert run("COLL_EVERY([TRUE, TRUE])") is True
        assert run("COLL_EVERY([TRUE, FALSE])") is False
        assert run("COLL_EVERY([])") is True
        assert run("COLL_SOME([FALSE, TRUE])") is True
        assert run("COLL_SOME([])") is False

    def test_coll_statistics(self, run):
        assert abs(run("COLL_STDDEV([2, 4, 4, 4, 5, 5, 7, 9])") - 2.138) < 0.01
        assert run("COLL_VARIANCE([1, 3])") == 2.0
        assert run("COLL_STDDEV([1]) IS NULL") is True

    def test_coll_array_agg(self, run):
        assert run("COLL_ARRAY_AGG(<<1, NULL, 2>>)") == [1, 2]

    def test_coll_count_distinct(self, run):
        assert run("COLL_COUNT_DISTINCT([1, 1.0, 2, 'a'])") == 3

    def test_coll_non_collection_is_type_error(self, run):
        assert run("COLL_SUM(5) IS MISSING") is True

    def test_coll_of_absent_collection(self, run):
        assert run("COLL_SUM(MISSING) IS NULL") is True
