"""Quickstart: the SQL++ tour in five minutes.

Walks the exact arc of the paper — relational data keeps working, then
each relaxation is switched on: nested data, schema optionality,
NULL vs MISSING, SELECT VALUE, GROUP AS, and PIVOT/UNPIVOT.

Run:  python examples/quickstart.py
"""

from repro import Database, sqlpp_dumps


def show(title, result):
    print(f"\n-- {title}")
    print(sqlpp_dumps(result))


def main():
    db = Database()

    # 1. Plain SQL still works (tenet 1: SQL compatibility).  Namespaced
    #    names like hr.emp mirror a database/table hierarchy.
    db.set(
        "hr.emp",
        [
            {"id": 1, "name": "Ada", "title": "Engineer", "salary": 120_000},
            {"id": 2, "name": "Bo", "title": "Engineer", "salary": 95_000},
            {"id": 3, "name": "Cy", "title": "Manager", "salary": 150_000},
        ],
    )
    show(
        "SQL as you know it",
        db.execute(
            """
            SELECT e.name AS name, e.salary AS salary
            FROM hr.emp AS e
            WHERE e.title = 'Engineer'
            ORDER BY salary DESC
            """
        ),
    )

    # 2. Nested data is first-class: a FROM variable may range over a
    #    collection nested *inside* another variable (left-correlation).
    db.set(
        "hr.emp_nested",
        [
            {"name": "Ada", "projects": ["OLAP Security", "Storage Engine"]},
            {"name": "Bo", "projects": ["OLTP Security"]},
            {"name": "Cy", "projects": []},
        ],
    )
    show(
        "Unnesting with left-correlation (paper Listing 4)",
        db.execute(
            """
            SELECT e.name AS emp_name, p AS proj_name
            FROM hr.emp_nested AS e, e.projects AS p
            WHERE p LIKE '%Security%'
            """
        ),
    )

    # 3. Schema is optional and data may be irregular.  A missing
    #    attribute navigates to MISSING, which simply disappears from
    #    constructed results — no error, no stray NULL.
    db.set(
        "visits",
        [
            {"ip": "10.0.0.1", "user": "ada"},
            {"ip": "10.0.0.2"},  # anonymous: no user attribute at all
            {"ip": "10.0.0.3", "user": None},  # logged out: explicit null
        ],
    )
    show(
        "NULL and MISSING are different things",
        db.execute(
            """
            SELECT v.ip AS ip,
                   v.user IS MISSING AS anonymous,
                   v.user IS NULL AND v.user IS NOT MISSING AS logged_out
            FROM visits AS v
            """
        ),
    )

    # 4. SELECT VALUE constructs collections of *anything* — the Core
    #    primitive behind SELECT (paper Section V-A).
    show(
        "SELECT VALUE builds non-tuple results",
        db.execute("SELECT VALUE [e.name, e.salary / 1000] FROM hr.emp AS e"),
    )

    # 5. GROUP AS exposes groups as data (paper Section V-B): the group
    #    is queryable, not locked inside aggregate functions.
    show(
        "GROUP BY ... GROUP AS (paper Listing 12)",
        db.execute(
            """
            FROM hr.emp_nested AS e, e.projects AS p
            GROUP BY p AS project GROUP AS g
            SELECT project AS project,
                   (FROM g AS v SELECT VALUE v.e.name) AS members
            """
        ),
    )

    # 6. PIVOT/UNPIVOT move data between attribute names and values
    #    (paper Section VI).
    db.set(
        "today",
        [
            {"symbol": "amzn", "price": 1900},
            {"symbol": "goog", "price": 1120},
        ],
    )
    show(
        "PIVOT: a collection becomes one tuple (paper Listing 24)",
        db.execute("PIVOT sp.price AT sp.symbol FROM today sp"),
    )

    # 7. EXPLAIN shows the sugar → Core rewriting the paper describes.
    print("\n-- How SQL sugar lowers onto the SQL++ Core:")
    print(
        db.explain(
            "SELECT e.title, AVG(e.salary) AS avg FROM hr.emp AS e GROUP BY e.title"
        )
    )


if __name__ == "__main__":
    main()
