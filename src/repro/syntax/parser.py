"""A recursive-descent parser for SQL++.

Entry points: :func:`parse` (one query), :func:`parse_script`
(semicolon-separated queries) and :func:`parse_expression` (a bare
expression, used by the schema and test tooling).

The parser builds surface-level AST: plain ``SELECT`` lists, SQL aggregate
calls and subqueries stay as written; the rewriter later lowers them onto
the SQL++ Core.  Both clause orders are accepted — ``SELECT`` first (SQL
style) or last (pipeline style, paper Section V-B) — as is the ``PIVOT``
query form of Section VI-B.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TypeVar

from repro.errors import ParseError, caret_snippet
from repro.datamodel.values import MISSING
from repro.syntax import ast
from repro.syntax.lexer import tokenize
from repro.syntax.tokens import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    PUNCT,
    QUOTED_IDENT,
    STRING,
    Token,
)

_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}
_QUERY_START_KEYWORDS = ("SELECT", "FROM", "PIVOT")


_NodeT = TypeVar("_NodeT", bound=ast.Node)


class Parser:
    """Parses a token stream into AST nodes.

    When the original ``source`` text is supplied, every
    :class:`ParseError` carries a caret-context snippet, and AST nodes
    are stamped with the 1-based line/column of their first token (the
    analyzer's diagnostics anchor on these spans).
    """

    def __init__(self, tokens: List[Token], source: Optional[str] = None):
        self._tokens = tokens
        self._source = source
        self._pos = 0
        self._param_count = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(
            f"{message}, found {token.describe()}",
            token.line,
            token.column,
            snippet=caret_snippet(self._source, token.line, token.column),
        )

    def _pin(self, node: _NodeT, token: Token) -> _NodeT:
        """Stamp ``token``'s position onto ``node`` unless already set.

        "Unless already set" lets inner parses win: a ``Binary`` built
        around an already-pinned operand keeps its own operator span
        while the operand keeps the more specific one.
        """
        if node.line is None:
            node.line = token.line
            node.column = token.column
        return node

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().is_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._accept_keyword(word)
        if token is None:
            raise self._error(f"expected {word}")
        return token

    def _accept_punct(self, *texts: str) -> Optional[Token]:
        if self._peek().is_punct(*texts):
            return self._advance()
        return None

    def _expect_punct(self, text: str) -> Token:
        token = self._accept_punct(text)
        if token is None:
            raise self._error(f"expected {text!r}")
        return token

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.type in (IDENT, QUOTED_IDENT):
            self._advance()
            return token.value
        raise self._error(f"expected {what}")

    def _at_query_start(self, offset: int = 0) -> bool:
        return self._peek(offset).is_keyword(*_QUERY_START_KEYWORDS)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def parse_query(self) -> ast.Query:
        """Parse a single complete query and require end of input."""
        query = self._parse_query()
        self._accept_punct(";")
        if self._peek().type != EOF:
            raise self._error("unexpected trailing input")
        return query

    def parse_script(self) -> List[ast.Query]:
        """Parse zero or more semicolon-separated queries."""
        queries: List[ast.Query] = []
        while self._peek().type != EOF:
            queries.append(self._parse_query())
            if not self._accept_punct(";") and self._peek().type != EOF:
                raise self._error("expected ';' between queries")
        return queries

    def parse_expression_only(self) -> ast.Expr:
        """Parse a bare expression and require end of input."""
        expr = self._parse_expr()
        if self._peek().type != EOF:
            raise self._error("unexpected trailing input")
        return expr

    # ------------------------------------------------------------------
    # Queries, set operations and the post-SELECT clauses
    # ------------------------------------------------------------------

    def _parse_query(self) -> ast.Query:
        start = self._peek()
        body = self._parse_set_expr()
        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_order_items()
        limit = offset = None
        # LIMIT and OFFSET are accepted in either order.
        for __ in range(2):
            if limit is None and self._accept_keyword("LIMIT"):
                limit = self._parse_expr()
            elif offset is None and self._accept_keyword("OFFSET"):
                offset = self._parse_expr()
        return self._pin(
            ast.Query(body=body, order_by=order_by, limit=limit, offset=offset),
            start,
        )

    def _parse_set_expr(self) -> ast.Node:
        left = self._parse_query_term()
        while self._peek().is_keyword("UNION", "INTERSECT", "EXCEPT"):
            op_token = self._advance()
            op = op_token.value
            all_flag = bool(self._accept_keyword("ALL"))
            if not all_flag:
                self._accept_keyword("DISTINCT")
            right = self._parse_query_term()
            left = self._pin(
                ast.SetOp(op=op, all=all_flag, left=left, right=right), op_token
            )
        return left

    def _parse_query_term(self) -> ast.Node:
        if self._at_query_start():
            return self._parse_query_block()
        return self._parse_expr()

    def _parse_order_items(self) -> List[ast.OrderItem]:
        items = [self._parse_order_item()]
        while self._accept_punct(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> ast.OrderItem:
        start = self._peek()
        expr = self._parse_expr()
        desc = False
        if self._accept_keyword("DESC"):
            desc = True
        else:
            self._accept_keyword("ASC")
        nulls_first: Optional[bool] = None
        if self._accept_keyword("NULLS"):
            if self._accept_keyword("FIRST"):
                nulls_first = True
            else:
                self._expect_keyword("LAST")
                nulls_first = False
        return self._pin(
            ast.OrderItem(expr=expr, desc=desc, nulls_first=nulls_first), start
        )

    # ------------------------------------------------------------------
    # Query blocks
    # ------------------------------------------------------------------

    def _parse_query_block(self) -> ast.QueryBlock:
        token = self._peek()
        if token.is_keyword("SELECT"):
            return self._parse_select_first_block()
        if token.is_keyword("PIVOT"):
            return self._parse_pivot_block()
        if token.is_keyword("FROM"):
            return self._parse_from_first_block()
        raise self._error("expected SELECT, FROM or PIVOT")

    def _parse_select_first_block(self) -> ast.QueryBlock:
        start = self._peek()
        select = self._parse_select_clause()
        from_items = None
        if self._accept_keyword("FROM"):
            from_items = self._parse_from_items()
        lets = self._parse_lets()
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        group_by = self._parse_group_by()
        having = self._parse_expr() if self._accept_keyword("HAVING") else None
        return self._pin(
            ast.QueryBlock(
                select=select,
                from_=from_items,
                lets=lets,
                where=where,
                group_by=group_by,
                having=having,
                select_first=True,
            ),
            start,
        )

    def _parse_from_first_block(self) -> ast.QueryBlock:
        start = self._peek()
        self._expect_keyword("FROM")
        from_items = self._parse_from_items()
        lets = self._parse_lets()
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        group_by = self._parse_group_by()
        having = self._parse_expr() if self._accept_keyword("HAVING") else None
        if self._peek().is_keyword("SELECT"):
            select = self._parse_select_clause()
        elif self._peek().is_keyword("PIVOT"):
            select = self._parse_pivot_clause()
        else:
            raise self._error("expected SELECT (or PIVOT) at end of FROM-first query")
        return self._pin(
            ast.QueryBlock(
                select=select,
                from_=from_items,
                lets=lets,
                where=where,
                group_by=group_by,
                having=having,
                select_first=False,
            ),
            start,
        )

    def _parse_pivot_block(self) -> ast.QueryBlock:
        start = self._peek()
        select = self._parse_pivot_clause()
        self._expect_keyword("FROM")
        from_items = self._parse_from_items()
        lets = self._parse_lets()
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        group_by = self._parse_group_by()
        having = self._parse_expr() if self._accept_keyword("HAVING") else None
        return self._pin(
            ast.QueryBlock(
                select=select,
                from_=from_items,
                lets=lets,
                where=where,
                group_by=group_by,
                having=having,
                select_first=True,
            ),
            start,
        )

    def _parse_pivot_clause(self) -> ast.PivotClause:
        start = self._expect_keyword("PIVOT")
        value = self._parse_expr()
        self._expect_keyword("AT")
        at = self._parse_expr()
        return self._pin(ast.PivotClause(value=value, at=at), start)

    def _parse_select_clause(self) -> ast.SelectClause:
        start = self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        if not distinct:
            self._accept_keyword("ALL")
        if self._accept_keyword("VALUE", "ELEMENT"):
            expr = self._parse_expr()
            return self._pin(ast.SelectValue(expr=expr, distinct=distinct), start)
        if self._peek().is_punct("*") and not self._peek(1).is_punct("."):
            self._advance()
            return self._pin(ast.SelectStar(distinct=distinct), start)
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return self._pin(ast.SelectList(items=items, distinct=distinct), start)

    def _parse_select_item(self) -> ast.SelectItem:
        start = self._peek()
        expr = self._parse_expr()
        if self._peek().is_punct(".") and self._peek(1).is_punct("*"):
            self._advance()
            self._advance()
            return self._pin(ast.SelectItem(expr=expr, alias=None, star=True), start)
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias after AS")
        elif self._peek().type in (IDENT, QUOTED_IDENT):
            alias = self._advance().value
        return self._pin(ast.SelectItem(expr=expr, alias=alias), start)

    def _parse_lets(self) -> List[ast.LetBinding]:
        lets: List[ast.LetBinding] = []
        while self._accept_keyword("LET"):
            while True:
                name_token = self._peek()
                name = self._expect_identifier("LET variable name")
                self._expect_punct("=")
                lets.append(
                    self._pin(
                        ast.LetBinding(name=name, expr=self._parse_expr()),
                        name_token,
                    )
                )
                if not self._accept_punct(","):
                    break
        return lets

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------

    def _parse_from_items(self) -> List[ast.FromItem]:
        items = [self._parse_join_tree()]
        while self._accept_punct(","):
            items.append(self._parse_join_tree())
        return items

    def _parse_join_tree(self) -> ast.FromItem:
        left = self._parse_from_unary()
        while True:
            join_token = self._peek()
            kind = self._parse_join_kind()
            if kind is None:
                return left
            right = self._parse_from_unary()
            on = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                on = self._parse_expr()
            left = self._pin(
                ast.FromJoin(left=left, right=right, kind=kind, on=on), join_token
            )

    def _parse_join_kind(self) -> Optional[str]:
        if self._accept_keyword("JOIN"):
            return "INNER"
        if self._peek().is_keyword("INNER") and self._peek(1).is_keyword("JOIN"):
            self._advance()
            self._advance()
            return "INNER"
        if self._peek().is_keyword("LEFT"):
            self._advance()
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return "LEFT"
        if self._peek().is_keyword("CROSS") and self._peek(1).is_keyword("JOIN"):
            self._advance()
            self._advance()
            return "CROSS"
        return None

    def _parse_from_unary(self) -> ast.FromItem:
        start = self._peek()
        if self._accept_keyword("UNPIVOT"):
            expr = self._parse_expr()
            self._accept_keyword("AS")
            value_alias = self._expect_identifier("UNPIVOT value variable")
            self._expect_keyword("AT")
            at_alias = self._expect_identifier("UNPIVOT name variable")
            return self._pin(
                ast.FromUnpivot(
                    expr=expr, value_alias=value_alias, at_alias=at_alias
                ),
                start,
            )
        # UNNEST expr AS v is pure sugar for a correlated range item.
        self._accept_keyword("UNNEST")
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias after AS")
        elif self._peek().type in (IDENT, QUOTED_IDENT):
            alias = self._advance().value
        if alias is None:
            alias = _implied_alias(expr)
        if alias is None:
            raise self._error("FROM item requires an alias (AS v)")
        at_alias = None
        if self._accept_keyword("AT"):
            at_alias = self._expect_identifier("AT position variable")
        return self._pin(
            ast.FromCollection(expr=expr, alias=alias, at_alias=at_alias), start
        )

    # ------------------------------------------------------------------
    # GROUP BY
    # ------------------------------------------------------------------

    def _parse_group_by(self) -> Optional[ast.GroupByClause]:
        start = self._peek()
        if not self._accept_keyword("GROUP"):
            return None
        self._expect_keyword("BY")
        mode = "simple"
        grouping_sets: Optional[List[List[int]]] = None
        keys: List[ast.GroupKey]
        if self._accept_keyword("ROLLUP"):
            keys = self._parse_parenthesised_group_keys()
            mode = "rollup"
        elif self._accept_keyword("CUBE"):
            keys = self._parse_parenthesised_group_keys()
            mode = "cube"
        elif self._peek().is_keyword("GROUPING") and self._peek(1).is_keyword("SETS"):
            self._advance()
            self._advance()
            keys, grouping_sets = self._parse_grouping_sets()
            mode = "sets"
        else:
            keys = [self._parse_group_key(0)]
            while self._accept_punct(","):
                keys.append(self._parse_group_key(len(keys)))
        group_as = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("AS")
            group_as = self._expect_identifier("GROUP AS variable")
        return self._pin(
            ast.GroupByClause(
                keys=keys, group_as=group_as, mode=mode, grouping_sets=grouping_sets
            ),
            start,
        )

    def _parse_group_key(self, position: int) -> ast.GroupKey:
        start = self._peek()
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias after AS")
        if alias is None:
            alias = _implied_alias(expr) or f"_{position + 1}"
        return self._pin(ast.GroupKey(expr=expr, alias=alias), start)

    def _parse_parenthesised_group_keys(self) -> List[ast.GroupKey]:
        self._expect_punct("(")
        keys = [self._parse_group_key(0)]
        while self._accept_punct(","):
            keys.append(self._parse_group_key(len(keys)))
        self._expect_punct(")")
        return keys

    def _parse_grouping_sets(self) -> Tuple[List[ast.GroupKey], List[List[int]]]:
        """Parse ``GROUPING SETS ((a, b), (a), ())``.

        Returns the distinct keys (in first-appearance order) and, per
        set, the indexes of its keys.  Key identity is by printed form.
        """
        from repro.syntax.printer import print_ast

        self._expect_punct("(")
        keys: List[ast.GroupKey] = []
        key_index: dict = {}
        sets: List[List[int]] = []
        while True:
            self._expect_punct("(")
            indexes: List[int] = []
            if not self._peek().is_punct(")"):
                while True:
                    key = self._parse_group_key(len(keys))
                    text = print_ast(key.expr)
                    if text not in key_index:
                        key_index[text] = len(keys)
                        keys.append(key)
                    indexes.append(key_index[text])
                    if not self._accept_punct(","):
                        break
            self._expect_punct(")")
            sets.append(indexes)
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return keys, sets

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while True:
            op_token = self._accept_keyword("OR")
            if op_token is None:
                return left
            left = self._pin(
                ast.Binary(op="OR", left=left, right=self._parse_and()), op_token
            )

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while True:
            op_token = self._accept_keyword("AND")
            if op_token is None:
                return left
            left = self._pin(
                ast.Binary(op="AND", left=left, right=self._parse_not()), op_token
            )

    def _parse_not(self) -> ast.Expr:
        not_token = self._accept_keyword("NOT")
        if not_token is not None:
            return self._pin(
                ast.Unary(op="NOT", operand=self._parse_not()), not_token
            )
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_concat()
        token = self._peek()
        if token.type == PUNCT and token.value in _COMPARISON_OPS:
            op = self._advance().value
            if op == "<>":
                op = "!="
            return self._pin(
                ast.Binary(op=op, left=left, right=self._parse_concat()), token
            )
        negated = False
        if token.is_keyword("NOT") and self._peek(1).is_keyword(
            "LIKE", "BETWEEN", "IN"
        ):
            self._advance()
            negated = True
            token = self._peek()
        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._parse_concat()
            escape = None
            if self._accept_keyword("ESCAPE"):
                escape = self._parse_concat()
            return self._pin(
                ast.Like(
                    operand=left, pattern=pattern, escape=escape, negated=negated
                ),
                token,
            )
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_concat()
            self._expect_keyword("AND")
            high = self._parse_concat()
            return self._pin(
                ast.Between(operand=left, low=low, high=high, negated=negated),
                token,
            )
        if token.is_keyword("IN"):
            self._advance()
            return self._pin(
                ast.InPredicate(
                    operand=left, collection=self._parse_in_rhs(), negated=negated
                ),
                token,
            )
        if token.is_keyword("IS"):
            self._advance()
            is_negated = bool(self._accept_keyword("NOT"))
            kind_token = self._peek()
            if kind_token.is_keyword("NULL", "MISSING"):
                kind = self._advance().value
            elif kind_token.type == IDENT:
                kind = self._advance().value.upper()
            else:
                raise self._error("expected a type name after IS")
            return self._pin(
                ast.IsPredicate(operand=left, kind=kind, negated=is_negated), token
            )
        if negated:
            raise self._error("expected LIKE, BETWEEN or IN after NOT")
        return left

    def _parse_in_rhs(self) -> ast.Expr:
        """The right-hand side of IN: a subquery, a value list, or any
        collection-valued expression (e.g. ``p IN e.projects``)."""
        if self._peek().is_punct("(") and not self._at_query_start(1):
            self._advance()
            first = self._parse_expr()
            if self._accept_punct(","):
                items = [first, self._parse_expr()]
                while self._accept_punct(","):
                    items.append(self._parse_expr())
                self._expect_punct(")")
                return ast.ArrayLit(items=items)
            self._expect_punct(")")
            return ast.ArrayLit(items=[first])
        return self._parse_concat()

    def _parse_concat(self) -> ast.Expr:
        left = self._parse_additive()
        while True:
            token = self._accept_punct("||")
            if token is None:
                return left
            left = self._pin(
                ast.Binary(op="||", left=left, right=self._parse_additive()), token
            )

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._accept_punct("+", "-")
            if token is None:
                return left
            left = self._pin(
                ast.Binary(
                    op=token.value, left=left, right=self._parse_multiplicative()
                ),
                token,
            )

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._accept_punct("*", "/", "%")
            if token is None:
                return left
            left = self._pin(
                ast.Binary(op=token.value, left=left, right=self._parse_unary()),
                token,
            )

    def _parse_unary(self) -> ast.Expr:
        token = self._accept_punct("-", "+")
        if token is not None:
            return self._pin(
                ast.Unary(op=token.value, operand=self._parse_unary()), token
            )
        return self._parse_path()

    def _parse_path(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._peek().is_punct(".") and not self._peek(1).is_punct("*"):
                self._advance()
                token = self._peek()
                if token.type in (IDENT, QUOTED_IDENT):
                    self._advance()
                    expr = self._pin(ast.Path(base=expr, attr=token.value), token)
                elif token.type == KEYWORD:
                    # Keywords are fine as attribute names after a dot
                    # (e.g. ``c.value``); keep original lowercase form.
                    self._advance()
                    expr = self._pin(
                        ast.Path(base=expr, attr=token.value.lower()), token
                    )
                else:
                    raise self._error("expected attribute name after '.'")
            elif self._peek().is_punct("["):
                bracket = self._peek()
                if self._peek(1).is_punct("*") and self._peek(2).is_punct("]"):
                    self._advance()
                    self._advance()
                    self._advance()
                    expr = self._pin(
                        ast.PathWildcard(
                            base=expr,
                            kind="values",
                            steps=self._parse_wildcard_steps(),
                        ),
                        bracket,
                    )
                    continue
                self._advance()
                index = self._parse_expr()
                self._expect_punct("]")
                expr = self._pin(ast.Index(base=expr, index=index), bracket)
            else:
                return expr

    def _parse_wildcard_steps(self) -> List[ast.PathStep]:
        """Navigation steps after ``[*]``; they apply per element."""
        steps: List[ast.PathStep] = []
        while True:
            if self._peek().is_punct(".") and not self._peek(1).is_punct("*"):
                self._advance()
                token = self._peek()
                if token.type in (IDENT, QUOTED_IDENT):
                    self._advance()
                    steps.append(ast.PathStep(attr=token.value))
                elif token.type == KEYWORD:
                    self._advance()
                    steps.append(ast.PathStep(attr=token.value.lower()))
                else:
                    raise self._error("expected attribute name after '.'")
            elif (
                self._peek().is_punct("[")
                and self._peek(1).is_punct("*")
                and self._peek(2).is_punct("]")
            ):
                self._advance()
                self._advance()
                self._advance()
                steps.append(ast.PathStep(wildcard="values"))
            elif self._peek().is_punct("["):
                self._advance()
                index = self._parse_expr()
                self._expect_punct("]")
                steps.append(ast.PathStep(index=index))
            else:
                return steps

    # ------------------------------------------------------------------
    # Primary expressions
    # ------------------------------------------------------------------

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type == NUMBER:
            self._advance()
            return self._pin(ast.Literal(value=token.value), token)
        if token.type == STRING:
            self._advance()
            return self._pin(ast.Literal(value=token.value), token)
        if token.is_keyword("TRUE"):
            self._advance()
            return self._pin(ast.Literal(value=True), token)
        if token.is_keyword("FALSE"):
            self._advance()
            return self._pin(ast.Literal(value=False), token)
        if token.is_keyword("NULL"):
            self._advance()
            return self._pin(ast.Literal(value=None), token)
        if token.is_keyword("MISSING"):
            self._advance()
            return self._pin(ast.Literal(value=MISSING), token)
        if token.is_keyword("CASE"):
            return self._pin(self._parse_case(), token)
        if token.is_keyword("EXISTS"):
            self._advance()
            return self._pin(ast.Exists(operand=self._parse_path()), token)
        if token.is_keyword("CAST"):
            return self._pin(self._parse_cast(), token)
        if token.is_punct("?"):
            self._advance()
            self._param_count += 1
            return self._pin(ast.Parameter(index=self._param_count - 1), token)
        if token.is_punct("("):
            return self._pin(self._parse_parenthesised(), token)
        if token.is_punct("["):
            return self._pin(self._parse_array_literal(), token)
        if token.is_punct("<<"):
            return self._pin(self._parse_bag_literal("<<", ">>"), token)
        if token.is_punct("{"):
            if self._peek(1).is_punct("{"):
                return self._pin(self._parse_brace_bag(), token)
            return self._pin(self._parse_struct_literal(), token)
        if token.type == IDENT:
            if self._peek(1).is_punct("("):
                return self._pin(self._parse_function_call(), token)
            self._advance()
            return self._pin(ast.VarRef(name=token.value), token)
        if token.type == QUOTED_IDENT:
            self._advance()
            return self._pin(ast.VarRef(name=token.value), token)
        raise self._error("expected an expression")

    def _parse_parenthesised(self) -> ast.Expr:
        self._expect_punct("(")
        if self._at_query_start():
            query = self._parse_query()
            self._expect_punct(")")
            return ast.SubqueryExpr(query=query)
        expr = self._parse_expr()
        # A parenthesised term may continue as a set operation or carry
        # post-SELECT clauses — ``((SELECT ...) UNION ALL (SELECT ...))``
        # — in which case the whole parenthesis is a subquery.
        if self._peek().is_keyword(
            "UNION", "INTERSECT", "EXCEPT", "ORDER", "LIMIT", "OFFSET"
        ):
            body: ast.Node = expr
            while self._peek().is_keyword("UNION", "INTERSECT", "EXCEPT"):
                op = self._advance().value
                all_flag = bool(self._accept_keyword("ALL"))
                if not all_flag:
                    self._accept_keyword("DISTINCT")
                body = ast.SetOp(
                    op=op, all=all_flag, left=body, right=self._parse_query_term()
                )
            order_by: List[ast.OrderItem] = []
            if self._accept_keyword("ORDER"):
                self._expect_keyword("BY")
                order_by = self._parse_order_items()
            limit = offset = None
            for __ in range(2):
                if limit is None and self._accept_keyword("LIMIT"):
                    limit = self._parse_expr()
                elif offset is None and self._accept_keyword("OFFSET"):
                    offset = self._parse_expr()
            self._expect_punct(")")
            return ast.SubqueryExpr(
                query=ast.Query(
                    body=body, order_by=order_by, limit=limit, offset=offset
                )
            )
        self._expect_punct(")")
        return expr

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        operand = None
        if not self._peek().is_keyword("WHEN"):
            operand = self._parse_expr()
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expr()
            self._expect_keyword("THEN")
            whens.append((condition, self._parse_expr()))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        else_ = None
        if self._accept_keyword("ELSE"):
            else_ = self._parse_expr()
        self._expect_keyword("END")
        return ast.CaseExpr(operand=operand, whens=whens, else_=else_)

    def _parse_cast(self) -> ast.Expr:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        operand = self._parse_expr()
        self._expect_keyword("AS")
        type_name = self._expect_identifier("type name").upper()
        self._expect_punct(")")
        return ast.CastExpr(operand=operand, type_name=type_name)

    def _parse_function_call(self) -> ast.Expr:
        name_token = self._advance()
        name = name_token.value
        self._expect_punct("(")
        distinct = False
        star = False
        args: List[ast.Expr] = []
        if self._accept_punct("*"):
            star = True
        elif not self._peek().is_punct(")"):
            if self._accept_keyword("DISTINCT"):
                distinct = True
            else:
                self._accept_keyword("ALL")
            # Arguments may be bare query blocks — the paper writes
            # ``COLL_AVG(SELECT VALUE e.salary FROM ...)`` (Listing 16).
            args.append(self._parse_item_expr())
            while self._accept_punct(","):
                args.append(self._parse_item_expr())
        self._expect_punct(")")
        call = self._pin(
            ast.FunctionCall(name=name, args=args, distinct=distinct, star=star),
            name_token,
        )
        if self._peek().is_keyword("OVER"):
            return self._pin(
                ast.WindowCall(call=call, spec=self._parse_window_spec()),
                name_token,
            )
        return call

    def _parse_window_spec(self) -> ast.WindowSpec:
        self._expect_keyword("OVER")
        self._expect_punct("(")
        partition_by: List[ast.Expr] = []
        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("PARTITION"):
            self._expect_keyword("BY")
            partition_by.append(self._parse_expr())
            while self._accept_punct(","):
                partition_by.append(self._parse_expr())
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_order_items()
        self._expect_punct(")")
        return ast.WindowSpec(partition_by=partition_by, order_by=order_by)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    def _parse_array_literal(self) -> ast.Expr:
        self._expect_punct("[")
        items: List[ast.Expr] = []
        if not self._peek().is_punct("]"):
            items.append(self._parse_item_expr())
            while self._accept_punct(","):
                items.append(self._parse_item_expr())
        self._expect_punct("]")
        return ast.ArrayLit(items=items)

    def _parse_bag_literal(self, open_text: str, close_text: str) -> ast.Expr:
        self._expect_punct(open_text)
        items: List[ast.Expr] = []
        if not self._peek().is_punct(close_text):
            items.append(self._parse_item_expr())
            while self._accept_punct(","):
                items.append(self._parse_item_expr())
        self._expect_punct(close_text)
        return ast.BagLit(items=items)

    def _parse_brace_bag(self) -> ast.Expr:
        """Parse the paper's ``{{ ... }}`` bag notation.

        The lexer emits single braces, so ``}}}`` correctly closes a
        struct and then the bag; here we just consume two opening braces
        and later two closing ones.
        """
        self._expect_punct("{")
        self._expect_punct("{")
        items: List[ast.Expr] = []
        if not (self._peek().is_punct("}") and self._peek(1).is_punct("}")):
            items.append(self._parse_item_expr())
            while self._accept_punct(","):
                items.append(self._parse_item_expr())
        self._expect_punct("}")
        self._expect_punct("}")
        return ast.BagLit(items=items)

    def _parse_item_expr(self) -> ast.Expr:
        """An element of a collection constructor (query terms allowed)."""
        if self._at_query_start():
            block = self._parse_query_block()
            return ast.SubqueryExpr(query=ast.Query(body=block))
        return self._parse_expr()

    def _parse_struct_literal(self) -> ast.Expr:
        self._expect_punct("{")
        fields: List[ast.StructField] = []
        if not self._peek().is_punct("}"):
            fields.append(self._parse_struct_field())
            while self._accept_punct(","):
                fields.append(self._parse_struct_field())
        self._expect_punct("}")
        return ast.StructLit(fields=fields)

    def _parse_struct_field(self) -> ast.StructField:
        token = self._peek()
        # A bare identifier or quoted identifier directly before ':' is a
        # literal attribute name (paper Listing 18: ``{deptno: d, ...}``).
        if token.type in (IDENT, QUOTED_IDENT) and self._peek(1).is_punct(":"):
            self._advance()
            key: ast.Expr = self._pin(ast.Literal(value=token.value), token)
        else:
            key = self._parse_expr()
        self._expect_punct(":")
        value = self._parse_item_expr()
        return self._pin(ast.StructField(key=key, value=value), token)


def _implied_alias(expr: ast.Expr) -> Optional[str]:
    """Infer a binding/output name from an expression, as SQL does.

    ``e.projects`` implies ``projects``; a bare name implies itself.
    Returns None when no name is implied.
    """
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Path):
        return expr.attr
    return None


def parse(source: str) -> ast.Query:
    """Parse one SQL++ query from ``source``."""
    return Parser(tokenize(source), source).parse_query()


def parse_script(source: str) -> List[ast.Query]:
    """Parse a semicolon-separated sequence of queries."""
    return Parser(tokenize(source), source).parse_script()


def parse_expression(source: str) -> ast.Expr:
    """Parse a bare SQL++ expression (no query clauses)."""
    return Parser(tokenize(source), source).parse_expression_only()


#: Re-export for callers that want the inferred-name rule.
implied_alias = _implied_alias
