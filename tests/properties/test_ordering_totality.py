"""Property tests for ordering totality and aggregate absence-skipping.

Two paper-level guarantees that must hold for *any* value, not just the
listings' data:

* ``ordering.sort_key`` imposes a total order on the entire data model —
  heterogeneous values, NaN included — because ORDER BY must never crash
  on whatever mix of types a schemaless collection holds (paper,
  Section III: one data model, no flat-tables assumption);
* every ``COLL_*`` aggregate skips NULL and MISSING *identically* in
  permissive and strict typing modes: absent values are the data-
  exclusion signal, not a type error, so stop-on-error mode must not
  stop on them (paper, Section IV-B).
"""

import math

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.datamodel.equality import deep_equals
from repro.datamodel.ordering import sort_key
from repro.datamodel.values import Bag, Struct

# -- heterogeneous model values, NaN and infinities included -----------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-1000, 1000),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=6),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(Bag),
        st.dictionaries(st.text(max_size=4), children, max_size=3).map(
            lambda d: Struct(d)
        ),
    ),
    max_leaves=12,
)


@given(values, values)
@settings(max_examples=200, deadline=None)
def test_sort_key_is_total(left, right):
    """Any two values are comparable: trichotomy, no exceptions."""
    key_left, key_right = sort_key(left), sort_key(right)
    verdicts = [key_left < key_right, key_left == key_right, key_right < key_left]
    assert sum(verdicts) == 1


@given(values)
@settings(max_examples=200, deadline=None)
def test_sort_key_is_reflexive(value):
    """Every value equals itself under the sort key — including NaN,
    which is ``!=`` itself under IEEE comparison."""
    assert sort_key(value) == sort_key(value)


@given(st.lists(values, max_size=12))
@settings(max_examples=100, deadline=None)
def test_sorting_heterogeneous_lists_is_deterministic(items):
    """sorted() by sort_key never raises and is idempotent."""
    once = sorted(items, key=sort_key)
    twice = sorted(once, key=sort_key)
    assert [sort_key(x) for x in once] == [sort_key(x) for x in twice]


def test_nan_has_a_stable_position():
    nan, items = float("nan"), [2.0, float("nan"), 1, float("-inf")]
    assert sort_key(nan) == sort_key(float("nan"))
    ordered = sorted(items, key=sort_key)
    # NaN sorts below every (other) number, deterministically.
    assert math.isnan(ordered[0])
    assert ordered[1:] == [float("-inf"), 1, 2.0]


# -- COLL_* absence-skipping parity across typing modes ----------------------

PERMISSIVE_DB = Database()
STRICT_DB = Database(typing_mode="strict")

number_tokens = st.lists(
    st.one_of(
        st.sampled_from(["NULL", "MISSING"]),
        st.integers(-50, 50).map(str),
    ),
    max_size=10,
)

boolean_tokens = st.lists(
    st.sampled_from(["NULL", "MISSING", "TRUE", "FALSE"]),
    max_size=10,
)

NUMERIC_AGGREGATES = [
    "COLL_SUM",
    "COLL_AVG",
    "COLL_COUNT",
    "COLL_COUNT_DISTINCT",
    "COLL_MIN",
    "COLL_MAX",
    "COLL_STDDEV",
    "COLL_VARIANCE",
    "COLL_ARRAY_AGG",
]


def _run_both(query):
    permissive = PERMISSIVE_DB.execute(query)
    strict = STRICT_DB.execute(query)
    return permissive, strict


@given(number_tokens)
@settings(max_examples=100, deadline=None)
def test_numeric_aggregates_skip_absence_identically(tokens):
    """For inputs of numbers and absences, every COLL_* aggregate gives
    the same answer in both typing modes, and that answer equals the
    aggregate over the input with the absent elements removed."""
    literal = "[" + ", ".join(tokens) + "]"
    cleaned = "[" + ", ".join(
        t for t in tokens if t not in ("NULL", "MISSING")
    ) + "]"
    for aggregate in NUMERIC_AGGREGATES:
        with_absence, strict_result = _run_both(f"{aggregate}({literal})")
        assert deep_equals(with_absence, strict_result), aggregate
        without_absence = PERMISSIVE_DB.execute(f"{aggregate}({cleaned})")
        assert deep_equals(with_absence, without_absence), aggregate


@given(boolean_tokens)
@settings(max_examples=100, deadline=None)
def test_boolean_aggregates_skip_absence_identically(tokens):
    literal = "[" + ", ".join(tokens) + "]"
    cleaned = "[" + ", ".join(
        t for t in tokens if t not in ("NULL", "MISSING")
    ) + "]"
    for aggregate in ("COLL_EVERY", "COLL_SOME"):
        with_absence, strict_result = _run_both(f"{aggregate}({literal})")
        assert deep_equals(with_absence, strict_result), aggregate
        without_absence = PERMISSIVE_DB.execute(f"{aggregate}({cleaned})")
        assert deep_equals(with_absence, without_absence), aggregate
