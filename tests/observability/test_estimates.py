"""Per-operator cardinality annotations on EXPLAIN ANALYZE — ``est=``,
``actual=``, ``q-err=`` on every plan line, the worst-misestimate flag —
across all three executors (streaming, batch-vectorized, parallel), and
tally parity: the same query must report the same per-operator row
counts no matter which engine ran it, including under LIMIT early
termination.
"""

from __future__ import annotations

import re

import pytest

from repro import Database
from repro.core import parallel
from repro.observability import ExecTracer

JOIN_QUERY = (
    "SELECT r.v AS v, s.name AS name FROM r AS r "
    "JOIN s AS s ON r.k = s.k WHERE r.v > 50"
)

EST = re.compile(r"\(est=[\d.?]+ actual=\d+( q-err=[\d.]+[^)]*)?\)")


@pytest.fixture
def small_morsels(monkeypatch):
    monkeypatch.setattr(parallel, "MIN_PARALLEL_ROWS", 64)
    monkeypatch.setattr(parallel, "MIN_MORSEL_ROWS", 32)


def build_db(n: int = 100, **kwargs) -> Database:
    # query_store=False keeps these runs free of feedback hints, so the
    # sampled estimates under test stay deterministic.
    db = Database(query_store=False, **kwargs)
    db.set("r", [{"k": i % 10, "v": i} for i in range(n)])
    db.set("s", [{"k": i, "name": f"n{i}"} for i in range(10)])
    return db


def skew_db(**kwargs) -> Database:
    """First 1024 rows (the statistics sample) distinct on ``k``, the
    tail constant — an equality filter on the constant is massively
    underestimated."""
    db = Database(query_store=False, **kwargs)
    db.set(
        "a",
        [
            {"k": i if i < 1024 else -1, "v": i}
            for i in range(3000)
        ],
    )
    return db


class TestEstimateAnnotations:
    def test_streaming_plan_lines_carry_estimates(self):
        db = build_db()
        out = db.explain_analyze(JOIN_QUERY, batch=False)
        assert EST.search(out), out
        assert "q-err=" in out
        # Every operator of the join plan is annotated: the join and
        # both scans.
        assert len(EST.findall(out)) >= 3

    def test_batch_plan_lines_carry_estimates(self):
        db = build_db()
        out = db.explain_analyze(JOIN_QUERY)
        assert EST.search(out), out
        assert "q-err=" in out
        assert len(EST.findall(out)) >= 3

    def test_parallel_plan_lines_carry_estimates(self, small_morsels):
        db = build_db(n=256)
        out = db.explain_analyze(JOIN_QUERY, parallel=2)
        assert db.metrics.last.parallel_workers >= 2
        assert EST.search(out), out
        assert "q-err=" in out

    def test_worst_misestimate_flagged(self):
        db = skew_db()
        out = db.explain_analyze(
            "SELECT a.v AS v FROM a AS a WHERE a.k = -1", batch=False
        )
        # Sample says k is unique (est ~1); actually 1976 rows match.
        assert "worst misestimate" in out
        flagged = [l for l in out.splitlines() if "worst misestimate" in l]
        assert len(flagged) == 1
        assert "q-err=" in flagged[0]

    def test_no_flag_when_estimates_are_good(self):
        db = build_db()
        out = db.explain_analyze(
            "SELECT r.v AS v FROM r AS r", batch=False
        )
        assert "worst misestimate" not in out

    def test_unknown_estimate_renders_question_mark(self):
        # A correlated (lateral) right side has no closed-form estimate.
        db = Database(query_store=False)
        db.set("o", [{"items": [1, 2, 3], "k": 1} for _ in range(600)])
        out = db.explain_analyze(
            "SELECT i AS i FROM o AS o, o.items AS i "
            "WHERE o.k = 1 AND i > 1",
            batch=False,
        )
        assert "est=? actual=" in out, out

    def test_explain_plan_unaffected(self):
        # Plain EXPLAIN has no runtime tallies, so no actual=/q-err=.
        db = build_db()
        out = db.explain_plan(JOIN_QUERY)
        assert "actual=" not in out
        assert "q-err=" not in out


def op_tallies(tracer: ExecTracer) -> dict:
    """Per-operator (rows_in, rows_out) keyed by operator label."""
    tallies = {}
    for _op, stats in tracer._op_stats.values():
        rows_in, rows_out = tallies.get(stats.label, (0, 0))
        tallies[stats.label] = (
            rows_in + stats.rows_in,
            rows_out + stats.rows_out,
        )
    return tallies


class TestTallyParity:
    """Satellite (c): per-operator row tallies agree across streaming,
    batch and parallel runs of the same query."""

    def test_streaming_batch_parallel_agree(self, small_morsels):
        db = build_db(n=256)
        streaming, batch, par = ExecTracer(), ExecTracer(), ExecTracer()
        r1 = db.execute(JOIN_QUERY, batch=False, tracer=streaming)
        r2 = db.execute(JOIN_QUERY, tracer=batch)
        r3 = db.execute(JOIN_QUERY, parallel=2, tracer=par)
        assert db.metrics.last.parallel_workers >= 2
        assert len(r1) == len(r2) == len(r3)
        t_stream, t_batch, t_par = (
            op_tallies(streaming), op_tallies(batch), op_tallies(par)
        )
        assert t_stream == t_batch, (t_stream, t_batch)
        # Worker tallies merged at the barrier sum to the serial count.
        assert t_batch == t_par, (t_batch, t_par)

    def test_light_tracer_counts_match_full_tracer(self):
        db = build_db()
        full, light = ExecTracer(), ExecTracer(timing=False)
        db.execute(JOIN_QUERY, batch=False, tracer=full)
        db.execute(JOIN_QUERY, batch=False, tracer=light)
        assert op_tallies(full) == op_tallies(light)

    def test_light_tracer_does_not_change_plan_choice(self):
        # The feedback tracer must observe the same plan an untraced
        # run would execute — scan-only shapes included (the batch
        # executor forces a plan for those; a full tracer declines).
        db = build_db()
        light = ExecTracer(timing=False)
        db.execute("SELECT r.v AS v FROM r AS r", tracer=light)
        assert op_tallies(light), "light tracer saw no plan ops"

    def test_limit_early_termination_tallies_exact(self):
        # LIMIT shapes run on the streaming pipeline; the tally must be
        # the rows that actually flowed, not the full input.
        db = build_db()
        for tracer in (ExecTracer(), ExecTracer(timing=False)):
            rows = db.execute(
                "SELECT r.v AS v FROM r AS r WHERE r.v >= 0 LIMIT 4",
                tracer=tracer,
            )
            assert len(rows) == 4
            tallies = op_tallies(tracer)
            scan = next(v for k, v in tallies.items() if k.startswith("Scan"))
            assert scan[1] == 4, tallies

    def test_parallel_invocations_preserved(self, small_morsels):
        # merge_op folds worker invocation counts instead of counting
        # one invocation per merged worker record.
        db = build_db(n=256)
        serial, par = ExecTracer(), ExecTracer()
        db.execute(JOIN_QUERY, tracer=serial)
        db.execute(JOIN_QUERY, parallel=2, tracer=par)
        assert db.metrics.last.parallel_workers >= 2
        serial_calls = {
            stats.label: stats.invocations
            for _op, stats in serial._op_stats.values()
        }
        par_calls = {
            stats.label: stats.invocations
            for _op, stats in par._op_stats.values()
        }
        assert set(serial_calls) == set(par_calls)
        for label, calls in par_calls.items():
            assert calls >= serial_calls[label]
