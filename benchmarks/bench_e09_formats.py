"""E9 — format independence (tenet 5).

"A query should be written identically across underlying data in any of
today's many nested and/or semistructured formats."

The bench round-trips one nested workload through every codec, asserts
the *same query text* gives the *same answer* over each decoded copy,
and times encode/decode throughput per format (the one place formats
may legitimately differ).
"""

import pytest

from repro import Database
from repro.datamodel.convert import from_python
from repro.datamodel.values import Bag
from repro.formats.registry import FORMATS
from repro.workloads import emp_nested

from conftest import assert_same_bag

SIZE = 1_000
QUERY = (
    "SELECT e.id AS id, p.name AS proj FROM emp AS e, e.projects AS p "
    "WHERE p.name LIKE '%Security%'"
)
#: CSV is excluded: it cannot carry the nested projects array.
NESTED_FORMATS = ["sqlpp", "json", "cbor", "ion"]


def model_data():
    return Bag(from_python(emp_nested(SIZE, fanout=3, seed=77)))


@pytest.fixture(scope="module")
def reference_answer():
    db = Database()
    db.set("emp", model_data())
    return db.execute(QUERY)


@pytest.mark.benchmark(group="E9-encode")
@pytest.mark.parametrize("format_name", NESTED_FORMATS)
def test_encode(benchmark, format_name):
    codec = FORMATS[format_name]
    data = model_data()
    encoded = benchmark(lambda: codec.dumps(data))
    size = len(encoded)
    print(f"\nE9: {format_name} encodes {SIZE} docs into {size:,} bytes")


@pytest.mark.benchmark(group="E9-decode")
@pytest.mark.parametrize("format_name", NESTED_FORMATS)
def test_decode(benchmark, format_name):
    codec = FORMATS[format_name]
    encoded = codec.dumps(model_data())
    benchmark(lambda: codec.loads(encoded))


@pytest.mark.benchmark(group="E9-query-after-decode")
@pytest.mark.parametrize("format_name", NESTED_FORMATS)
def test_same_query_same_answer(benchmark, format_name, reference_answer):
    codec = FORMATS[format_name]
    decoded = codec.loads(codec.dumps(model_data()))
    db = Database()
    db.set("emp", decoded)
    assert_same_bag(db.execute(QUERY), reference_answer)
    benchmark(lambda: db.execute(QUERY))
