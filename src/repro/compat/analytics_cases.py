"""Kit extension cases: the analytical features of Section V-B's note.

The paper asserts windows, CUBE/ROLLUP/GROUPING SETS "are wholly
compatible with SQL++ and then become able to operate on and produce
nested and heterogeneous data"; these cases pin that down, plus the
dialect deep-path extension.
"""

from __future__ import annotations

from repro.compat.corpus import ConformanceCase, register

NESTED_SALES = """
{{
  {'region': 'eu', 'orders': [{'product': 'a', 'amount': 10},
                              {'product': 'b', 'amount': 20}]},
  {'region': 'us', 'orders': [{'product': 'a', 'amount': 30}]},
  {'region': 'us', 'orders': [{'product': 'a', 'amount': 40}]}
}}
"""

register(
    ConformanceCase(
        case_id="K-rollup-nested",
        section="V-B",
        title="ROLLUP over unnested document data",
        data={"sales": NESTED_SALES},
        query="""
            SELECT s.region AS r, o.product AS p, SUM(o.amount) AS t
            FROM sales AS s, s.orders AS o
            GROUP BY ROLLUP (s.region, o.product)
        """,
        expected="""
            {{
              {'r': 'eu', 'p': 'a', 't': 10},
              {'r': 'eu', 'p': 'b', 't': 20},
              {'r': 'us', 'p': 'a', 't': 70},
              {'r': 'eu', 'p': null, 't': 30},
              {'r': 'us', 'p': null, 't': 70},
              {'r': null, 'p': null, 't': 100}
            }}
        """,
    )
)

register(
    ConformanceCase(
        case_id="K-grouping-sets-nested",
        section="V-B",
        title="GROUPING SETS over unnested document data",
        data={"sales": NESTED_SALES},
        query="""
            SELECT s.region AS r, o.product AS p, COUNT(*) AS n
            FROM sales AS s, s.orders AS o
            GROUP BY GROUPING SETS ((s.region), (o.product))
        """,
        expected="""
            {{
              {'r': 'eu', 'p': null, 'n': 2},
              {'r': 'us', 'p': null, 'n': 2},
              {'r': null, 'p': 'a', 'n': 3},
              {'r': null, 'p': 'b', 'n': 1}
            }}
        """,
    )
)

register(
    ConformanceCase(
        case_id="K-window-nested",
        section="V-B",
        title="A window function ranking unnested rows",
        data={"sales": NESTED_SALES},
        query="""
            SELECT o.product AS p, o.amount AS a,
                   RANK() OVER (PARTITION BY o.product
                                ORDER BY o.amount DESC) AS rk
            FROM sales AS s, s.orders AS o
        """,
        expected="""
            {{
              {'p': 'a', 'a': 40, 'rk': 1},
              {'p': 'a', 'a': 30, 'rk': 2},
              {'p': 'a', 'a': 10, 'rk': 3},
              {'p': 'b', 'a': 20, 'rk': 1}
            }}
        """,
    )
)

register(
    ConformanceCase(
        case_id="K-window-running",
        section="V-B",
        title="A running aggregate window over heterogeneous rows",
        data={"t": "{{ {'k': 'x', 'v': 1}, {'k': 'x', 'v': 2}, {'k': 'y', 'v': 5} }}"},
        query="""
            SELECT r.k AS k, r.v AS v,
                   SUM(r.v) OVER (PARTITION BY r.k ORDER BY r.v) AS run
            FROM t AS r
        """,
        expected="""
            {{
              {'k': 'x', 'v': 1, 'run': 1},
              {'k': 'x', 'v': 2, 'run': 3},
              {'k': 'y', 'v': 5, 'run': 5}
            }}
        """,
    )
)

register(
    ConformanceCase(
        case_id="K-window-of-aggregates",
        section="V-B",
        title="A window ranking grouped aggregates",
        data={"t": "{{ {'k': 'a', 'v': 1}, {'k': 'a', 'v': 3}, {'k': 'b', 'v': 2} }}"},
        query="""
            SELECT k, SUM(r.v) AS total,
                   RANK() OVER (ORDER BY SUM(r.v) DESC) AS rk
            FROM t AS r GROUP BY r.k AS k
        """,
        expected="""
            {{
              {'k': 'a', 'total': 4, 'rk': 1},
              {'k': 'b', 'total': 2, 'rk': 2}
            }}
        """,
    )
)

register(
    ConformanceCase(
        case_id="K-deep-path",
        section="ext",
        title="Deep-path wildcards map trailing steps per element",
        data={"t": "{{ {'ps': [{'n': 'a'}, {'n': 'b'}, {'x': 1}]} }}"},
        query="SELECT VALUE r.ps[*].n FROM t AS r",
        expected="{{ ['a', 'b'] }}",
        notes="Dialect extension (PartiQL path wildcards); MISSING "
        "per-element results are dropped.",
    )
)

register(
    ConformanceCase(
        case_id="K-setop-multiset",
        section="V",
        title="EXCEPT ALL uses multiset semantics under deep equality",
        query="""
            (SELECT VALUE v FROM [[1], [1], {'a': 2}] AS v)
            EXCEPT ALL
            (SELECT VALUE v FROM [[1]] AS v)
        """,
        expected="{{ [1], {'a': 2} }}",
    )
)

register(
    ConformanceCase(
        case_id="K-order-heterogeneous",
        section="V-B",
        title="ORDER BY totally orders across types",
        data={"t": "{{ 'str', 2, true, [0], {'a': 1}, null }}"},
        query="SELECT VALUE TYPEOF(v) FROM t AS v ORDER BY v",
        expected="['null', 'boolean', 'integer', 'string', 'array', 'tuple']",
        ordered=True,
    )
)

register(
    ConformanceCase(
        case_id="K-left-join-lateral",
        section="III",
        title="LEFT JOIN against a correlated (lateral) nested collection",
        data={
            "t": """
                {{ {'id': 1, 'xs': [10]},
                   {'id': 2, 'xs': []} }}
            """
        },
        query="""
            SELECT r.id AS id, x AS x
            FROM t AS r LEFT JOIN r.xs AS x ON TRUE
        """,
        expected="{{ {'id': 1, 'x': 10}, {'id': 2, 'x': null} }}",
    )
)

register(
    ConformanceCase(
        case_id="K-strict-stops-on-dirty",
        section="IV",
        title="Stop-on-error mode refuses to aggregate past dirty data",
        data={"t": "{{ {'v': 1}, {'v': 'dirty'} }}"},
        query="SELECT VALUE AVG(r.v) FROM t AS r",
        expect_error="TypeCheckError",
        typing_mode="strict",
    )
)
