"""Source spans on AST nodes and caret context on syntax errors."""

import pytest

from repro.errors import LexError, ParseError, caret_snippet
from repro.syntax import ast
from repro.syntax.ast import copy_span
from repro.syntax.parser import parse


class TestNodeSpans:
    def test_top_level_query(self):
        tree = parse("SELECT VALUE 1")
        assert (tree.line, tree.column) == (1, 1)

    def test_expression_positions(self):
        tree = parse("SELECT VALUE  x.y FROM t AS x")
        path = tree.body.select.expr
        assert path.line == 1
        assert path.column > 13

    def test_multiline_positions(self):
        tree = parse("FROM t AS r\nWHERE r.a > 0\nSELECT VALUE r")
        assert tree.body.where.line == 2

    def test_spans_do_not_affect_equality(self):
        # Positions are trivia: the same source parsed twice is equal
        # even though a reformatted copy carries different spans.
        original = parse("SELECT VALUE 1 + 2")
        reformatted = parse("SELECT  VALUE\n  1 + 2")
        assert original == reformatted

    def test_copy_span_fills_only_missing(self):
        source = parse("SELECT VALUE 1").body.select
        target = ast.Literal(value=99)
        copy_span(target, source)
        assert (target.line, target.column) == (source.line, source.column)
        pinned = ast.Literal(value=1, line=9, column=9)
        copy_span(pinned, source)
        assert (pinned.line, pinned.column) == (9, 9)


class TestErrorCarets:
    def test_parse_error_position_and_caret(self):
        with pytest.raises(ParseError) as info:
            parse("SELECT VALUE 1 +\n  FROM")
        error = info.value
        assert (error.line, error.column) == (2, 3)
        assert error.snippet is not None
        assert error.snippet.splitlines()[-1].endswith("^")
        assert "FROM" in str(error)

    def test_lex_error_position(self):
        with pytest.raises(LexError) as info:
            parse("SELECT VALUE 'open")
        assert info.value.line == 1

    def test_caret_snippet_alignment(self):
        snippet = caret_snippet("SELECT nope", 1, 8, indent="")
        assert snippet == "SELECT nope\n       ^"

    def test_caret_snippet_out_of_range(self):
        assert caret_snippet("one line", 5, 1) is None
        assert caret_snippet(None, 1, 1) is None
