"""Catalog and Database facade."""

import pytest

from repro import Database
from repro.catalog.catalog import Catalog, validate_name
from repro.datamodel.values import Bag, Struct
from repro.errors import CatalogError


class TestCatalog:
    def test_set_get(self):
        catalog = Catalog()
        catalog.set("t", [1, 2])
        assert catalog.get("t") == [1, 2]

    def test_values_converted_to_model(self):
        catalog = Catalog()
        catalog.set("t", [{"a": 1}])
        assert isinstance(catalog.get("t")[0], Struct)

    def test_dotted_names(self):
        catalog = Catalog()
        catalog.set("hr.emp", [])
        catalog.set("hr.dept", [])
        assert catalog.namespace("hr") == ["hr.dept", "hr.emp"]

    def test_unknown_name(self):
        with pytest.raises(CatalogError):
            Catalog().get("nope")

    def test_drop(self):
        catalog = Catalog()
        catalog.set("t", 1)
        catalog.drop("t")
        assert "t" not in catalog
        with pytest.raises(CatalogError):
            catalog.drop("t")

    @pytest.mark.parametrize("name", ["", "1bad", "a..b", "a b", "a.'x'"])
    def test_invalid_names(self, name):
        with pytest.raises(CatalogError):
            validate_name(name)

    @pytest.mark.parametrize("name", ["a", "a.b.c", "_x", "$v", "hr.emp_2"])
    def test_valid_names(self, name):
        assert validate_name(name) == name


class TestDatabase:
    def test_named_value_of_any_kind(self):
        db = Database()
        db.set("answer", 42)  # a scalar named value is fine (Section II)
        assert db.execute("answer + 1") == 43

    def test_mode_defaults_and_overrides(self):
        db = Database(sql_compat=False)
        from repro.errors import BindingError

        with pytest.raises(BindingError):
            db.set("t", [{"a": 1}]) or db.execute("SELECT a FROM t AS t")
        # Per-query override turns compat back on.
        result = list(db.execute("SELECT a FROM t AS t", sql_compat=True))
        assert result[0]["a"] == 1

    def test_typing_mode_override(self):
        db = Database(typing_mode="strict")
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            db.execute("1 + 'a'")
        assert db.execute("(1 + 'a') IS MISSING", typing_mode="permissive") is True

    def test_execute_python(self):
        db = Database()
        db.set("t", [{"a": 1}])
        assert db.execute_python("SELECT VALUE r.a FROM t AS r") == [1]

    def test_missing_as_null_flag(self):
        db = Database()
        db.set("t", [{}, {"a": 1}])
        result = db.execute("SELECT VALUE r.a FROM t AS r", missing_as_null=True)
        assert sorted(x for x in result if x is not None) == [1]
        assert None in list(result)

    def test_explain_returns_text(self):
        db = Database()
        db.set("t", [])
        assert "SELECT VALUE" in db.explain("SELECT 1 AS one FROM t AS t")

    def test_drop_clears_schema(self):
        db = Database()
        db.set("t", [{"a": 1}])
        db.set_schema("t", "BAG<STRUCT<a INT>>")
        db.drop("t")
        assert db.get_schema("t") is None

    def test_invalid_typing_mode_rejected(self):
        with pytest.raises(ValueError):
            Database(typing_mode="sloppy")

    def test_names(self):
        db = Database()
        db.set("b", 1)
        db.set("a", 2)
        assert db.names() == ["a", "b"]

    def test_load_value_literal(self):
        db = Database()
        db.load_value("t", "{{ {'a': 1} }}")
        assert isinstance(db.get("t"), Bag)

    def test_insert_appends(self):
        db = Database()
        db.set("t", [{"a": 1}])
        db.insert("t", [{"a": 2}])
        assert len(list(db.execute("SELECT VALUE r FROM t AS r"))) == 2

    def test_insert_creates_bag(self):
        db = Database()
        db.insert("t", [1, 2])
        assert isinstance(db.get("t"), Bag)

    def test_insert_respects_schema(self):
        from repro.errors import SchemaError

        db = Database()
        db.set("t", [{"a": 1}])
        db.set_schema("t", "BAG<STRUCT<a INT>>")
        with pytest.raises(SchemaError):
            db.insert("t", [{"a": "bad"}])
        assert len(list(db.get("t"))) == 1

    def test_insert_into_scalar_rejected(self):
        db = Database()
        db.set("answer", 42)
        with pytest.raises(CatalogError):
            db.insert("answer", [1])

    def test_parameters_converted(self):
        db = Database()
        result = db.execute("SELECT VALUE ?.a FROM [1] AS x", parameters=[{"a": 5}])
        assert list(result) == [5]
