"""Structured span tracing: TraceContext, exports, and db.trace()."""

import json

import pytest

from repro import Database
from repro.errors import SQLPPError
from repro.observability import ExecTracer, Span, TraceContext


@pytest.fixture
def db():
    database = Database()
    database.set("users", [{"uid": i, "name": f"u{i}"} for i in range(20)])
    database.set(
        "orders",
        [{"oid": i, "user_id": i % 20, "total": i * 3} for i in range(60)],
    )
    return database


JOIN = (
    "SELECT u.uid AS uid, o.oid AS oid "
    "FROM users AS u JOIN orders AS o ON o.user_id = u.uid"
)


class TestTraceContext:
    def test_begin_end_nesting(self):
        trace = TraceContext(name="t")
        outer = trace.begin("outer")
        inner = trace.begin("inner")
        trace.end(inner)
        trace.end(outer)
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.duration_s >= inner.duration_s >= 0
        assert [s.name for s in trace.roots()] == ["outer"]
        assert [s.name for s in trace.children_of(outer)] == ["inner"]

    def test_event_records_leaf_under_open_span(self):
        from time import perf_counter

        trace = TraceContext(name="t")
        parent = trace.begin("phaseful")
        mark = perf_counter()
        trace.event("leaf", "stage", mark, 0.005, {"rows_out": 3})
        trace.end(parent)
        (leaf,) = trace.children_of(parent)
        assert leaf.name == "leaf"
        assert leaf.duration_s == pytest.approx(0.005)
        assert leaf.attrs["rows_out"] == 3

    def test_out_of_order_end_tolerated(self):
        trace = TraceContext(name="t")
        a = trace.begin("a")
        b = trace.begin("b")
        # Ending the outer span force-closes the dangling inner one.
        trace.end(a)
        assert b.duration_s >= 0
        assert all(span.duration_s >= 0 for span in trace.spans)

    def test_max_spans_cap_counts_dropped(self):
        trace = TraceContext(name="t", max_spans=3)
        root = trace.begin("root")
        for i in range(10):
            trace.end(trace.begin(f"s{i}"))
        trace.end(root)
        assert len(trace.spans) == 3
        assert trace.dropped == 8

    def test_span_ids_are_unique(self):
        trace = TraceContext(name="t")
        for i in range(5):
            trace.end(trace.begin(f"s{i}"))
        ids = [span.span_id for span in trace.spans]
        assert len(set(ids)) == len(ids)


class TestChromeExport:
    def test_every_event_is_complete(self):
        trace = TraceContext(name="t")
        outer = trace.begin("outer")
        trace.end(trace.begin("inner"))
        trace.end(outer)
        doc = trace.to_chrome_trace()
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
            assert event["name"]
            assert "pid" in event and "tid" in event

    def test_parent_ids_resolve(self, db):
        trace = db.trace(JOIN)
        events = trace.to_chrome_trace()["traceEvents"]
        ids = {event["args"]["span_id"] for event in events}
        for event in events:
            parent = event["args"]["parent_id"]
            assert parent is None or parent in ids

    def test_write_chrome_trace_round_trips(self, db, tmp_path):
        path = tmp_path / "trace.json"
        db.trace(JOIN).write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["dropped_spans"] == 0


class TestCollapsedExport:
    def test_stack_lines_and_self_time(self):
        trace = TraceContext(name="t")
        outer = trace.begin("outer")
        inner = trace.begin("inner")
        trace.end(inner)
        trace.end(outer)
        lines = trace.to_collapsed().splitlines()
        stacks = {line.rsplit(" ", 1)[0]: int(line.rsplit(" ", 1)[1]) for line in lines}
        assert set(stacks) == {"outer", "outer;inner"}
        # Self time of the parent excludes the child's wall time.
        total_us = round(outer.duration_s * 1e6)
        assert stacks["outer"] + stacks["outer;inner"] <= total_us + 1


class TestDatabaseTrace:
    def test_planned_query_has_operator_spans(self, db):
        trace = db.trace(JOIN)
        names = [span.name for span in trace.spans]
        assert any("HashJoin" in name for name in names)
        categories = {span.category for span in trace.spans}
        assert {"query", "phase", "operator"} <= categories

    def test_reference_path_has_item_spans(self):
        db = Database(optimize=False)
        db.set("r", [{"v": i} for i in range(5)])
        trace = db.trace("SELECT VALUE a.v FROM r AS a")
        categories = {span.category for span in trace.spans}
        assert "item" in categories
        assert "operator" not in categories

    def test_phases_nest_under_query_root(self, db):
        trace = db.trace(JOIN)
        (root,) = trace.roots()
        assert root.name == "query"
        child_names = {span.name for span in trace.children_of(root)}
        assert {"parse", "rewrite", "execute"} <= child_names

    def test_format_tree_is_readable(self, db):
        text = db.trace(JOIN).format_tree()
        assert "query" in text and "execute" in text

    def test_failing_query_keeps_partial_trace_in_context(self, db):
        context = TraceContext(name="failing")
        with pytest.raises(SQLPPError):
            db.trace("SELECT VALUE nope.x FROM missing_coll AS nope",
                     context=context)
        # parse/rewrite spans survive even though execution failed.
        assert any(span.name == "query" for span in context.spans)

    def test_execute_without_trace_records_no_spans(self, db):
        tracer = ExecTracer()
        db.execute(JOIN, tracer=tracer)
        assert tracer.trace is None

    def test_span_dataclass_to_dict(self):
        span = Span(
            trace_id="t1", span_id=1, parent_id=None, name="n",
            category="query", start_s=0.0, duration_s=0.25,
        )
        data = span.to_dict()
        assert data["name"] == "n"
        assert data["duration_s"] == 0.25
