"""E11 — SQL's analytical features over nested data (Section V-B).

"SQL has additional analytical features such as CUBE, ROLLUP, and
GROUPING SETS ... as well as window functions ... These features are
wholly compatible with SQL++ and then become able to operate on and
produce nested and heterogeneous data."

The bench runs windows, ROLLUP and CUBE directly over *unnested
document data* (impossible in the flat baseline without normalising
first) and times them against the plain GROUP BY they generalise.
"""

import pytest

from repro.workloads import emp_nested

from conftest import make_db

SIZE = 2_000

PLAIN_GROUP = (
    "SELECT e.title AS t, p.name AS p, COUNT(*) AS n "
    "FROM emp AS e, e.projects AS p GROUP BY e.title, p.name"
)
ROLLUP = (
    "SELECT e.title AS t, p.name AS p, COUNT(*) AS n "
    "FROM emp AS e, e.projects AS p GROUP BY ROLLUP (e.title, p.name)"
)
CUBE = (
    "SELECT e.title AS t, p.name AS p, COUNT(*) AS n "
    "FROM emp AS e, e.projects AS p GROUP BY CUBE (e.title, p.name)"
)
WINDOW = (
    "SELECT e.name AS name, p.name AS p, "
    "RANK() OVER (PARTITION BY p.name ORDER BY e.salary DESC) AS rk "
    "FROM emp AS e, e.projects AS p"
)
RUNNING = (
    "SELECT e.name AS name, "
    "SUM(e.salary) OVER (PARTITION BY e.deptno ORDER BY e.salary) AS running "
    "FROM emp AS e"
)


@pytest.fixture(scope="module")
def db():
    return make_db(emp=emp_nested(SIZE, fanout=3, seed=66))


@pytest.fixture(scope="module")
def shapes_verified(db):
    plain = len(list(db.execute(PLAIN_GROUP)))
    rollup = len(list(db.execute(ROLLUP)))
    cube = len(list(db.execute(CUBE)))
    # ROLLUP adds subtotal rows; CUBE adds at least as many as ROLLUP.
    assert plain < rollup <= cube
    return True


@pytest.mark.benchmark(group="E11-analytics")
@pytest.mark.parametrize(
    "name", ["plain-group", "rollup", "cube", "window-rank", "running-sum"]
)
def test_analytics(benchmark, name, db, shapes_verified):
    query = {
        "plain-group": PLAIN_GROUP,
        "rollup": ROLLUP,
        "cube": CUBE,
        "window-rank": WINDOW,
        "running-sum": RUNNING,
    }[name]
    benchmark(lambda: db.execute(query))
