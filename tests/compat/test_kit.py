"""Run the full compatibility kit as the conformance test suite.

Every paper listing and every prose-derived case becomes one pytest
test, so a regression in any semantic rule names the exact listing it
broke.
"""

import pytest

from repro.compat.corpus import all_cases
from repro.compat.report import format_report
from repro.compat.runner import run_case, run_cases
from repro.formats.sqlpp_text import dumps

CASES = all_cases()


@pytest.mark.parametrize("case", CASES, ids=[case.case_id for case in CASES])
def test_conformance_case(case):
    result = run_case(case)
    if not result.passed:
        detail = result.error or (
            f"expected {dumps(result.expected)}\nactual {dumps(result.actual)}"
        )
        pytest.fail(f"{case.case_id} ({case.title}) failed:\n{detail}")


class TestKitStructure:
    def test_every_listing_is_covered(self):
        ids = {case.case_id for case in CASES}
        # Listings 11, 13, 21, 25, 28 are expected *outputs* of 10, 12,
        # 20, 24 and 26; Listing 5's DDL is exercised by the schema
        # tests plus the L5 data case.
        for number in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 15, 16, 17,
                       18, 19, 20, 22, 23, 24, 26, 27):
            assert f"L{number}" in ids, f"Listing {number} missing from the kit"

    def test_both_modes_are_exercised(self):
        assert any(not case.sql_compat for case in CASES)
        assert any(case.sql_compat for case in CASES)
        assert any(case.typing_mode == "strict" for case in CASES)

    def test_case_ids_unique(self):
        ids = [case.case_id for case in CASES]
        assert len(ids) == len(set(ids))

    def test_report_renders(self):
        results = run_cases(CASES[:3])
        report = format_report(results, verbose=True)
        assert "compatibility kit" in report
        assert "3/3" in report

    def test_report_shows_failures(self):
        import dataclasses

        broken = dataclasses.replace(CASES[1], expected="{{ 'wrong' }}")
        report = format_report(run_cases([broken]))
        assert "FAIL" in report
        assert "expected:" in report


class TestKitInstrumentation:
    def test_results_carry_query_metrics(self):
        results = run_cases(CASES[:3])
        for result in results:
            assert result.metrics is not None
            assert result.metrics.total_s > 0

    def test_collect_traces_attaches_spans(self):
        (result,) = run_cases(CASES[:1], collect_traces=True)
        assert result.trace is not None
        assert any(span.name == "query" for span in result.trace.spans)

    def test_traces_off_by_default(self):
        (result,) = run_cases(CASES[:1])
        assert result.trace is None

    def test_report_has_timing_columns(self):
        import re

        results = run_cases(CASES[:3])
        report = format_report(results)
        # Every case line carries a wall time; the summary totals them.
        assert len(re.findall(r"\d+(?:\.\d+)?(?:s|ms|us)\b", report)) >= 4
        assert re.search(r"3/3 cases passed in \S+", report)

    def test_report_json_has_phase_breakdown(self):
        from repro.compat.report import report_json

        data = report_json(run_cases(CASES[:2]))
        assert data["elapsed_s"] > 0
        for case in data["cases"]:
            phases = case["phases"]
            assert phases is not None
            assert phases["total_s"] >= phases["execute_s"] >= 0
            assert "cache_hit" in phases
