"""Expression evaluation: operators, absence propagation, navigation."""

import pytest

from repro import TypeCheckError
from repro.errors import BindingError, EvaluationError


@pytest.fixture
def run(db):
    def evaluate(expression, **options):
        return db.execute(expression, **options)

    return evaluate


class TestArithmetic:
    def test_basics(self, run):
        assert run("1 + 2 * 3") == 7
        assert run("10 - 4") == 6
        assert run("7 % 4") == 3

    def test_division_exact_int(self, run):
        assert run("6 / 2") == 3
        assert isinstance(run("6 / 2"), int)

    def test_division_inexact(self, run):
        assert run("7 / 2") == 3.5

    def test_division_by_zero_permissive(self, run):
        assert run("(1 / 0) IS MISSING") is True

    def test_division_by_zero_strict(self, run):
        with pytest.raises(EvaluationError):
            run("1 / 0", typing_mode="strict")

    def test_null_propagation(self, run):
        assert run("1 + NULL") is None

    def test_missing_propagation(self, run):
        assert run("(1 + MISSING) IS MISSING") is True

    def test_missing_beats_null(self, run):
        assert run("(NULL + MISSING) IS MISSING") is True

    def test_type_error_permissive(self, run):
        assert run("(2 * 'some string') IS MISSING") is True

    def test_type_error_strict(self, run):
        with pytest.raises(TypeCheckError):
            run("2 * 'some string'", typing_mode="strict")

    def test_boolean_is_not_a_number(self, run):
        assert run("(TRUE + 1) IS MISSING") is True

    def test_unary_minus(self, run):
        assert run("-(3)") == -3
        assert run("-NULL") is None


class TestComparisonAndEquality:
    def test_scalar_equality(self, run):
        assert run("1 = 1.0") is True
        assert run("'a' = 'b'") is False
        assert run("1 != 2") is True

    def test_cross_type_equality_is_a_type_error(self, run):
        # Wrongly-typed inputs to ``=`` follow Section IV-B rule 2, the
        # same as the ordering comparisons: MISSING in permissive mode,
        # an error in strict mode — not a silent ``false``.
        assert run("(1 = 'a') IS MISSING") is True
        assert run("(TRUE = 1) IS MISSING") is True
        with pytest.raises(TypeCheckError):
            run("1 = 'a'", typing_mode="strict")

    def test_deep_equality_on_nested(self, run):
        assert run("[1, {'a': 2}] = [1, {'a': 2}]") is True
        assert run("<<1, 2>> = <<2, 1>>") is True
        assert run("[1, 2] = [2, 1]") is False

    def test_null_equality_is_null(self, run):
        assert run("(NULL = NULL) IS NULL") is True

    def test_missing_equality_is_missing(self, run):
        assert run("(MISSING = 1) IS MISSING") is True

    def test_ordering_comparisons(self, run):
        assert run("1 < 2") is True
        assert run("'a' < 'b'") is True
        assert run("2 >= 2") is True

    def test_incomparable_types(self, run):
        assert run("(1 < 'a') IS MISSING") is True
        with pytest.raises(TypeCheckError):
            run("1 < 'a'", typing_mode="strict")


class TestLogic:
    def test_three_valued_tables(self, run):
        assert run("TRUE AND NULL") is None
        assert run("FALSE AND NULL") is False
        assert run("TRUE OR NULL") is True
        assert run("FALSE OR NULL") is None
        assert run("NOT NULL") is None

    def test_missing_behaves_like_null(self, run):
        assert run("TRUE OR MISSING") is True
        assert run("FALSE AND MISSING") is False
        assert run("(TRUE AND MISSING) IS NULL") is True

    def test_non_boolean_operand(self, run):
        assert run("(1 AND TRUE) IS NULL") is True
        with pytest.raises(TypeCheckError):
            run("1 AND TRUE", typing_mode="strict")


class TestStringsAndLike:
    def test_concat(self, run):
        assert run("'a' || 'b' || 'c'") == "abc"

    def test_concat_arrays(self, run):
        assert run("[1] || [2]") == [1, 2]

    def test_like_wildcards(self, run):
        assert run("'OLAP Security' LIKE '%Security%'") is True
        assert run("'abc' LIKE 'a_c'") is True
        assert run("'abc' LIKE 'a_d'") is False

    def test_like_escape(self, run):
        assert run("'50%' LIKE '50!%' ESCAPE '!'") is True
        assert run("'50x' LIKE '50!%' ESCAPE '!'") is False

    def test_like_escape_is_a_wildcard_char(self, run):
        # '%' as its own escape character: '%%' is a literal percent
        # sign, and a trailing unpaired '%' is a pattern error.
        assert run("'50%' LIKE '50%%' ESCAPE '%'") is True
        assert run("'50x' LIKE '50%%' ESCAPE '%'") is False
        with pytest.raises(EvaluationError):
            run("'abc' LIKE '%b%' ESCAPE '%'")

    def test_like_is_anchored(self, run):
        assert run("'xabc' LIKE 'abc'") is False

    def test_like_regex_metachars_are_literal(self, run):
        assert run("'a.c' LIKE 'a.c'") is True
        assert run("'abc' LIKE 'a.c'") is False

    def test_not_like(self, run):
        assert run("'abc' NOT LIKE 'z%'") is True

    def test_like_null(self, run):
        assert run("(NULL LIKE 'a') IS NULL") is True

    def test_not_like_absent_operand_is_null(self, run):
        # NOT applies to the unknown verdict and normalises it to NULL
        # (ops.logical_not), on both the compiled constant-pattern fast
        # path and the interpreter.
        assert run("(NULL NOT LIKE 'a') IS NULL") is True
        assert run("(MISSING NOT LIKE 'a') IS NULL") is True


class TestPredicates:
    def test_between(self, run):
        assert run("5 BETWEEN 1 AND 10") is True
        assert run("5 NOT BETWEEN 6 AND 10") is True

    def test_in_list(self, run):
        assert run("2 IN (1, 2, 3)") is True
        assert run("9 NOT IN (1, 2)") is True

    def test_in_with_null_member_unknown(self, run):
        assert run("(9 IN (1, NULL)) IS NULL") is True
        assert run("1 IN (1, NULL)") is True

    def test_in_collection_value(self, run):
        assert run("2 IN [1, 2]") is True
        assert run("2 IN <<1, 2>>") is True

    def test_exists(self, run):
        assert run("EXISTS [1]") is True
        assert run("EXISTS [ ]") is False
        assert run("EXISTS MISSING") is False

    def test_is_null_includes_missing(self, run):
        assert run("MISSING IS NULL") is True
        assert run("NULL IS NULL") is True
        assert run("1 IS NULL") is False

    def test_is_missing_is_precise(self, run):
        assert run("MISSING IS MISSING") is True
        assert run("NULL IS MISSING") is False

    def test_is_type_predicates(self, run):
        assert run("1 IS INTEGER") is True
        assert run("1.5 IS INTEGER") is False
        assert run("1.5 IS NUMBER") is True
        assert run("'a' IS STRING") is True
        assert run("[1] IS ARRAY") is True
        assert run("{'a': 1} IS TUPLE") is True


class TestNavigation:
    def test_path_into_struct(self, run):
        assert run("{'a': {'b': 7}}.a.b") == 7

    def test_path_into_missing_attr(self, run):
        assert run("({'a': 1}.nope) IS MISSING") is True

    def test_path_into_null(self, run):
        assert run("(NULL.a) IS NULL") is True

    def test_path_into_scalar_permissive(self, run):
        assert run("(1 .a) IS MISSING") is True

    def test_path_into_scalar_strict(self, run):
        with pytest.raises(TypeCheckError):
            run("'s'.a", typing_mode="strict")

    def test_missing_attr_even_in_strict(self, run):
        # An absent attribute is data, not a type error (Section IV-B).
        assert run("({'a': 1}.nope) IS MISSING", typing_mode="strict") is True

    def test_array_index(self, run):
        assert run("[10, 20][1]") == 20

    def test_array_index_out_of_range(self, run):
        assert run("([1][5]) IS MISSING") is True

    def test_struct_index_with_string(self, run):
        assert run("{'a': 1}['a']") == 1

    def test_case_sensitive_attributes(self, run):
        assert run("({'A': 1}.a) IS MISSING") is True


class TestCaseCoalesceCast:
    def test_searched_case(self, run):
        assert run("CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END") == "yes"

    def test_simple_case(self, run):
        assert run("CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END") == "b"

    def test_case_without_else_is_null(self, run):
        assert run("(CASE WHEN FALSE THEN 1 END) IS NULL") is True

    def test_case_missing_core_mode(self, run):
        assert (
            run(
                "(CASE WHEN MISSING THEN 1 ELSE 2 END) IS MISSING",
                sql_compat=False,
            )
            is True
        )

    def test_case_missing_compat_mode(self, run):
        assert run("CASE WHEN MISSING THEN 1 ELSE 2 END", sql_compat=True) == 2

    def test_coalesce(self, run):
        assert run("COALESCE(NULL, NULL, 3)") == 3
        assert run("COALESCE(MISSING, 2)") == 2
        assert run("COALESCE(NULL) IS NULL") is True

    def test_nullif(self, run):
        assert run("NULLIF(1, 1) IS NULL") is True
        assert run("NULLIF(1, 2)") == 1

    def test_cast(self, run):
        assert run("CAST('42' AS INTEGER)") == 42
        assert run("CAST(1 AS STRING)") == "1"
        assert run("CAST('yes' AS INTEGER) IS MISSING") is True
        assert run("CAST(NULL AS INTEGER) IS NULL") is True


class TestConstructors:
    def test_struct_omits_missing_attr(self, run):
        result = run("{'a': 1, 'b': MISSING}")
        assert "b" not in result
        assert result["a"] == 1

    def test_array_omits_missing_elements(self, run):
        assert run("[1, MISSING, 2]") == [1, 2]

    def test_bag_omits_missing_elements(self, run):
        assert run("<<MISSING>> = <<>>") is True

    def test_dynamic_struct_key(self, run):
        assert run("{'a' || 'b': 1}").keys() == ["ab"]

    def test_null_key_skipped_permissive(self, run):
        assert len(run("{NULL: 1}")) == 0


class TestNamesAndParameters:
    def test_unbound_name_is_error(self, run):
        with pytest.raises(BindingError):
            run("nonexistent_name")

    def test_dotted_catalog_name(self, db):
        db.set("a.b.c", [1])
        assert db.execute("a.b.c") == [1]

    def test_variable_shadows_catalog(self, db):
        db.set("v", [1, 2])
        assert list(db.execute("SELECT VALUE v FROM [9] AS v")) == [9]

    def test_parameters(self, db):
        assert db.execute("? + ?", parameters=[1, 2]) == 3

    def test_parameter_missing_value(self, db):
        with pytest.raises(EvaluationError):
            db.execute("?")

    def test_unknown_function(self, run):
        with pytest.raises(EvaluationError):
            run("NO_SUCH_FN(1)")
