"""The SQL++ Core: binding environments, the sugar rewriter, the evaluator.

The paper's central design device (Section I): define a small, fully
composable **SQL++ Core** — query blocks are pipelines of clause
functions over streams of variable bindings, ``SELECT VALUE`` constructs
arbitrary values, ``GROUP AS`` exposes groups as data, ``COLL_*``
aggregate functions are ordinary collection functions — and then explain
SQL itself as *syntactic sugar rewritings* over that Core, toggled by a
SQL-compatibility flag.

* :mod:`repro.core.environment` — variable-binding environments.
* :mod:`repro.core.rewriter` — the sugar → Core lowering.
* :mod:`repro.core.evaluator` — the Core clause-pipeline interpreter.
* :mod:`repro.core.coercion` — SQL-compat subquery coercion.
* :mod:`repro.core.windows` — window functions (``OVER``).
* :mod:`repro.core.grouping_sets` — CUBE / ROLLUP / GROUPING SETS.
"""

from repro.core.environment import Environment
from repro.core.evaluator import Evaluator
from repro.core.rewriter import rewrite_query

__all__ = ["Environment", "Evaluator", "rewrite_query"]
