"""Window functions (``OVER``) for SQL++.

The paper (Section V-B) notes that SQL's window functions are "wholly
compatible" with SQL++ and gain the ability to operate over nested and
heterogeneous data.  This module evaluates window calls over the binding
stream of a query block:

* ranking: ``ROW_NUMBER``, ``RANK``, ``DENSE_RANK``, ``NTILE(n)``,
  ``PERCENT_RANK``;
* offsets: ``LAG(x [, n [, default]])``, ``LEAD(...)``;
* value: ``FIRST_VALUE``, ``LAST_VALUE``;
* any SQL aggregate with OVER: with ORDER BY it is a running aggregate
  over the default frame (unbounded preceding → current row), without
  ORDER BY it aggregates the whole partition.

Window values are computed once per binding before the SELECT clause
runs; the evaluator replaces each ``WindowCall`` node with a reference to
the precomputed value.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, TYPE_CHECKING

from repro.datamodel.equality import group_key
from repro.datamodel.ordering import sort_key
from repro.datamodel.values import MISSING
from repro.errors import EvaluationError
from repro.functions.aggregates import SQL_AGGREGATES
from repro.functions.registry import REGISTRY
from repro.syntax import ast

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.environment import Environment
    from repro.core.evaluator import Evaluator

RANKING_FUNCTIONS = frozenset(
    {"ROW_NUMBER", "RANK", "DENSE_RANK", "NTILE", "PERCENT_RANK"}
)
OFFSET_FUNCTIONS = frozenset({"LAG", "LEAD"})
VALUE_FUNCTIONS = frozenset({"FIRST_VALUE", "LAST_VALUE"})


def is_window_function(name: str) -> bool:
    upper = name.upper()
    return (
        upper in RANKING_FUNCTIONS
        or upper in OFFSET_FUNCTIONS
        or upper in VALUE_FUNCTIONS
        or upper in SQL_AGGREGATES
    )


def compute_window_values(
    call: ast.WindowCall,
    envs: List["Environment"],
    evaluator: "Evaluator",
) -> List[Any]:
    """Evaluate one window call for every binding, in input order."""
    name = call.call.name.upper()
    if not is_window_function(name):
        raise EvaluationError(f"{call.call.name} is not a window function")

    eval_expr = evaluator.eval_expr
    order_items = call.spec.order_by

    # Partition the binding stream.
    partitions: Dict[tuple, List[int]] = {}
    for position, env in enumerate(envs):
        key = tuple(
            group_key(eval_expr(expr, env)) for expr in call.spec.partition_by
        )
        partitions.setdefault(key, []).append(position)

    results: List[Any] = [None] * len(envs)
    for positions in partitions.values():
        ordered = _order_positions(positions, envs, order_items, eval_expr)
        _fill_partition(call, name, ordered, envs, evaluator, results)
    return results


def _order_positions(
    positions: List[int],
    envs: List["Environment"],
    order_items: List[ast.OrderItem],
    eval_expr: Callable,
) -> List[int]:
    if not order_items:
        return positions
    decorated = list(positions)
    for item in reversed(order_items):
        decorated.sort(
            key=lambda pos: sort_key(eval_expr(item.expr, envs[pos])),
            reverse=item.desc,
        )
    return decorated


def _order_rank_keys(
    ordered: List[int],
    envs: List["Environment"],
    order_items: List[ast.OrderItem],
    eval_expr: Callable,
) -> List[tuple]:
    return [
        tuple(group_key(eval_expr(item.expr, envs[pos])) for item in order_items)
        for pos in ordered
    ]


def _fill_partition(
    call: ast.WindowCall,
    name: str,
    ordered: List[int],
    envs: List["Environment"],
    evaluator: "Evaluator",
    results: List[Any],
) -> None:
    eval_expr = evaluator.eval_expr
    config = evaluator.config
    size = len(ordered)

    if name == "ROW_NUMBER":
        for rank, pos in enumerate(ordered, start=1):
            results[pos] = rank
        return

    if name in ("RANK", "DENSE_RANK", "PERCENT_RANK"):
        keys = _order_rank_keys(ordered, envs, call.spec.order_by, eval_expr)
        rank = dense = 0
        previous = object()
        for index, pos in enumerate(ordered):
            if keys[index] != previous:
                rank = index + 1
                dense += 1
                previous = keys[index]
            if name == "RANK":
                results[pos] = rank
            elif name == "DENSE_RANK":
                results[pos] = dense
            else:  # PERCENT_RANK
                results[pos] = 0.0 if size == 1 else (rank - 1) / (size - 1)
        return

    if name == "NTILE":
        if len(call.call.args) != 1:
            raise EvaluationError("NTILE expects one argument")
        buckets = eval_expr(call.call.args[0], envs[ordered[0]]) if ordered else 1
        if not isinstance(buckets, int) or isinstance(buckets, bool) or buckets < 1:
            raise EvaluationError("NTILE argument must be a positive integer")
        for index, pos in enumerate(ordered):
            results[pos] = index * buckets // size + 1
        return

    if name in OFFSET_FUNCTIONS:
        args = call.call.args
        if not 1 <= len(args) <= 3:
            raise EvaluationError(f"{name} expects 1 to 3 arguments")
        direction = -1 if name == "LAG" else 1
        for index, pos in enumerate(ordered):
            env = envs[pos]
            offset = 1
            if len(args) >= 2:
                offset = eval_expr(args[1], env)
                if not isinstance(offset, int) or isinstance(offset, bool):
                    raise EvaluationError(f"{name} offset must be an integer")
            target = index + direction * offset
            if 0 <= target < size:
                results[pos] = eval_expr(args[0], envs[ordered[target]])
            elif len(args) == 3:
                results[pos] = eval_expr(args[2], env)
            else:
                results[pos] = None
        return

    if name in VALUE_FUNCTIONS:
        if len(call.call.args) != 1:
            raise EvaluationError(f"{name} expects one argument")
        source = ordered[0] if name == "FIRST_VALUE" else ordered[-1]
        value = eval_expr(call.call.args[0], envs[source])
        for pos in ordered:
            results[pos] = value
        return

    # Aggregate over a window.
    coll_name = SQL_AGGREGATES[name]
    definition = REGISTRY.lookup(coll_name)
    assert definition is not None

    def element(pos: int) -> Any:
        if call.call.star:
            return 1
        return eval_expr(call.call.args[0], envs[pos])

    if call.spec.order_by:
        # Running aggregate: unbounded preceding .. current row, peers
        # included (RANGE semantics on ties).
        keys = _order_rank_keys(ordered, envs, call.spec.order_by, eval_expr)
        values = [element(pos) for pos in ordered]
        index = 0
        while index < size:
            end = index
            while end + 1 < size and keys[end + 1] == keys[index]:
                end += 1
            frame = values[: end + 1]
            aggregate = definition.invoke([frame], config)
            for frame_index in range(index, end + 1):
                results[ordered[frame_index]] = aggregate
            index = end + 1
    else:
        frame = [element(pos) for pos in ordered]
        aggregate = definition.invoke([frame], config)
        for pos in ordered:
            results[pos] = aggregate


def find_window_calls(node: ast.Node) -> List[ast.WindowCall]:
    """Window calls in an expression/clause, not entering subqueries."""
    found: List[ast.WindowCall] = []

    def scan(current: ast.Node) -> None:
        if isinstance(current, ast.SubqueryExpr) or isinstance(
            current, ast.CoerceSubquery
        ):
            return
        if isinstance(current, ast.WindowCall):
            found.append(current)
            return
        for child in current.children():
            scan(child)

    scan(node)
    return found


_MISSING_SENTINEL = MISSING  # re-exported for evaluator convenience
