"""Exception hierarchy contracts."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            errors.LexError,
            errors.ParseError,
            errors.RewriteError,
            errors.BindingError,
            errors.TypeCheckError,
            errors.EvaluationError,
            errors.SchemaError,
            errors.FormatError,
            errors.CatalogError,
        ],
    )
    def test_all_derive_from_base(self, exc_type):
        assert issubclass(exc_type, errors.SQLPPError)

    def test_catch_all_contract(self):
        """A caller can wrap any library call in one except clause."""
        from repro import Database

        db = Database()
        for bad in ["SELECT", "nope", "2 * 'a'"]:
            try:
                db.execute(bad, typing_mode="strict")
            except errors.SQLPPError:
                continue
            pytest.fail(f"{bad!r} raised nothing or a foreign exception")


class TestPositions:
    def test_lex_error_position_in_message(self):
        error = errors.LexError("bad char", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7

    def test_parse_error_position(self):
        error = errors.ParseError("oops", line=2, column=1)
        assert "line 2" in str(error)

    def test_zero_position_omitted(self):
        assert "line" not in str(errors.ParseError("oops"))
