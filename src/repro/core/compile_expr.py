"""Expression compilation: AST → Python closures.

The Core evaluator's `eval_expr` walks the AST on every binding — for a
query over n rows, the same dispatch and field accesses repeat n times.
This module compiles an expression once into a nest of Python closures
(`fn(env) -> value`), eliminating per-row dispatch for the hot node
kinds.  E3/EXPERIMENTS.md records the interpretation overhead this
addresses; ablation A4 measures the effect.

**Single-source semantics.**  Only node kinds whose semantics live in
:mod:`repro.functions.operators` are compiled; anything stateful or
recursive into query evaluation (subqueries, window calls, coercions,
CASE's mode-dependent MISSING rule) falls back to a closure that calls
``evaluator.eval_expr`` on the original node.  The property test
``tests/properties/test_compile_equivalence.py`` checks
``compiled(expr)(env) == eval_expr(expr, env)`` over generated
expressions, so the fast path cannot drift from the reference
semantics unnoticed.
"""

from __future__ import annotations

from typing import Any, Callable, List, TYPE_CHECKING

from repro.core.environment import Environment, Unbound
from repro.datamodel.equality import group_key
from repro.datamodel.values import MISSING, Bag, Struct, type_name
from repro.functions import operators as ops
from repro.functions.registry import REGISTRY
from repro.syntax import ast

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.evaluator import Evaluator

CompiledExpr = Callable[[Environment], Any]
#: Row-space compiled expression: a plain binding dict in, a value out.
RowExpr = Callable[[dict], Any]
#: Chunk-at-a-time compiled expression: ``(rows, outer_env) -> values``.
BatchExpr = Callable[[List[dict], Environment], List[Any]]


def _literal_probe_set(collection: ast.Expr) -> Any:
    """``(category, keys, representative)`` for an all-literal,
    single-category IN list — or None when the generic path must run.

    Precomputable because :func:`repro.datamodel.equality.group_key`
    classes coincide with ``=``-TRUE on values of one equality category
    (int/float unify in both).  The single-category restriction lets
    the probe decide the no-match outcome wholesale: a probe value of
    the same category compares cleanly against every element (False),
    and one of a different category type-errors against every element
    (NULL in permissive mode, a raise in strict — reproduced via one
    representative comparison).
    """
    if not isinstance(collection, ast.ArrayLit) or not collection.items:
        return None
    category = None
    keys = set()
    for item in collection.items:
        if not isinstance(item, ast.Literal):
            return None
        value = item.value
        if value is None or not isinstance(value, (bool, int, float, str)):
            return None
        kind = ops._equality_kind(value)
        if category is None:
            category = kind
        elif kind != category:
            return None
        keys.add(group_key(value))
    representative = collection.items[0]
    assert isinstance(representative, ast.Literal)
    return category, frozenset(keys), representative.value


def _probe_verdict(value: Any, probe: Any, config: Any) -> Any:
    """``value IN <literal list>`` via the precomputed set — exactly
    :func:`repro.functions.operators.in_collection` on that list."""
    category, keys, representative = probe
    if value is MISSING:
        return MISSING
    if value is None:
        return None
    if ops._equality_kind(value) != category:
        # Same type mismatch against every element: strict mode raises
        # here exactly as the first linear comparison would; permissive
        # turns every comparison unknown, so the verdict is NULL.
        ops.equals(value, representative, config)
        return None
    return group_key(value) in keys


def compile_expr(expr: ast.Expr, evaluator: "Evaluator") -> CompiledExpr:
    """Compile ``expr`` to a closure equivalent to ``eval_expr``."""
    config = evaluator.config
    catalog = evaluator._catalog

    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda env: value

    if isinstance(expr, ast.VarRef):
        name = expr.name

        def var_ref(env: Environment) -> Any:
            try:
                return env.lookup(name)
            except Unbound:
                if name in catalog:
                    return catalog[name]
                raise Unbound(name) from None

        return var_ref

    if isinstance(expr, ast.Path):
        attr = expr.attr
        base_fn = compile_expr(expr.base, evaluator)
        # Name-shaped bases (``t.v``, ``hr.emp.name``) keep the
        # interpreter's dotted-catalog-name resolution: only when the
        # base turns out unbound can the path be a namespaced named
        # value, so the fallback fires exactly on Unbound and the
        # (overwhelmingly common) bound case navigates directly.
        if isinstance(expr.base, (ast.VarRef, ast.Path)):
            node = expr

            def named_path(env: Environment) -> Any:
                try:
                    base = base_fn(env)
                except Unbound:
                    return evaluator.eval_expr(node, env)
                return ops.navigate_path(base, attr, config)

            return named_path
        return lambda env: ops.navigate_path(base_fn(env), attr, config)

    if isinstance(expr, ast.Index):
        base_fn = compile_expr(expr.base, evaluator)
        index_fn = compile_expr(expr.index, evaluator)
        return lambda env: ops.navigate_index(base_fn(env), index_fn(env), config)

    if isinstance(expr, ast.Binary):
        return _compile_binary(expr, evaluator)

    if isinstance(expr, ast.Unary):
        operand_fn = compile_expr(expr.operand, evaluator)
        if expr.op == "NOT":
            return lambda env: ops.logical_not(operand_fn(env), config)
        if expr.op == "-":
            return lambda env: ops.negate(operand_fn(env), config)
        return lambda env: ops.unary_plus(operand_fn(env), config)

    if isinstance(expr, ast.IsPredicate):
        operand_fn = compile_expr(expr.operand, evaluator)
        kind = expr.kind
        if expr.negated:
            return lambda env: not ops.is_predicate(operand_fn(env), kind, config)
        return lambda env: ops.is_predicate(operand_fn(env), kind, config)

    if isinstance(expr, ast.Like):
        return _compile_like(expr, evaluator)

    if isinstance(expr, ast.Between):
        operand_fn = compile_expr(expr.operand, evaluator)
        low_fn = compile_expr(expr.low, evaluator)
        high_fn = compile_expr(expr.high, evaluator)
        negated = expr.negated

        def between(env: Environment) -> Any:
            # All three operands evaluate before any comparison, exactly
            # as the reference interpreter orders it (error parity).
            value = operand_fn(env)
            low = low_fn(env)
            high = high_fn(env)
            verdict = ops.logical_and(
                ops.compare(">=", value, low, config),
                ops.compare("<=", value, high, config),
                config,
            )
            return ops.logical_not(verdict, config) if negated else verdict

        return between

    if isinstance(expr, ast.InPredicate):
        if isinstance(expr.collection, (ast.SubqueryExpr, ast.CoerceSubquery)):
            # Subquery collections go through the evaluator so the
            # streaming engine can stop the subquery's producers at the
            # first match (early termination, docs/LANGUAGE.md §8).
            return lambda env: evaluator._eval_in(expr, env)
        operand_fn = compile_expr(expr.operand, evaluator)
        negated = expr.negated
        probe = _literal_probe_set(expr.collection)
        if probe is not None:
            # Literal single-category IN list (what the OR→IN rewrite
            # emits): probe a precomputed group-key set instead of
            # re-evaluating the list and comparing linearly per row.
            def contains_probe(env: Environment) -> Any:
                verdict = _probe_verdict(operand_fn(env), probe, config)
                return (
                    ops.logical_not(verdict, config) if negated else verdict
                )

            return contains_probe
        collection_fn = compile_expr(expr.collection, evaluator)

        def contains(env: Environment) -> Any:
            verdict = ops.in_collection(operand_fn(env), collection_fn(env), config)
            return ops.logical_not(verdict, config) if negated else verdict

        return contains

    if isinstance(expr, ast.Exists):
        if isinstance(expr.operand, ast.SubqueryExpr):
            # Same early-termination routing as IN above.
            return lambda env: evaluator._exists_verdict(expr.operand, env)
        operand_fn = compile_expr(expr.operand, evaluator)
        return lambda env: ops.exists(operand_fn(env), config)

    if isinstance(expr, ast.FunctionCall):
        return _compile_call(expr, evaluator)

    if isinstance(expr, ast.StructLit):
        return _compile_struct(expr, evaluator)

    if isinstance(expr, ast.ArrayLit):
        item_fns = [compile_expr(item, evaluator) for item in expr.items]

        def array(env: Environment) -> list:
            values = (fn(env) for fn in item_fns)
            return [value for value in values if value is not MISSING]

        return array

    if isinstance(expr, ast.BagLit):
        item_fns = [compile_expr(item, evaluator) for item in expr.items]

        def bag(env: Environment) -> Bag:
            values = (fn(env) for fn in item_fns)
            return Bag(value for value in values if value is not MISSING)

        return bag

    # Subqueries, coercions, CASE, windows, parameters, casts, path
    # wildcards: defer to the reference interpreter.
    node = expr
    return lambda env: evaluator.eval_expr(node, env)


def _compile_binary(expr: ast.Binary, evaluator: "Evaluator") -> CompiledExpr:
    config = evaluator.config
    op = expr.op
    left_fn = compile_expr(expr.left, evaluator)
    right_fn = compile_expr(expr.right, evaluator)
    if op == "AND":
        return lambda env: ops.logical_and(left_fn(env), right_fn(env), config)
    if op == "OR":
        return lambda env: ops.logical_or(left_fn(env), right_fn(env), config)
    if op == "=":
        return lambda env: ops.equals(left_fn(env), right_fn(env), config)
    if op == "!=":
        return lambda env: ops.not_equals(left_fn(env), right_fn(env), config)
    if op in ("<", "<=", ">", ">="):
        return lambda env: ops.compare(op, left_fn(env), right_fn(env), config)
    if op == "||":
        return lambda env: ops.concat(left_fn(env), right_fn(env), config)
    return lambda env: ops.arithmetic(op, left_fn(env), right_fn(env), config)


def _compile_like(expr: ast.Like, evaluator: "Evaluator") -> CompiledExpr:
    config = evaluator.config
    operand_fn = compile_expr(expr.operand, evaluator)
    negated = expr.negated

    # A constant pattern (the overwhelmingly common case) compiles its
    # regex exactly once.
    if (
        isinstance(expr.pattern, ast.Literal)
        and isinstance(expr.pattern.value, str)
        and (
            expr.escape is None
            or (
                isinstance(expr.escape, ast.Literal)
                and isinstance(expr.escape.value, str)
                and len(expr.escape.value) == 1
            )
        )
    ):
        escape_char = expr.escape.value if expr.escape is not None else None
        regex = ops._like_regex(expr.pattern.value, escape_char)

        def like_constant(env: Environment) -> Any:
            value = operand_fn(env)
            if value is MISSING:
                # NOT still applies to the unknown verdict (NOT MISSING
                # normalises to NULL, like the interpreter's
                # ops.logical_not), so fall through instead of returning.
                verdict: Any = MISSING
            elif value is None:
                verdict = None
            elif not isinstance(value, str):
                verdict = config.type_error(
                    f"LIKE expects strings, got {type_name(value)}"
                )
            else:
                verdict = regex.fullmatch(value) is not None
            return ops.logical_not(verdict, config) if negated else verdict

        return like_constant

    pattern_fn = compile_expr(expr.pattern, evaluator)
    escape_fn = (
        compile_expr(expr.escape, evaluator) if expr.escape is not None else None
    )

    def like_dynamic(env: Environment) -> Any:
        verdict = ops.like(
            operand_fn(env),
            pattern_fn(env),
            escape_fn(env) if escape_fn is not None else None,
            config,
        )
        return ops.logical_not(verdict, config) if negated else verdict

    return like_dynamic


def _compile_call(expr: ast.FunctionCall, evaluator: "Evaluator") -> CompiledExpr:
    node = expr
    if expr.name == "$TUPLE_MERGE" or expr.star or expr.distinct:
        return lambda env: evaluator.eval_expr(node, env)
    definition = REGISTRY.lookup(expr.name)
    if definition is None:
        return lambda env: evaluator.eval_expr(node, env)  # raise uniformly
    config = evaluator.config
    arg_fns = [compile_expr(arg, evaluator) for arg in expr.args]

    def call(env: Environment) -> Any:
        return definition.invoke([fn(env) for fn in arg_fns], config)

    return call


def compile_batch(
    expr: ast.Expr, evaluator: "Evaluator", row_vars: frozenset
) -> "BatchExpr":
    """Compile ``expr`` to a closure over a whole chunk of bindings.

    The result maps ``(rows, env) -> values`` where ``rows`` is a list of
    binding dicts each containing (at least) the names in ``row_vars``
    and ``env`` is the enclosing environment those bindings would extend.
    When every free name of the expression is a row variable, evaluation
    runs in *row space* — plain dict lookups, no Environment allocation
    per row.  Otherwise the loop falls back to ``env.extend(row)`` plus
    the ordinary compiled closure, which is still one closure call per
    row rather than a full interpreter walk.
    """
    row_fn = compile_row_expr(expr, evaluator, row_vars)
    if row_fn is not None:
        def batch(rows: List[dict], env: Environment) -> List[Any]:
            return [row_fn(row) for row in rows]

        return batch
    env_fn = evaluator.compiled(expr)

    def batch_fallback(rows: List[dict], env: Environment) -> List[Any]:
        extend = env.extend
        return [env_fn(extend(row)) for row in rows]

    return batch_fallback


def compile_row_expr(
    expr: ast.Expr, evaluator: "Evaluator", row_vars: frozenset
) -> "RowExpr | None":
    """Compile ``expr`` to ``fn(row: dict) -> value``, or None.

    Row-space compilation succeeds only when every free variable the
    expression can reach is one of ``row_vars`` (so a dict lookup is
    exactly the environment lookup) and every node kind is one whose
    semantics :func:`compile_expr` already single-sources from
    :mod:`repro.functions.operators`.  Returning None tells
    :func:`compile_batch` to use the env-extension fallback; it is never
    an error.  Bound row variables can never raise ``Unbound``, so the
    interpreter's dotted-catalog-name fallback for name-shaped paths is
    unreachable here by construction.
    """
    config = evaluator.config

    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ast.VarRef):
        if expr.name not in row_vars:
            return None
        name = expr.name
        return lambda row: row[name]

    if isinstance(expr, ast.Path):
        base_fn = compile_row_expr(expr.base, evaluator, row_vars)
        if base_fn is None:
            return None
        attr = expr.attr
        return lambda row: ops.navigate_path(base_fn(row), attr, config)

    if isinstance(expr, ast.Index):
        base_fn = compile_row_expr(expr.base, evaluator, row_vars)
        index_fn = compile_row_expr(expr.index, evaluator, row_vars)
        if base_fn is None or index_fn is None:
            return None
        return lambda row: ops.navigate_index(base_fn(row), index_fn(row), config)

    if isinstance(expr, ast.Binary):
        left_fn = compile_row_expr(expr.left, evaluator, row_vars)
        right_fn = compile_row_expr(expr.right, evaluator, row_vars)
        if left_fn is None or right_fn is None:
            return None
        op = expr.op
        if op == "AND":
            return lambda row: ops.logical_and(left_fn(row), right_fn(row), config)
        if op == "OR":
            return lambda row: ops.logical_or(left_fn(row), right_fn(row), config)
        if op == "=":
            return lambda row: ops.equals(left_fn(row), right_fn(row), config)
        if op == "!=":
            return lambda row: ops.not_equals(left_fn(row), right_fn(row), config)
        if op in ("<", "<=", ">", ">="):
            return lambda row: ops.compare(op, left_fn(row), right_fn(row), config)
        if op == "||":
            return lambda row: ops.concat(left_fn(row), right_fn(row), config)
        return lambda row: ops.arithmetic(op, left_fn(row), right_fn(row), config)

    if isinstance(expr, ast.Unary):
        operand_fn = compile_row_expr(expr.operand, evaluator, row_vars)
        if operand_fn is None:
            return None
        if expr.op == "NOT":
            return lambda row: ops.logical_not(operand_fn(row), config)
        if expr.op == "-":
            return lambda row: ops.negate(operand_fn(row), config)
        return lambda row: ops.unary_plus(operand_fn(row), config)

    if isinstance(expr, ast.IsPredicate):
        operand_fn = compile_row_expr(expr.operand, evaluator, row_vars)
        if operand_fn is None:
            return None
        kind = expr.kind
        if expr.negated:
            return lambda row: not ops.is_predicate(operand_fn(row), kind, config)
        return lambda row: ops.is_predicate(operand_fn(row), kind, config)

    if isinstance(expr, ast.Between):
        operand_fn = compile_row_expr(expr.operand, evaluator, row_vars)
        low_fn = compile_row_expr(expr.low, evaluator, row_vars)
        high_fn = compile_row_expr(expr.high, evaluator, row_vars)
        if operand_fn is None or low_fn is None or high_fn is None:
            return None
        negated = expr.negated

        def between_row(row: dict) -> Any:
            value = operand_fn(row)
            low = low_fn(row)
            high = high_fn(row)
            verdict = ops.logical_and(
                ops.compare(">=", value, low, config),
                ops.compare("<=", value, high, config),
                config,
            )
            return ops.logical_not(verdict, config) if negated else verdict

        return between_row

    if isinstance(expr, ast.Like):
        operand_fn = compile_row_expr(expr.operand, evaluator, row_vars)
        if operand_fn is None:
            return None
        negated = expr.negated
        if (
            isinstance(expr.pattern, ast.Literal)
            and isinstance(expr.pattern.value, str)
            and (
                expr.escape is None
                or (
                    isinstance(expr.escape, ast.Literal)
                    and isinstance(expr.escape.value, str)
                    and len(expr.escape.value) == 1
                )
            )
        ):
            escape_char = expr.escape.value if expr.escape is not None else None
            regex = ops._like_regex(expr.pattern.value, escape_char)

            def like_row(row: dict) -> Any:
                value = operand_fn(row)
                if value is MISSING:
                    verdict: Any = MISSING
                elif value is None:
                    verdict = None
                elif not isinstance(value, str):
                    verdict = config.type_error(
                        f"LIKE expects strings, got {type_name(value)}"
                    )
                else:
                    verdict = regex.fullmatch(value) is not None
                return ops.logical_not(verdict, config) if negated else verdict

            return like_row
        pattern_fn = compile_row_expr(expr.pattern, evaluator, row_vars)
        if pattern_fn is None:
            return None
        if expr.escape is not None:
            escape_fn = compile_row_expr(expr.escape, evaluator, row_vars)
            if escape_fn is None:
                return None
        else:
            escape_fn = None

        def like_dynamic_row(row: dict) -> Any:
            verdict = ops.like(
                operand_fn(row),
                pattern_fn(row),
                escape_fn(row) if escape_fn is not None else None,
                config,
            )
            return ops.logical_not(verdict, config) if negated else verdict

        return like_dynamic_row

    if isinstance(expr, ast.InPredicate):
        if isinstance(expr.collection, (ast.SubqueryExpr, ast.CoerceSubquery)):
            return None
        operand_fn = compile_row_expr(expr.operand, evaluator, row_vars)
        if operand_fn is None:
            return None
        negated = expr.negated
        probe = _literal_probe_set(expr.collection)
        if probe is not None:
            # Same literal-list set probe as the env-space compiler.
            def contains_probe_row(row: dict) -> Any:
                verdict = _probe_verdict(operand_fn(row), probe, config)
                return (
                    ops.logical_not(verdict, config) if negated else verdict
                )

            return contains_probe_row
        collection_fn = compile_row_expr(expr.collection, evaluator, row_vars)
        if collection_fn is None:
            return None

        def contains_row(row: dict) -> Any:
            verdict = ops.in_collection(
                operand_fn(row), collection_fn(row), config
            )
            return ops.logical_not(verdict, config) if negated else verdict

        return contains_row

    if isinstance(expr, ast.Exists):
        if isinstance(expr.operand, ast.SubqueryExpr):
            return None
        operand_fn = compile_row_expr(expr.operand, evaluator, row_vars)
        if operand_fn is None:
            return None
        return lambda row: ops.exists(operand_fn(row), config)

    if isinstance(expr, ast.FunctionCall):
        if expr.name == "$TUPLE_MERGE" or expr.star or expr.distinct:
            return None
        definition = REGISTRY.lookup(expr.name)
        if definition is None:
            return None
        arg_fns = []
        for arg in expr.args:
            arg_fn = compile_row_expr(arg, evaluator, row_vars)
            if arg_fn is None:
                return None
            arg_fns.append(arg_fn)

        def call_row(row: dict) -> Any:
            return definition.invoke([fn(row) for fn in arg_fns], config)

        return call_row

    if isinstance(expr, ast.StructLit):
        keys: List[str] = []
        for field in expr.fields:
            if isinstance(field.key, ast.Literal) and isinstance(
                field.key.value, str
            ):
                keys.append(field.key.value)
            else:
                return None
        value_fns = []
        for field in expr.fields:
            value_fn = compile_row_expr(field.value, evaluator, row_vars)
            if value_fn is None:
                return None
            value_fns.append(value_fn)

        def struct_row(row: dict) -> Struct:
            pairs = []
            for key, fn in zip(keys, value_fns):
                value = fn(row)
                if value is not MISSING:
                    pairs.append((key, value))
            return Struct(pairs)

        return struct_row

    if isinstance(expr, ast.ArrayLit):
        item_fns = []
        for item in expr.items:
            item_fn = compile_row_expr(item, evaluator, row_vars)
            if item_fn is None:
                return None
            item_fns.append(item_fn)

        def array_row(row: dict) -> list:
            values = (fn(row) for fn in item_fns)
            return [value for value in values if value is not MISSING]

        return array_row

    if isinstance(expr, ast.BagLit):
        item_fns = []
        for item in expr.items:
            item_fn = compile_row_expr(item, evaluator, row_vars)
            if item_fn is None:
                return None
            item_fns.append(item_fn)

        def bag_row(row: dict) -> Bag:
            values = (fn(row) for fn in item_fns)
            return Bag(value for value in values if value is not MISSING)

        return bag_row

    return None


def _compile_struct(expr: ast.StructLit, evaluator: "Evaluator") -> CompiledExpr:
    # Constant string keys (the rewriter's SELECT lowering always makes
    # them) take a fast path; dynamic keys defer to the interpreter.
    keys: List[Any] = []
    for field in expr.fields:
        if isinstance(field.key, ast.Literal) and isinstance(field.key.value, str):
            keys.append(field.key.value)
        else:
            node = expr
            return lambda env: evaluator.eval_expr(node, env)
    value_fns = [compile_expr(field.value, evaluator) for field in expr.fields]

    def struct(env: Environment) -> Struct:
        pairs = []
        for key, fn in zip(keys, value_fns):
            value = fn(env)
            if value is not MISSING:
                pairs.append((key, value))
        return Struct(pairs)

    return struct
