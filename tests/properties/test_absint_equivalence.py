"""Property test: folding and pruning preserve bag-equality.

For randomly generated rows — attribute values spanning NULL, MISSING
(dropped attribute), ints, floats, strings, and booleans — evaluation
with ``optimize=True`` (constant folding, drop-true, empty-proof
pruning all active) must be indistinguishable from ``optimize=False``
(the untouched reference pipeline), in both typing modes: the same
result bag, or the same error class.  The query pool concentrates on
the shapes the abstract interpreter acts on: foldable constant
subexpressions, contradictory/tautological conjunctions, constant
CASE scrutinees, and interval bounds that a mixed-type attribute makes
hazardous (a string row raises under strict comparison — pruning must
never erase that error, which is why it is permissive-only).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import Database, errors
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag

value_strategy = st.one_of(
    st.none(),
    st.integers(-5, 10),
    st.sampled_from([0.0, 2.5, 7.0]),
    st.sampled_from(["a", "z"]),
    st.booleans(),
)


def rows():
    # Attributes are optional: a dropped key is how MISSING enters.
    return st.lists(
        st.fixed_dictionaries(
            {}, optional={"x": value_strategy, "y": value_strategy}
        ),
        max_size=8,
    )


QUERIES = [
    # Constant folding in every clause position.
    "SELECT VALUE r.x + 1 * 2 FROM t AS r WHERE r.x >= 0 + 1",
    "SELECT VALUE r FROM t AS r WHERE 1 = 1 AND r.x > 2",
    "SELECT VALUE r FROM t AS r WHERE 'a' || 'b' = 'ab' AND r.x < 5",
    # Statically-empty conjunctions (the pruning acceptance shape).
    "SELECT VALUE r FROM t AS r WHERE r.x > 5 AND r.x < 3",
    "SELECT VALUE r FROM t AS r WHERE r.x = 1 AND r.x = 2",
    "SELECT VALUE r FROM t AS r WHERE r.x IS MISSING AND r.x IS NOT MISSING",
    "SELECT VALUE r FROM t AS r WHERE r.x = NULL",
    "SELECT VALUE r FROM t AS r WHERE FALSE",
    "SELECT VALUE r.x FROM t AS r WHERE r.x BETWEEN 5 AND 3",
    # Tautological conjuncts over possibly-absent values.
    "SELECT VALUE r.x FROM t AS r WHERE r.x = r.x",
    "SELECT VALUE r FROM t AS r WHERE r.x = r.x AND r.y > 0",
    # Constant CASE scrutinees and dead branches.
    "SELECT VALUE CASE WHEN FALSE THEN 0 WHEN r.x > 1 THEN 1 ELSE 2 END "
    "FROM t AS r",
    "SELECT VALUE CASE 1 WHEN 2 THEN 'dead' WHEN 1 THEN r.x END FROM t AS r",
    "SELECT VALUE CASE WHEN TRUE THEN r.x ELSE r.y END FROM t AS r",
    # Folding under absent literals (mode-divergent comparisons).
    "SELECT VALUE r FROM t AS r WHERE r.x > 0 OR 1 = NULL",
    "SELECT VALUE r.x FROM t AS r WHERE NOT (1 > 2) AND r.x <= 10",
]


def outcome(db: Database, query: str, typing_mode: str, optimize: bool):
    try:
        return (
            "value",
            db.execute(query, typing_mode=typing_mode, optimize=optimize),
        )
    except errors.SQLPPError as exc:
        return ("error", type(exc).__name__)


@given(
    rows(),
    st.sampled_from(QUERIES),
    st.sampled_from(["permissive", "strict"]),
)
@settings(max_examples=120, deadline=None)
def test_optimized_equals_reference(data, query, typing_mode):
    db = Database()
    db.set("t", data)
    on = outcome(db, query, typing_mode, optimize=True)
    off = outcome(db, query, typing_mode, optimize=False)
    assert on[0] == off[0], (
        f"{query!r} [{typing_mode}] over {data!r}: on → {on}, off → {off}"
    )
    if on[0] == "error":
        assert on[1] == off[1]
        return
    left, right = on[1], off[1]
    assert deep_equals(Bag(list(left)), Bag(list(right))), (
        f"fold/prune parity violation for {query!r} [{typing_mode}] "
        f"over {data!r}"
    )
