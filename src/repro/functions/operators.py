"""Operator semantics: arithmetic, comparison, logic, LIKE, navigation.

This module is the heart of the paper's Section IV: every operator
encodes where ``MISSING`` values come from and how they propagate.

The three MISSING-producing cases (Section IV-B):

1. *Navigation into a missing attribute* — :func:`navigate_path` returns
   ``MISSING`` when a tuple lacks the attribute.
2. *Wrongly-typed inputs* — in permissive mode, ``2 * 'a'`` and friends
   return ``MISSING`` via :meth:`EvalConfig.type_error`; in strict mode
   the same call raises.
3. *MISSING in, MISSING out* — operators receiving MISSING return
   MISSING, with the SQL-compatibility exception for expressions that map
   NULL to non-NULL (``AND``/``OR`` absorption, handled in 3-valued
   logic below; ``COALESCE`` handled in its builtin).

Logic (``AND``/``OR``/``NOT``) treats MISSING like NULL (SQL 3-valued
logic never yields MISSING from a logical connective — the connectives
are exactly the SQL expressions that can map NULL to non-NULL).
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Optional

from repro.config import EvalConfig
from repro.datamodel.equality import deep_equals, group_key
from repro.datamodel.values import (
    MISSING,
    Bag,
    Struct,
    is_collection,
    type_name,
)
from repro.errors import EvaluationError


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# =========================================================================
# Arithmetic
# =========================================================================


def arithmetic(op: str, left: Any, right: Any, config: EvalConfig) -> Any:
    """``+ - * / %`` with SQL numeric semantics over dynamic types."""
    if left is MISSING or right is MISSING:
        return MISSING
    if left is None or right is None:
        return None
    if not _is_number(left) or not _is_number(right):
        return config.type_error(
            f"cannot apply {op!r} to {type_name(left)} and {type_name(right)}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            if config.is_permissive:
                return MISSING
            raise EvaluationError("division by zero")
        result = left / right
        # Exact integer division keeps integer type, so ``6/2`` is the SQL
        # integer 3 while ``7/2`` is 3.5 (document divergence from SQL's
        # truncating integer division; the data-centric choice avoids
        # silent precision loss on heterogeneous data).
        if isinstance(left, int) and isinstance(right, int) and result == int(result):
            return int(result)
        return result
    if op == "%":
        if right == 0:
            if config.is_permissive:
                return MISSING
            raise EvaluationError("modulo by zero")
        return left % right
    raise EvaluationError(f"unknown arithmetic operator {op!r}")


def negate(value: Any, config: EvalConfig) -> Any:
    """Unary minus."""
    if value is MISSING:
        return MISSING
    if value is None:
        return None
    if not _is_number(value):
        return config.type_error(f"cannot negate {type_name(value)}")
    return -value


def unary_plus(value: Any, config: EvalConfig) -> Any:
    """Unary plus (checks numericity, returns the value)."""
    if value is MISSING or value is None:
        return value
    if not _is_number(value):
        return config.type_error(f"cannot apply unary + to {type_name(value)}")
    return value


def concat(left: Any, right: Any, config: EvalConfig) -> Any:
    """String concatenation ``||`` (also concatenates two arrays)."""
    if left is MISSING or right is MISSING:
        return MISSING
    if left is None or right is None:
        return None
    if isinstance(left, str) and isinstance(right, str):
        return left + right
    if isinstance(left, list) and isinstance(right, list):
        return left + right
    return config.type_error(
        f"cannot concatenate {type_name(left)} and {type_name(right)}"
    )


# =========================================================================
# Comparison
# =========================================================================


def _equality_kind(value: Any) -> str:
    """The type category ``=`` compares within (int/float unify)."""
    if isinstance(value, bool):
        return "boolean"
    if _is_number(value):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, Bag):
        return "bag"
    if isinstance(value, Struct):
        return "tuple"
    raise EvaluationError(f"not a SQL++ value: {value!r}")


def equals(left: Any, right: Any, config: EvalConfig) -> Any:
    """The ``=`` operator.

    SQL equality on scalars and NULL (paper, Section V-B); deep equality
    on same-typed nested values (arrays element-wise, bags as multisets).
    Operands of *different* type categories are wrongly-typed input
    (paper, Section IV-B rule 2): ``2 = 'a'`` yields ``MISSING`` in
    permissive mode and raises :class:`TypeCheckError` in strict mode,
    exactly like ``<``/``<=``/``>``/``>=``.  The total structural
    equality that keeps DISTINCT/GROUP BY/set ops well-defined over
    heterogeneous data is :func:`repro.datamodel.equality.deep_equals`,
    which this operator intentionally does *not* expose across types.
    """
    if left is MISSING or right is MISSING:
        return MISSING
    if left is None or right is None:
        return None
    if _equality_kind(left) != _equality_kind(right):
        return config.type_error(
            f"cannot compare {type_name(left)} with {type_name(right)} "
            "for equality"
        )
    return deep_equals(left, right)


def not_equals(left: Any, right: Any, config: EvalConfig) -> Any:
    result = equals(left, right, config)
    if result is MISSING or result is None:
        return result
    return not result


_ORDERED_KINDS = ("number", "string", "boolean")


def _comparable_kind(value: Any) -> Optional[str]:
    if isinstance(value, bool):
        return "boolean"
    if _is_number(value):
        return "number"
    if isinstance(value, str):
        return "string"
    return None


def compare(op: str, left: Any, right: Any, config: EvalConfig) -> Any:
    """``< <= > >=`` over mutually comparable scalars."""
    if left is MISSING or right is MISSING:
        return MISSING
    if left is None or right is None:
        return None
    left_kind = _comparable_kind(left)
    right_kind = _comparable_kind(right)
    if left_kind is None or right_kind is None or left_kind != right_kind:
        return config.type_error(
            f"cannot compare {type_name(left)} with {type_name(right)}"
        )
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise EvaluationError(f"unknown comparison operator {op!r}")


# =========================================================================
# Three-valued logic (MISSING behaves as NULL — see module docstring)
# =========================================================================


def _to_truth(value: Any, config: EvalConfig) -> Any:
    """Normalise a logic operand to True / False / None (unknown)."""
    if value is MISSING or value is None:
        return None
    if isinstance(value, bool):
        return value
    result = config.type_error(f"expected a boolean, got {type_name(value)}")
    return None if result is MISSING else result


def logical_and(left: Any, right: Any, config: EvalConfig) -> Any:
    left_truth = _to_truth(left, config)
    right_truth = _to_truth(right, config)
    if left_truth is False or right_truth is False:
        return False
    if left_truth is None or right_truth is None:
        return None
    return True


def logical_or(left: Any, right: Any, config: EvalConfig) -> Any:
    left_truth = _to_truth(left, config)
    right_truth = _to_truth(right, config)
    if left_truth is True or right_truth is True:
        return True
    if left_truth is None or right_truth is None:
        return None
    return False


def logical_not(value: Any, config: EvalConfig) -> Any:
    truth = _to_truth(value, config)
    if truth is None:
        return None
    return not truth


def is_true(value: Any) -> bool:
    """WHERE/HAVING/ON keep a binding only when the predicate is exactly TRUE."""
    return value is True


# =========================================================================
# LIKE
# =========================================================================


def like(
    operand: Any,
    pattern: Any,
    escape: Any,
    config: EvalConfig,
) -> Any:
    """SQL ``LIKE`` with ``%``/``_`` wildcards and optional ESCAPE."""
    if MISSING in (operand, pattern, escape):
        return MISSING
    if operand is None or pattern is None:
        return None
    if not isinstance(operand, str) or not isinstance(pattern, str):
        return config.type_error(
            f"LIKE expects strings, got {type_name(operand)} and "
            f"{type_name(pattern)}"
        )
    escape_char = None
    if escape is not None:
        if not isinstance(escape, str) or len(escape) != 1:
            return config.type_error("ESCAPE must be a single character")
        escape_char = escape
    regex = _like_regex(pattern, escape_char)
    return regex.fullmatch(operand) is not None


@lru_cache(maxsize=512)
def _like_regex(pattern: str, escape_char: Optional[str]) -> "re.Pattern[str]":
    """Translate a LIKE pattern to a compiled regex.

    Bounded LRU cache: a dynamic pattern (``s LIKE t.pattern``) is
    evaluated per row, and recompiling the same regex for every row a
    predicate touches dominates the filter's cost (see
    ``benchmarks/bench_e14_like.py``).  Literal patterns are additionally
    hoisted out of the row loop entirely by
    :mod:`repro.core.compile_expr`.  The bad-pattern error (trailing
    escape character) is raised, so it is never cached.
    """
    parts = []
    index = 0
    while index < len(pattern):
        char = pattern[index]
        if escape_char is not None and char == escape_char:
            index += 1
            if index >= len(pattern):
                raise EvaluationError("LIKE pattern ends with escape character")
            parts.append(re.escape(pattern[index]))
        elif char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
        index += 1
    return re.compile("".join(parts), re.DOTALL)


# =========================================================================
# IN / EXISTS / IS
# =========================================================================


def in_collection(operand: Any, collection: Any, config: EvalConfig) -> Any:
    """``x IN coll`` under 3-valued logic.

    True if some element equals x; unknown (NULL) if no element equals x
    but some comparison was unknown — including the MISSING a
    type-mismatched ``=`` yields in permissive mode — else False.  In
    strict mode a type-mismatched element comparison raises, like the
    expanded ``OR`` of ``=`` comparisons would.
    """
    if operand is MISSING or collection is MISSING:
        return MISSING
    if collection is None:
        return None
    if not is_collection(collection):
        return config.type_error(
            f"IN expects a collection, got {type_name(collection)}"
        )
    saw_unknown = False
    for element in collection:
        verdict = equals(operand, element, config)
        if verdict is True:
            return True
        if verdict is None or verdict is MISSING:
            saw_unknown = True
    return None if saw_unknown else False


def exists(value: Any, config: EvalConfig) -> Any:
    """``EXISTS coll`` — non-emptiness; never NULL."""
    if value is MISSING or value is None:
        return False
    if not is_collection(value):
        return config.type_error(f"EXISTS expects a collection, got {type_name(value)}")
    return len(value) > 0


_TYPE_KIND_NAMES = {
    "BOOLEAN": "boolean",
    "BOOL": "boolean",
    "INTEGER": "integer",
    "INT": "integer",
    "FLOAT": "float",
    "DOUBLE": "float",
    "STRING": "string",
    "VARCHAR": "string",
    "ARRAY": "array",
    "LIST": "array",
    "BAG": "bag",
    "MULTISET": "bag",
    "TUPLE": "tuple",
    "STRUCT": "tuple",
    "OBJECT": "tuple",
    "NUMBER": "number",
}


def is_predicate(operand: Any, kind: str, config: EvalConfig) -> bool:
    """``x IS <kind>`` — never errors, never returns NULL.

    ``IS NULL`` is true for NULL and (following PartiQL, for SQL
    compatibility) also for MISSING; ``IS MISSING`` is true only for
    MISSING.  Type kinds test the dynamic type.
    """
    if kind == "NULL":
        return operand is None or operand is MISSING
    if kind == "MISSING":
        return operand is MISSING
    if kind == "ABSENT":
        return operand is None or operand is MISSING
    expected = _TYPE_KIND_NAMES.get(kind)
    if expected is None:
        raise EvaluationError(f"unknown type name in IS: {kind}")
    if operand is MISSING or operand is None:
        return False
    actual = type_name(operand)
    if expected == "number":
        return actual in ("integer", "float")
    return actual == expected


# =========================================================================
# Navigation
# =========================================================================


def navigate_path(base: Any, attr: str, config: EvalConfig) -> Any:
    """Dot navigation ``base.attr`` (paper, Section IV-B case 1).

    * tuple → the attribute's value, or ``MISSING`` when absent (in both
      typing modes: an absent attribute is *data*, not a type error);
    * ``NULL`` → ``NULL``; ``MISSING`` → ``MISSING``;
    * any other type → a type error (→ MISSING in permissive mode).
    """
    if base is MISSING:
        return MISSING
    if base is None:
        return None
    if isinstance(base, Struct):
        return base.get(attr)
    return config.type_error(
        f"cannot navigate into {type_name(base)} with .{attr}"
    )


def navigate_index(base: Any, index: Any, config: EvalConfig) -> Any:
    """Bracket navigation ``base[index]``.

    Arrays take integer indexes (0-based; out of range → MISSING in
    permissive mode); tuples take string keys (same as dot navigation).
    """
    if base is MISSING or index is MISSING:
        return MISSING
    if base is None or index is None:
        return None
    if isinstance(base, list):
        if isinstance(index, bool) or not isinstance(index, int):
            return config.type_error(
                f"array index must be an integer, got {type_name(index)}"
            )
        if 0 <= index < len(base):
            return base[index]
        return config.type_error(f"array index {index} out of range")
    if isinstance(base, Struct):
        if not isinstance(index, str):
            return config.type_error(
                f"tuple index must be a string, got {type_name(index)}"
            )
        return base.get(index)
    return config.type_error(f"cannot index into {type_name(base)}")


# =========================================================================
# DISTINCT
# =========================================================================


def distinct_elements(items: Any) -> list:
    """Remove duplicates under SQL++ deep equality, keeping first occurrence."""
    seen = set()
    result = []
    for item in items:
        key = group_key(item)
        if key not in seen:
            seen.add(key)
            result.append(item)
    return result


def bag_or_list_elements(value: Any, config: EvalConfig):
    """Coerce a value to an iterable of elements for set operations."""
    if isinstance(value, (list, Bag)):
        return list(value)
    return config.type_error(
        f"set operation expects collections, got {type_name(value)}"
    )
