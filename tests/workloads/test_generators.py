"""Workload generator determinism and shape."""

from repro.workloads import (
    emp_flat,
    emp_nested,
    emp_normalized,
    emp_with_absent_titles,
    event_log,
    null_to_missing,
    stock_prices_tall,
    stock_prices_wide,
)


class TestDeterminism:
    def test_same_seed_same_data(self):
        assert emp_nested(50, seed=3) == emp_nested(50, seed=3)
        assert event_log(50, dirty_rate=0.2, seed=5) == event_log(
            50, dirty_rate=0.2, seed=5
        )

    def test_different_seed_differs(self):
        assert emp_nested(50, seed=1) != emp_nested(50, seed=2)


class TestHrWorkloads:
    def test_nested_shape(self):
        emps = emp_nested(20, fanout=3)
        assert len(emps) == 20
        assert all(isinstance(e["projects"], list) for e in emps)
        assert all(isinstance(p, dict) for e in emps for p in e["projects"])

    def test_scalar_projects_variant(self):
        emps = emp_nested(20, scalar_projects=True)
        assert all(isinstance(p, str) for e in emps for p in e["projects"])

    def test_flat_has_no_nesting(self):
        emps = emp_flat(20)
        assert all(
            isinstance(v, (int, str)) for e in emps for v in e.values()
        )

    def test_normalized_preserves_projects(self):
        employees, projects = emp_normalized(30, fanout=2, seed=9)
        nested = emp_nested(30, fanout=2, seed=9)
        assert len(projects) == sum(len(e["projects"]) for e in nested)
        assert all("projects" not in e for e in employees)
        ids = {e["id"] for e in employees}
        assert all(p["emp_id"] in ids for p in projects)

    def test_absent_titles_variants_align(self):
        with_missing = emp_with_absent_titles(100, 0.3, seed=4, use_missing=True)
        with_null = emp_with_absent_titles(100, 0.3, seed=4, use_missing=False)
        assert len(with_missing) == len(with_null)
        for m_row, n_row in zip(with_missing, with_null):
            if "title" not in m_row:
                assert n_row["title"] is None
            else:
                assert m_row["title"] == n_row["title"]

    def test_null_to_missing_mutation(self):
        rows = [{"a": 1, "b": None}, {"a": None}]
        assert null_to_missing(rows) == [{"a": 1}, {}]


class TestStocks:
    def test_wide_columns(self):
        rows = stock_prices_wide(5, 3)
        assert len(rows) == 5
        assert set(rows[0]) == {"date", "sym0", "sym1", "sym2"}

    def test_tall_is_wide_unpivoted(self):
        tall = stock_prices_tall(4, 3, seed=2)
        wide = stock_prices_wide(4, 3, seed=2)
        assert len(tall) == 12
        lookup = {(r["date"], r["symbol"]): r["price"] for r in tall}
        assert lookup[("day-00000", "sym1")] == wide[0]["sym1"]


class TestEventLog:
    def test_dirty_rate_zero_is_clean(self):
        events = event_log(200, dirty_rate=0.0)
        assert all(isinstance(e["latency"], int) for e in events)

    def test_dirty_rate_one_is_all_dirty(self):
        events = event_log(50, dirty_rate=1.0)
        assert all(e["latency"] == "n/a" for e in events)

    def test_heterogeneous_shapes(self):
        events = event_log(300, heterogeneous=True)
        assert any("tags" in e for e in events)
        assert any("user" in e for e in events)
        assert any("tags" not in e and "user" not in e for e in events)

    def test_homogeneous_mode(self):
        events = event_log(100, heterogeneous=False)
        assert all("tags" not in e and "user" not in e for e in events)
