"""A hand-written lexer for SQL++.

Produces a list of :class:`~repro.syntax.tokens.Token`.  Notable choices:

* Keywords are case-insensitive and normalised to uppercase; identifiers
  keep the case they were written in.
* ``'...'`` is a string literal with ``''`` as the embedded-quote escape
  (SQL style); ``"..."`` is a delimited identifier (used by the paper for
  reserved-word attribute names such as ``c."date"``).
* ``<<`` / ``>>`` lex as digraph tokens (bag constructors); ``{{`` does
  *not* — braces always lex individually so that ``}}}`` closes a struct
  inside a bag correctly, and the parser pairs adjacent braces itself.
* Comments: ``-- line`` and ``/* block */``.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError, caret_snippet
from repro.syntax.tokens import (
    EOF,
    IDENT,
    KEYWORD,
    KEYWORDS,
    NUMBER,
    PUNCT,
    PUNCT_DIGRAPHS,
    PUNCT_SINGLE,
    QUOTED_IDENT,
    STRING,
    Token,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


class Lexer:
    """Single-pass lexer over a SQL++ source string."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Lex the whole input, returning tokens terminated by EOF."""
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self._pos >= len(self._source):
                tokens.append(Token(EOF, None, self._line, self._column))
                return tokens
            tokens.append(self._next_token())

    # -- internals ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self._source[self._pos : self._pos + count]
        for char in text:
            if char == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return text

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start_line, start_col = self._line, self._column
        self._advance(2)
        while self._pos < len(self._source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise self._lex_error("unterminated block comment", start_line, start_col)

    def _next_token(self) -> Token:
        line, column = self._line, self._column
        char = self._peek()

        if char in _IDENT_START:
            return self._lex_word(line, column)
        if char in _DIGITS or (char == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, column)
        if char == "'":
            return Token(STRING, self._lex_quoted("'", line, column), line, column)
        if char == '"':
            return Token(
                QUOTED_IDENT, self._lex_quoted('"', line, column), line, column
            )
        if char == "`":
            # Backquoted identifiers (AsterixDB style) are accepted too.
            return Token(
                QUOTED_IDENT, self._lex_quoted("`", line, column), line, column
            )
        two = self._source[self._pos : self._pos + 2]
        if two in PUNCT_DIGRAPHS:
            self._advance(2)
            return Token(PUNCT, two, line, column)
        if char in PUNCT_SINGLE:
            self._advance()
            return Token(PUNCT, char, line, column)
        raise self._lex_error(f"unexpected character {char!r}", line, column)

    def _lex_error(self, message: str, line: int, column: int) -> LexError:
        return LexError(
            message,
            line,
            column,
            snippet=caret_snippet(self._source, line, column),
        )

    def _lex_word(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self._source) and self._peek() in _IDENT_CONT:
            self._advance()
        text = self._source[start : self._pos]
        upper = text.upper()
        if upper in KEYWORDS:
            return Token(KEYWORD, upper, line, column)
        return Token(IDENT, text, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        is_float = False
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == "." and self._peek(1) in _DIGITS:
            is_float = True
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        elif self._peek() == "." and self._peek(1) not in _IDENT_START:
            # "1." style float, but not "1.x" which is a path over a number
            # (a type error at runtime, still lexically a path).
            is_float = True
            self._advance()
        if self._peek() in "eE" and (
            self._peek(1) in _DIGITS
            or (self._peek(1) in "+-" and self._peek(2) in _DIGITS)
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        text = self._source[start : self._pos]
        value = float(text) if is_float else int(text)
        return Token(NUMBER, value, line, column)

    def _lex_quoted(self, quote: str, line: int, column: int) -> str:
        self._advance()  # opening quote
        parts: List[str] = []
        while True:
            if self._pos >= len(self._source):
                raise self._lex_error("unterminated quoted literal", line, column)
            char = self._peek()
            if char == quote:
                if self._peek(1) == quote:
                    parts.append(quote)
                    self._advance(2)
                    continue
                self._advance()
                return "".join(parts)
            parts.append(char)
            self._advance()


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into a token list (convenience wrapper)."""
    return Lexer(source).tokenize()
