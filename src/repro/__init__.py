"""repro — a from-scratch reproduction of *SQL++: We Can Finally Relax!*
(Carey et al., ICDE 2024).

A complete SQL++ query processor in pure Python:

* the relaxed data model — nested, schema-optional, heterogeneous values
  with both ``NULL`` and ``MISSING`` (:mod:`repro.datamodel`);
* the full query language — SELECT VALUE, left-correlated FROM,
  GROUP BY ... GROUP AS, PIVOT/UNPIVOT, windows, set ops
  (:mod:`repro.syntax`);
* the SQL++ Core evaluator and the SQL-as-sugar rewriter with the
  SQL-compatibility flag and permissive/strict typing modes
  (:mod:`repro.core`, :mod:`repro.config`);
* optional schemas with union types, validation, inference and static
  checking (:mod:`repro.schema`);
* format independence — JSON, CSV, CBOR, Ion and the paper's literal
  notation (:mod:`repro.formats`);
* the compatibility kit the paper calls for — every listing of the paper
  as an executable conformance case (:mod:`repro.compat`);
* baselines for the benchmark harness — a strict SQL-92 engine and a
  "JSON in a column" engine (:mod:`repro.baselines`).

Quick start::

    from repro import Database

    db = Database()
    db.set("hr.emp", [{"name": "Bob", "projects": ["OLTP Security"]}])
    result = db.execute(
        "SELECT e.name AS n, p AS proj "
        "FROM hr.emp AS e, e.projects AS p "
        "WHERE p LIKE '%Security%'"
    )
"""

from repro.catalog.database import Database
from repro.config import EvalConfig, PERMISSIVE, STRICT
from repro.datamodel import MISSING, Bag, Struct, from_python, to_python
from repro.errors import (
    BindingError,
    CatalogError,
    EvaluationError,
    FormatError,
    LexError,
    ParseError,
    RewriteError,
    SchemaError,
    SQLPPError,
    TypeCheckError,
)
from repro.formats import sqlpp_dumps, sqlpp_loads
from repro.syntax.parser import parse, parse_expression
from repro.syntax.printer import print_ast

__version__ = "1.0.0"

__all__ = [
    "Database",
    "EvalConfig",
    "PERMISSIVE",
    "STRICT",
    "MISSING",
    "Bag",
    "Struct",
    "from_python",
    "to_python",
    "sqlpp_loads",
    "sqlpp_dumps",
    "parse",
    "parse_expression",
    "print_ast",
    "SQLPPError",
    "LexError",
    "ParseError",
    "RewriteError",
    "BindingError",
    "TypeCheckError",
    "EvaluationError",
    "SchemaError",
    "FormatError",
    "CatalogError",
    "__version__",
]
