"""Execute conformance cases against the engine.

Every case run also produces perf evidence: the fresh per-case
database's :class:`~repro.observability.QueryMetrics` record (phase
timings, cache verdict, whether the streaming pipeline ran) is
attached to the :class:`CaseResult`, and
``collect_trace=True`` additionally captures a structured span trace
per case — so one conformance sweep doubles as a timing corpus for the
report and the trajectory harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro import errors
from repro.catalog.database import Database
from repro.compat.corpus import ConformanceCase, all_cases
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag
from repro.formats.sqlpp_text import loads
from repro.observability import ExecTracer, QueryMetrics, TraceContext


@dataclass
class CaseResult:
    """Outcome of one conformance case."""

    case: ConformanceCase
    passed: bool
    actual: Any = None
    expected: Any = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    #: The per-query observability record (phase timings, cache
    #: verdict, status) of the case's execution.
    metrics: Optional[QueryMetrics] = None
    #: Structured spans for the case (``collect_trace=True`` only).
    trace: Optional[TraceContext] = None


def build_database(case: ConformanceCase) -> Database:
    """A fresh database holding the case's input collections."""
    db = Database(typing_mode=case.typing_mode, sql_compat=case.sql_compat)
    for name, literal in case.data.items():
        db.load_value(name, literal)
    return db


def run_case(case: ConformanceCase, collect_trace: bool = False) -> CaseResult:
    """Run one case and compare against its expectation."""
    started = time.perf_counter()
    db = build_database(case)
    trace: Optional[TraceContext] = None
    tracer: Optional[ExecTracer] = None
    if collect_trace:
        trace = TraceContext(name=case.case_id)
        tracer = ExecTracer(trace=trace)
    try:
        actual = db.execute(case.query, tracer=tracer)
    except errors.SQLPPError as exc:
        elapsed = time.perf_counter() - started
        if case.expect_error and type(exc).__name__ == case.expect_error:
            return CaseResult(
                case=case,
                passed=True,
                elapsed_s=elapsed,
                metrics=db.metrics.last,
                trace=trace,
            )
        return CaseResult(
            case=case,
            passed=False,
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=elapsed,
            metrics=db.metrics.last,
            trace=trace,
        )
    elapsed = time.perf_counter() - started
    if case.expect_error:
        return CaseResult(
            case=case,
            passed=False,
            actual=actual,
            error=f"expected {case.expect_error}, query succeeded",
            elapsed_s=elapsed,
            metrics=db.metrics.last,
            trace=trace,
        )
    expected = loads(case.expected) if case.expected is not None else None
    passed = _results_equal(actual, expected, ordered=case.ordered)
    return CaseResult(
        case=case,
        passed=passed,
        actual=actual,
        expected=expected,
        elapsed_s=elapsed,
        metrics=db.metrics.last,
        trace=trace,
    )


def _results_equal(actual: Any, expected: Any, ordered: bool) -> bool:
    """Bag-equality comparison, tolerant of array/bag at the top level.

    Unordered queries conceptually return bags; expectations written as
    arrays in the corpus compare as multisets unless ``ordered``.
    """
    if ordered:
        if isinstance(actual, Bag):
            actual = actual.to_list()
        if isinstance(expected, Bag):
            expected = expected.to_list()
        return deep_equals(actual, expected)
    if isinstance(actual, (list, Bag)) and isinstance(expected, (list, Bag)):
        return deep_equals(Bag(list(actual)), Bag(list(expected)))
    return deep_equals(actual, expected)


def run_cases(
    cases: Optional[Sequence[ConformanceCase]] = None,
    collect_traces: bool = False,
) -> List[CaseResult]:
    """Run many cases (default: the whole kit) in registration order."""
    return [
        run_case(case, collect_trace=collect_traces)
        for case in (cases if cases is not None else all_cases())
    ]
