"""Evaluation configuration: the paper's two language "dials".

The unified SQL++ definition exposes two orthogonal switches:

* **Typing mode** (paper, Section IV): in ``permissive`` mode a dynamic
  type error (``2 * 'a'``, navigation into a scalar, a function applied
  to wrongly-typed input) produces ``MISSING`` so that processing of
  "healthy" data continues; in ``strict`` mode ("stop-on-error") the same
  situation raises :class:`~repro.errors.TypeCheckError`.

* **SQL-compatibility flag** (paper, Section I): when on, SQL sugar is
  honoured — plain ``SELECT`` subqueries coerce by context, SQL aggregate
  functions rewrite over groups, ``COALESCE``-class expressions treat a
  ``MISSING`` input like ``NULL`` — so existing SQL queries behave
  identically.  When off, the language is the fully composable SQL++
  Core: ``SELECT`` is pure sugar for ``SELECT VALUE`` and no implicit
  coercion ever happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datamodel.values import MISSING
from repro.errors import TypeCheckError

PERMISSIVE = "permissive"
STRICT = "strict"


@dataclass(frozen=True)
class EvalConfig:
    """Immutable evaluation settings threaded through the evaluator.

    ``sql_compat`` defaults to True (the adoption-friendly mode the paper
    recommends for SQL users); ``typing_mode`` defaults to permissive
    (the flexible mode the paper motivates for semistructured data).
    """

    typing_mode: str = PERMISSIVE
    sql_compat: bool = True
    #: Physical planning (hash equi-joins, predicate pushdown, right-side
    #: materialization — see docs/PLANNER.md).  ``optimize=False`` runs
    #: the executable reference semantics unchanged; results must be
    #: identical either way (the planner only fires rewrites it can
    #: prove equivalent, and falls back wholesale in strict mode).
    optimize: bool = True
    #: Resource limits (docs/OBSERVABILITY.md), enforced cooperatively by
    #: the evaluator; exceeding one raises
    #: :class:`~repro.errors.ResourceExhausted` instead of hanging.
    #: ``None`` disables a limit.
    timeout_s: Optional[float] = None
    max_rows: Optional[int] = None
    max_recursion: Optional[int] = None
    #: Batch-vectorized execution (docs/PLANNER.md): eligible blocks
    #: exchange ~1024-row chunks between physical operators and map
    #: compiled closures over each chunk instead of crossing a Python
    #: generator frame per binding.  Semantics are identical; shapes the
    #: batch engine cannot prove equivalent (LIMIT/OFFSET, strict mode,
    #: multi-item FROM, PIVOT, windows) fall back to the streaming
    #: pipeline automatically.
    batch: bool = True
    #: Morsel-driven parallelism: when >= 2, partitionable scans are
    #: split into morsels fanned across that many forked worker
    #: processes (hash-join probe and decomposable aggregation run
    #: per-morsel, results merge in morsel order).  0 disables; plans
    #: with a non-partitionable consumer run the serial batch path.
    parallel: int = 0
    #: Semantic rewrites (docs/REWRITER.md): the safety-checked rule
    #: registry (:mod:`repro.core.rewrite_rules`) that runs between
    #: sugar lowering and physical planning — correlated EXISTS/IN →
    #: semi-join, scalar-subquery decorrelation, OR-chain → IN,
    #: repeated-subquery CSE.  ``rewrite=False`` keeps the Core query
    #: exactly as the sugar rewriter produced it; results must be
    #: identical either way (each rule discharges explicit safety
    #: conditions before firing).  Ignored when ``optimize`` is off.
    rewrite: bool = True

    def __post_init__(self) -> None:
        if self.typing_mode not in (PERMISSIVE, STRICT):
            raise ValueError(
                f"typing_mode must be {PERMISSIVE!r} or {STRICT!r}, "
                f"got {self.typing_mode!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_rows is not None and self.max_rows < 0:
            raise ValueError("max_rows must be non-negative")
        if self.max_recursion is not None and self.max_recursion < 1:
            raise ValueError("max_recursion must be at least 1")
        if self.parallel < 0:
            raise ValueError("parallel must be non-negative")

    @property
    def has_limits(self) -> bool:
        """Whether any resource limit is configured."""
        return (
            self.timeout_s is not None
            or self.max_rows is not None
            or self.max_recursion is not None
        )

    @property
    def is_permissive(self) -> bool:
        return self.typing_mode == PERMISSIVE

    def type_error(self, message: str):
        """Signal a dynamic type error under the current typing mode.

        Returns ``MISSING`` in permissive mode; raises
        :class:`TypeCheckError` in strict mode.  Callers should
        ``return config.type_error(...)`` so both behaviours work.
        """
        if self.is_permissive:
            return MISSING
        raise TypeCheckError(message)


#: The default configuration: SQL-compatible, permissive typing.
DEFAULT_CONFIG = EvalConfig()

#: The fully composable Core with strict "stop-on-error" typing.
STRICT_CORE_CONFIG = EvalConfig(typing_mode=STRICT, sql_compat=False)
