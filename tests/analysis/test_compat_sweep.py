"""The compat kit doubles as the analyzer's false-positive corpus.

Every positive conformance listing must check clean of error-severity
findings in both typing modes — these queries run successfully, so an
error finding would be a false positive by construction.  And the
analyzer must never crash on *any* listing, including the
expect-error ones.
"""

import pytest

from repro.analysis import AnalyzerOptions, analyze
from repro.analysis.diagnostics import ERROR
from repro.compat.corpus import all_cases
from repro.config import EvalConfig

CASES = all_cases()
POSITIVE = [case for case in CASES if not case.expect_error]


@pytest.mark.parametrize(
    "case", POSITIVE, ids=[case.case_id for case in POSITIVE]
)
@pytest.mark.parametrize("typing_mode", ["strict", "permissive"])
def test_positive_listing_has_no_error_findings(case, typing_mode):
    options = AnalyzerOptions(
        config=EvalConfig(
            typing_mode=typing_mode, sql_compat=case.sql_compat
        ),
        catalog_names=tuple(case.data),
    )
    found = analyze(case.query, options)
    errors = [d for d in found if d.severity == ERROR]
    assert not errors, [
        f"{d.code}: {d.message}" for d in errors
    ]


@pytest.mark.parametrize(
    "case", CASES, ids=[case.case_id for case in CASES]
)
def test_analyzer_never_crashes(case):
    options = AnalyzerOptions(
        config=EvalConfig(
            typing_mode=case.typing_mode, sql_compat=case.sql_compat
        ),
        catalog_names=tuple(case.data),
    )
    for diagnostic in analyze(case.query, options):
        assert diagnostic.code.startswith("SQLPP")
        assert diagnostic.message
