"""E1 — every listing of the paper, verified and timed.

The paper's evaluation *is* its listings: each conformance case must
reproduce the printed result exactly.  This bench runs every case of the
compatibility kit (Listings 1–28 plus the prose-derived cases), asserts
it passes, and times parse+rewrite+execute end to end.
"""

import pytest

from repro.compat.corpus import all_cases
from repro.compat.runner import build_database, run_case

CASES = all_cases()
LISTING_CASES = [case for case in CASES if case.case_id.startswith("L")]


@pytest.mark.benchmark(group="E1-listings")
@pytest.mark.parametrize(
    "case", LISTING_CASES, ids=[case.case_id for case in LISTING_CASES]
)
def test_listing_case(benchmark, case):
    result = run_case(case)
    assert result.passed, f"{case.case_id}: {result.error}"

    db = build_database(case)
    benchmark(lambda: db.execute(case.query))


@pytest.mark.benchmark(group="E1-kit")
def test_whole_kit(benchmark):
    """The full compatibility kit, as a vendor would run it."""

    def run_kit():
        results = [run_case(case) for case in CASES]
        assert all(result.passed for result in results)
        return len(results)

    count = benchmark(run_kit)
    print(f"\nE1: {count}/{count} conformance cases pass")
