"""Parser robustness: arbitrary input never crashes with a foreign error.

Whatever bytes arrive, the front end must either parse or raise a
positioned LexError/ParseError — no IndexError, RecursionError (within
reason), or AttributeError escapes to the caller.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import LexError, ParseError
from repro.syntax.parser import parse, parse_expression

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=80
)

sqlish_tokens = st.lists(
    st.sampled_from(
        [
            "SELECT", "VALUE", "FROM", "WHERE", "GROUP", "BY", "AS", "AT",
            "HAVING", "ORDER", "LIMIT", "PIVOT", "UNPIVOT", "UNION", "ALL",
            "AND", "OR", "NOT", "NULL", "MISSING", "LIKE", "IN", "BETWEEN",
            "IS", "CASE", "WHEN", "THEN", "ELSE", "END", "EXISTS",
            "e", "p", "t", "x", "name", "'str'", "42", "2.5",
            "(", ")", "[", "]", "{", "}", "{{", "}}", "<<", ">>",
            ",", ".", "*", "+", "-", "/", "=", "<", ">", "||", "?",
        ]
    ),
    max_size=25,
).map(" ".join)


@given(printable)
@settings(max_examples=300)
def test_arbitrary_text_never_crashes(text):
    try:
        parse(text)
    except (LexError, ParseError):
        pass


@given(sqlish_tokens)
@settings(max_examples=500)
def test_token_soup_never_crashes(text):
    try:
        parse(text)
    except (LexError, ParseError):
        pass


@given(sqlish_tokens)
@settings(max_examples=300)
def test_expression_entry_point_never_crashes(text):
    try:
        parse_expression(text)
    except (LexError, ParseError):
        pass


# -- end-to-end: whatever parses must evaluate or fail cleanly -------------

from repro import Database  # noqa: E402
from repro.errors import SQLPPError  # noqa: E402

_db = Database()
_db.set("t", [{"name": "a", "v": 1, "tags": ["x"]}, {"v": None}])
_db.set("e", [{"projects": [{"name": "p1"}]}])


@given(sqlish_tokens)
@settings(max_examples=400, deadline=None)
def test_whatever_parses_evaluates_or_fails_cleanly(text):
    try:
        parse(text)
    except (LexError, ParseError):
        return
    try:
        _db.execute(text)
    except SQLPPError:
        pass
    except RecursionError:
        pass  # pathological nesting is acceptable to refuse
