"""The query store: persistent workload history with cardinality feedback.

Production engines keep a *query store* — SQL Server's feature of that
name, Oracle's AWR — because per-execution telemetry answers "what just
happened" but not "what does this workload normally look like".  This
module is that memory for the SQL++ engine:

* **Fingerprints.**  Workload identity is the *normalized* query — the
  rewritten Core AST with literals stripped — hashed together with the
  two mode dials and the catalog name-set version.  SQL++ is
  configurable: the same text can mean different things under different
  ``typing_mode``/``sql_compat`` settings (PAPERS.md, "Configurable,
  Unifying and Semi-structured"), so the dials are part of identity,
  not metadata.  Literal stripping makes ``price > 10`` and
  ``price > 20`` the same workload entry; struct-field *names* (which
  are ``Literal`` nodes syntactically) are preserved, because renaming
  an output column is a different query.

* **Plan hashes & regressions.**  Every execution records the hash of
  the plan that actually ran.  A new hash under an old fingerprint is a
  **plan change**; a latency far above the fingerprint's stored median
  is a **latency regression**.  Both are surfaced as events, report
  lines and Prometheus gauges.

* **Cardinality feedback.**  On sampled executions (first run of a
  fingerprint, or first run after the data changed) the store attaches
  a timing-free :class:`~repro.observability.tracer.ExecTracer`,
  compares each operator's actual output rows against the planner's
  estimate (q-error), and records the actuals into the catalog's
  :class:`~repro.catalog.statistics.FeedbackHints` under plan-shape
  keys.  The planner prefers those hints over sampled statistics, so a
  join order chosen from a bad estimate corrects itself on the next
  execution of the same fingerprint.

* **Persistence.**  One JSON-lines record per execution, bounded
  retention (the file is compacted to the newest ``max_records``
  records once it doubles past the bound), and corruption-tolerant
  reload: a torn or garbled line is skipped, not fatal — a crashed
  process must not brick its own history.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.observability.exposition import Histogram
from repro.observability.tracer import q_error

#: Stored query text is bounded: the store keys on fingerprints, the
#: text is only a human-readable exemplar for reports and gauge labels.
STORE_TEXT_LIMIT = 200

#: Per-fingerprint q-error history window (max is tracked separately
#: and never forgets).
QERROR_WINDOW = 64


# =========================================================================
# Fingerprints and plan hashes
# =========================================================================


def normalized_core_text(core) -> str:
    """The literal-stripped printed form of a rewritten Core AST.

    Every ``Literal`` becomes ``'?'`` except struct-field *keys* (the
    paper's struct constructor spells field names as literal strings;
    stripping them would merge queries with different output shapes).
    The transform is bottom-up and literals are leaves, so the original
    key objects are still identifiable by ``id()`` when visited.
    """
    from repro.syntax import ast
    from repro.syntax.printer import print_ast

    preserved = {
        id(field.key)
        for node in core.walk()
        if isinstance(node, ast.StructLit)
        for field in node.fields
        if isinstance(field.key, ast.Literal)
    }

    def strip(node):
        if isinstance(node, ast.Literal) and id(node) not in preserved:
            return ast.Literal(value="?")
        return node

    return print_ast(core.transform(strip))


def query_fingerprint(
    core, typing_mode: str, sql_compat: bool, catalog_version: int
) -> str:
    """A 16-hex-digit workload identity for one compiled query."""
    payload = "\x1f".join(
        [
            normalized_core_text(core),
            typing_mode,
            "1" if sql_compat else "0",
            str(catalog_version),
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def plan_signature(plan) -> str:
    """The plan's shape text: its EXPLAIN output minus ``stats:`` lines
    (statistics drift with the data; the *shape* is what a plan change
    should be detected on)."""
    return "\n".join(
        line
        for line in plan.explain().splitlines()
        if not line.strip().startswith("stats:")
    )


def plan_hash(plan) -> str:
    """A 12-hex-digit hash of the executed plan's shape; the literal
    ``"reference"`` when no physical plan ran (reference pipeline)."""
    if plan is None:
        return "reference"
    return hashlib.sha256(
        plan_signature(plan).encode("utf-8")
    ).hexdigest()[:12]


# =========================================================================
# Cardinality feedback extraction
# =========================================================================


def record_plan_feedback(plan, tracer, provider) -> bool:
    """Record observed scan/join output rows into the provider's
    feedback hints.  True when any hint changed enough to replan.

    Only single-item plans qualify: a multi-item cross product replays
    uncorrelated items per upstream row, so an operator's total
    ``rows_out`` is not that operator's per-enumeration cardinality.
    The caller guarantees the run completed (status ok) and was not cut
    short by LIMIT/OFFSET — a truncated count would poison the hints.
    """
    from repro.core.planner import (
        join_feedback_key,
        scan_feedback_key,
        walk_plan_ops,
    )

    if plan is None or len(plan.items) != 1:
        return False
    changed = False
    for op in walk_plan_ops(plan.items[0].op):
        stats = tracer.op_stats(op)
        if stats is None:
            continue
        key = scan_feedback_key(op) or join_feedback_key(op)
        if key is None:
            continue
        if provider.record_feedback(key, float(stats.rows_out)):
            changed = True
    return changed


def plan_max_qerror(plan, tracer) -> Optional[float]:
    """The worst per-operator q-error of one traced execution, or None
    when no operator carried both an estimate and a tally."""
    from repro.core.planner import walk_plan_ops

    if plan is None:
        return None
    worst: Optional[float] = None
    for item_plan in plan.items:
        for op in walk_plan_ops(item_plan.op):
            estimate = getattr(op, "est_rows", None)
            if estimate is None:
                continue
            stats = tracer.op_stats(op)
            if stats is None:
                continue
            q = q_error(estimate, stats.rows_out)
            if worst is None or q > worst:
                worst = q
    return worst


# =========================================================================
# The store
# =========================================================================


class StoreEntry:
    """Aggregated history for one query fingerprint."""

    __slots__ = (
        "fingerprint",
        "query_text",
        "executions",
        "errors",
        "total_s",
        "rows_total",
        "latency",
        "plan_hashes",
        "last_plan_hash",
        "plan_changes",
        "regressions",
        "qerrors",
        "max_qerror",
        "last_seen",
    )

    def __init__(self, fingerprint: str, query_text: str) -> None:
        self.fingerprint = fingerprint
        self.query_text = query_text
        self.executions = 0
        self.errors = 0
        self.total_s = 0.0
        self.rows_total = 0
        #: Latency percentiles ride the shared log-spaced bucket grid.
        self.latency = Histogram()
        #: plan hash → times executed under it.
        self.plan_hashes: Dict[str, int] = {}
        self.last_plan_hash: Optional[str] = None
        self.plan_changes = 0
        self.regressions = 0
        self.qerrors: Deque[float] = deque(maxlen=QERROR_WINDOW)
        self.max_qerror: Optional[float] = None
        self.last_seen = 0.0

    def median_qerror(self) -> Optional[float]:
        if not self.qerrors:
            return None
        ordered = sorted(self.qerrors)
        return ordered[len(ordered) // 2]

    def summary(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "query": self.query_text,
            "executions": self.executions,
            "errors": self.errors,
            "total_s": round(self.total_s, 6),
            "rows_total": self.rows_total,
            "p50_s": self.latency.quantile(0.5),
            "p95_s": self.latency.quantile(0.95),
            "plan_hashes": dict(self.plan_hashes),
            "plan_changes": self.plan_changes,
            "regressions": self.regressions,
            "max_qerror": self.max_qerror,
            "median_qerror": self.median_qerror(),
            "last_seen": self.last_seen,
        }


class QueryStore:
    """Fingerprint-keyed workload history with optional persistence.

    ``path=None`` keeps the store purely in memory.  With a path, every
    observation appends one JSON-lines record and reload replays the
    newest ``max_records`` of them through the same aggregation code —
    so persisted state and live state cannot drift apart structurally.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        max_fingerprints: int = 256,
        max_records: int = 512,
        min_history: int = 5,
        regression_factor: float = 4.0,
    ) -> None:
        self.path = path
        self.max_fingerprints = max_fingerprints
        self.max_records = max_records
        #: Executions a fingerprint needs before its median is trusted
        #: enough to call a slow run a regression.
        self.min_history = min_history
        #: How far past the stored median a latency must land to count.
        self.regression_factor = regression_factor
        self._entries: "OrderedDict[str, StoreEntry]" = OrderedDict()
        self._events: Deque[Dict[str, Any]] = deque(maxlen=max_records)
        self.plan_change_count = 0
        self.regression_count = 0
        #: fingerprint → catalog data_version it was last feedback-traced
        #: under; drives :meth:`wants_feedback` sampling.
        self._feedback_seen: Dict[str, Any] = {}
        self._tail: Deque[str] = deque(maxlen=max_records)
        self._line_count = 0
        self._file: Optional[io.TextIOBase] = None
        self._lock = threading.RLock()
        if path is not None:
            self._load()
            self._file = open(path, "a", encoding="utf-8")

    # -- feedback sampling policy --------------------------------------

    def wants_feedback(self, fingerprint: str, data_version: Any) -> bool:
        """Whether the next execution of this fingerprint should run
        with the timing-free tracer attached: yes on first sight and
        again whenever the catalog data changed since the last trace."""
        with self._lock:
            return self._feedback_seen.get(fingerprint) != data_version

    def mark_feedback(self, fingerprint: str, data_version: Any) -> None:
        with self._lock:
            self._feedback_seen[fingerprint] = data_version

    # -- observation ----------------------------------------------------

    def observe(
        self,
        fingerprint: str,
        query: str,
        plan_hash_value: Optional[str],
        status: str,
        total_s: float,
        rows: Optional[int],
        qerror: Optional[float] = None,
        persist: bool = True,
        at: Optional[float] = None,
    ) -> List[str]:
        """Fold one finished execution in; returns the detected events
        (``"plan-change"`` / ``"latency-regression"``), empty usually."""
        with self._lock:
            events = self._observe_locked(
                fingerprint,
                query,
                plan_hash_value,
                status,
                total_s,
                rows,
                qerror,
                time.time() if at is None else at,
            )
            if persist and self._file is not None:
                self._append_record(
                    fingerprint, query, plan_hash_value, status, total_s,
                    rows, qerror,
                )
            return events

    def _observe_locked(
        self,
        fingerprint: str,
        query: str,
        plan_hash_value: Optional[str],
        status: str,
        total_s: float,
        rows: Optional[int],
        qerror: Optional[float],
        at: float,
    ) -> List[str]:
        entry = self._entries.get(fingerprint)
        if entry is None:
            entry = StoreEntry(fingerprint, query[:STORE_TEXT_LIMIT])
            self._entries[fingerprint] = entry
            while len(self._entries) > self.max_fingerprints:
                self._entries.popitem(last=False)
        self._entries.move_to_end(fingerprint)

        events: List[str] = []
        # Regression check runs against the history *before* this run
        # is folded in — the slow run must not drag the median toward
        # itself first.
        if (
            status == "ok"
            and entry.latency.count >= self.min_history
            and total_s > self.regression_factor * entry.latency.quantile(0.5)
        ):
            entry.regressions += 1
            self.regression_count += 1
            events.append("latency-regression")
        if plan_hash_value is not None:
            if (
                entry.last_plan_hash is not None
                and plan_hash_value != entry.last_plan_hash
            ):
                entry.plan_changes += 1
                self.plan_change_count += 1
                events.append("plan-change")
            entry.last_plan_hash = plan_hash_value
            entry.plan_hashes[plan_hash_value] = (
                entry.plan_hashes.get(plan_hash_value, 0) + 1
            )

        entry.executions += 1
        entry.last_seen = at
        if status != "ok":
            entry.errors += 1
        else:
            entry.latency.observe(total_s)
            entry.total_s += total_s
            if rows is not None:
                entry.rows_total += rows
        if qerror is not None:
            entry.qerrors.append(qerror)
            if entry.max_qerror is None or qerror > entry.max_qerror:
                entry.max_qerror = qerror
        for event in events:
            self._events.append(
                {
                    "event": event,
                    "fingerprint": fingerprint,
                    "query": entry.query_text,
                    "plan_hash": plan_hash_value,
                    "total_s": total_s,
                    "at": at,
                }
            )
        return events

    # -- persistence ----------------------------------------------------

    def _append_record(
        self,
        fingerprint: str,
        query: str,
        plan_hash_value: Optional[str],
        status: str,
        total_s: float,
        rows: Optional[int],
        qerror: Optional[float],
    ) -> None:
        line = json.dumps(
            {
                "fp": fingerprint,
                "q": query[:STORE_TEXT_LIMIT],
                "plan": plan_hash_value,
                "status": status,
                "total_s": round(total_s, 6),
                "rows": rows,
                "qerr": qerror,
                "at": round(time.time(), 3),
            },
            ensure_ascii=False,
        )
        self._tail.append(line)
        self._file.write(line + "\n")
        self._file.flush()
        self._line_count += 1
        if self._line_count > self.max_records * 2:
            self._compact()

    def _compact(self) -> None:
        """Rewrite the file down to the newest ``max_records`` records.

        Atomic via write-to-temp + rename, so a crash mid-compaction
        leaves either the old file or the new one, never a torn half."""
        temp_path = self.path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            for line in self._tail:
                handle.write(line + "\n")
        self._file.close()
        os.replace(temp_path, self.path)
        self._file = open(self.path, "a", encoding="utf-8")
        self._line_count = len(self._tail)

    def _load(self) -> None:
        """Replay persisted records; corrupt lines are skipped (a torn
        tail from a crash must not take the whole history with it)."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except (OSError, UnicodeDecodeError):
            return
        self._line_count = len(lines)
        for line in lines[-self.max_records :]:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                fingerprint = record["fp"]
                if not isinstance(fingerprint, str):
                    raise TypeError("fingerprint must be a string")
                self._observe_locked(
                    fingerprint,
                    str(record.get("q", "")),
                    record.get("plan"),
                    str(record.get("status", "ok")),
                    float(record.get("total_s", 0.0)),
                    record.get("rows"),
                    record.get("qerr"),
                    float(record.get("at", 0.0)),
                )
            except (ValueError, TypeError, KeyError):
                continue
            self._tail.append(line)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    # -- reporting ------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entry(self, fingerprint: str) -> Optional[StoreEntry]:
        with self._lock:
            return self._entries.get(fingerprint)

    def top(self, n: int = 10) -> List[StoreEntry]:
        """The ``n`` fingerprints with the most accumulated wall time —
        "where did my database spend its life" order."""
        with self._lock:
            ordered = sorted(
                self._entries.values(),
                key=lambda e: (e.total_s, e.executions),
                reverse=True,
            )
            return ordered[:n]

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "fingerprints": len(self._entries),
                "plan_changes": self.plan_change_count,
                "regressions": self.regression_count,
                "entries": [
                    entry.summary() for entry in self._entries.values()
                ],
                "events": list(self._events),
            }

    def report(self, n: int = 10) -> str:
        """The REPL/CLI-facing text report (``.topqueries`` / ``report``)."""
        from repro.observability.tracer import format_seconds

        with self._lock:
            lines = [
                f"query store: {len(self._entries)} fingerprint(s), "
                f"{self.plan_change_count} plan change(s), "
                f"{self.regression_count} latency regression(s)"
            ]
            for entry in self.top(n):
                qerr = (
                    f" max-q-err={entry.max_qerror:.2f}"
                    if entry.max_qerror is not None
                    else ""
                )
                plans = len(entry.plan_hashes)
                lines.append(
                    f"  {entry.fingerprint}  calls={entry.executions} "
                    f"errors={entry.errors} "
                    f"p50={format_seconds(entry.latency.quantile(0.5))} "
                    f"p95={format_seconds(entry.latency.quantile(0.95))} "
                    f"rows={entry.rows_total} plans={plans}"
                    f"{qerr}"
                )
                lines.append(f"    {entry.query_text}")
            for event in list(self._events)[-5:]:
                lines.append(
                    f"  event: {event['event']} fp={event['fingerprint']} "
                    f"plan={event['plan_hash']}"
                )
            return "\n".join(lines)

    def export_gauges(self, registry) -> None:
        """Publish the store's current state as Prometheus gauges."""
        with self._lock:
            registry.set_gauge(
                "repro_query_store_fingerprints",
                "Distinct query fingerprints tracked by the query store.",
                [({}, len(self._entries))],
            )
            registry.set_gauge(
                "repro_query_store_plan_changes_total",
                "Plan changes detected (same fingerprint, new plan hash).",
                [({}, self.plan_change_count)],
            )
            registry.set_gauge(
                "repro_query_store_latency_regressions_total",
                "Executions exceeding the regression factor over the "
                "fingerprint's stored median latency.",
                [({}, self.regression_count)],
            )
            worst = [
                entry
                for entry in self._entries.values()
                if entry.max_qerror is not None
            ]
            worst.sort(key=lambda e: e.max_qerror, reverse=True)
            registry.set_gauge(
                "repro_query_store_max_qerror",
                "Worst per-operator cardinality q-error observed.",
                [({}, worst[0].max_qerror if worst else 1.0)],
            )
            registry.set_gauge(
                "repro_query_store_qerror",
                "Max q-error per query fingerprint (worst 5).",
                [
                    (
                        {
                            "fingerprint": entry.fingerprint,
                            "query": entry.query_text,
                        },
                        entry.max_qerror,
                    )
                    for entry in worst[:5]
                ],
            )
