"""Token definitions for the SQL++ lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

# Token type tags.  Simple string constants keep the lexer/parser readable
# and cheap; an Enum would add indirection without adding safety here
# because the parser matches on literal tag strings anyway.
IDENT = "IDENT"  # regular identifier (value holds its text, case kept)
QUOTED_IDENT = "QUOTED_IDENT"  # "delimited identifier"
KEYWORD = "KEYWORD"  # reserved word (value holds its uppercase form)
STRING = "STRING"  # 'string literal'
NUMBER = "NUMBER"  # integer or float literal (value holds int/float)
PUNCT = "PUNCT"  # operator / punctuation (value holds its text)
EOF = "EOF"

#: Reserved words.  Anything not listed lexes as IDENT, so names such as
#: COALESCE or builtin function names remain usable as identifiers.
KEYWORDS = frozenset(
    """
    SELECT VALUE ELEMENT FROM WHERE GROUP BY AS AT HAVING LET
    ORDER ASC DESC NULLS FIRST LAST LIMIT OFFSET
    UNNEST INNER LEFT RIGHT FULL OUTER JOIN CROSS ON
    UNION INTERSECT EXCEPT ALL DISTINCT
    AND OR NOT NULL MISSING TRUE FALSE
    LIKE ESCAPE IN BETWEEN IS
    CASE WHEN THEN ELSE END EXISTS
    PIVOT UNPIVOT CAST
    OVER PARTITION ROWS CUBE ROLLUP GROUPING SETS
    """.split()
)

#: Multi-character punctuation, longest-match first.
PUNCT_DIGRAPHS = ("<<", ">>", "<=", ">=", "!=", "<>", "||")

#: Single-character punctuation.
PUNCT_SINGLE = frozenset("()[]{},.;:*/%+-=<>?")


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based line/column)."""

    type: str
    value: Any
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        """True when this token is one of the given reserved words."""
        return self.type == KEYWORD and self.value in words

    def is_punct(self, *texts: str) -> bool:
        """True when this token is one of the given punctuation texts."""
        return self.type == PUNCT and self.value in texts

    def describe(self) -> str:
        """Human-readable rendering for error messages."""
        if self.type == EOF:
            return "end of input"
        return repr(str(self.value))
