"""Render a conformance report for the compatibility kit.

Since the runner attaches per-case :class:`QueryMetrics`, the report
carries timing columns — each case line shows its wall time, the
summary shows the sweep total, and the JSON form exposes the full
phase breakdown per case — so a conformance run doubles as perf
evidence (the trajectory harness reads the same numbers).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.compat.runner import CaseResult
from repro.formats.sqlpp_text import dumps
from repro.observability import format_seconds


def format_report(results: Sequence[CaseResult], verbose: bool = False) -> str:
    """A text report: one line per case plus a summary (and diffs when
    ``verbose``)."""
    lines: List[str] = []
    lines.append("SQL++ compatibility kit")
    lines.append("=" * 70)
    passed = 0
    total_s = 0.0
    by_section: dict = {}
    for result in results:
        case = result.case
        status = "PASS" if result.passed else "FAIL"
        if result.passed:
            passed += 1
        total_s += result.elapsed_s
        mode = "compat" if case.sql_compat else "core"
        mode += "/strict" if case.typing_mode == "strict" else ""
        lines.append(
            f"[{status}] {case.case_id:<28} §{case.section:<6} "
            f"({mode:<13}) {format_seconds(result.elapsed_s):>9}  "
            f"{case.title}"
        )
        section = by_section.setdefault(case.section, [0, 0, 0.0])
        section[0] += int(result.passed)
        section[1] += 1
        section[2] += result.elapsed_s
        if not result.passed:
            if result.error:
                lines.append(f"       error: {result.error}")
            else:
                lines.append("       expected:")
                lines.append(_indent(dumps(result.expected), 9))
                lines.append("       actual:")
                lines.append(_indent(dumps(result.actual), 9))
        elif verbose and result.expected is not None:
            lines.append(_indent(dumps(result.expected), 9))
    lines.append("-" * 70)
    lines.append(
        f"{passed}/{len(results)} cases passed "
        f"in {format_seconds(total_s)}"
    )
    for section in sorted(by_section):
        ok, total, section_s = by_section[section]
        lines.append(
            f"  §{section:<6} {ok}/{total}  ({format_seconds(section_s)})"
        )
    return "\n".join(lines)


def _indent(text: str, width: int) -> str:
    pad = " " * width
    return "\n".join(pad + line for line in text.splitlines())


def _phases_json(result: CaseResult) -> Optional[dict]:
    """The case's phase-timing breakdown, when the runner recorded one."""
    metrics = result.metrics
    if metrics is None:
        return None
    return {
        "parse_s": round(metrics.parse_s, 6),
        "rewrite_s": round(metrics.rewrite_s, 6),
        "plan_s": (
            round(metrics.plan_s, 6) if metrics.plan_s is not None else None
        ),
        "execute_s": round(metrics.execute_s, 6),
        "total_s": round(metrics.total_s, 6),
        "cache_hit": metrics.cache_hit,
    }


def report_json(results: Sequence[CaseResult]) -> dict:
    """A machine-readable summary (for CI and cross-engine comparison)."""
    return {
        "total": len(results),
        "passed": sum(result.passed for result in results),
        "elapsed_s": round(sum(result.elapsed_s for result in results), 6),
        "cases": [
            {
                "id": result.case.case_id,
                "section": result.case.section,
                "title": result.case.title,
                "mode": "compat" if result.case.sql_compat else "core",
                "typing": result.case.typing_mode,
                "passed": result.passed,
                "elapsed_s": round(result.elapsed_s, 6),
                "phases": _phases_json(result),
                "error": result.error,
            }
            for result in results
        ],
    }
