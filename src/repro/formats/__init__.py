"""Data-format codecs (paper tenet 5: *format independence*).

"SQL++'s syntax and semantics should not be tied to a particular data
format.  A query should be written identically across underlying data in
any of today's many nested and/or semistructured formats."

Every codec maps between its physical format and the one logical SQL++
data model, so the same query gives the same answer whatever format the
data arrived in (exercised by experiment E9):

* ``sqlpp`` — the paper's own literal notation (``{{ ... }}`` bags,
  ``MISSING``, single-quoted strings);
* ``json`` — JSON (objects → tuples, arrays → arrays; a top-level array
  can be read as a bag);
* ``csv``  — header-row CSV with optional type inference;
* ``cbor`` — RFC 8949 Concise Binary Object Representation, implemented
  from scratch (a tag marks bags so round-trips preserve them);
* ``ion``  — a text subset of Amazon Ion (S-expression-free).
"""

from repro.formats.registry import (
    FORMATS,
    read_file,
    read_text,
    write_file,
    write_text,
)
from repro.formats.sqlpp_text import loads as sqlpp_loads
from repro.formats.sqlpp_text import dumps as sqlpp_dumps

__all__ = [
    "FORMATS",
    "read_file",
    "read_text",
    "write_file",
    "write_text",
    "sqlpp_loads",
    "sqlpp_dumps",
]
