"""Schema inference: the tightest schema describing observed data.

Useful for the schema-optional workflow: load schemaless data, infer a
schema, impose it (query stability guarantees results don't change), and
from then on get validation and static disambiguation for free.

Inference unifies per-element types: differing scalar types widen to a
:class:`UnionType` (int/float unify to DOUBLE first); struct fields seen
in only some elements become *optional*; NULL occurrences make fields
*nullable* (keeping the paper's NULL/MISSING distinction intact).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.datamodel.values import MISSING, Bag, Struct, type_name
from repro.errors import SchemaError
from repro.schema.types import (
    AnyType,
    ArrayType,
    BagType,
    BooleanType,
    FloatType,
    IntegerType,
    NullType,
    SchemaType,
    StringType,
    StructField,
    StructType,
    UnionType,
)


def infer_schema(value: Any) -> SchemaType:
    """Infer the tightest schema type for a model value."""
    if value is MISSING:
        raise SchemaError("cannot infer a schema for MISSING")
    if value is None:
        return NullType()
    if isinstance(value, bool):
        return BooleanType()
    if isinstance(value, int):
        return IntegerType()
    if isinstance(value, float):
        return FloatType()
    if isinstance(value, str):
        return StringType()
    if isinstance(value, list):
        return ArrayType(element=_unify_all(value))
    if isinstance(value, Bag):
        return BagType(element=_unify_all(value))
    if isinstance(value, Struct):
        fields = []
        for name in dict.fromkeys(value.keys()):
            occurrences = value.get_all(name)
            nullable = any(item is None for item in occurrences)
            types = [infer_schema(item) for item in occurrences if item is not None]
            fld_type: SchemaType = _unify_types(types) if types else NullType()
            fields.append(
                StructField(name=name, type=fld_type, nullable=nullable)
            )
        return StructType(fields=tuple(fields))
    raise SchemaError(f"cannot infer a schema for {type_name(value)}")


def _unify_all(items) -> SchemaType:
    element_types: List[SchemaType] = []
    for item in items:
        if item is MISSING:
            continue
        element_types.append(infer_schema(item))
    if not element_types:
        return AnyType()
    return _unify_types(element_types)


def _unify_types(types: List[SchemaType]) -> SchemaType:
    result = types[0]
    for other in types[1:]:
        result = unify(result, other)
    return result


def unify(left: SchemaType, right: SchemaType) -> SchemaType:
    """The least schema type covering both arguments."""
    if left == right:
        return left
    if isinstance(left, AnyType) or isinstance(right, AnyType):
        return AnyType()
    # Numeric widening.
    numeric = (IntegerType, FloatType)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return FloatType()
    if isinstance(left, ArrayType) and isinstance(right, ArrayType):
        return ArrayType(element=unify(left.element, right.element))
    if isinstance(left, BagType) and isinstance(right, BagType):
        return BagType(element=unify(left.element, right.element))
    if isinstance(left, StructType) and isinstance(right, StructType):
        return _unify_structs(left, right)
    alternatives = _union_members(left) + _union_members(right)
    deduped: List[SchemaType] = []
    for alternative in alternatives:
        if alternative not in deduped:
            deduped.append(alternative)
    if len(deduped) == 1:
        return deduped[0]
    return UnionType(alternatives=tuple(deduped))


def _union_members(schema: SchemaType) -> List[SchemaType]:
    if isinstance(schema, UnionType):
        return list(schema.alternatives)
    return [schema]


def _unify_structs(left: StructType, right: StructType) -> StructType:
    by_name: Dict[str, StructField] = {f.name: f for f in left.fields}
    names = [f.name for f in left.fields]
    right_names = {f.name for f in right.fields}
    merged: List[StructField] = []
    for fld in right.fields:
        if fld.name not in by_name:
            names.append(fld.name)
            by_name[fld.name] = StructField(
                name=fld.name, type=fld.type, optional=True, nullable=fld.nullable
            )
        else:
            existing = by_name[fld.name]
            by_name[fld.name] = StructField(
                name=fld.name,
                type=unify(existing.type, fld.type),
                optional=existing.optional or fld.optional,
                nullable=existing.nullable or fld.nullable,
            )
    for name in names:
        fld = by_name[name]
        if name not in right_names and not fld.optional:
            fld = StructField(
                name=fld.name, type=fld.type, optional=True, nullable=fld.nullable
            )
        merged.append(fld)
    return StructType(fields=tuple(merged), open=left.open or right.open)
